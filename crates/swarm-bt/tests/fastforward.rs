//! Dense-vs-elided equivalence suite for the quiescence fast-forward.
//!
//! The contract under test: with fast-forward enabled (the default) the
//! engine must produce a `BtResult` byte-for-byte identical — timeline
//! curves included — to the dense loop's (`disable_fast_forward: true`)
//! on *every* configuration. The fast-forward elides provably quiescent
//! ticks; it never changes what any executed tick does, and it consumes
//! exactly the same RNG stream.
//!
//! Fixed configs pin the regimes the paper cares about (K ∈ {1, 4, 16},
//! intermittent and seedless publishers, lingering seeds); the proptest
//! sweeps random configurations across publisher processes, loads and
//! protocol intervals.

use proptest::prelude::*;
use swarm_bt::{run, BtConfig, BtPublisher, PieceSelection};

/// Run `cfg` both densely and with fast-forward, and require the two
/// serialized results to match byte for byte.
fn assert_equivalent(label: &str, cfg: &BtConfig) {
    let dense_cfg = BtConfig {
        disable_fast_forward: true,
        ..cfg.clone()
    };
    let elided_cfg = BtConfig {
        disable_fast_forward: false,
        ..cfg.clone()
    };
    let dense = serde_json::to_string(&run(&dense_cfg)).expect("serialize dense");
    let elided = serde_json::to_string(&run(&elided_cfg)).expect("serialize elided");
    assert_eq!(
        dense, elided,
        "{label}: fast-forward diverged from the dense loop"
    );
}

#[test]
fn k1_intermittent_publisher_with_timeline() {
    // §4.3's headline point: K=1, publisher on 300 s / off 900 s. Long
    // blocked spans during off-periods are exactly what gets elided.
    let cfg = BtConfig {
        record_timeline: true,
        ..BtConfig::paper_section_4_3(1, 42)
    };
    assert_equivalent("k1 on/off", &cfg);
}

#[test]
fn k4_intermittent_publisher() {
    let cfg = BtConfig {
        horizon: 600,
        drain_ticks: 900,
        ..BtConfig::paper_section_4_3(4, 7)
    };
    assert_equivalent("k4 on/off", &cfg);
}

#[test]
fn k16_intermittent_publisher_with_timeline() {
    // Largest bundle of the sweep; 256 pieces. Short horizon keeps the
    // dense reference cheap in debug builds.
    let cfg = BtConfig {
        horizon: 300,
        drain_ticks: 300,
        record_timeline: true,
        ..BtConfig::paper_section_4_3(16, 11)
    };
    assert_equivalent("k16 on/off", &cfg);
}

#[test]
fn k1_highly_unavailable_publisher() {
    // The benchmark regime: publisher mostly off, sparse arrivals, long
    // horizon. Nearly every tick is elidable.
    let cfg = BtConfig {
        arrival_rate: 1.0 / 300.0,
        publisher: BtPublisher::OnOff {
            on_mean: 60.0,
            off_mean: 1_200.0,
            initially_on: false,
        },
        horizon: 4_000,
        drain_ticks: 600,
        record_timeline: true,
        ..BtConfig::paper_section_4_3(1, 23)
    };
    assert_equivalent("k1 highly unavailable", &cfg);
}

#[test]
fn seedless_publishers() {
    // §4.2: the publisher leaves at the first completion. K=1 dies and
    // drains; K=8 self-sustains for a while.
    assert_equivalent("seedless k1", &BtConfig::paper_section_4_2(1, 13));
    assert_equivalent("seedless k8", &BtConfig::paper_section_4_2(8, 13));
}

#[test]
fn always_on_publisher() {
    // Control: a busy, always-available swarm should round-trip too
    // (fast-forward rarely engages, but must stay invisible when it
    // does, e.g. before the first arrival).
    let cfg = BtConfig {
        publisher: BtPublisher::AlwaysOn,
        horizon: 600,
        drain_ticks: 300,
        ..BtConfig::paper_section_4_3(2, 5)
    };
    assert_equivalent("always-on", &cfg);
}

#[test]
fn lingering_seeds() {
    // Lingering exercises the linger-expiry wake events and the
    // peer-sustained availability path (covered == num_pieces).
    let cfg = BtConfig {
        linger_mean: Some(120.0),
        horizon: 600,
        drain_ticks: 600,
        record_timeline: true,
        ..BtConfig::paper_section_4_3(2, 42)
    };
    assert_equivalent("lingering seeds", &cfg);
}

#[test]
fn pex_disabled() {
    // With PEX off, isolated-peer quiescence no longer depends on the
    // 30-tick gossip cadence; jumps stretch to the next arrival/toggle.
    let cfg = BtConfig {
        pex_interval: 0,
        horizon: 2_000,
        drain_ticks: 600,
        ..BtConfig::paper_section_4_3(1, 29)
    };
    assert_equivalent("pex disabled", &cfg);
}

#[test]
fn super_seed_random_selection() {
    // Cover the other RNG-consuming piece-selection paths.
    let cfg = BtConfig {
        super_seed: true,
        piece_selection: PieceSelection::Random,
        horizon: 600,
        drain_ticks: 300,
        ..BtConfig::paper_section_4_3(2, 31)
    };
    assert_equivalent("super-seed + random selection", &cfg);
}

proptest! {
    // Each case runs the engine twice in a debug build; a small case
    // count keeps the suite inside the tier-1 budget while still
    // sweeping the config space run-to-run (proptest perturbs seeds).
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn equivalent_on_random_configs(
        k in 1u32..5,
        seed in 0u64..1_000_000,
        horizon in 200u64..901,
        drain_idx in 0usize..3,
        publisher_kind in 0usize..3,
        initially_on in prop::bool::ANY,
        on_mean in 40.0f64..400.0,
        off_mean in 40.0f64..900.0,
        linger_on in prop::bool::ANY,
        linger_mean in 20.0f64..240.0,
        pex_idx in 0usize..3,
        rechoke_idx in 0usize..3,
        rate_scale in 0.2f64..1.5,
    ) {
        let base = BtConfig::paper_section_4_3(k, seed);
        let cfg = BtConfig {
            horizon,
            drain_ticks: [0u64, 120, 600][drain_idx],
            arrival_rate: base.arrival_rate * rate_scale,
            publisher: match publisher_kind {
                0 => BtPublisher::AlwaysOn,
                1 => BtPublisher::OnOff { on_mean, off_mean, initially_on },
                _ => BtPublisher::UntilFirstCompletion,
            },
            linger_mean: linger_on.then_some(linger_mean),
            pex_interval: [0u64, 7, 30][pex_idx],
            rechoke_interval: [1u64, 3, 10][rechoke_idx],
            record_timeline: true,
            ..base
        };
        let dense = serde_json::to_string(&run(&BtConfig {
            disable_fast_forward: true,
            ..cfg.clone()
        })).expect("serialize dense");
        let elided = serde_json::to_string(&run(&cfg)).expect("serialize elided");
        prop_assert_eq!(dense, elided, "random config diverged");
    }
}
