//! Telemetry equivalence of the quiescence fast-forward.
//!
//! Every deterministic `bt.*` counter — ticks, bytes, arrivals,
//! completions, rechokes, churn, blocked ticks, availability
//! transitions — must be *identical* between a dense and an elided run
//! of the same config. Only the two fast-forward counters themselves
//! (`bt.ticks_elided`, `bt.fastforward.jumps`) may differ: zero under
//! the dense loop, positive once elision engages.
//!
//! Own test binary: it owns the process-global `swarm-obs` state
//! (enable switch + counter registry), which must not race with other
//! tests' runs.

use std::collections::BTreeMap;
use swarm_bt::{run, BtConfig, BtPublisher};

/// The counters introduced by the fast-forward path; everything else
/// under `bt.` must match a dense run exactly.
const FF_COUNTERS: [&str; 2] = ["bt.ticks_elided", "bt.fastforward.jumps"];

fn bt_counters(snap: &swarm_obs::Snapshot) -> BTreeMap<String, u64> {
    snap.counters
        .iter()
        .filter(|(k, _)| k.starts_with("bt.") && !k.ends_with("_ns") && !k.ends_with("_ms"))
        .map(|(k, &v)| (k.clone(), v))
        .collect()
}

#[test]
fn deterministic_counters_match_dense() {
    // An idle-heavy §4.3 run with lingering: off-periods, linger-expiry
    // wakes and peer-sustained availability all in play.
    let cfg = BtConfig {
        arrival_rate: 1.0 / 120.0,
        publisher: BtPublisher::OnOff {
            on_mean: 120.0,
            off_mean: 900.0,
            initially_on: true,
        },
        linger_mean: Some(60.0),
        horizon: 2_400,
        drain_ticks: 1_200,
        ..BtConfig::paper_section_4_3(1, 97)
    };
    let dense_cfg = BtConfig {
        disable_fast_forward: true,
        ..cfg.clone()
    };

    swarm_obs::set_enabled(true);
    let s0 = swarm_obs::snapshot();
    let dense = serde_json::to_string(&run(&dense_cfg)).expect("serialize");
    let s1 = swarm_obs::snapshot();
    let elided = serde_json::to_string(&run(&cfg)).expect("serialize");
    let s2 = swarm_obs::snapshot();
    swarm_obs::set_enabled(false);

    assert_eq!(dense, elided, "results must match under telemetry too");

    let dense_delta = bt_counters(&s1.delta_since(&s0));
    let elided_delta = bt_counters(&s2.delta_since(&s1));

    for (name, &dense_v) in &dense_delta {
        if FF_COUNTERS.contains(&name.as_str()) {
            continue;
        }
        let elided_v = elided_delta.get(name).copied().unwrap_or(0);
        assert_eq!(
            dense_v, elided_v,
            "counter {name} diverged: dense {dense_v} vs elided {elided_v}"
        );
    }
    for (name, &elided_v) in &elided_delta {
        if FF_COUNTERS.contains(&name.as_str()) {
            continue;
        }
        assert!(
            dense_delta.contains_key(name),
            "counter {name} ({elided_v}) appeared only under fast-forward"
        );
    }

    // The dense run must not elide; the elided run must actually jump.
    assert_eq!(dense_delta.get("bt.ticks_elided").copied().unwrap_or(0), 0);
    assert_eq!(
        dense_delta
            .get("bt.fastforward.jumps")
            .copied()
            .unwrap_or(0),
        0
    );
    let skipped = elided_delta.get("bt.ticks_elided").copied().unwrap_or(0);
    let jumps = elided_delta
        .get("bt.fastforward.jumps")
        .copied()
        .unwrap_or(0);
    assert!(skipped > 0, "idle-heavy run must elide ticks");
    assert!(jumps > 0, "idle-heavy run must take jumps");
    // Sanity: elided + executed == dense tick count.
    let dense_ticks = dense_delta["bt.ticks"];
    let elided_ticks = elided_delta["bt.ticks"];
    assert_eq!(dense_ticks, elided_ticks, "bt.ticks must match exactly");
    assert!(
        skipped < dense_ticks,
        "cannot elide more ticks than the run has"
    );
}
