//! Time-series equivalence of the quiescence fast-forward.
//!
//! The engine's `"bt"` recorder windows — tick counts, arrivals,
//! completions, availability credit, blocked ticks, bytes — must be
//! *byte-identical* between a dense and an elided run of the same
//! config: fast-forward jumps emit the skipped windows as explicit
//! flat records with the same analytic contents the dense loop would
//! have accumulated.
//!
//! Own test binary: it owns the process-global `swarm-obs` state
//! (enable switch + timeseries registry), which must not race with
//! other tests' runs.

use std::collections::BTreeMap;
use swarm_bt::{run, BtConfig, BtPublisher};

#[test]
fn windows_match_dense() {
    // Same idle-heavy §4.3 config the counter-equivalence test uses:
    // off-periods, linger-expiry wakes and peer-sustained availability
    // all in play, so elision engages across many window boundaries.
    let cfg = BtConfig {
        arrival_rate: 1.0 / 120.0,
        publisher: BtPublisher::OnOff {
            on_mean: 120.0,
            off_mean: 900.0,
            initially_on: true,
        },
        linger_mean: Some(60.0),
        horizon: 2_400,
        drain_ticks: 1_200,
        ..BtConfig::paper_section_4_3(1, 97)
    };
    let dense_cfg = BtConfig {
        disable_fast_forward: true,
        ..cfg.clone()
    };

    swarm_obs::set_enabled(true);
    // The registry is process-global: clear any leftover series first.
    let _ = swarm_obs::take_series("bt");
    let dense_result = serde_json::to_string(&run(&dense_cfg)).expect("serialize");
    let dense = swarm_obs::take_series("bt").expect("dense run recorded a series");
    let elided_result = serde_json::to_string(&run(&cfg)).expect("serialize");
    let elided = swarm_obs::take_series("bt").expect("elided run recorded a series");
    swarm_obs::set_enabled(false);

    assert_eq!(dense_result, elided_result, "results must match");

    // Byte-for-byte: same stride, same windows, same serialization.
    assert_eq!(dense.stride(), elided.stride());
    assert_eq!(dense.windows(), elided.windows());
    let jsonl = |rec: &swarm_obs::Recorder| {
        let mut series = BTreeMap::new();
        series.insert("bt".to_string(), rec.clone());
        swarm_obs::series_to_jsonl(&series)
    };
    assert_eq!(jsonl(&dense), jsonl(&elided), "serialized series diverged");

    // The series must actually be windowed and time-resolved: several
    // windows, contiguous coverage from tick 0, and the window sums
    // must reconcile with the whole-run counters.
    let windows = dense.windows();
    assert!(windows.len() > 4, "expected a multi-window series");
    assert_eq!(windows[0].start, 0);
    for pair in windows.windows(2) {
        assert_eq!(
            pair[0].start + pair[0].len,
            pair[1].start,
            "windows must tile the tick range without gaps"
        );
    }
    let sum = |key: &str| -> u64 {
        windows
            .iter()
            .map(|w| w.counters.get(key).copied().unwrap_or(0))
            .sum()
    };
    let result: serde_json::Value = serde_json::from_str(&dense_result).expect("round-trip");
    // Arrivals in the series count warmup arrivals too (probe
    // semantics), so they are >= the result's post-warmup count.
    assert!(sum("arrivals") >= result["arrivals"].as_u64().unwrap());
    assert!(sum("completions") >= result["completions"].as_u64().unwrap());
    // An idle-heavy run has availability gaps: the credit must be
    // strictly between zero and the covered tick span.
    let avail = sum("available_ticks");
    assert!(avail > 0, "run starts available");
    assert!(avail < sum("ticks"), "off-periods must show up as gaps");
}
