//! Property-based tests for the block-level engine's data structures and
//! end-to-end invariants.

use proptest::prelude::*;
use swarm_bt::{run, Bitfield, BtConfig, BtPublisher, CapacityDistribution};

proptest! {
    #[test]
    fn bitfield_set_membership(len in 1usize..500, picks in prop::collection::vec(0usize..500, 0..50)) {
        let mut b = Bitfield::new(len);
        let mut expected = std::collections::HashSet::new();
        for p in picks {
            let p = p % len;
            b.set(p);
            expected.insert(p);
        }
        prop_assert_eq!(b.count(), expected.len());
        for i in 0..len {
            prop_assert_eq!(b.has(i), expected.contains(&i));
        }
        prop_assert_eq!(b.is_complete(), expected.len() == len);
    }

    #[test]
    fn bitfield_union_is_commutative_and_covers(
        len in 1usize..300,
        xs in prop::collection::vec(0usize..300, 0..40),
        ys in prop::collection::vec(0usize..300, 0..40),
    ) {
        let mut a = Bitfield::new(len);
        let mut b = Bitfield::new(len);
        for x in &xs { a.set(x % len); }
        for y in &ys { b.set(y % len); }
        let mut ab = a.clone();
        ab.union_with(&b);
        let mut ba = b.clone();
        ba.union_with(&a);
        prop_assert_eq!(&ab, &ba);
        for i in 0..len {
            prop_assert_eq!(ab.has(i), a.has(i) || b.has(i));
        }
    }

    #[test]
    fn interest_iff_missing_nonempty(
        len in 1usize..200,
        xs in prop::collection::vec(0usize..200, 0..30),
        ys in prop::collection::vec(0usize..200, 0..30),
    ) {
        let mut me = Bitfield::new(len);
        let mut them = Bitfield::new(len);
        for x in &xs { me.set(x % len); }
        for y in &ys { them.set(y % len); }
        let missing = me.missing_from(&them).count();
        prop_assert_eq!(me.interested_in(&them), missing > 0);
    }

    #[test]
    fn capacity_samples_within_support(seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let d = CapacityDistribution::BitTyrant;
        for _ in 0..50 {
            let v = d.sample(&mut rng);
            prop_assert!((12.0..=5_000.0).contains(&v), "sample {v}");
        }
    }
}

proptest! {
    // End-to-end engine runs are costly; keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn engine_accounting_invariants(k in 1u32..4, seed in 0u64..100) {
        let cfg = BtConfig {
            publisher: BtPublisher::AlwaysOn,
            horizon: 600,
            drain_ticks: 300,
            record_timeline: true,
            ..BtConfig::paper_section_4_3(k, seed)
        };
        let r = run(&cfg);
        // Conservation: everyone who arrived either completed, is still
        // in flight, or departed incomplete (impossible here: peers only
        // leave on completion when not lingering).
        prop_assert!(r.completions <= r.arrivals);
        prop_assert!((0.0..=1.0).contains(&r.availability));
        // Download times are physically possible: at least size/download_cap.
        let floor = cfg.content_size() / cfg.download_cap;
        for &t in r.download_times.values() {
            prop_assert!(t >= floor - 1e-9, "download {t} below physical floor {floor}");
        }
        // Completion curve is strictly increasing in count.
        prop_assert!(r.completion_curve.windows(2).all(|w| w[0].1 < w[1].1));
        // Spans are consistent.
        for s in &r.spans {
            if let Some(c) = s.completed {
                prop_assert!(c >= s.arrived);
                prop_assert!((s.final_fraction - 1.0).abs() < 1e-9);
            }
            if let (Some(c), Some(d)) = (s.completed, s.departed) {
                prop_assert!(d >= c);
            }
        }
    }
}
