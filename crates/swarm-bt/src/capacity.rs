//! Peer upload-capacity distributions.
//!
//! §4.3.2 repeats the bundling experiment with heterogeneous upload
//! capacities drawn from the measured BitTyrant distribution (Piatek et
//! al., NSDI'07): "The average upload rate is 280 KBps and the median is
//! 50 KBps" — a heavy-tailed shape where most peers are slow and a small
//! fraction are very fast.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How per-peer upload capacities are assigned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CapacityDistribution {
    /// Every peer uploads at the same rate (the paper's homogeneous
    /// experiments: 33 kB/s in §4.2, 50 kB/s in §4.3).
    Uniform(f64),
    /// A BitTyrant-like heavy-tailed empirical distribution with median
    /// ≈ 50 kB/s and mean ≈ 280 kB/s (§4.3.2).
    BitTyrant,
    /// Explicit quantile table: `(cumulative probability, rate)` pairs in
    /// ascending order; sampling inverts the piecewise-constant CDF.
    Empirical(Vec<(f64, f64)>),
}

/// BitTyrant-like quantile table. Piecewise-constant inverse CDF chosen to
/// hit the paper's two calibration points (median 50, mean ≈ 280 kB/s)
/// with a plausible heavy tail: half the peers are broadband-slow,
/// ~10% are fast university/datacenter hosts.
const BITTYRANT_QUANTILES: &[(f64, f64)] = &[
    (0.10, 12.0),
    (0.25, 25.0),
    (0.50, 50.0),
    (0.70, 100.0),
    (0.85, 250.0),
    (0.93, 600.0),
    (0.97, 1200.0),
    (0.99, 3000.0),
    (1.00, 5000.0),
];

impl CapacityDistribution {
    /// Draw one peer's upload capacity.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            CapacityDistribution::Uniform(c) => {
                assert!(*c > 0.0 && c.is_finite(), "capacity must be positive");
                *c
            }
            CapacityDistribution::BitTyrant => sample_quantiles(BITTYRANT_QUANTILES, rng),
            CapacityDistribution::Empirical(table) => {
                assert!(!table.is_empty(), "empirical table must not be empty");
                sample_quantiles(table, rng)
            }
        }
    }

    /// Expected value of the distribution.
    pub fn mean(&self) -> f64 {
        match self {
            CapacityDistribution::Uniform(c) => *c,
            CapacityDistribution::BitTyrant => quantile_mean(BITTYRANT_QUANTILES),
            CapacityDistribution::Empirical(table) => quantile_mean(table),
        }
    }

    /// Expected value of `min(X, cap)` — the *effective* per-peer rate
    /// when receivers cannot absorb more than `cap` (e.g. 2008-era DSL
    /// downlinks): the fast tail's surplus capacity is wasted.
    pub fn mean_capped(&self, cap: f64) -> f64 {
        assert!(cap > 0.0 && cap.is_finite(), "cap must be positive");
        match self {
            CapacityDistribution::Uniform(c) => c.min(cap),
            CapacityDistribution::BitTyrant => quantile_mean_capped(BITTYRANT_QUANTILES, cap),
            CapacityDistribution::Empirical(table) => quantile_mean_capped(table, cap),
        }
    }
}

fn sample_quantiles<R: Rng + ?Sized>(table: &[(f64, f64)], rng: &mut R) -> f64 {
    let u: f64 = rng.gen();
    for &(q, v) in table {
        if u <= q {
            return v;
        }
    }
    table.last().expect("nonempty table").1
}

fn quantile_mean_capped(table: &[(f64, f64)], cap: f64) -> f64 {
    let mut prev_q = 0.0;
    let mut mean = 0.0;
    for &(q, v) in table {
        mean += (q - prev_q) * v.min(cap);
        prev_q = q;
    }
    mean
}

fn quantile_mean(table: &[(f64, f64)]) -> f64 {
    let mut prev_q = 0.0;
    let mut mean = 0.0;
    for &(q, v) in table {
        mean += (q - prev_q) * v;
        prev_q = q;
    }
    mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn uniform_is_constant() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let d = CapacityDistribution::Uniform(50.0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 50.0);
        }
        assert_eq!(d.mean(), 50.0);
    }

    #[test]
    fn bittyrant_matches_paper_calibration() {
        // Median 50 kB/s, mean ≈ 280 kB/s (§4.3.2).
        let d = CapacityDistribution::BitTyrant;
        let mean = d.mean();
        assert!(
            (mean - 280.0).abs() < 40.0,
            "analytic mean {mean} should be ≈ 280 kB/s"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let samples: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        // Half the mass sits at or below 50 kB/s (the paper's median).
        let at_or_below_median =
            samples.iter().filter(|&&v| v <= 50.0).count() as f64 / samples.len() as f64;
        assert!(
            (at_or_below_median - 0.5).abs() < 0.01,
            "P(X <= 50) = {at_or_below_median}, median must be 50 kB/s"
        );
        let sample_mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(
            (sample_mean - mean).abs() < 10.0,
            "sample mean {sample_mean} vs analytic {mean}"
        );
    }

    #[test]
    fn mean_capped_clips_the_tail() {
        let d = CapacityDistribution::BitTyrant;
        // Uncapped mean ≈ 280; a 250 kB/s downlink clips it to ~112.
        let eff = d.mean_capped(250.0);
        assert!(eff < d.mean() / 2.0, "capped mean {eff}");
        assert!(
            (eff - 112.0).abs() < 10.0,
            "capped mean {eff} should be ~112"
        );
        // A huge cap changes nothing; uniform clips trivially.
        assert!((d.mean_capped(1e9) - d.mean()).abs() < 1e-9);
        assert_eq!(CapacityDistribution::Uniform(50.0).mean_capped(30.0), 30.0);
    }

    #[test]
    fn bittyrant_is_heavy_tailed() {
        let d = CapacityDistribution::BitTyrant;
        // Mean far above median is the heavy-tail signature.
        assert!(d.mean() > 4.0 * 50.0);
    }

    #[test]
    fn empirical_table_sampling() {
        let d = CapacityDistribution::Empirical(vec![(0.5, 10.0), (1.0, 30.0)]);
        assert!((d.mean() - 20.0).abs() < 1e-12);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n_fast = (0..10_000).filter(|_| d.sample(&mut rng) == 30.0).count();
        assert!((n_fast as f64 / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empirical_rejects_empty_table() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        CapacityDistribution::Empirical(vec![]).sample(&mut rng);
    }
}
