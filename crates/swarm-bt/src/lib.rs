//! Block-level BitTorrent-like swarm engine.
//!
//! The paper validates its availability model with the mainline
//! BitTorrent client on PlanetLab (§4). This crate is that testbed's
//! stand-in: a compact but faithful block-level swarm simulation with
//! pieces and bitfields, tracker + PEX neighbor discovery, tit-for-tat
//! unchoking with optimistic slots, strict-priority + rarest-first piece
//! selection, per-second capacity sharing, intermittent publishers and
//! heterogeneous (BitTyrant-like) upload capacities.
//!
//! Unlike the flow-level [`swarm_sim`](../swarm_sim/index.html) crate —
//! which implements the *model's* abstraction — this engine exhibits the
//! protocol-level phenomena the experiments depend on:
//!
//! * **blocked leechers**: peers stuck at 99% because the only copy of a
//!   piece left with the publisher,
//! * **flash departures** (Figure 5): blocked peers all finishing moments
//!   after the publisher returns,
//! * **the self-sustaining transition** (Figure 4): bundles large enough
//!   that the peer population alone covers every piece indefinitely.
//!
//! # Example
//!
//! ```
//! use swarm_bt::{run, BtConfig};
//!
//! // A 4-file bundle with the paper's §4.3 parameters, 1200 s run.
//! let result = run(&BtConfig::paper_section_4_3(4, 42));
//! assert!(result.arrivals > 0);
//! ```

pub mod bitfield;
pub mod capacity;
pub mod config;
pub mod engine;
pub mod experiment;
pub mod metrics;
pub mod policy;

pub use bitfield::{BitArena, Bitfield};
pub use capacity::CapacityDistribution;
pub use config::{BtConfig, BtPublisher, PieceSelection};
pub use engine::run;
pub use experiment::{replicate, BtReplicated};
pub use metrics::{BtResult, PeerSpan};
