//! Piece bitmaps: word-level kernels, the engine's flat [`BitArena`],
//! and the owned [`Bitfield`] wire/serde adapter.
//!
//! BitTorrent peers advertise the pieces they hold as a bitmap; the
//! paper's monitoring agents classify seeds vs leechers from exactly these
//! bitmaps (§2.2). The engine uses them for piece accounting, rarest-first
//! counting and availability checks.
//!
//! The module is layered:
//!
//! * **Kernels** — free functions over raw `&[u64]` word slices
//!   (`fill_ones`, `count_ones`, `any_and_not`, `ones`, `and_not_ones`).
//!   Every consumer of piece bitmaps funnels through these, so the
//!   per-bit/per-word contract is tested in exactly one place.
//! * **[`BitArena`]** — one contiguous `Vec<u64>` holding every peer's
//!   bitmap at a fixed words-per-row stride, rows handed out by peer id.
//!   The engine's per-tick phases stream over rows cache-linearly instead
//!   of chasing one heap allocation per peer (the chunked flat-storage
//!   layout voxel engines use for world data).
//! * **[`Bitfield`]** — the owned, serializable single bitmap. It is now a
//!   thin adapter over the kernels, kept for the `swarm-net` wire boundary
//!   (`Message::Bitfield` frames), serde payloads and tests.
//!
//! **Tail invariant**: in every representation, bits at positions
//! `len..stride*64` of the final word are zero. The word-wise AND-NOT
//! kernels rely on it — `theirs & !mine` needs no tail masking because the
//! tail is zero in both operands by construction. [`fill_ones`] masks the
//! final word, and nothing else can set an out-of-range bit (`set`
//! asserts). A dedicated test pins this contract.

use serde::{Deserialize, Serialize};

// --- word-level kernels --------------------------------------------------

/// Set bits `0..len` in `words`, whole words at a time, masking the tail
/// word so bits past `len` stay zero. `words` must hold at least
/// `len.div_ceil(64)` words; any further words are left untouched.
#[inline]
pub fn fill_ones(words: &mut [u64], len: usize) {
    let full = len / 64;
    words[..full].fill(u64::MAX);
    let tail = len % 64;
    if tail != 0 {
        words[full] = (1u64 << tail) - 1;
    }
}

/// Total set bits — one popcount per word.
#[inline]
pub fn count_ones(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// Is any bit set in `theirs & !mine` — i.e. does `theirs` hold a piece
/// `mine` lacks? The word-wise interest check; no tail masking needed
/// (see the module-level tail invariant).
#[inline]
pub fn any_and_not(theirs: &[u64], mine: &[u64]) -> bool {
    debug_assert_eq!(theirs.len(), mine.len());
    theirs.iter().zip(mine).any(|(&t, &m)| t & !m != 0)
}

/// Iterate set-bit positions in ascending order. Word-at-a-time: cost is
/// O(words + set bits), not O(len).
pub fn ones(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(wi, &word)| {
        let mut w = word;
        std::iter::from_fn(move || {
            if w == 0 {
                None
            } else {
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + bit)
            }
        })
    })
}

/// Iterate positions set in `theirs & !mine` (the pieces `mine`'s owner is
/// *interested in* when talking to `theirs`'s owner), ascending.
pub fn and_not_ones<'a>(theirs: &'a [u64], mine: &'a [u64]) -> impl Iterator<Item = usize> + 'a {
    debug_assert_eq!(theirs.len(), mine.len());
    theirs
        .iter()
        .zip(mine)
        .enumerate()
        .flat_map(|(wi, (&t, &m))| {
            let mut w = t & !m;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
}

// --- flat bitmap arena ---------------------------------------------------

/// All peers' piece bitmaps in one contiguous `Vec<u64>` at a fixed
/// words-per-row stride, rows indexed by peer id.
///
/// Rows are only ever appended (the engine's population only grows), so a
/// row slice is stable for the id's lifetime and the whole arena stays one
/// allocation that doubles amortized. The tick-loop kernels — interest
/// scans, candidate walks, holder drops — take `&[u64]` row slices, so a
/// sweep over `online_ids` touches memory in one linear stream.
#[derive(Debug, Clone)]
pub struct BitArena {
    words: Vec<u64>,
    /// Words per row: `bits_per_row.div_ceil(64)`, fixed at construction.
    stride: usize,
    bits_per_row: usize,
}

impl BitArena {
    /// An empty arena whose rows will each cover `bits_per_row` pieces.
    pub fn new(bits_per_row: usize) -> Self {
        assert!(bits_per_row > 0, "content must have at least one piece");
        BitArena {
            words: Vec::new(),
            stride: bits_per_row.div_ceil(64),
            bits_per_row,
        }
    }

    /// Pieces each row ranges over.
    pub fn bits_per_row(&self) -> usize {
        self.bits_per_row
    }

    /// Words each row occupies (the arena stride).
    pub fn words_per_row(&self) -> usize {
        self.stride
    }

    /// Number of rows currently in the arena.
    pub fn rows(&self) -> usize {
        self.words.len() / self.stride
    }

    /// Append an all-zero row, returning its id.
    pub fn push_row(&mut self) -> usize {
        let id = self.rows();
        self.words.resize(self.words.len() + self.stride, 0);
        id
    }

    /// Append an all-one row (a seed's bitmap, tail word masked).
    pub fn push_full_row(&mut self) -> usize {
        let id = self.push_row();
        let len = self.bits_per_row;
        fill_ones(self.row_mut(id), len);
        id
    }

    /// The word slice of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[u64] {
        debug_assert!(r < self.rows());
        // SAFETY: rows are append-only and callers index by peer id, so
        // `r < rows()` (debug-asserted above) and the word range is in
        // bounds by construction (`words.len() == rows() * stride`).
        // `row()` runs in every interest scan and candidate walk; the
        // checked slice showed up as real cost in engine profiles.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().add(r * self.stride), self.stride) }
    }

    /// The mutable word slice of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [u64] {
        debug_assert!(r < self.rows());
        // SAFETY: same bounds argument as [`Self::row`]; `&mut self`
        // guarantees exclusivity.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.words.as_mut_ptr().add(r * self.stride),
                self.stride,
            )
        }
    }

    /// Does row `r` hold `bit`?
    #[inline]
    pub fn has(&self, r: usize, bit: usize) -> bool {
        debug_assert!(bit < self.bits_per_row);
        debug_assert!(r < self.rows());
        // SAFETY: `r < rows()` and `bit < bits_per_row <= stride * 64`
        // (both debug-asserted), so the word index is in bounds.
        unsafe { *self.words.get_unchecked(r * self.stride + bit / 64) & (1u64 << (bit % 64)) != 0 }
    }

    /// Set `bit` in row `r`.
    #[inline]
    pub fn set(&mut self, r: usize, bit: usize) {
        assert!(
            bit < self.bits_per_row,
            "piece {bit} out of range 0..{}",
            self.bits_per_row
        );
        self.words[r * self.stride + bit / 64] |= 1u64 << (bit % 64);
    }
}

// --- owned bitfield (wire/serde adapter) ---------------------------------

/// A fixed-size owned bitmap over content pieces.
///
/// The engine keeps its bitmaps in the [`BitArena`]; this owned type
/// remains the adapter at the boundaries — `swarm-net`'s wire frames,
/// serde payloads and tests — and delegates all bit manipulation to the
/// module's kernels so both representations share one contract.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitfield {
    bits: Vec<u64>,
    len: usize,
}

impl Bitfield {
    /// All-zero bitfield over `len` pieces.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "content must have at least one piece");
        Bitfield {
            bits: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-one bitfield (a seed's bitmap): whole words filled directly
    /// with a masked tail word, not a per-bit loop.
    pub fn full(len: usize) -> Self {
        let mut b = Self::new(len);
        fill_ones(&mut b.bits, len);
        b
    }

    /// Number of pieces the bitfield ranges over.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitfield covers zero pieces — impossible by
    /// construction, kept for API completeness.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed words backing this bitfield (tail bits past `len` are
    /// zero — the module-level invariant).
    pub fn as_words(&self) -> &[u64] {
        &self.bits
    }

    #[inline]
    fn index(&self, piece: usize) -> (usize, u64) {
        assert!(
            piece < self.len,
            "piece {piece} out of range 0..{}",
            self.len
        );
        (piece / 64, 1u64 << (piece % 64))
    }

    /// Does the peer hold `piece`?
    #[inline]
    pub fn has(&self, piece: usize) -> bool {
        let (w, m) = self.index(piece);
        self.bits[w] & m != 0
    }

    /// Mark `piece` as held.
    #[inline]
    pub fn set(&mut self, piece: usize) {
        let (w, m) = self.index(piece);
        self.bits[w] |= m;
    }

    /// Number of pieces held.
    pub fn count(&self) -> usize {
        count_ones(&self.bits)
    }

    /// Does this bitfield hold every piece (i.e. is the peer a seed)?
    pub fn is_complete(&self) -> bool {
        self.count() == self.len
    }

    /// Union in-place: pieces held by `self` or `other`.
    ///
    /// # Panics
    /// If lengths differ.
    pub fn union_with(&mut self, other: &Bitfield) {
        assert_eq!(self.len, other.len, "bitfield length mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Iterate over held pieces in ascending order. Word-at-a-time: cost
    /// is O(words + set bits), not O(len).
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        ones(&self.bits)
    }

    /// Iterate over pieces that `other` holds and `self` lacks (the pieces
    /// `self` is *interested* in when talking to `other`), ascending.
    /// Word-at-a-time over `other & !self`; tail bits past `len` are zero
    /// in both operands by construction, so no masking is needed.
    pub fn missing_from<'a>(&'a self, other: &'a Bitfield) -> impl Iterator<Item = usize> + 'a {
        assert_eq!(self.len, other.len, "bitfield length mismatch");
        and_not_ones(&other.bits, &self.bits)
    }

    /// Is `self` interested in `other` (does `other` hold any piece `self`
    /// lacks)? Cheap word-wise check.
    pub fn interested_in(&self, other: &Bitfield) -> bool {
        assert_eq!(self.len, other.len, "bitfield length mismatch");
        any_and_not(&other.bits, &self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_is_empty_full_is_complete() {
        let b = Bitfield::new(100);
        assert_eq!(b.count(), 0);
        assert!(!b.is_complete());
        let f = Bitfield::full(100);
        assert_eq!(f.count(), 100);
        assert!(f.is_complete());
    }

    #[test]
    fn full_tail_bits_are_zero() {
        // The no-masking contract of the AND-NOT kernels: bits past `len`
        // in the final word must be zero, for every tail width including
        // the exact-boundary (no tail) cases.
        for len in [1, 7, 63, 64, 65, 127, 128, 129, 190] {
            let f = Bitfield::full(len);
            let words = f.as_words();
            assert_eq!(words.len(), len.div_ceil(64));
            assert_eq!(count_ones(words), len, "len {len}");
            let tail = len % 64;
            if tail != 0 {
                assert_eq!(
                    words[len / 64] >> tail,
                    0,
                    "tail bits past len {len} must be zero"
                );
            }
            // And a full bitfield is never interested in anything.
            assert!(!f.interested_in(&Bitfield::full(len)));
            assert!(Bitfield::new(len).interested_in(&f));
        }
    }

    #[test]
    fn set_and_has() {
        let mut b = Bitfield::new(130);
        assert!(!b.has(0));
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.has(0) && b.has(63) && b.has(64) && b.has(129));
        assert!(!b.has(1) && !b.has(128));
        assert_eq!(b.count(), 4);
    }

    #[test]
    fn set_is_idempotent() {
        let mut b = Bitfield::new(8);
        b.set(3);
        b.set(3);
        assert_eq!(b.count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn has_out_of_range_panics() {
        Bitfield::new(10).has(10);
    }

    #[test]
    fn union_covers_both() {
        let mut a = Bitfield::new(10);
        a.set(1);
        let mut b = Bitfield::new(10);
        b.set(7);
        a.union_with(&b);
        assert!(a.has(1) && a.has(7));
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn ones_lists_set_pieces_ascending() {
        let mut b = Bitfield::new(130);
        for p in [0, 5, 63, 64, 100, 129] {
            b.set(p);
        }
        let got: Vec<usize> = b.ones().collect();
        assert_eq!(got, vec![0, 5, 63, 64, 100, 129]);
        assert_eq!(Bitfield::new(7).ones().count(), 0);
        assert_eq!(Bitfield::full(70).ones().count(), 70);
    }

    #[test]
    fn missing_from_lists_interesting_pieces() {
        let mut me = Bitfield::new(6);
        me.set(0);
        me.set(1);
        let mut them = Bitfield::new(6);
        them.set(1);
        them.set(2);
        them.set(5);
        let missing: Vec<usize> = me.missing_from(&them).collect();
        assert_eq!(missing, vec![2, 5]);
    }

    #[test]
    fn interest_matches_missing_from() {
        let mut me = Bitfield::new(70);
        let mut them = Bitfield::new(70);
        assert!(!me.interested_in(&them));
        them.set(65);
        assert!(me.interested_in(&them));
        me.set(65);
        assert!(!me.interested_in(&them));
        assert_eq!(me.missing_from(&them).count(), 0);
    }

    #[test]
    fn seed_is_never_interested() {
        let seed = Bitfield::full(40);
        let mut leecher = Bitfield::new(40);
        leecher.set(3);
        assert!(!seed.interested_in(&leecher));
        assert!(leecher.interested_in(&seed));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn union_rejects_length_mismatch() {
        let mut a = Bitfield::new(10);
        a.union_with(&Bitfield::new(11));
    }

    #[test]
    fn arena_rows_are_independent_and_strided() {
        let mut a = BitArena::new(130);
        assert_eq!(a.words_per_row(), 3);
        assert_eq!(a.rows(), 0);
        let seed = a.push_full_row();
        let empty = a.push_row();
        assert_eq!((seed, empty), (0, 1));
        assert_eq!(a.rows(), 2);
        assert_eq!(count_ones(a.row(seed)), 130);
        assert_eq!(count_ones(a.row(empty)), 0);
        a.set(empty, 0);
        a.set(empty, 64);
        a.set(empty, 129);
        assert!(a.has(empty, 64) && !a.has(empty, 65));
        assert_eq!(count_ones(a.row(seed)), 130, "rows must not alias");
        assert_eq!(ones(a.row(empty)).collect::<Vec<_>>(), vec![0, 64, 129]);
        // Tail invariant holds for the full row.
        assert_eq!(a.row(seed)[2] >> (130 % 64), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn arena_set_out_of_range_panics() {
        let mut a = BitArena::new(64);
        a.push_row();
        a.set(0, 64);
    }

    /// Naive per-bit reference: positions of set bits, via `has`.
    fn naive_ones(bf: &Bitfield) -> Vec<usize> {
        (0..bf.len()).filter(|&p| bf.has(p)).collect()
    }

    /// Naive per-bit reference for `missing_from`.
    fn naive_missing(mine: &Bitfield, theirs: &Bitfield) -> Vec<usize> {
        (0..mine.len())
            .filter(|&p| theirs.has(p) && !mine.has(p))
            .collect()
    }

    /// Random-bitmap strategy over word-straddling lengths: the exact
    /// boundary cases (63/64/65, 127/128/129) plus arbitrary fills.
    fn straddling_pair() -> impl Strategy<Value = (Bitfield, Bitfield)> {
        prop::sample::select(vec![1usize, 63, 64, 65, 127, 128, 129, 200]).prop_flat_map(|len| {
            let a = prop::collection::vec(prop::bool::ANY, len..len + 1);
            let b = prop::collection::vec(prop::bool::ANY, len..len + 1);
            (a, b).prop_map(move |(a, b)| {
                let mut x = Bitfield::new(len);
                let mut y = Bitfield::new(len);
                for (p, &set) in a.iter().enumerate() {
                    if set {
                        x.set(p);
                    }
                }
                for (p, &set) in b.iter().enumerate() {
                    if set {
                        y.set(p);
                    }
                }
                (x, y)
            })
        })
    }

    proptest! {
        #[test]
        fn kernels_match_naive_reference(pair in straddling_pair()) {
            let (mine, theirs) = pair;
            // ones / count against the per-bit reference.
            prop_assert_eq!(mine.ones().collect::<Vec<_>>(), naive_ones(&mine));
            prop_assert_eq!(mine.count(), naive_ones(&mine).len());
            // missing_from / interested_in against the per-bit reference.
            let expect = naive_missing(&mine, &theirs);
            prop_assert_eq!(
                mine.missing_from(&theirs).collect::<Vec<_>>(),
                expect.clone()
            );
            prop_assert_eq!(mine.interested_in(&theirs), !expect.is_empty());
            // The kernel entry points agree with the Bitfield adapters
            // when fed the raw words.
            prop_assert_eq!(
                and_not_ones(theirs.as_words(), mine.as_words()).collect::<Vec<_>>(),
                expect.clone()
            );
            prop_assert_eq!(
                any_and_not(theirs.as_words(), mine.as_words()),
                !expect.is_empty()
            );
            prop_assert_eq!(count_ones(mine.as_words()), mine.count());
        }

        #[test]
        fn full_matches_per_bit_loop(len in prop::sample::select(
            vec![1usize, 63, 64, 65, 127, 128, 129, 200],
        )) {
            // The word-filled `full` must equal the per-bit construction.
            let mut per_bit = Bitfield::new(len);
            for p in 0..len {
                per_bit.set(p);
            }
            prop_assert_eq!(Bitfield::full(len), per_bit);
        }

        #[test]
        fn arena_matches_bitfield(pair in straddling_pair()) {
            let (mine, theirs) = pair;
            // An arena row built by the same `set` calls is word-identical
            // to the owned bitfield, so every kernel result transfers.
            let len = mine.len();
            let mut arena = BitArena::new(len);
            let (a, b) = (arena.push_row(), arena.push_row());
            for p in mine.ones() {
                arena.set(a, p);
            }
            for p in theirs.ones() {
                arena.set(b, p);
            }
            prop_assert_eq!(arena.row(a), mine.as_words());
            prop_assert_eq!(arena.row(b), theirs.as_words());
            prop_assert_eq!(
                and_not_ones(arena.row(b), arena.row(a)).collect::<Vec<_>>(),
                naive_missing(&mine, &theirs)
            );
        }
    }
}
