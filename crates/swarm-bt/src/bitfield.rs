//! Piece bitfields.
//!
//! BitTorrent peers advertise the pieces they hold as a bitmap; the
//! paper's monitoring agents classify seeds vs leechers from exactly these
//! bitmaps (§2.2). The engine uses them for piece accounting, rarest-first
//! counting and availability checks.

use serde::{Deserialize, Serialize};

/// A fixed-size bitmap over content pieces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitfield {
    bits: Vec<u64>,
    len: usize,
}

impl Bitfield {
    /// All-zero bitfield over `len` pieces.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "content must have at least one piece");
        Bitfield {
            bits: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-one bitfield (a seed's bitmap).
    pub fn full(len: usize) -> Self {
        let mut b = Self::new(len);
        for i in 0..len {
            b.set(i);
        }
        b
    }

    /// Number of pieces the bitfield ranges over.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitfield covers zero pieces — impossible by
    /// construction, kept for API completeness.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn index(&self, piece: usize) -> (usize, u64) {
        assert!(
            piece < self.len,
            "piece {piece} out of range 0..{}",
            self.len
        );
        (piece / 64, 1u64 << (piece % 64))
    }

    /// Does the peer hold `piece`?
    #[inline]
    pub fn has(&self, piece: usize) -> bool {
        let (w, m) = self.index(piece);
        self.bits[w] & m != 0
    }

    /// Mark `piece` as held.
    #[inline]
    pub fn set(&mut self, piece: usize) {
        let (w, m) = self.index(piece);
        self.bits[w] |= m;
    }

    /// Number of pieces held.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Does this bitfield hold every piece (i.e. is the peer a seed)?
    pub fn is_complete(&self) -> bool {
        self.count() == self.len
    }

    /// Union in-place: pieces held by `self` or `other`.
    ///
    /// # Panics
    /// If lengths differ.
    pub fn union_with(&mut self, other: &Bitfield) {
        assert_eq!(self.len, other.len, "bitfield length mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Iterate over held pieces in ascending order. Word-at-a-time: cost
    /// is O(words + set bits), not O(len).
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// Iterate over pieces that `other` holds and `self` lacks (the pieces
    /// `self` is *interested* in when talking to `other`), ascending.
    /// Word-at-a-time over `other & !self`; tail bits past `len` are zero
    /// in both operands by construction, so no masking is needed.
    pub fn missing_from<'a>(&'a self, other: &'a Bitfield) -> impl Iterator<Item = usize> + 'a {
        assert_eq!(self.len, other.len, "bitfield length mismatch");
        self.bits
            .iter()
            .zip(&other.bits)
            .enumerate()
            .flat_map(|(wi, (&mine, &theirs))| {
                let mut w = theirs & !mine;
                std::iter::from_fn(move || {
                    if w == 0 {
                        None
                    } else {
                        let bit = w.trailing_zeros() as usize;
                        w &= w - 1;
                        Some(wi * 64 + bit)
                    }
                })
            })
    }

    /// Is `self` interested in `other` (does `other` hold any piece `self`
    /// lacks)? Cheap word-wise check.
    pub fn interested_in(&self, other: &Bitfield) -> bool {
        assert_eq!(self.len, other.len, "bitfield length mismatch");
        self.bits.iter().zip(&other.bits).any(|(a, b)| !a & b != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty_full_is_complete() {
        let b = Bitfield::new(100);
        assert_eq!(b.count(), 0);
        assert!(!b.is_complete());
        let f = Bitfield::full(100);
        assert_eq!(f.count(), 100);
        assert!(f.is_complete());
    }

    #[test]
    fn set_and_has() {
        let mut b = Bitfield::new(130);
        assert!(!b.has(0));
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.has(0) && b.has(63) && b.has(64) && b.has(129));
        assert!(!b.has(1) && !b.has(128));
        assert_eq!(b.count(), 4);
    }

    #[test]
    fn set_is_idempotent() {
        let mut b = Bitfield::new(8);
        b.set(3);
        b.set(3);
        assert_eq!(b.count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn has_out_of_range_panics() {
        Bitfield::new(10).has(10);
    }

    #[test]
    fn union_covers_both() {
        let mut a = Bitfield::new(10);
        a.set(1);
        let mut b = Bitfield::new(10);
        b.set(7);
        a.union_with(&b);
        assert!(a.has(1) && a.has(7));
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn ones_lists_set_pieces_ascending() {
        let mut b = Bitfield::new(130);
        for p in [0, 5, 63, 64, 100, 129] {
            b.set(p);
        }
        let got: Vec<usize> = b.ones().collect();
        assert_eq!(got, vec![0, 5, 63, 64, 100, 129]);
        assert_eq!(Bitfield::new(7).ones().count(), 0);
        assert_eq!(Bitfield::full(70).ones().count(), 70);
    }

    #[test]
    fn missing_from_lists_interesting_pieces() {
        let mut me = Bitfield::new(6);
        me.set(0);
        me.set(1);
        let mut them = Bitfield::new(6);
        them.set(1);
        them.set(2);
        them.set(5);
        let missing: Vec<usize> = me.missing_from(&them).collect();
        assert_eq!(missing, vec![2, 5]);
    }

    #[test]
    fn interest_matches_missing_from() {
        let mut me = Bitfield::new(70);
        let mut them = Bitfield::new(70);
        assert!(!me.interested_in(&them));
        them.set(65);
        assert!(me.interested_in(&them));
        me.set(65);
        assert!(!me.interested_in(&them));
        assert_eq!(me.missing_from(&them).count(), 0);
    }

    #[test]
    fn seed_is_never_interested() {
        let seed = Bitfield::full(40);
        let mut leecher = Bitfield::new(40);
        leecher.set(3);
        assert!(!seed.interested_in(&leecher));
        assert!(leecher.interested_in(&seed));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn union_rejects_length_mismatch() {
        let mut a = Bitfield::new(10);
        a.union_with(&Bitfield::new(11));
    }
}
