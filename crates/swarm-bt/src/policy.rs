//! Pure protocol policy functions shared by the tick simulator and the
//! live networked runtime (`swarm-net`).
//!
//! Each function is a side-effect-free decision rule over caller-owned
//! state: the engine (and the live peer loop) supply candidate sets,
//! lookup closures and an RNG, and get back the mainline-BitTorrent
//! choice. The RNG draw sequence of every function is part of its
//! contract — `swarm-bt`'s golden-trace tests pin the exact stream, so
//! any change here that adds, removes or reorders a draw is a behavior
//! change even if the returned values look equivalent.

use rand::seq::SliceRandom;
use rand::Rng;

/// Order `interested` into unchoke priority and return how many leading
/// entries are unchoked this round.
///
/// Mainline's rechoke decision: shuffle the interested set (random
/// tie-break baseline), then — unless the uploader is the publisher,
/// which has no self-interest and unchokes uniformly at random — stably
/// sort by descending reciprocity score so ties keep their shuffled
/// order. The top `unchoke_slots` are the regular unchokes; the
/// remainder is shuffled again and `optimistic_slots` of it become
/// optimistic unchokes. The unchoked set is `interested[..returned]`.
///
/// Draw sequence: one `shuffle` over the full set, then one `shuffle`
/// over the post-regular remainder (a slice with fewer than two elements
/// draws nothing). The sort never touches the RNG.
pub fn rechoke_order<R: Rng + ?Sized>(
    interested: &mut [usize],
    uploader_is_publisher: bool,
    score_of: impl Fn(usize) -> f64,
    unchoke_slots: usize,
    optimistic_slots: usize,
    rng: &mut R,
) -> usize {
    let mut scratch = Vec::new();
    rechoke_order_with_scratch(
        interested,
        uploader_is_publisher,
        score_of,
        unchoke_slots,
        optimistic_slots,
        rng,
        &mut scratch,
    )
}

/// [`rechoke_order`] with a caller-owned scratch buffer for the score
/// sort, so per-rechoke callers (the engine runs this for every online
/// uploader every interval) pay no allocation. Same results, same RNG
/// draws.
#[allow(clippy::too_many_arguments)]
pub fn rechoke_order_with_scratch<R: Rng + ?Sized>(
    interested: &mut [usize],
    uploader_is_publisher: bool,
    score_of: impl Fn(usize) -> f64,
    unchoke_slots: usize,
    optimistic_slots: usize,
    rng: &mut R,
    scratch: &mut Vec<(f64, u32, usize)>,
) -> usize {
    interested.shuffle(rng);
    if !uploader_is_publisher {
        // Sort by descending score with ties in shuffled order. Keying
        // each element by (score, post-shuffle position) and sorting
        // unstably is exactly the stable sort of the shuffled slice:
        // positions are distinct, so the comparator is a total order
        // whose outcome no unstable sort can permute. Scores are
        // evaluated once per element rather than twice per comparison,
        // and `sort_unstable_by` never allocates (the stable sort's
        // per-call merge buffer showed up in engine profiles).
        scratch.clear();
        scratch.extend(
            interested
                .iter()
                .enumerate()
                .map(|(pos, &peer)| (score_of(peer), pos as u32, peer)),
        );
        // All-equal scores (typically all zero: nobody reciprocated this
        // window) sort to ascending position — the identity permutation
        // — so the sort and writeback can be skipped outright.
        if scratch.windows(2).any(|w| w[0].0 != w[1].0) {
            scratch.sort_unstable_by(|a, b| {
                b.0.partial_cmp(&a.0)
                    .expect("finite byte counts")
                    .then(a.1.cmp(&b.1))
            });
            for (slot, &(_, _, peer)) in interested.iter_mut().zip(scratch.iter()) {
                *slot = peer;
            }
        }
    }
    let regular = unchoke_slots.min(interested.len());
    interested[regular..].shuffle(rng);
    regular + optimistic_slots.min(interested.len() - regular)
}

/// Rarest-first piece choice over `free` by the replication count
/// `replication(piece)`, breaking ties by reservoir sampling for an
/// unbiased uniform pick among the minima.
///
/// Draw sequence: one `gen_range(0..ties)` per candidate that ties the
/// current minimum (the first holder of a new minimum draws nothing).
pub fn rarest_first<R: Rng + ?Sized>(
    free: &[usize],
    replication: impl Fn(usize) -> u32,
    rng: &mut R,
) -> Option<usize> {
    let mut best_piece = None;
    let mut best_count = u32::MAX;
    let mut ties = 0u32;
    for &p in free {
        let count = replication(p);
        if count < best_count {
            best_count = count;
            best_piece = Some(p);
            ties = 1;
        } else if count == best_count {
            // Reservoir-sample among ties for an unbiased pick.
            ties += 1;
            if rng.gen_range(0..ties) == 0 {
                best_piece = Some(p);
            }
        }
    }
    best_piece
}

/// The candidate with the most partial progress, or `None` when every
/// candidate is untouched. Resuming the most-complete orphaned partial
/// before starting a fresh piece keeps short unchoke windows from
/// littering a peer with fragments of many pieces.
///
/// Tie-break: the *last* maximum wins, matching `Iterator::max_by`.
/// No RNG involved.
pub fn most_complete_partial(free: &[usize], progress: impl Fn(usize) -> f64) -> Option<usize> {
    free.iter()
        .copied()
        .filter(|&p| progress(p) > 0.0)
        .max_by(|&a, &b| {
            progress(a)
                .partial_cmp(&progress(b))
                .expect("finite progress")
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn rechoke_orders_by_score_for_leechers() {
        let mut r = rng(7);
        let mut interested = vec![1, 2, 3, 4, 5];
        let scores = [0.0, 10.0, 50.0, 20.0, 40.0, 30.0];
        let chosen = rechoke_order(&mut interested, false, |p| scores[p], 2, 1, &mut r);
        assert_eq!(chosen, 3);
        // Regular slots are the top scorers regardless of shuffle order.
        assert_eq!(&interested[..2], &[2, 4]);
        // The optimistic slot comes from the remainder {1, 3, 5}.
        assert!([1, 3, 5].contains(&interested[2]));
    }

    #[test]
    fn rechoke_publisher_ignores_scores() {
        // With equal slots and a full shuffle, a publisher must be able to
        // unchoke a zero-score peer ahead of the top scorer sometimes.
        let scores = [0.0, 1.0, 2.0, 3.0, 4.0];
        let mut saw_low_first = false;
        for seed in 0..32 {
            let mut r = rng(seed);
            let mut interested = vec![1, 2, 3, 4];
            rechoke_order(&mut interested, true, |p| scores[p], 1, 0, &mut r);
            if interested[0] != 4 {
                saw_low_first = true;
            }
        }
        assert!(saw_low_first, "publisher rechoke should not rank by score");
    }

    #[test]
    fn rechoke_stable_ties_follow_shuffle() {
        // All-equal scores: the sort must preserve the shuffled order, so
        // two RNG clones produce identical orderings through the sort.
        let mut r1 = rng(11);
        let mut r2 = rng(11);
        let mut a = vec![1, 2, 3, 4, 5, 6];
        let mut b = a.clone();
        rechoke_order(&mut a, false, |_| 1.0, 3, 1, &mut r1);
        b.shuffle(&mut r2);
        let regular = 3;
        b[regular..].shuffle(&mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn rechoke_counts_respect_slot_caps() {
        let mut r = rng(3);
        let mut few = vec![1, 2];
        assert_eq!(rechoke_order(&mut few, false, |_| 0.0, 4, 1, &mut r), 2);
        let mut some = vec![1, 2, 3, 4, 5, 6, 7];
        assert_eq!(rechoke_order(&mut some, false, |_| 0.0, 4, 1, &mut r), 5);
        let mut empty: Vec<usize> = Vec::new();
        assert_eq!(rechoke_order(&mut empty, false, |_| 0.0, 4, 1, &mut r), 0);
    }

    #[test]
    fn rarest_first_picks_unique_minimum() {
        let mut r = rng(1);
        let counts = [5u32, 2, 9, 7];
        let free = [0, 1, 2, 3];
        assert_eq!(rarest_first(&free, |p| counts[p], &mut r), Some(1));
    }

    #[test]
    fn rarest_first_tie_break_is_roughly_uniform() {
        // Three tied minima: over many seeds each should win sometimes.
        let counts = [1u32, 1, 1, 8];
        let free = [0, 1, 2, 3];
        let mut wins = [0u32; 3];
        for seed in 0..300 {
            let mut r = rng(seed);
            let p = rarest_first(&free, |p| counts[p], &mut r).unwrap();
            assert!(p < 3, "never picks a non-minimum");
            wins[p] += 1;
        }
        for &w in &wins {
            assert!(w > 50, "tie-break skewed: {wins:?}");
        }
    }

    #[test]
    fn rarest_first_empty_is_none() {
        let mut r = rng(0);
        assert_eq!(rarest_first(&[], |_| 0, &mut r), None);
    }

    #[test]
    fn most_complete_partial_prefers_progress_and_last_max() {
        let progress = [0.0, 30.0, 80.0, 80.0, 0.0];
        let free = [0, 1, 2, 3, 4];
        // Last maximum wins (Iterator::max_by semantics).
        assert_eq!(most_complete_partial(&free, |p| progress[p]), Some(3));
        assert_eq!(most_complete_partial(&free, |_| 0.0), None);
        assert_eq!(most_complete_partial(&[], |_| 1.0), None);
    }
}
