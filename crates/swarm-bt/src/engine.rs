//! The block-level tick engine.
//!
//! Time advances in one-second ticks (the paper's instrumented client
//! logs per second). Each tick: publisher transitions, Poisson arrivals,
//! neighbor discovery (tracker + PEX), an unchoke/transfer round, piece
//! and content completions, linger expiry, and an availability check
//! (publisher online, or every piece present in the union of online
//! bitfields).
//!
//! The transfer round is a compact rendition of mainline BitTorrent:
//! uploaders rank interested neighbors by reciprocation (bytes received
//! from them on the previous tick), unchoke the top `unchoke_slots` plus
//! `optimistic_slots` random ones, and split capacity evenly; downloaders
//! pick pieces by strict priority (finish partial pieces first) then
//! rarest-first by global replication count.
//!
//! Piece replication is tracked *incrementally* by [`ReplicationIndex`]:
//! instead of recomputing a bitfield union (plus, under timelines, an
//! O(peers × pieces) holder scan) every tick, the engine updates per-piece
//! holder counts on the only events that change them — piece completions
//! and peer departures. The availability check, the rarest-first policy
//! and every timeline curve read the index in O(1) per value. Hot loops
//! reuse scratch buffers owned by the engine, so steady-state ticks do
//! not allocate.
//!
//! This is the repo's stand-in for the paper's PlanetLab testbed: it
//! reproduces the protocol-level phenomena of §4 — blocked leechers,
//! flash departures when an intermittent publisher returns, and the
//! self-sustaining transition as the bundle size K grows.

use crate::bitfield::{self, BitArena};
use crate::config::{BtConfig, BtPublisher, PieceSelection};
use crate::metrics::{BtResult, PeerSpan};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicU64, Ordering};

const PUBLISHER: usize = 0;
/// Peers below this many neighbors re-query the tracker on re-announce.
// (file-completion tracking lives on PeerSpan; see metrics.rs)
const MIN_NEIGHBORS: usize = 5;
/// Ticks between tracker re-announces.
const REANNOUNCE_INTERVAL: u64 = 30;
/// Neighbors shared per PEX gossip exchange.
const PEX_SHARE: usize = 5;
/// Window (ticks) for the flash-departure statistic.
const FLASH_WINDOW: u64 = 5;
/// Ticks a per-connection piece request survives without receiving data
/// before it times out and the piece becomes fetchable elsewhere.
const REQUEST_TIMEOUT: u64 = 60;
/// Tick-duration sampling stride: with telemetry on, one tick in this
/// many gets an `Instant` pair around it. Sampling keeps the clock-read
/// cost off the common tick (a tick is ~5-10 µs; two clock reads are
/// ~100 ns, so 1-in-16 sampling holds the timing overhead under 0.2%).
const TICK_SAMPLE: u64 = 16;
/// Gauge-timeline event stride: with telemetry on, one tick in this
/// many emits a `bt.tick` sink event (online/blocked/coverage gauges
/// plus the run ordinal) for offline timeline reconstruction by
/// `swarm-trace`. An event costs ~1 µs (ring lock + field clones), so a
/// 64-tick stride keeps the emission overhead well under 0.1%.
const TICK_EVENT_SAMPLE: u64 = 64;
/// Time-series window width in virtual ticks: the engine flushes one
/// `swarm_obs::timeseries` window per this many ticks (aligned with
/// `TICK_EVENT_SAMPLE` so the sparse event stream and the windowed
/// series share boundaries). Fast-forwarded spans flush the same
/// windows analytically, so elided and dense runs produce identical
/// series.
const TS_WINDOW: u64 = 64;
/// In-memory window bound for the engine's recorder; beyond
/// `TS_CAPACITY * TS_WINDOW` ticks the series downsamples by powers of
/// two instead of growing.
const TS_CAPACITY: usize = 512;

/// Process-wide engine-run ordinal. Telemetry events from concurrent
/// replications interleave in the flight recorder; tagging every
/// engine-scoped event with its run ordinal lets offline analysis
/// reassemble per-run streams. Monotonic, never reused; 0 means
/// "recording was off".
static RUN_SEQ: AtomicU64 = AtomicU64::new(1);

/// Cached `swarm-obs` handles for the engine's probes, resolved once at
/// engine construction *iff* recording is enabled — so the per-tick cost
/// while disabled is a single `Option` check, and while enabled it is a
/// handful of relaxed atomic stores. None of this touches the RNG: the
/// instrumented engine is tick-for-tick identical to the bare one (the
/// golden-trace test runs with probes live).
struct BtProbes {
    ticks: &'static swarm_obs::Counter,
    bytes: &'static swarm_obs::Counter,
    arrivals: &'static swarm_obs::Counter,
    completions: &'static swarm_obs::Counter,
    rechokes: &'static swarm_obs::Counter,
    unchoke_churn: &'static swarm_obs::Counter,
    blocked_ticks: &'static swarm_obs::Counter,
    avail_transitions: &'static swarm_obs::Counter,
    ticks_elided: &'static swarm_obs::Counter,
    ff_jumps: &'static swarm_obs::Counter,
    online: &'static swarm_obs::Gauge,
    blocked: &'static swarm_obs::Gauge,
    covered: &'static swarm_obs::Gauge,
    min_rep: &'static swarm_obs::Gauge,
    unchoke_pairs: &'static swarm_obs::Gauge,
    tick_ns: &'static swarm_obs::Histogram,
}

impl BtProbes {
    fn get() -> Option<BtProbes> {
        if !swarm_obs::enabled() {
            return None;
        }
        Some(BtProbes {
            ticks: swarm_obs::counter("bt.ticks"),
            bytes: swarm_obs::counter("bt.bytes_moved"),
            arrivals: swarm_obs::counter("bt.arrivals"),
            completions: swarm_obs::counter("bt.completions"),
            rechokes: swarm_obs::counter("bt.rechoke.count"),
            unchoke_churn: swarm_obs::counter("bt.rechoke.churn"),
            blocked_ticks: swarm_obs::counter("bt.leechers.blocked_ticks"),
            avail_transitions: swarm_obs::counter("bt.availability.transitions"),
            ticks_elided: swarm_obs::counter("bt.ticks_elided"),
            ff_jumps: swarm_obs::counter("bt.fastforward.jumps"),
            online: swarm_obs::gauge("bt.peers.online"),
            blocked: swarm_obs::gauge("bt.leechers.blocked"),
            covered: swarm_obs::gauge("bt.pieces.covered"),
            min_rep: swarm_obs::gauge("bt.pieces.min_replication"),
            unchoke_pairs: swarm_obs::gauge("bt.unchoke.pairs"),
            tick_ns: swarm_obs::histogram("bt.tick_ns"),
        })
    }
}

/// Window-boundary accumulator feeding the `"bt"` time series: counter
/// deltas gather in plain fields and flush into the recorder once per
/// [`TS_WINDOW`] ticks, so the per-tick cost is a few integer adds.
/// Allocated *iff* probes are (the availability latch it reads is
/// probes-maintained). Everything recorded here is virtual-tick-keyed
/// and deterministic: the dense-vs-fast-forward test diffs the series
/// byte for byte.
struct TsAcc {
    rec: swarm_obs::Recorder,
    /// First tick of the *next* window (current window is
    /// `[next_boundary - TS_WINDOW, next_boundary)`).
    next_boundary: u64,
    win_ticks: u64,
    win_arrivals: u64,
    win_completions: u64,
    win_available: u64,
    win_blocked: u64,
    win_bytes: u64,
}

impl TsAcc {
    fn new() -> TsAcc {
        TsAcc {
            rec: swarm_obs::Recorder::with_capacity(TS_WINDOW, TS_CAPACITY),
            next_boundary: TS_WINDOW,
            win_ticks: 0,
            win_arrivals: 0,
            win_completions: 0,
            win_available: 0,
            win_blocked: 0,
            win_bytes: 0,
        }
    }

    /// Flush the current window into the recorder (skipped when no tick
    /// landed in it) and advance to the next one. Zero-valued counters
    /// are dropped by the recorder itself, so a fully idle window
    /// serializes as an explicit flat record.
    fn flush_window(&mut self) {
        if self.win_ticks > 0 {
            let start = self.next_boundary - TS_WINDOW;
            self.rec.add_batch(
                start,
                &[
                    ("ticks", self.win_ticks),
                    ("arrivals", self.win_arrivals),
                    ("completions", self.win_completions),
                    ("available_ticks", self.win_available),
                    ("blocked_ticks", self.win_blocked),
                    ("bytes_moved", self.win_bytes),
                ],
            );
            self.win_ticks = 0;
            self.win_arrivals = 0;
            self.win_completions = 0;
            self.win_available = 0;
            self.win_blocked = 0;
            self.win_bytes = 0;
        }
        self.next_boundary += TS_WINDOW;
    }

    /// Replay an elided quiescent span `[from, to)`: the per-tick
    /// accounting is constant across the span, so each window gets its
    /// share analytically. Partial windows at either edge go through the
    /// accumulators (merging with dense ticks sharing the window); the
    /// whole windows between them fold straight into the recorder via
    /// [`swarm_obs::Recorder::add_span`] — one map walk per slot instead
    /// of one flush per window, with byte-identical output. Gaps never
    /// straddle the horizon, so the availability credit is
    /// all-or-nothing (mirrors `fast_forward`'s own credit).
    fn fast_forward(&mut self, from: u64, to: u64, blocked: u64, credit_available: bool) {
        let mut t = from;
        if t < to {
            // Leading partial window (or the first whole one when `t`
            // sits on a boundary).
            let bound = self.next_boundary.min(to);
            let span = bound - t;
            self.win_ticks += span;
            self.win_blocked += blocked * span;
            if credit_available {
                self.win_available += span;
            }
            t = bound;
            if t == self.next_boundary {
                self.flush_window();
            }
        }
        let bulk_end = to / TS_WINDOW * TS_WINDOW;
        if t < bulk_end {
            debug_assert_eq!(t % TS_WINDOW, 0);
            self.rec.add_span(
                t,
                bulk_end,
                &[
                    ("ticks", 1),
                    ("available_ticks", credit_available as u64),
                    ("blocked_ticks", blocked),
                ],
            );
            self.next_boundary = bulk_end + TS_WINDOW;
            t = bulk_end;
        }
        if t < to {
            // Trailing partial window stays in the accumulators until a
            // later tick crosses its boundary.
            let span = to - t;
            self.win_ticks += span;
            self.win_blocked += blocked * span;
            if credit_available {
                self.win_available += span;
            }
        }
    }
}

/// Incrementally maintained per-piece replication state over *online,
/// non-publisher* peers — the population whose bitfield union defines
/// peer-side availability (the paper's §2.2 monitors classify exactly
/// these bitmaps).
///
/// Only two events change replication: an online peer completes a piece
/// (`gain`), and an online peer goes offline (`drop_holder` — completion
/// without linger, or linger expiry). Arrivals hold nothing, departed
/// peers never return, and publisher transitions are tracked separately,
/// so none of them touch the index. Coverage, the minimum replication
/// level and the sorted-count histogram all fall out of the same
/// bookkeeping, amortized O(1) per event.
struct ReplicationIndex {
    /// Per piece: number of online non-publisher holders.
    counts: Vec<u32>,
    /// `hist[c]` = number of pieces replicated exactly `c` times.
    hist: Vec<u32>,
    /// Pieces with count > 0 (peer-side coverage).
    covered: usize,
    /// Cached minimum of `counts` — the lowest nonzero histogram bucket.
    min_count: u32,
}

impl ReplicationIndex {
    fn new(num_pieces: usize) -> Self {
        ReplicationIndex {
            counts: vec![0; num_pieces],
            hist: vec![num_pieces as u32],
            covered: 0,
            min_count: 0,
        }
    }

    /// An online peer completed `piece`.
    fn gain(&mut self, piece: usize) {
        let c = self.counts[piece] as usize;
        self.counts[piece] = (c + 1) as u32;
        self.hist[c] -= 1;
        if self.hist.len() == c + 1 {
            self.hist.push(0);
        }
        self.hist[c + 1] += 1;
        if c == 0 {
            self.covered += 1;
        }
        // The minimum only rises when its bucket empties; the scan work
        // is bounded by the total number of increments (amortized O(1)).
        while self.hist[self.min_count as usize] == 0 {
            self.min_count += 1;
        }
    }

    /// An online holder of `piece` went offline. Naive per-piece form;
    /// the engine path is the word-batched [`Self::drop_holder`], which
    /// the equivalence proptest cross-checks against this reference.
    #[cfg(test)]
    fn lose(&mut self, piece: usize) {
        let c = self.counts[piece] as usize;
        debug_assert!(c > 0, "losing a holder of an unheld piece");
        self.counts[piece] = (c - 1) as u32;
        self.hist[c] -= 1;
        self.hist[c - 1] += 1;
        if c == 1 {
            self.covered -= 1;
        }
        if ((c - 1) as u32) < self.min_count {
            self.min_count = (c - 1) as u32;
        }
    }

    /// A peer went offline: release every piece it held, word at a time.
    ///
    /// Equivalent to one [`Self::lose`] per set bit, but batched: the
    /// per-piece count/histogram/coverage updates inline into the word
    /// walk (zero words cost one compare), and the cached minimum is
    /// re-anchored once at the end instead of once per bit. The final
    /// state is identical — `lose`'s min-tracking only ever lowers
    /// `min_count` to the smallest post-decrement count, which is exactly
    /// the fold below.
    fn drop_holder(&mut self, held: &[u64]) {
        let mut min_touched = u32::MAX;
        for (wi, &word) in held.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let p = wi * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                let c = self.counts[p] as usize;
                debug_assert!(c > 0, "losing a holder of an unheld piece");
                self.counts[p] = (c - 1) as u32;
                self.hist[c] -= 1;
                self.hist[c - 1] += 1;
                if c == 1 {
                    self.covered -= 1;
                }
                min_touched = min_touched.min((c - 1) as u32);
            }
        }
        if min_touched < self.min_count {
            self.min_count = min_touched;
        }
    }

    fn min_replication(&self) -> usize {
        self.min_count as usize
    }

    /// Sorted per-piece holder counts, reconstructed from the histogram
    /// in O(pieces + max count) — the `replication_snapshots` payload.
    fn sorted_counts(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.counts.len());
        for (c, &n) in self.hist.iter().enumerate() {
            for _ in 0..n {
                out.push(c);
            }
        }
        out
    }
}

/// Struct-of-arrays peer state: every `Node` field of the old
/// array-of-structs layout hoisted into its own parallel vector, indexed
/// by peer id. The per-tick phases each touch a handful of fields for
/// many peers, so splitting the ~250-byte struct into field arrays turns
/// scattered 4-cache-line loads into dense streams over exactly the
/// bytes a phase reads. Piece bitmaps live outside this struct in the
/// engine's [`BitArena`] (one flat `u64` allocation, one row per id) and
/// partial-piece progress in a flat stride-`num_pieces` `f64` arena, for
/// the same reason.
///
/// Ids are never reused and rows are append-only; id 0 is always the
/// publisher (there is no `is_publisher` array — `i == PUBLISHER` is the
/// check).
#[derive(Default)]
struct Peers {
    online: Vec<bool>,
    upload: Vec<f64>,
    /// Cached per-peer set-bit count of the arena row: piece completions
    /// are the only writes, so seed checks never popcount.
    num_held: Vec<usize>,
    arrived: Vec<u64>,
    completed: Vec<Option<u64>>,
    departed: Vec<Option<u64>>,
    linger_until: Vec<Option<u64>>,
    counted: Vec<bool>,
    /// Per-peer `(tick, bytes received that tick)` for the download
    /// cap. Reset is lazy: a stale stamp means "nothing received this
    /// tick yet", which avoids a per-tick sweep over every node that
    /// ever arrived; pairing stamp and accumulator keeps the transfer
    /// loop's cap check to one cache line per downloader.
    recv: Vec<(u64, f64)>,
    neighbors: Vec<Vec<usize>>,
    /// Per-downloader connection rows, one per distinct uploader (see
    /// [`Conn`]). Replaces the three separate association lists the
    /// engine used to keep (`recv_prev`, `recv_cur`, `assigned`): the
    /// transfer loop touches request state and window bytes for the same
    /// `(uploader, downloader)` pair in the same breath, so a single row
    /// table means one pointer chase and one linear scan per transfer
    /// instead of two of each. Rows are bounded by the number of
    /// uploaders unchoking this peer, so linear scans beat hashing, and
    /// no reader depends on row order (the taken set is a set, uploader
    /// lookups are unique, window scoring stores per distinct peer).
    conns: Vec<Vec<Conn>>,
}

/// Sentinel for [`Conn::piece`]: no active request on this connection.
const NO_PIECE: u32 = u32::MAX;

/// State of one `uploader → downloader` connection, stored per
/// downloader. The request fields mirror the old `assigned` entries
/// `(uploader, piece, last-data tick)`: each connection works on its own
/// piece (request pipelining) — without this, every connection piles
/// onto the same partial piece and the publisher's capacity re-sends
/// content leechers already serve, starving the swarm of *new* pieces.
/// Requests idle beyond [`REQUEST_TIMEOUT`] expire (mainline's request
/// timeout), releasing the piece: expiry just clears `piece` to
/// [`NO_PIECE`], and rows that are fully dead — no active request, no
/// bytes in the previous window — are compacted away at the next window
/// roll, where dropping them is invisible to every reader.
/// The byte fields are the reciprocity windows the old `recv_cur` /
/// `recv_prev` lists kept: bytes received from `u` in the current and
/// previous rechoke window (an entry "exists" in the old sense when the
/// field is positive).
struct Conn {
    /// Uploader id; unique among this downloader's rows. `u32` rather
    /// than `usize` keeps the row at 32 bytes — two rows per cache line
    /// in the transfer loop's per-allocation row scans (peer and piece
    /// counts are nowhere near `u32::MAX`).
    u: u32,
    /// Piece the active request is for, or [`NO_PIECE`].
    piece: u32,
    /// Last tick the active request received data.
    ts: u64,
    /// Bytes received from `u` in the current rechoke window.
    cur: f64,
    /// Bytes received from `u` in the previous rechoke window.
    prev: f64,
}

impl Peers {
    fn len(&self) -> usize {
        self.online.len()
    }

    /// Append one peer row across every parallel array, returning its id.
    fn push(
        &mut self,
        online: bool,
        upload: f64,
        arrived: u64,
        completed: Option<u64>,
        counted: bool,
        num_held: usize,
    ) -> usize {
        self.online.push(online);
        self.upload.push(upload);
        self.num_held.push(num_held);
        self.arrived.push(arrived);
        self.completed.push(completed);
        self.departed.push(None);
        self.linger_until.push(None);
        self.counted.push(counted);
        self.recv.push((u64::MAX, 0.0));
        self.neighbors.push(Vec::new());
        self.conns.push(Vec::new());
        self.online.len() - 1
    }
}

/// Run one block-level simulation.
pub fn run(cfg: &BtConfig) -> BtResult {
    cfg.validate();
    BtEngine::new(cfg).run()
}

/// Run with a per-tick inspector (diagnostics; not part of the stable
/// API). The callback receives `(tick, per-peer (age, pieces_held,
/// upload, online))` every 60 ticks. Always dense — the inspector wants
/// to see every tick, so quiescent spans are not elided here.
#[doc(hidden)]
pub fn run_with_inspector(
    cfg: &BtConfig,
    mut inspect: impl FnMut(u64, &[(u64, usize, f64, bool)]),
) -> BtResult {
    cfg.validate();
    let _span = swarm_obs::span("bt.run");
    let mut engine = BtEngine::new(cfg);
    let hard_end = cfg.horizon + cfg.drain_ticks;
    for tick in 0..hard_end {
        if tick >= cfg.horizon && !engine.any_leecher_online() {
            break;
        }
        engine.tick_body(tick);
        if tick % 60 == 0 {
            let p = &engine.peers;
            let snapshot: Vec<(u64, usize, f64, bool)> = (1..p.len())
                .filter(|&i| p.online[i])
                .map(|i| (tick - p.arrived[i], p.num_held[i], p.upload[i], p.online[i]))
                .collect();
            inspect(tick, &snapshot);
        }
    }
    engine.finalize()
}

struct BtEngine<'c> {
    cfg: &'c BtConfig,
    rng: ChaCha8Rng,
    /// Struct-of-arrays peer state (see [`Peers`]).
    peers: Peers,
    /// Every peer's piece bitmap, one arena row per id.
    bits: BitArena,
    /// Per-peer "has partial progress" piece bitmap: bit `p` of row `i`
    /// is set the moment `progress[i * num_pieces + p]` first goes
    /// positive, and never cleared (completed pieces keep it, but they
    /// leave every candidate set via the held bitmap). It exists so the
    /// partial-resume scan in `pick_piece` touches only actual partials
    /// instead of reading a `progress` cell for every free candidate —
    /// the progress arena is far larger than cache and those misses
    /// dominated the non-continue pick path.
    partial_bits: BitArena,
    /// Partial bytes per piece, flat with stride `num_pieces`: peer `i`'s
    /// progress on piece `p` is `progress[i * num_pieces + p]`. (The
    /// publisher's row exists but is never read — it downloads nothing.)
    progress: Vec<f64>,
    num_pieces: usize,
    /// Precomputed `1 / arrival_rate` — the mean of the exponential
    /// inter-arrival gap, so the hot arrival loop never re-divides.
    arrival_mean: f64,
    next_arrival: f64,
    /// Next unconsumed entry of `cfg.scripted_arrivals` (always 0 for
    /// stochastic runs, where `next_arrival` drives the process).
    scripted_cursor: usize,
    next_toggle: Option<f64>,
    publisher_retired: bool,
    publisher_online_since: Option<u64>,
    result: BtResult,
    completions_total: u64,
    completions_per_tick: Vec<u64>,
    available_ticks: u64,
    /// Persistent unchoke sets in CSR layout: uploader `unchoked_from[i]`
    /// unchokes `unchoked_flat[unchoked_off[i]..unchoked_off[i + 1]]`.
    /// Rebuilt every `rechoke_interval` ticks (and when the publisher
    /// returns) with uploaders in ascending id order, so iteration is
    /// deterministic without any per-tick key sort.
    unchoked_from: Vec<usize>,
    unchoked_off: Vec<usize>,
    unchoked_flat: Vec<usize>,
    force_rechoke: bool,
    /// Super-seeding bookkeeping: how many times the publisher has begun
    /// serving each piece.
    injected: Vec<u64>,
    /// Incremental per-piece replication over online non-publisher peers.
    rep: ReplicationIndex,
    /// Ids of the peers with `online == true`, maintained at the six
    /// membership-flip sites (arrival, departure, drain, publisher
    /// toggle/retire). The quiescence detector's no-op proofs scan this
    /// instead of every node that ever existed: `Node` is large, the
    /// population only grows, and in the idle regimes worth eliding the
    /// online subset is a sliver of it. Unordered — every reader takes a
    /// minimum or an any(), so iteration order cannot leak into results.
    online_ids: Vec<usize>,
    // --- reusable scratch (cleared before use; steady-state ticks do not
    //     allocate once these are warm) ----------------------------------
    /// Online node ids, ascending.
    scratch_online: Vec<usize>,
    /// Tracker candidates / PEX share lists.
    scratch_ids: Vec<usize>,
    /// PEX online-neighbor lists / re-announce lonely lists.
    scratch_nb: Vec<usize>,
    /// Interested downloaders of the uploader being rechoked.
    scratch_interested: Vec<usize>,
    /// Planned `(uploader, downloader, rate)` transfers for the tick.
    /// `(uploader, downloader, rate)` — ids as `u32` so a row is 16
    /// bytes and the per-tick Fisher-Yates shuffle moves less memory.
    scratch_alloc: Vec<(u32, u32, f64)>,
    /// Free (not already requested) candidate pieces in `pick_piece`.
    scratch_free: Vec<usize>,
    /// Peers whose download finished this tick.
    scratch_complete: Vec<usize>,
    /// Reused key buffer for the rechoke score sort.
    scratch_rechoke: Vec<(f64, u32, usize)>,
    /// Pieces requested on the downloader's *other* connections, as a
    /// packed word bitmap (one arena stride wide) rebuilt per
    /// `pick_piece` enumeration — so the candidate walk is a pure word
    /// expression `theirs & !mine & !taken`.
    taken_words: Vec<u64>,
    /// Per-node reciprocity scores for the rechoke sort, stamp-cleared.
    score: Vec<f64>,
    score_stamp: Vec<u64>,
    score_gen: u64,
    // --- observability (see `BtProbes`) ---------------------------------
    /// Cached metric handles; `None` while recording is disabled.
    probes: Option<BtProbes>,
    /// Window accumulator for the `"bt"` time series; lives exactly as
    /// long as `probes` does.
    ts: Option<TsAcc>,
    /// This run's ordinal from [`RUN_SEQ`] (0 while recording is off),
    /// attached to every engine-scoped sink event.
    run_ord: u64,
    /// Online non-publisher peers (incremental; includes lingering seeds).
    online_nonpub: usize,
    /// Online peers that completed and are lingering as seeds.
    lingering_online: usize,
    /// Bytes moved / distinct receivers in the current tick (written by
    /// `transfer_round`, read by `record_tick_metrics`).
    tick_bytes: f64,
    tick_receivers: usize,
    /// Availability latch for sparse transition events.
    last_available: Option<bool>,
    /// Sorted `(uploader << 32) | downloader` unchoke pairs from the
    /// previous rechoke, for churn accounting (probes-gated).
    unchoke_pairs_prev: Vec<u64>,
    unchoke_pairs_cur: Vec<u64>,
}

impl<'c> BtEngine<'c> {
    fn new(cfg: &'c BtConfig) -> Self {
        let num_pieces = cfg.num_pieces();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let initially_on = match cfg.publisher {
            BtPublisher::AlwaysOn | BtPublisher::UntilFirstCompletion => true,
            BtPublisher::OnOff { initially_on, .. }
            | BtPublisher::Periodic { initially_on, .. } => initially_on,
        };
        let mut peers = Peers::default();
        peers.push(
            initially_on,
            cfg.publisher_capacity,
            0,
            Some(0),
            false,
            num_pieces,
        );
        let mut bits = BitArena::new(num_pieces);
        bits.push_full_row();
        let mut partial_bits = BitArena::new(num_pieces);
        partial_bits.push_row();
        let bits_words = bits.words_per_row();
        let arrival_mean = 1.0 / cfg.arrival_rate;
        // Scripted runs drive arrivals off the schedule cursor alone; the
        // stochastic path (and its RNG draw here) is untouched when the
        // script is absent, keeping golden traces bit-identical.
        let next_arrival = if cfg.scripted_arrivals.is_some() {
            f64::INFINITY
        } else {
            exp_sample(&mut rng, arrival_mean)
        };
        let next_toggle = match cfg.publisher {
            BtPublisher::OnOff {
                on_mean, off_mean, ..
            } => Some(exp_sample(
                &mut rng,
                if initially_on { on_mean } else { off_mean },
            )),
            BtPublisher::Periodic {
                on_ticks,
                off_ticks,
                ..
            } => Some(if initially_on { on_ticks } else { off_ticks } as f64),
            _ => None,
        };
        let probes = BtProbes::get();
        // Process-wide run ordinal: replication seeds collide across
        // sweep points (`seed.wrapping_add(i)`), so trace analysis keys
        // every engine-scoped event on this ordinal instead. Allocated
        // only while recording, so uninstrumented runs stay untouched.
        let run_ord = if probes.is_some() {
            RUN_SEQ.fetch_add(1, Ordering::Relaxed)
        } else {
            0
        };
        if probes.is_some() {
            let (publisher_kind, on_mean, off_mean) = match cfg.publisher {
                BtPublisher::AlwaysOn => ("always_on", 0.0, 0.0),
                BtPublisher::UntilFirstCompletion => ("until_first_completion", 0.0, 0.0),
                BtPublisher::Periodic {
                    on_ticks,
                    off_ticks,
                    ..
                } => ("periodic", on_ticks as f64, off_ticks as f64),
                BtPublisher::OnOff {
                    on_mean, off_mean, ..
                } => ("on_off", on_mean, off_mean),
            };
            swarm_obs::emit(
                "bt.run.start",
                &[
                    ("run", swarm_obs::val(run_ord)),
                    ("k", swarm_obs::val(cfg.num_files as u64)),
                    ("file_size", swarm_obs::val(cfg.file_size)),
                    ("pieces", swarm_obs::val(num_pieces as u64)),
                    ("arrival_rate", swarm_obs::val(cfg.arrival_rate)),
                    ("horizon", swarm_obs::val(cfg.horizon)),
                    ("drain_ticks", swarm_obs::val(cfg.drain_ticks)),
                    ("seed", swarm_obs::val(cfg.seed)),
                    ("publisher", swarm_obs::val(publisher_kind)),
                    ("on_mean", swarm_obs::val(on_mean)),
                    ("off_mean", swarm_obs::val(off_mean)),
                    ("linger_mean", swarm_obs::val(cfg.linger_mean)),
                    // Effective per-peer service rate for the M/G/inf
                    // model mapping (mu), with the download cap applied.
                    (
                        "peer_upload_mean",
                        swarm_obs::val(cfg.peer_capacity.mean_capped(cfg.download_cap)),
                    ),
                ],
            );
        }
        BtEngine {
            cfg,
            rng,
            peers,
            bits,
            partial_bits,
            progress: vec![0.0; num_pieces],
            num_pieces,
            arrival_mean,
            next_arrival,
            scripted_cursor: 0,
            next_toggle,
            publisher_retired: false,
            publisher_online_since: initially_on.then_some(0),
            result: BtResult::default(),
            completions_total: 0,
            completions_per_tick: vec![0; (cfg.horizon + cfg.drain_ticks) as usize],
            available_ticks: 0,
            unchoked_from: Vec::new(),
            unchoked_off: Vec::new(),
            unchoked_flat: Vec::new(),
            force_rechoke: true,
            injected: vec![0; num_pieces],
            rep: ReplicationIndex::new(num_pieces),
            online_ids: if initially_on {
                vec![PUBLISHER]
            } else {
                Vec::new()
            },
            scratch_online: Vec::new(),
            scratch_ids: Vec::new(),
            scratch_nb: Vec::new(),
            scratch_interested: Vec::new(),
            scratch_alloc: Vec::new(),
            scratch_free: Vec::new(),
            scratch_complete: Vec::new(),
            scratch_rechoke: Vec::new(),
            taken_words: vec![0; bits_words],
            score: Vec::new(),
            score_stamp: Vec::new(),
            score_gen: 0,
            ts: (probes.is_some() && swarm_obs::series_active()).then(TsAcc::new),
            probes,
            run_ord,
            online_nonpub: 0,
            lingering_online: 0,
            tick_bytes: 0.0,
            tick_receivers: 0,
            last_available: None,
            unchoke_pairs_prev: Vec::new(),
            unchoke_pairs_cur: Vec::new(),
        }
    }

    fn run(mut self) -> BtResult {
        let _span = swarm_obs::span("bt.run");
        let hard_end = self.cfg.horizon + self.cfg.drain_ticks;
        let fast_forward = !self.cfg.disable_fast_forward;
        let mut tick = 0u64;
        while tick < hard_end {
            // Past the horizon we only drain: no new arrivals, and once no
            // leecher is left in flight the run is over.
            if tick >= self.cfg.horizon && !self.any_leecher_online() {
                break;
            }
            self.tick_body(tick);
            tick += 1;
            if fast_forward && tick < hard_end {
                if let Some(wake) = self.quiescent_wake(tick, hard_end) {
                    self.fast_forward(tick, wake);
                    tick = wake;
                }
            }
        }
        self.finalize()
    }

    /// One dense tick: every per-tick phase, in the order the engine has
    /// always run them. Shared by [`run`] and [`run_with_inspector`].
    fn tick_body(&mut self, tick: u64) {
        let t0 = self.tick_clock(tick);
        self.publisher_transitions(tick);
        if tick < self.cfg.horizon {
            self.arrivals(tick);
        }
        if tick.is_multiple_of(REANNOUNCE_INTERVAL) && tick > 0 {
            self.reannounce();
        }
        if self.cfg.pex_interval > 0 && tick > 0 && tick.is_multiple_of(self.cfg.pex_interval) {
            self.pex_round();
        }
        if self.force_rechoke || tick.is_multiple_of(self.cfg.rechoke_interval) {
            self.rechoke();
            self.force_rechoke = false;
        }
        self.transfer_round(tick);
        self.linger_expiry(tick);
        self.availability_check(tick);
        self.record_tick_metrics(tick, t0);
    }

    // --- observability ---------------------------------------------------

    /// Start the per-tick clock on sampled ticks. `None` when probes are
    /// off or the tick is unsampled, so the common path reads no clock.
    #[inline]
    fn tick_clock(&self, tick: u64) -> Option<std::time::Instant> {
        if self.probes.is_some() && tick.is_multiple_of(TICK_SAMPLE) {
            Some(std::time::Instant::now())
        } else {
            None
        }
    }

    /// Publish the per-tick gauges/counters. A no-op (one branch) while
    /// recording is disabled.
    #[inline]
    fn record_tick_metrics(&mut self, tick: u64, t0: Option<std::time::Instant>) {
        let Some(p) = &self.probes else { return };
        p.ticks.inc();
        p.bytes.add(self.tick_bytes.round() as u64);
        let publisher_on = usize::from(self.peers.online[PUBLISHER]);
        p.online.set((self.online_nonpub + publisher_on) as i64);
        p.covered.set(self.rep.covered as i64);
        p.min_rep.set(self.rep.min_replication() as i64);
        // Blocked leechers: online, not yet complete, received nothing
        // this tick. Completions mid-tick can make receivers exceed the
        // end-of-tick leecher count, hence the saturation.
        let leechers = self.online_nonpub - self.lingering_online;
        let blocked = leechers.saturating_sub(self.tick_receivers);
        p.blocked.set(blocked as i64);
        p.blocked_ticks.add(blocked as u64);
        if let Some(t0) = t0 {
            p.tick_ns.record_duration(t0.elapsed());
        }
        // Windowed time series: same quantities as the probes, but
        // bucketed at TS_WINDOW boundaries instead of run-total.
        if let Some(ts) = &mut self.ts {
            ts.win_ticks += 1;
            ts.win_bytes += self.tick_bytes.round() as u64;
            ts.win_blocked += blocked as u64;
            if self.last_available == Some(true) && tick < self.cfg.horizon {
                ts.win_available += 1;
            }
            if tick + 1 == ts.next_boundary {
                ts.flush_window();
            }
        }
        // Sparse tick stream for trace analysis: gauges above are
        // last-write-wins, so timelines need periodic samples. Strided
        // to stay under the CI overhead guard.
        if tick.is_multiple_of(TICK_EVENT_SAMPLE) {
            swarm_obs::emit(
                "bt.tick",
                &[
                    ("run", swarm_obs::val(self.run_ord)),
                    ("tick", swarm_obs::val(tick)),
                    (
                        "online",
                        swarm_obs::val((self.online_nonpub + publisher_on) as u64),
                    ),
                    ("blocked", swarm_obs::val(blocked as u64)),
                    ("covered", swarm_obs::val(self.rep.covered as u64)),
                    (
                        "min_replication",
                        swarm_obs::val(self.rep.min_replication() as u64),
                    ),
                    ("publisher_on", swarm_obs::val(self.peers.online[PUBLISHER])),
                ],
            );
        }
    }

    /// Unchoke-set churn accounting, called from `rechoke` only while
    /// probes are live: counts `(uploader, downloader)` pairs absent
    /// from the previous unchoke table.
    fn record_rechoke_metrics(&mut self) {
        let mut cur = std::mem::take(&mut self.unchoke_pairs_cur);
        cur.clear();
        for i in 0..self.unchoked_from.len() {
            let u = (self.unchoked_from[i] as u64) << 32;
            for &d in &self.unchoked_flat[self.unchoked_off[i]..self.unchoked_off[i + 1]] {
                cur.push(u | d as u64);
            }
        }
        cur.sort_unstable();
        let prev = &self.unchoke_pairs_prev;
        let (mut i, mut j) = (0, 0);
        let mut fresh = 0u64;
        while i < cur.len() {
            if j >= prev.len() || cur[i] < prev[j] {
                fresh += 1;
                i += 1;
            } else if cur[i] == prev[j] {
                i += 1;
                j += 1;
            } else {
                j += 1;
            }
        }
        std::mem::swap(&mut self.unchoke_pairs_prev, &mut cur);
        self.unchoke_pairs_cur = cur;
        if let Some(p) = &self.probes {
            p.rechokes.inc();
            p.unchoke_churn.add(fresh);
            p.unchoke_pairs.set(self.unchoke_pairs_prev.len() as i64);
        }
    }

    // --- quiescence fast-forward -----------------------------------------
    //
    // The paper's headline regimes are mostly idle: with a highly
    // unavailable publisher the swarm spends the bulk of simulated time
    // with no peer online, or with only blocked leechers that hold
    // identical pieces and nothing to exchange. Executing those ticks
    // densely costs a full phase sweep each for provably zero effect.
    // When the engine can prove every tick in `[from, wake)` would be a
    // no-op — on the RNG stream as well as on engine state — it jumps the
    // clock straight to `wake`, the earliest tick at which anything can
    // happen, and `fast_forward` replays the per-tick accounting the
    // dense loop would have produced, exactly.
    //
    // Invariants the detector relies on (expanded in DESIGN.md):
    //
    // * A quiescent tick consumes no RNG. `shuffle` draws nothing for
    //   slices shorter than two and `choose` draws nothing from an empty
    //   slice, so a tick whose phases all degenerate to those leaves the
    //   ChaCha stream bit-identical to the dense loop's.
    // * State is frozen across the gap. No transfer means no bitfield,
    //   progress, replication, membership or reciprocity change, so a
    //   phase proven no-op at `from` stays no-op until the next event.
    // * Every state change is anchored to a schedulable event: the next
    //   Poisson arrival, publisher toggle, request-timeout expiry,
    //   linger end, the next rechoke/PEX/re-announce boundary with live
    //   work, or the horizon/drain boundary. `quiescent_wake` takes the
    //   minimum over all of them.

    /// The first tick ≥ `from` at which a non-elidable event can fire,
    /// or `None` when tick `from` itself must be executed densely.
    fn quiescent_wake(&self, from: u64, hard_end: u64) -> Option<u64> {
        // The detector's proofs quantify over online peers only, via the
        // maintained id list; in debug builds, verify it against the
        // per-node flags it mirrors.
        debug_assert_eq!(
            self.online_ids.len(),
            self.peers.online.iter().filter(|&&o| o).count(),
            "online_ids out of sync with per-peer flags"
        );
        // The dense loop's drain break-check fires at `from`; let it.
        if from >= self.cfg.horizon && !self.any_leecher_online() {
            return None;
        }
        // Cheap disqualifiers first: a swarm that moved bytes last tick
        // (or owes a forced rechoke) pays only these two compares.
        if self.force_rechoke || self.tick_bytes > 0.0 {
            return None;
        }
        if !self.transfer_is_noop() {
            return None;
        }
        let mut wake = hard_end;
        if from < self.cfg.horizon {
            // The horizon is a semantic boundary — arrivals stop, the
            // drain break-check arms, availability credit ends — so a
            // jump never crosses it.
            wake = wake.min(self.cfg.horizon);
            match &self.cfg.scripted_arrivals {
                // Scripted arrivals fire exactly at their listed ticks;
                // entries at or before the current tick were consumed by
                // the dense tick that just ran.
                Some(script) => {
                    if let Some(&(t, _)) = script.get(self.scripted_cursor) {
                        wake = wake.min(t);
                    }
                }
                // Arrivals fire at the first tick with `next_arrival <= t`.
                None => wake = wake.min(self.next_arrival.ceil() as u64),
            }
        }
        if let Some(t) = self.next_toggle {
            wake = wake.min(t.ceil() as u64);
        }
        for &i in &self.online_ids {
            // Request-timeout expiries prune per-connection state. Only
            // live requests schedule a wake: a row whose request already
            // aged out (`ts + TIMEOUT <= from`) is exactly one the old
            // eager sweep would have removed by now.
            for c in &self.peers.conns[i] {
                if c.piece != NO_PIECE && c.ts + REQUEST_TIMEOUT > from {
                    wake = wake.min(c.ts + REQUEST_TIMEOUT);
                }
            }
            // A lingering seed departs when its linger runs out.
            if let Some(until) = self.peers.linger_until[i] {
                wake = wake.min(until);
            }
        }
        if !self.rechoke_noop() {
            wake = wake.min(next_multiple(from, self.cfg.rechoke_interval));
        }
        if self.cfg.pex_interval > 0 && !self.pex_noop() {
            wake = wake.min(next_multiple(from, self.cfg.pex_interval));
        }
        if !self.reannounce_noop() {
            wake = wake.min(next_multiple(from, REANNOUNCE_INTERVAL));
        }
        (wake > from).then_some(wake)
    }

    /// Would `transfer_round` plan zero allocations? Mirrors the plan
    /// loop's liveness filter over the persistent unchoke table. With no
    /// live pair the round shuffles an empty vector (no RNG), moves no
    /// bytes and completes nobody. Liveness can only change through a
    /// transfer or a membership event, so a dead table stays dead for
    /// the whole gap.
    fn transfer_is_noop(&self) -> bool {
        for i in 0..self.unchoked_from.len() {
            let u = self.unchoked_from[i];
            if !self.peers.online[u] || self.peers.num_held[u] == 0 {
                continue;
            }
            for &d in &self.unchoked_flat[self.unchoked_off[i]..self.unchoked_off[i + 1]] {
                if self.peers.online[d]
                    && !self.is_seed(d)
                    && bitfield::any_and_not(self.bits.row(u), self.bits.row(d))
                {
                    return false;
                }
            }
        }
        true
    }

    /// Would a rechoke at a boundary inside the gap change nothing?
    /// Unlike [`transfer_is_noop`] this scans *all* neighbors (rechoke
    /// rebuilds the table from scratch): any interested live pair means
    /// a shuffle (RNG) and a fresh unchoke set. The reciprocity windows
    /// of online peers must be empty, or the swap/clear a dense rechoke
    /// performs would be observable at the next scoring pass. With
    /// probes live, a leftover previous unchoke-pair set would be
    /// swapped by churn accounting, so it must be empty too — then the
    /// only dense effect left is the `bt.rechoke.count` increment,
    /// which [`fast_forward`] replays.
    fn rechoke_noop(&self) -> bool {
        if self.probes.is_some() && !self.unchoke_pairs_prev.is_empty() {
            return false;
        }
        for &i in &self.online_ids {
            // "Window non-empty" in the old association-list sense: any
            // row carrying bytes (entries were only ever created with
            // positive byte counts).
            if self.peers.conns[i]
                .iter()
                .any(|c| c.prev > 0.0 || c.cur > 0.0)
            {
                return false;
            }
            if self.peers.num_held[i] == 0 {
                continue;
            }
            for &d in &self.peers.neighbors[i] {
                if self.peers.online[d]
                    && d != PUBLISHER
                    && !self.is_seed(d)
                    && bitfield::any_and_not(self.bits.row(i), self.bits.row(d))
                {
                    return false;
                }
            }
        }
        true
    }

    /// Would a PEX round inside the gap change nothing? A gossiping peer
    /// with at least one online neighbor draws a partner (`choose` on a
    /// non-empty slice consumes RNG), so PEX is only elidable when every
    /// online non-publisher is fully isolated.
    fn pex_noop(&self) -> bool {
        for &i in &self.online_ids {
            if i != PUBLISHER && self.active_neighbor_count(i) > 0 {
                return false;
            }
        }
        true
    }

    /// Would a re-announce inside the gap change nothing? A lonely
    /// online peer would re-query the tracker (RNG draws, new edges).
    /// The prune pass needs care: dropping an offline-but-returnable
    /// publisher from a live neighbor list is observable once the
    /// publisher comes back, so that prune must run densely. Entries
    /// for departed leechers are inert — they never reactivate and
    /// every neighbor-list reader filters on `active` — so pruning
    /// them can wait for the next dense re-announce.
    fn reannounce_noop(&self) -> bool {
        let prune_pending = matches!(
            self.cfg.publisher,
            BtPublisher::OnOff { .. } | BtPublisher::Periodic { .. }
        ) && !self.peers.online[PUBLISHER];
        for &i in &self.online_ids {
            if i != PUBLISHER && self.active_neighbor_count(i) < MIN_NEIGHBORS {
                return false;
            }
            if prune_pending && self.peers.neighbors[i].contains(&PUBLISHER) {
                return false;
            }
        }
        true
    }

    /// Jump the clock across the provably quiescent span `[from, to)`,
    /// replaying exactly the accounting the dense loop would have
    /// produced: availability credit, flat timeline-curve points, the
    /// per-tick counters and gauges, the counter effect of boundary
    /// no-op rechokes, and the strided `bt.tick` events `swarm-trace`
    /// reconstructs timelines from.
    fn fast_forward(&mut self, from: u64, to: u64) {
        let elided = to - from;
        let available = self.peers.online[PUBLISHER] || self.rep.covered == self.num_pieces;
        if available {
            // Gaps never straddle the horizon (`quiescent_wake` caps
            // there), so the whole span earns credit or none of it does.
            if from < self.cfg.horizon {
                self.available_ticks += elided;
            }
            self.result.last_available_tick = Some(to - 1);
        }
        if self.cfg.record_timeline {
            // The curves are defined on the dense tick grid; the elided
            // span contributes flat segments.
            let covered = self.rep.covered;
            let min_rep = self.rep.min_replication();
            for t in from..to {
                self.result.aggregate_rate_curve.push((t, 0.0));
                self.result.peer_coverage_curve.push((t, covered));
                self.result.min_replication_curve.push((t, min_rep));
                if t.is_multiple_of(60) {
                    self.result
                        .replication_snapshots
                        .push((t, self.rep.sorted_counts()));
                }
            }
        }
        let Some(p) = &self.probes else { return };
        p.ticks_elided.add(elided);
        p.ff_jumps.inc();
        p.ticks.add(elided);
        let publisher_on = usize::from(self.peers.online[PUBLISHER]);
        p.online.set((self.online_nonpub + publisher_on) as i64);
        p.covered.set(self.rep.covered as i64);
        p.min_rep.set(self.rep.min_replication() as i64);
        // No receiver in a quiescent span: every online leecher counts
        // as blocked, exactly as the dense loop would have scored it.
        let blocked = self.online_nonpub - self.lingering_online;
        p.blocked.set(blocked as i64);
        p.blocked_ticks.add(blocked as u64 * elided);
        // Rechoke boundaries inside the gap were metrics-only no-ops
        // (`rechoke_noop` holds, or the wake was capped before the first
        // boundary); replay their counter effects.
        let rechokes = count_multiples(from, to, self.cfg.rechoke_interval);
        if rechokes > 0 {
            p.rechokes.add(rechokes);
            p.unchoke_pairs.set(0);
        }
        // Replay the windowed series for the elided span: same per-tick
        // quantities the dense loop would have accumulated (no bytes
        // move and nobody arrives or completes in a quiescent span, so
        // those stay zero — the skipped windows flush as explicit flat
        // records).
        let credit_available = available && from < self.cfg.horizon;
        if let Some(ts) = &mut self.ts {
            ts.fast_forward(from, to, blocked as u64, credit_available);
        }
        // The strided tick events, with payloads identical to the ones
        // the dense loop would have emitted at the same ticks.
        let mut t = next_multiple(from, TICK_EVENT_SAMPLE);
        while t < to {
            swarm_obs::emit(
                "bt.tick",
                &[
                    ("run", swarm_obs::val(self.run_ord)),
                    ("tick", swarm_obs::val(t)),
                    (
                        "online",
                        swarm_obs::val((self.online_nonpub + publisher_on) as u64),
                    ),
                    ("blocked", swarm_obs::val(blocked as u64)),
                    ("covered", swarm_obs::val(self.rep.covered as u64)),
                    (
                        "min_replication",
                        swarm_obs::val(self.rep.min_replication() as u64),
                    ),
                    ("publisher_on", swarm_obs::val(self.peers.online[PUBLISHER])),
                ],
            );
            t += TICK_EVENT_SAMPLE;
        }
    }

    // --- membership -----------------------------------------------------

    fn any_leecher_online(&self) -> bool {
        // Peers never depart before completing and every completion is
        // counted exactly once, so "a leecher is still online" reduces to
        // a counter comparison instead of a peer scan.
        (self.peers.len() - 1) as u64 > self.completions_total
    }

    /// Does peer `i` hold every piece? Reads the cached held-count array,
    /// never the bitmap.
    #[inline]
    fn is_seed(&self, i: usize) -> bool {
        self.peers.num_held[i] == self.num_pieces
    }

    /// Refresh `scratch_online` with the online node ids, ascending.
    fn fill_online(&mut self) {
        // Ascending id order is load-bearing: callers draw from the RNG
        // per entry, so the order is part of the observable stream.
        // `online_ids` holds exactly the active set but unordered — a
        // sorted copy beats rescanning every node that ever arrived.
        self.scratch_online.clear();
        self.scratch_online.extend_from_slice(&self.online_ids);
        self.scratch_online.sort_unstable();
    }

    fn active_neighbor_count(&self, i: usize) -> usize {
        self.peers.neighbors[i]
            .iter()
            .filter(|&&n| self.peers.online[n])
            .count()
    }

    fn connect(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        // Capacity counts *live* connections only: departed peers drop
        // their TCP connections, freeing slots for newcomers.
        if self.active_neighbor_count(a) < self.cfg.max_neighbors
            && self.active_neighbor_count(b) < self.cfg.max_neighbors
            && !self.peers.neighbors[a].contains(&b)
        {
            self.peers.neighbors[a].push(b);
            self.peers.neighbors[b].push(a);
        }
    }

    fn tracker_join(&mut self, joiner: usize) {
        let mut candidates = std::mem::take(&mut self.scratch_ids);
        candidates.clear();
        for i in 0..self.peers.len() {
            if i != joiner && self.peers.online[i] {
                candidates.push(i);
            }
        }
        candidates.shuffle(&mut self.rng);
        candidates.truncate(self.cfg.tracker_response);
        for &c in &candidates {
            self.connect(joiner, c);
        }
        self.scratch_ids = candidates;
    }

    fn arrivals(&mut self, tick: u64) {
        // `cfg` is a shared borrow with its own lifetime, so reading the
        // script does not freeze `self` for the `spawn_peer` calls below.
        let cfg = self.cfg;
        if let Some(script) = &cfg.scripted_arrivals {
            // Scripted schedule: consume every entry due at this tick.
            // No arrival-time or capacity draws — the only RNG use is the
            // tracker join inside `spawn_peer`, same as stochastic mode.
            while self.scripted_cursor < script.len() && script[self.scripted_cursor].0 <= tick {
                let upload = script[self.scripted_cursor].1;
                self.scripted_cursor += 1;
                self.spawn_peer(tick, upload);
            }
            return;
        }
        while self.next_arrival <= tick as f64 {
            self.next_arrival += exp_sample(&mut self.rng, self.arrival_mean);
            let upload = self.cfg.peer_capacity.sample(&mut self.rng);
            self.spawn_peer(tick, upload);
        }
    }

    /// Admit one leecher with the given upload capacity: peer-array row,
    /// bitmap arena row, active-set bookkeeping, probes, and the tracker
    /// join (which draws from the RNG). Shared by the stochastic and
    /// scripted arrival paths.
    fn spawn_peer(&mut self, tick: u64, upload: f64) {
        let counted = tick >= self.cfg.warmup;
        if counted {
            self.result.arrivals += 1;
        }
        let id = self.peers.push(true, upload, tick, None, counted, 0);
        let row = self.bits.push_row();
        debug_assert_eq!(row, id, "bitmap arena row out of sync with peer id");
        self.partial_bits.push_row();
        self.progress
            .resize(self.progress.len() + self.num_pieces, 0.0);
        self.online_ids.push(id);
        self.online_nonpub += 1;
        if let Some(p) = &self.probes {
            p.arrivals.inc();
        }
        // Same semantics as the probe: every arrival counts, warmup
        // included, so the window sums reconcile with `bt.arrivals`.
        if let Some(ts) = &mut self.ts {
            ts.win_arrivals += 1;
        }
        self.tracker_join(id);
    }

    fn reannounce(&mut self) {
        // Drop connections to departed peers (in place: peers keep their
        // neighbor-list allocations), then let under-connected peers
        // query the tracker again. Only online peers' lists need the
        // prune: an offline node's list is read solely through
        // active-filtered views (`active_neighbor_count`, rechoke/PEX
        // candidate scans) and `connect`'s duplicate check, none of
        // which can observe a stale entry for a departed peer — ids are
        // never reused. The publisher prunes on its next online round.
        for idx in 0..self.online_ids.len() {
            let i = self.online_ids[idx];
            let mut neighbors = std::mem::take(&mut self.peers.neighbors[i]);
            neighbors.retain(|&n| self.peers.online[n]);
            self.peers.neighbors[i] = neighbors;
        }
        // Ascending-id scan, not `online_ids`: each lonely peer's
        // tracker query draws from the RNG, so the query order is part
        // of the observable stream and `online_ids` is unordered.
        let mut lonely = std::mem::take(&mut self.scratch_nb);
        lonely.clear();
        for i in 1..self.peers.len() {
            if self.peers.online[i] && self.active_neighbor_count(i) < MIN_NEIGHBORS {
                lonely.push(i);
            }
        }
        for &l in &lonely {
            self.tracker_join(l);
        }
        self.scratch_nb = lonely;
    }

    fn pex_round(&mut self) {
        // Each online peer gossips with one random online neighbor and
        // learns up to PEX_SHARE of its neighbors.
        self.fill_online();
        for oi in 0..self.scratch_online.len() {
            let id = self.scratch_online[oi];
            if id == PUBLISHER {
                continue;
            }
            let mut online_neighbors = std::mem::take(&mut self.scratch_nb);
            online_neighbors.clear();
            for &n in &self.peers.neighbors[id] {
                if self.peers.online[n] {
                    online_neighbors.push(n);
                }
            }
            let partner = online_neighbors.choose(&mut self.rng).copied();
            self.scratch_nb = online_neighbors;
            let Some(partner) = partner else {
                continue;
            };
            let mut shared = std::mem::take(&mut self.scratch_ids);
            shared.clear();
            for &n in &self.peers.neighbors[partner] {
                if n != id && self.peers.online[n] {
                    shared.push(n);
                }
            }
            shared.shuffle(&mut self.rng);
            shared.truncate(PEX_SHARE);
            for &s in &shared {
                self.connect(id, s);
            }
            self.scratch_ids = shared;
        }
    }

    // --- publisher ------------------------------------------------------

    fn publisher_transitions(&mut self, tick: u64) {
        match self.cfg.publisher {
            BtPublisher::OnOff { .. } | BtPublisher::Periodic { .. } => {}
            _ => return,
        }
        while let Some(t) = self.next_toggle {
            if t > tick as f64 {
                break;
            }
            let was_online = self.peers.online[PUBLISHER];
            // Dwell of the phase being entered. OnOff draws here in the
            // exact order the stochastic engine always has; Periodic is
            // RNG-free by design.
            let dwell = match self.cfg.publisher {
                BtPublisher::OnOff {
                    on_mean, off_mean, ..
                } => exp_sample(&mut self.rng, if was_online { off_mean } else { on_mean }),
                BtPublisher::Periodic {
                    on_ticks,
                    off_ticks,
                    ..
                } => (if was_online { off_ticks } else { on_ticks }) as f64,
                _ => unreachable!("matched above"),
            };
            self.next_toggle = Some(t + dwell);
            if was_online {
                self.peers.online[PUBLISHER] = false;
                self.online_ids.retain(|&i| i != PUBLISHER);
                if let Some(since) = self.publisher_online_since.take() {
                    self.result.publisher_intervals.push((since, tick));
                }
            } else {
                self.peers.online[PUBLISHER] = true;
                self.online_ids.push(PUBLISHER);
                self.publisher_online_since = Some(tick);
                // Returning publisher re-announces and reconnects.
                self.tracker_join(PUBLISHER);
                self.force_rechoke = true;
            }
        }
    }

    fn retire_publisher(&mut self, tick: u64) {
        self.publisher_retired = true;
        self.peers.online[PUBLISHER] = false;
        self.online_ids.retain(|&i| i != PUBLISHER);
        self.peers.departed[PUBLISHER] = Some(tick);
        if let Some(since) = self.publisher_online_since.take() {
            self.result.publisher_intervals.push((since, tick));
        }
    }

    // --- transfers ------------------------------------------------------

    /// Rebuild unchoke sets from reciprocity accumulated since the last
    /// rechoke. Unchoke decisions persist until the next rechoke, giving
    /// each unchoked peer a sustained stream (mainline behavior; without
    /// persistence a publisher facing many stuck peers hands every peer an
    /// epsilon of capacity and nobody ever finishes a piece).
    fn rechoke(&mut self) {
        // Only online peers need the window roll: departed leechers never
        // come back (their windows are never read again) and the
        // publisher — the one peer that can re-join — never receives
        // bytes, so its windows are always empty.
        for idx in 0..self.online_ids.len() {
            let i = self.online_ids[idx];
            // Roll the reciprocity windows and compact: a row with no
            // active request and no bytes entering the scoring window is
            // invisible to every reader, so this is the one place rows
            // are dropped.
            self.peers.conns[i].retain_mut(|c| {
                c.prev = c.cur;
                c.cur = 0.0;
                c.piece != NO_PIECE || c.prev > 0.0
            });
        }
        self.unchoked_from.clear();
        self.unchoked_off.clear();
        self.unchoked_flat.clear();
        if self.score.len() < self.peers.len() {
            self.score.resize(self.peers.len(), 0.0);
            self.score_stamp.resize(self.peers.len(), 0);
        }
        self.fill_online();
        let mut interested = std::mem::take(&mut self.scratch_interested);
        for oi in 0..self.scratch_online.len() {
            let u = self.scratch_online[oi];
            if self.peers.num_held[u] == 0 {
                continue;
            }
            interested.clear();
            let u_bits = self.bits.row(u);
            for &d in &self.peers.neighbors[u] {
                if self.peers.online[d]
                    && d != PUBLISHER
                    && !self.is_seed(d)
                    && bitfield::any_and_not(u_bits, self.bits.row(d))
                {
                    interested.push(d);
                }
            }
            if interested.is_empty() {
                continue;
            }
            // Tit-for-tat ranking by bytes received from each candidate
            // over the last rechoke window; the publisher has no
            // self-interest and unchokes uniformly at random (mainline
            // seed behavior). The decision itself lives in
            // `policy::rechoke_order`, shared with the live runtime; the
            // stamp-cleared score table stays engine-owned.
            let uploader_is_publisher = u == PUBLISHER;
            if !uploader_is_publisher {
                self.score_gen += 1;
                let gen = self.score_gen;
                for c in &self.peers.conns[u] {
                    if c.prev > 0.0 {
                        self.score[c.u as usize] = c.prev;
                        self.score_stamp[c.u as usize] = gen;
                    }
                }
            }
            let gen = self.score_gen;
            let (score, stamp) = (&self.score, &self.score_stamp);
            let chosen = crate::policy::rechoke_order_with_scratch(
                &mut interested,
                uploader_is_publisher,
                |p| if stamp[p] == gen { score[p] } else { 0.0 },
                self.cfg.unchoke_slots,
                self.cfg.optimistic_slots,
                &mut self.rng,
                &mut self.scratch_rechoke,
            );
            self.unchoked_from.push(u);
            self.unchoked_off.push(self.unchoked_flat.len());
            self.unchoked_flat.extend_from_slice(&interested[..chosen]);
        }
        self.unchoked_off.push(self.unchoked_flat.len());
        self.scratch_interested = interested;
        if self.probes.is_some() {
            self.record_rechoke_metrics();
        }
    }

    /// Is the request on connection row `c` live at `tick`? Expiry is
    /// *lazy*: there is no per-tick sweep clearing timed-out requests —
    /// instead every request reader applies this predicate. The two are
    /// exactly equivalent because the old sweep ran every tick with the
    /// same `tick - ts >= REQUEST_TIMEOUT` test and `ts` only ever moves
    /// forward to the current tick: a request the sweep would have
    /// cleared at some earlier tick still satisfies the predicate now,
    /// and one it would not have cleared cannot have aged past the
    /// timeout in between without its `ts` being refreshed (which
    /// un-ages it on both schemes). Readers: the `pick_piece` continue
    /// check, the taken-piece bitmap, and `quiescent_wake` (where the
    /// `wake > from` guard subsumes the filter). Dead rows get their
    /// `piece` cleared whenever a reader touches them next, and are
    /// compacted at window rolls.
    #[inline]
    fn request_live(c: &Conn, tick: u64) -> bool {
        c.piece != NO_PIECE && tick.saturating_sub(c.ts) < REQUEST_TIMEOUT
    }

    fn transfer_round(&mut self, tick: u64) {
        // Plan allocations from the persistent unchoke sets, skipping
        // entries that have gone offline, completed, or lost interest.
        // The CSR unchoke table was built with uploaders ascending, so
        // iteration order is deterministic without sorting keys.
        let mut allocations = std::mem::take(&mut self.scratch_alloc);
        allocations.clear();
        for i in 0..self.unchoked_from.len() {
            let u = self.unchoked_from[i];
            if !self.peers.online[u] || self.peers.num_held[u] == 0 {
                continue;
            }
            let start = allocations.len();
            let u_bits = self.bits.row(u);
            for &d in &self.unchoked_flat[self.unchoked_off[i]..self.unchoked_off[i + 1]] {
                if self.peers.online[d]
                    && !self.is_seed(d)
                    && bitfield::any_and_not(u_bits, self.bits.row(d))
                {
                    allocations.push((u as u32, d as u32, 0.0));
                }
            }
            let live = allocations.len() - start;
            if live == 0 {
                continue;
            }
            let share = self.peers.upload[u] / live as f64;
            for a in &mut allocations[start..] {
                a.2 = share;
            }
        }

        // Execute transfers in deterministic shuffled order.
        allocations.shuffle(&mut self.rng);
        let mut newly_complete = std::mem::take(&mut self.scratch_complete);
        newly_complete.clear();
        let mut bytes_moved = 0.0;
        let mut receivers = 0usize;
        // Loop-invariant config reads, hoisted by hand: everything in the
        // loop body goes through `&mut self`, so the compiler must assume
        // the stores below could alias these fields and re-load them on
        // every one of the (hundreds of thousands of) iterations.
        let download_cap = self.cfg.download_cap;
        let num_pieces = self.num_pieces;
        let full_len = self.cfg.piece_size;
        let last_len = self.piece_len(num_pieces - 1);
        for &(u, d, rate) in &allocations {
            let (u, d) = (u as usize, d as usize);
            // The plan loop already filtered on `online[d]`, and nothing
            // inside this loop toggles liveness — only seed status can
            // change mid-round (piece completions), so that is the one
            // recheck needed.
            if self.peers.num_held[d] == num_pieces {
                continue;
            }
            let recv = self.peers.recv[d];
            let received = if recv.0 == tick { recv.1 } else { 0.0 };
            let budget = (download_cap - received).max(0.0);
            let bytes = rate.min(budget);
            if bytes <= 0.0 {
                continue;
            }
            let picked = self.pick_piece(u, d, tick);
            let Some((piece, row)) = picked else {
                continue;
            };
            // pick_piece records (and timestamps) the assignment — it is
            // the single site that writes per-connection request state.
            bytes_moved += bytes;
            let recv = &mut self.peers.recv[d];
            if recv.0 != tick {
                *recv = (tick, 0.0);
                receivers += 1;
            }
            recv.1 += bytes;
            // `pick_piece` returned the connection row it (re)confirmed,
            // so the window credit is a direct index, not a second scan.
            debug_assert!(row < self.peers.conns[d].len());
            // SAFETY: `pick_piece` just returned `row` as an index into
            // `conns[d]`, and nothing has touched the rows since.
            unsafe { self.peers.conns.get_unchecked_mut(d).get_unchecked_mut(row) }.cur += bytes;
            let cell = d * num_pieces + piece;
            debug_assert!(cell < self.progress.len());
            // SAFETY: `d < peers.len()` and `piece < num_pieces`, and the
            // progress arena is kept at `peers.len() * num_pieces` cells
            // by the same push path that sizes every peer row.
            let (cell_bytes, newly_partial) = unsafe {
                let c = self.progress.get_unchecked_mut(cell);
                let was_zero = *c == 0.0;
                *c += bytes;
                (*c, was_zero)
            };
            if newly_partial {
                // `bytes > 0` here, so the cell just went positive.
                self.partial_bits.set(d, piece);
            }
            let piece_len = if piece + 1 == num_pieces {
                last_len
            } else {
                full_len
            };
            if cell_bytes >= piece_len {
                self.bits.set(d, piece);
                self.peers.num_held[d] += 1;
                self.rep.gain(piece);
                // Endgame can put several connections on the same piece;
                // clear the request on every one of them.
                for c in &mut self.peers.conns[d] {
                    if c.piece as usize == piece {
                        c.piece = NO_PIECE;
                    }
                }
                if self.peers.num_held[d] == num_pieces {
                    newly_complete.push(d);
                }
            }
        }
        self.scratch_alloc = allocations;
        self.tick_bytes = bytes_moved;
        self.tick_receivers = receivers;

        if self.cfg.record_timeline {
            self.result.aggregate_rate_curve.push((tick, bytes_moved));
        }
        for &d in &newly_complete {
            self.complete(d, tick);
        }
        self.scratch_complete = newly_complete;
    }

    fn piece_len(&self, piece: usize) -> f64 {
        // All pieces are piece_size except possibly the last.
        let full = self.cfg.piece_size;
        if piece + 1 == self.num_pieces {
            let rem = self.cfg.content_size() - full * (self.num_pieces - 1) as f64;
            if rem > 0.0 {
                rem
            } else {
                full
            }
        } else {
            full
        }
    }

    /// Record `piece` as the active request on connection `u → d`,
    /// refreshing the existing row for `u` if one exists (its window
    /// bytes are untouched — request state and reciprocity bytes share
    /// the row but have independent lifecycles). Returns the row index.
    /// Together with the timestamp refresh on `pick_piece`'s continue
    /// path this is the engine's *only* write site for request state, so
    /// a request's timestamp advances exactly when `pick_piece`
    /// (re)confirms its piece.
    #[inline]
    fn assign(&mut self, d: usize, u: usize, piece: usize, tick: u64) -> usize {
        let rows = &mut self.peers.conns[d];
        match rows.iter_mut().position(|c| c.u as usize == u) {
            Some(i) => {
                rows[i].piece = piece as u32;
                rows[i].ts = tick;
                i
            }
            None => {
                rows.push(Conn {
                    u: u as u32,
                    piece: piece as u32,
                    ts: tick,
                    cur: 0.0,
                    prev: 0.0,
                });
                rows.len() - 1
            }
        }
    }

    /// Per-connection piece choice: continue the piece already assigned to
    /// this (uploader, downloader) connection; otherwise pick rarest-first
    /// (by global replication count) among pieces no other connection of
    /// this downloader is fetching; if every candidate is taken, join the
    /// most-complete one (endgame mode). Returns the chosen piece and the
    /// connection-row index it was recorded on, so the caller can credit
    /// window bytes without a second row scan.
    #[inline]
    fn pick_piece(&mut self, u: usize, d: usize, tick: u64) -> Option<(usize, usize)> {
        // Continue this connection's piece if still valid, refreshing the
        // request timestamp: data keeps flowing, so the request is live.
        for (i, c) in self.peers.conns[d].iter_mut().enumerate() {
            if c.u as usize != u {
                continue;
            }
            let p = c.piece as usize;
            if c.piece != NO_PIECE
                && tick.saturating_sub(c.ts) < REQUEST_TIMEOUT
                && !self.bits.has(d, p)
                && self.bits.has(u, p)
            {
                c.ts = tick;
                return Some((p, i));
            }
            break;
        }
        // Pack the pieces taken by the downloader's other connections
        // into a one-row word bitmap, so the candidate walk below is a
        // pure word expression: `theirs & !mine & !taken`.
        self.taken_words.fill(0);
        for c in &self.peers.conns[d] {
            if c.u as usize != u && Self::request_live(c, tick) {
                self.taken_words[c.piece as usize / 64] |= 1u64 << (c.piece % 64);
            }
        }
        // One word-level pass over the pieces `u` has and `d` lacks:
        // popcount the candidates and collect the free ones in ascending
        // piece order (same order the per-bit scan produced).
        let mut free = std::mem::take(&mut self.scratch_free);
        free.clear();
        let mut n_candidates = 0usize;
        // Most-complete partial among the free candidates, computed in
        // the same walk: `free & partial` is nearly always empty or a
        // bit or two, so progress cells are read only for true partials.
        // Ascending walk with replace-on-ties matches
        // `policy::most_complete_partial`'s last-maximum-wins exactly.
        let mut best_partial: Option<usize> = None;
        {
            let theirs = self.bits.row(u);
            let mine = self.bits.row(d);
            let partial = self.partial_bits.row(d);
            let progress = &self.progress[d * self.num_pieces..(d + 1) * self.num_pieces];
            for wi in 0..theirs.len() {
                let cand = theirs[wi] & !mine[wi];
                if cand == 0 {
                    continue;
                }
                n_candidates += cand.count_ones() as usize;
                let free_w = cand & !self.taken_words[wi];
                let mut w = free_w;
                while w != 0 {
                    free.push(wi * 64 + w.trailing_zeros() as usize);
                    w &= w - 1;
                }
                let mut pw = free_w & partial[wi];
                while pw != 0 {
                    let p = wi * 64 + pw.trailing_zeros() as usize;
                    pw &= pw - 1;
                    match best_partial {
                        Some(b) if progress[p] < progress[b] => {}
                        _ => best_partial = Some(p),
                    }
                }
            }
        }
        let choice = if n_candidates == 0 {
            // Nothing left on this connection: drop its request (the row
            // itself is compacted at the next window roll).
            if let Some(c) = self.peers.conns[d].iter_mut().find(|c| c.u as usize == u) {
                c.piece = NO_PIECE;
            }
            None
        } else if self.cfg.super_seed && u == PUBLISHER && !free.is_empty() {
            // Super-seeding: the publisher pushes its least-injected
            // piece, maximizing unique-piece injection into the swarm.
            // Partially transferred pieces are finished first — abandoning
            // them would litter the downloader with fragments.
            let progress = &self.progress[d * self.num_pieces..(d + 1) * self.num_pieces];
            let pick = match crate::policy::most_complete_partial(&free, |p| progress[p]) {
                Some(p) => p,
                None => {
                    let fresh = free
                        .iter()
                        .copied()
                        .min_by_key(|&p| self.injected[p])
                        .expect("free nonempty");
                    self.injected[fresh] += 1;
                    fresh
                }
            };
            Some(pick)
        } else if free.is_empty() {
            // Endgame: every interesting piece is already being fetched
            // from someone; double up on the most complete one. Computed
            // only on this branch — the common free-piece path never
            // needs the fallback, and the scan is RNG-free with the same
            // last-maximum-wins result as `Iterator::max_by`.
            let progress = &self.progress[d * self.num_pieces..(d + 1) * self.num_pieces];
            let mut endgame_best: Option<usize> = None;
            for p in bitfield::and_not_ones(self.bits.row(u), self.bits.row(d)) {
                match endgame_best {
                    Some(b) if progress[p] < progress[b] => {}
                    _ => endgame_best = Some(p),
                }
            }
            endgame_best
        } else if let Some(partial) = best_partial {
            // Resume the most-complete orphaned partial before starting a
            // fresh piece: short unchoke windows otherwise litter the peer
            // with fragments of many pieces and it completes none.
            Some(partial)
        } else if self.cfg.piece_selection == PieceSelection::Random {
            // Strawman policy for the selection ablation.
            free.choose(&mut self.rng).copied()
        } else if self.cfg.piece_selection == PieceSelection::InOrder {
            // Streaming-style sequential pickup.
            free.iter().copied().min()
        } else {
            // Rarest-first by swarm-wide replication count, read straight
            // off the incremental index instead of scanning the
            // neighborhood's bitfields. (Seeds hold every piece and shift
            // all counts uniformly; the publisher is excluded — so the
            // induced ordering reflects leecher-side scarcity.)
            let counts = &self.rep.counts;
            crate::policy::rarest_first(&free, |p| counts[p], &mut self.rng)
        };
        self.scratch_free = free;
        choice.map(|p| (p, self.assign(d, u, p, tick)))
    }

    fn complete(&mut self, d: usize, tick: u64) {
        let done_at = tick + 1; // completion lands at the end of this tick
        self.peers.completed[d] = Some(done_at);
        self.completions_total += 1;
        if let Some(p) = &self.probes {
            p.completions.inc();
        }
        if let Some(ts) = &mut self.ts {
            ts.win_completions += 1;
        }
        self.result
            .completion_curve
            .push((done_at, self.completions_total));
        if (tick as usize) < self.completions_per_tick.len() {
            self.completions_per_tick[tick as usize] += 1;
        }
        if self.peers.counted[d] {
            self.result.completions += 1;
            self.result
                .download_times
                .add((done_at - self.peers.arrived[d]) as f64);
        }
        if matches!(self.cfg.publisher, BtPublisher::UntilFirstCompletion)
            && !self.publisher_retired
        {
            self.retire_publisher(tick);
        }
        match self.cfg.linger_mean {
            Some(mean) => {
                let linger = exp_sample(&mut self.rng, mean).ceil() as u64;
                self.peers.linger_until[d] = Some(done_at + linger.max(1));
                self.lingering_online += 1;
            }
            None => {
                self.peers.online[d] = false;
                self.online_ids.retain(|&i| i != d);
                self.peers.departed[d] = Some(done_at);
                self.rep.drop_holder(self.bits.row(d));
                self.online_nonpub -= 1;
            }
        }
    }

    fn linger_expiry(&mut self, tick: u64) {
        // Only lingering seeds can expire; skip the sweep entirely while
        // nobody is lingering (the common case in blocked swarms, where
        // this runs every tick). When someone is, sweep the sorted active
        // set instead of every peer that ever arrived: expiry is RNG-free
        // and index drops commute, so ascending-online order leaves the
        // replication index bit-identical to the old full ascending scan.
        if self.lingering_online == 0 {
            return;
        }
        self.fill_online();
        let sweep = std::mem::take(&mut self.scratch_online);
        let mut expired = 0usize;
        for &i in &sweep {
            if i == PUBLISHER || !self.peers.online[i] {
                continue;
            }
            if let Some(until) = self.peers.linger_until[i] {
                if until <= tick {
                    self.peers.online[i] = false;
                    self.peers.departed[i] = Some(tick);
                    self.rep.drop_holder(self.bits.row(i));
                    self.online_ids.retain(|&o| o != i);
                    expired += 1;
                }
            }
        }
        self.scratch_online = sweep;
        self.online_nonpub -= expired;
        self.lingering_online -= expired;
    }

    fn availability_check(&mut self, tick: u64) {
        // All replication views — coverage, minimum replication and the
        // sorted-count snapshot — read the incremental index; nothing
        // here scans peers or pieces.
        let peer_coverage = self.rep.covered;
        if self.cfg.record_timeline {
            self.result.peer_coverage_curve.push((tick, peer_coverage));
            self.result
                .min_replication_curve
                .push((tick, self.rep.min_replication()));
            if tick.is_multiple_of(60) {
                self.result
                    .replication_snapshots
                    .push((tick, self.rep.sorted_counts()));
            }
        }
        if cfg!(debug_assertions) && tick.is_multiple_of(60) {
            self.check_index_consistency();
        }
        let available = self.peers.online[PUBLISHER] || peer_coverage == self.num_pieces;
        if let Some(p) = &self.probes {
            // Sparse event stream: one event per availability transition
            // (plus the initial state), not one per tick.
            if self.last_available != Some(available) {
                if self.last_available.is_some() {
                    p.avail_transitions.inc();
                }
                self.last_available = Some(available);
                swarm_obs::emit(
                    "bt.availability",
                    &[
                        ("run", swarm_obs::val(self.run_ord)),
                        ("tick", swarm_obs::val(tick)),
                        ("available", swarm_obs::val(available)),
                        ("covered", swarm_obs::val(peer_coverage as u64)),
                        (
                            "min_replication",
                            swarm_obs::val(self.rep.min_replication() as u64),
                        ),
                    ],
                );
            }
        }
        if available {
            // The availability fraction is defined over the arrival
            // window; drain ticks keep the latch for last_available_tick
            // but do not inflate the fraction.
            if tick < self.cfg.horizon {
                self.available_ticks += 1;
            }
            self.result.last_available_tick = Some(tick);
        }
    }

    /// From-scratch recount cross-check of the incremental index (debug
    /// builds only, every 60 ticks): every debug-mode engine run doubles
    /// as an index-consistency test.
    fn check_index_consistency(&self) {
        let mut counts = vec![0u32; self.num_pieces];
        for i in (1..self.peers.len()).filter(|&i| self.peers.online[i]) {
            for p in bitfield::ones(self.bits.row(i)) {
                counts[p] += 1;
            }
        }
        assert_eq!(counts, self.rep.counts, "replication counts drifted");
        assert_eq!(
            self.rep.covered,
            counts.iter().filter(|&&c| c > 0).count(),
            "coverage drifted"
        );
        assert_eq!(
            self.rep.min_count,
            counts.iter().copied().min().unwrap_or(0),
            "min replication drifted"
        );
        for i in 0..self.peers.len() {
            debug_assert_eq!(
                self.peers.num_held[i],
                bitfield::count_ones(self.bits.row(i)),
                "held-piece cache drifted"
            );
        }
        assert_eq!(
            self.online_nonpub,
            (1..self.peers.len())
                .filter(|&i| self.peers.online[i])
                .count(),
            "online-peer count drifted"
        );
        assert_eq!(
            self.lingering_online,
            (1..self.peers.len())
                .filter(|&i| self.peers.online[i] && self.is_seed(i))
                .count(),
            "lingering-seed count drifted"
        );
    }

    fn finalize(mut self) -> BtResult {
        let horizon = self.cfg.horizon;
        if let Some(since) = self.publisher_online_since.take() {
            self.result.publisher_intervals.push((since, horizon));
        }
        self.result.availability = self.available_ticks as f64 / horizon as f64;
        self.result.in_flight_at_horizon = (1..self.peers.len())
            .filter(|&i| self.peers.online[i])
            .count() as u64;
        if self.cfg.record_timeline {
            self.result.spans = (1..self.peers.len())
                .map(|i| PeerSpan {
                    arrived: self.peers.arrived[i],
                    departed: self.peers.departed[i],
                    completed: self.peers.completed[i],
                    final_fraction: self.peers.num_held[i] as f64 / self.num_pieces as f64,
                })
                .collect();
        }
        // Flash departures: max completions in any FLASH_WINDOW-tick window.
        let w = FLASH_WINDOW as usize;
        let mut max_flash = 0u64;
        for i in 0..self.completions_per_tick.len() {
            let end = (i + w).min(self.completions_per_tick.len());
            let sum: u64 = self.completions_per_tick[i..end].iter().sum();
            max_flash = max_flash.max(sum);
        }
        self.result.max_flash_departures = max_flash;
        if self.probes.is_some() {
            swarm_obs::emit(
                "bt.run.end",
                &[
                    ("run", swarm_obs::val(self.run_ord)),
                    ("availability", swarm_obs::val(self.result.availability)),
                    ("completions", swarm_obs::val(self.result.completions)),
                    (
                        "last_available_tick",
                        swarm_obs::val(self.result.last_available_tick.unwrap_or(0)),
                    ),
                ],
            );
        }
        // Flush the trailing partial window and fold this run's series
        // into the process-global "bt" series (merging is additive, so
        // concurrent replications cannot perturb the drained result).
        if let Some(mut ts) = self.ts.take() {
            if ts.win_ticks > 0 {
                ts.flush_window();
            }
            swarm_obs::merge_series_owned("bt", ts.rec);
        }
        self.result
    }
}

fn exp_sample<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    -(1.0 - rng.gen::<f64>()).ln() * mean
}

/// Smallest multiple of `interval` that is ≥ `from`.
fn next_multiple(from: u64, interval: u64) -> u64 {
    let r = from % interval;
    if r == 0 {
        from
    } else {
        from + (interval - r)
    }
}

/// Number of multiples of `interval` in the half-open range `[from, to)`.
fn count_multiples(from: u64, to: u64, interval: u64) -> u64 {
    let first = next_multiple(from, interval);
    if first >= to {
        0
    } else {
        1 + (to - 1 - first) / interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitfield::Bitfield;
    use crate::capacity::CapacityDistribution;
    use proptest::prelude::*;

    fn always_on(k: u32, seed: u64) -> BtConfig {
        BtConfig {
            publisher: BtPublisher::AlwaysOn,
            ..BtConfig::paper_section_4_3(k, seed)
        }
    }

    #[test]
    fn next_multiple_and_count() {
        assert_eq!(next_multiple(1, 10), 10);
        assert_eq!(next_multiple(10, 10), 10);
        assert_eq!(next_multiple(11, 10), 20);
        assert_eq!(next_multiple(7, 1), 7);
        // Multiples of 10 in [from, to).
        assert_eq!(count_multiples(1, 10, 10), 0);
        assert_eq!(count_multiples(1, 11, 10), 1);
        assert_eq!(count_multiples(10, 11, 10), 1);
        assert_eq!(count_multiples(11, 30, 10), 1);
        assert_eq!(count_multiples(11, 31, 10), 2);
        assert_eq!(count_multiples(5, 5, 10), 0);
        // Interval 1: every tick is a boundary.
        assert_eq!(count_multiples(3, 9, 1), 6);
    }

    #[test]
    fn fast_forward_preserves_golden_trace() {
        // The elided engine must reproduce the dense golden trace
        // byte-for-byte — same RNG stream, same curves.
        let cfg = BtConfig {
            record_timeline: true,
            horizon: 600,
            drain_ticks: 300,
            linger_mean: Some(120.0),
            ..BtConfig::paper_section_4_3(2, 42)
        };
        let dense = BtConfig {
            disable_fast_forward: true,
            ..cfg.clone()
        };
        let a = serde_json::to_string(&run(&dense)).expect("serialize");
        let b = serde_json::to_string(&run(&cfg)).expect("serialize");
        assert_eq!(a, b, "fast-forward must not change the golden trace");
    }

    #[test]
    fn periodic_publisher_follows_square_wave() {
        // Deterministic schedule: on [0,150) ∪ [210,360), off [150,210).
        // With scripted arrivals that all complete inside the first ON
        // phase and no lingering, availability is exactly the publisher
        // schedule and the off span is the only unavailable stretch.
        let mut cfg = always_on(1, 9);
        cfg.publisher = BtPublisher::Periodic {
            on_ticks: 150,
            off_ticks: 60,
            initially_on: true,
        };
        cfg.horizon = 360;
        cfg.drain_ticks = 0;
        cfg.file_size = 1_000.0; // 4 pieces — everyone finishes fast
        cfg.publisher_capacity = 200.0;
        cfg.scripted_arrivals = Some((0..8).map(|i| (i as u64, 100.0)).collect());
        let r = run(&cfg);
        assert_eq!(r.arrivals, 8);
        assert_eq!(r.completions, 8, "everyone finishes in the first ON phase");
        assert_eq!(
            r.publisher_intervals,
            vec![(0, 150), (210, 360)],
            "square wave must toggle exactly at the configured boundaries"
        );
        let expected = (360.0 - 60.0) / 360.0;
        assert!(
            (r.availability - expected).abs() < 1e-12,
            "availability {} != {}",
            r.availability,
            expected
        );
    }

    #[test]
    fn scripted_arrivals_are_exact_and_fast_forward_safe() {
        // The scripted schedule admits peers at the listed ticks with the
        // listed capacities, dense and elided runs agree byte-for-byte,
        // and two runs are deterministic.
        let mut cfg = always_on(1, 3);
        cfg.horizon = 400;
        cfg.drain_ticks = 0;
        cfg.record_timeline = true;
        cfg.scripted_arrivals = Some(vec![(0, 50.0), (5, 80.0), (5, 30.0), (120, 60.0)]);
        let dense = BtConfig {
            disable_fast_forward: true,
            ..cfg.clone()
        };
        let a = serde_json::to_string(&run(&cfg)).expect("serialize");
        let b = serde_json::to_string(&run(&dense)).expect("serialize");
        assert_eq!(a, b, "fast-forward must not change scripted runs");
        let r = run(&cfg);
        assert_eq!(r.arrivals, 4);
        assert_eq!(r.spans.len(), 4, "one span per scripted peer");
        assert_eq!(
            r.spans.iter().map(|s| s.arrived).collect::<Vec<_>>(),
            vec![0, 5, 5, 120]
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(&always_on(1, 5));
        let b = run(&always_on(1, 5));
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.download_times.values(), b.download_times.values());
    }

    #[test]
    fn golden_trace_byte_identical() {
        // The determinism contract: a fixed seed must yield a
        // byte-identical serialized BtResult, every timeline curve
        // included. Lingering exercises the linger-expiry path of the
        // replication index as well.
        let cfg = BtConfig {
            record_timeline: true,
            horizon: 600,
            drain_ticks: 300,
            linger_mean: Some(120.0),
            ..BtConfig::paper_section_4_3(2, 42)
        };
        let a = serde_json::to_string(&run(&cfg)).expect("serialize");
        let b = serde_json::to_string(&run(&cfg)).expect("serialize");
        assert_eq!(a, b, "same seed must produce a byte-identical trace");
    }

    #[test]
    fn telemetry_probes_do_not_perturb_results() {
        // The instrumented engine must be tick-for-tick identical to the
        // bare one: probes never touch the RNG stream. Compare the full
        // serialized trace with recording off vs. on, and check the
        // probes actually recorded something while enabled.
        let cfg = BtConfig {
            record_timeline: true,
            horizon: 400,
            drain_ticks: 200,
            linger_mean: Some(60.0),
            ..BtConfig::paper_section_4_3(2, 7)
        };
        let bare = serde_json::to_string(&run(&cfg)).expect("serialize");
        swarm_obs::set_enabled(true);
        let ticks_before = swarm_obs::counter("bt.ticks").get();
        let instrumented = serde_json::to_string(&run(&cfg)).expect("serialize");
        let ticks_after = swarm_obs::counter("bt.ticks").get();
        swarm_obs::set_enabled(false);
        assert_eq!(bare, instrumented, "probes must not change the trace");
        assert!(
            ticks_after > ticks_before,
            "tick counter advanced while enabled"
        );
    }

    proptest! {
        #[test]
        fn replication_index_matches_recount(
            // Word-boundary-straddling piece counts exercise the batched
            // word-walk in `drop_holder` across full, single-bit and
            // empty tail words (the 24-piece point keeps the original
            // dense-collision regime).
            pieces in prop::sample::select(
                vec![24usize, 63, 64, 65, 127, 128, 129],
            ),
            ops in prop::collection::vec(
                (0usize..8, 0usize..1024, prop::bool::ANY),
                1..200,
            ),
        ) {
            // Model: 8 peers over `pieces` pieces. Each op either grants
            // a piece to an online peer or takes a peer offline — the
            // only two event kinds the engine feeds the index. The
            // incremental state must match a from-scratch recount after
            // every event.
            let mut held: Vec<Bitfield> =
                (0..8).map(|_| Bitfield::new(pieces)).collect();
            let mut online = [true; 8];
            let mut rep = ReplicationIndex::new(pieces);
            for (peer, piece, depart) in ops {
                let piece = piece % pieces;
                if depart {
                    if online[peer] {
                        online[peer] = false;
                        rep.drop_holder(held[peer].as_words());
                    }
                } else if online[peer] && !held[peer].has(piece) {
                    held[peer].set(piece);
                    rep.gain(piece);
                }
                let recount: Vec<u32> = (0..pieces)
                    .map(|p| {
                        (0..8)
                            .filter(|&n| online[n] && held[n].has(p))
                            .count() as u32
                    })
                    .collect();
                prop_assert_eq!(&rep.counts, &recount);
                prop_assert_eq!(
                    rep.covered,
                    recount.iter().filter(|&&c| c > 0).count()
                );
                prop_assert_eq!(
                    rep.min_count,
                    recount.iter().copied().min().unwrap_or(0)
                );
                let mut sorted: Vec<usize> =
                    recount.iter().map(|&c| c as usize).collect();
                sorted.sort_unstable();
                prop_assert_eq!(rep.sorted_counts(), sorted);
            }
        }

        #[test]
        fn drop_holder_matches_per_bit_lose(
            pieces in prop::sample::select(
                vec![1usize, 63, 64, 65, 127, 128, 129],
            ),
            other_holders in prop::collection::vec(0usize..1024, 0..64),
            held_pieces in prop::collection::vec(0usize..1024, 0..64),
        ) {
            // The word-batched drop must leave the index in exactly the
            // state the naive per-bit `lose` loop produces: replay the
            // same gains into two indices, then drop one holder's bitmap
            // both ways.
            let mut held = Bitfield::new(pieces);
            for &p in &held_pieces {
                held.set(p % pieces);
            }
            let mut batched = ReplicationIndex::new(pieces);
            let mut naive = ReplicationIndex::new(pieces);
            for &p in &other_holders {
                batched.gain(p % pieces);
                naive.gain(p % pieces);
            }
            for p in held.ones() {
                batched.gain(p);
                naive.gain(p);
            }
            batched.drop_holder(held.as_words());
            for p in held.ones() {
                naive.lose(p);
            }
            prop_assert_eq!(&batched.counts, &naive.counts);
            prop_assert_eq!(batched.covered, naive.covered);
            prop_assert_eq!(batched.min_count, naive.min_count);
            prop_assert_eq!(batched.sorted_counts(), naive.sorted_counts());
        }
    }

    #[test]
    fn peers_complete_under_always_on_publisher() {
        let r = run(&always_on(1, 7));
        assert!(r.completions > 0, "someone must finish in 1200 s");
        // 4 MB at >= 50 kB/s aggregate: download times bounded well below
        // the horizon; availability is total.
        assert!(r.availability > 0.999);
        assert!(
            r.mean_download_time() < 600.0,
            "mean {}",
            r.mean_download_time()
        );
    }

    #[test]
    fn download_time_at_least_size_over_capacity() {
        let r = run(&always_on(1, 9));
        // 4000 kB at download_cap 4000 kB/s: absolute floor 1 s; with one
        // 100 kB/s publisher the realistic floor is 40 s. Check the hard
        // physical bound holds for every peer.
        for &t in r.download_times.values() {
            assert!(t >= 4000.0 / 4000.0, "download time {t} impossibly fast");
        }
    }

    #[test]
    fn arrival_rate_respected() {
        let cfg = BtConfig {
            horizon: 3_000,
            ..always_on(2, 11)
        };
        let r = run(&cfg);
        let expected = cfg.arrival_rate * cfg.horizon as f64;
        let got = r.arrivals as f64;
        assert!(
            (got - expected).abs() < 5.0 * expected.sqrt(),
            "arrivals {got} vs {expected}"
        );
    }

    #[test]
    fn seedless_swarm_small_k_dies_large_k_sustains() {
        // The Figure 4 contrast in miniature: K=1 stops serving peers soon
        // after the publisher leaves; K=8 keeps completing downloads.
        let small = run(&BtConfig::paper_section_4_2(1, 13));
        let large = run(&BtConfig::paper_section_4_2(8, 13));
        // K=1: the swarm dies early; completions stop well before 1500 s.
        let small_late = small.completions_between(900, 1_500);
        let large_late = large.completions_between(900, 1_500);
        assert!(
            large_late > small_late,
            "self-sustaining K=8 must keep completing: late completions {large_late} vs {small_late}"
        );
        assert!(
            large.last_available_tick.unwrap_or(0) > small.last_available_tick.unwrap_or(0),
            "K=8 must stay available longer"
        );
    }

    #[test]
    fn intermittent_publisher_blocks_small_bundles() {
        // §4.3: K=1 with an on/off publisher leaves peers stuck during off
        // periods; mean download time far exceeds the 80 s service time.
        let cfg = BtConfig {
            horizon: 4_800,
            ..BtConfig::paper_section_4_3(1, 17)
        };
        let r = run(&cfg);
        assert!(r.completions > 0);
        assert!(
            r.mean_download_time() > 160.0,
            "waiting should dominate: mean {}",
            r.mean_download_time()
        );
        assert!(r.availability < 0.9);
    }

    #[test]
    fn flash_departures_shrink_with_bundling() {
        // Figure 5: blocked peers finishing together (flash departures)
        // are the K=2 signature and fade by K=4. The raw burst size grows
        // with K (more arrivals overall), so compare the burst *share*:
        // the largest 5 s window's fraction of all completions. Average
        // over seeds to damp run-to-run noise.
        let flash_share = |k: u32| -> f64 {
            (0..4)
                .map(|s| {
                    let cfg = BtConfig {
                        horizon: 2_400,
                        ..BtConfig::paper_section_4_3(k, 100 + s)
                    };
                    let r = run(&cfg);
                    let total = r.completion_curve.len().max(1) as f64;
                    r.max_flash_departures as f64 / total
                })
                .sum::<f64>()
                / 4.0
        };
        let f2 = flash_share(2);
        let f4 = flash_share(4);
        assert!(
            f2 > f4,
            "flash-departure share must shrink with K: K=2 {f2} vs K=4 {f4}"
        );
    }

    #[test]
    fn lingering_seeds_keep_swarm_available() {
        let selfish = BtConfig::paper_section_4_2(2, 23);
        let altruists = BtConfig {
            linger_mean: Some(600.0),
            ..selfish.clone()
        };
        let a = run(&selfish);
        let b = run(&altruists);
        assert!(
            b.availability >= a.availability,
            "lingering cannot hurt availability: {} vs {}",
            b.availability,
            a.availability
        );
    }

    #[test]
    fn heterogeneous_capacities_run() {
        let cfg = BtConfig {
            peer_capacity: CapacityDistribution::BitTyrant,
            ..BtConfig::paper_section_4_3(3, 29)
        };
        let r = run(&cfg);
        assert!(r.completions > 0);
    }

    #[test]
    fn timeline_spans_recorded() {
        let cfg = BtConfig {
            record_timeline: true,
            ..always_on(1, 31)
        };
        let r = run(&cfg);
        assert!(!r.spans.is_empty());
        for s in &r.spans {
            if let (Some(c), Some(d)) = (s.completed, s.departed) {
                assert!(d >= c || s.final_fraction < 1.0);
            }
            assert!(s.final_fraction >= 0.0 && s.final_fraction <= 1.0);
        }
        assert!(!r.publisher_intervals.is_empty());
    }

    #[test]
    fn in_order_selection_destroys_diversity() {
        // Streaming-style sequential pickup: every peer holds a prefix,
        // so the swarm dies the moment the publisher leaves — far faster
        // than under rarest-first.
        use crate::config::PieceSelection;
        let survival = |selection: PieceSelection| -> f64 {
            (0..3)
                .map(|s| {
                    let cfg = BtConfig {
                        piece_selection: selection,
                        record_timeline: true,
                        horizon: 2_500,
                        ..BtConfig::paper_section_4_2(6, 400 + s)
                    };
                    let r = run(&cfg);
                    let pub_end = r.publisher_intervals.first().map(|p| p.1).unwrap_or(0);
                    r.peer_coverage_curve
                        .iter()
                        .filter(|&&(t, _)| t > pub_end)
                        .take_while(|&&(_, c)| c == cfg.num_pieces())
                        .count() as f64
                })
                .sum::<f64>()
                / 3.0
        };
        let rarest = survival(PieceSelection::RarestFirst);
        let in_order = survival(PieceSelection::InOrder);
        assert!(
            in_order < rarest,
            "in-order must die faster: {in_order} vs rarest-first {rarest}"
        );
    }

    #[test]
    fn selection_policies_order_piece_injection() {
        // Average tick at which the peer swarm first covers every piece
        // (publisher always on).
        use crate::config::PieceSelection;
        let coverage_tick = |super_seed: bool, selection: PieceSelection| -> f64 {
            (0..4)
                .map(|s| {
                    let cfg = BtConfig {
                        publisher: BtPublisher::AlwaysOn,
                        super_seed,
                        piece_selection: selection,
                        record_timeline: true,
                        horizon: 2_000,
                        drain_ticks: 0,
                        ..BtConfig::paper_section_4_2(6, 300 + s)
                    };
                    let r = run(&cfg);
                    let full = cfg.num_pieces();
                    r.peer_coverage_curve
                        .iter()
                        .find(|&&(_, c)| c == full)
                        .map(|&(t, _)| t as f64)
                        .unwrap_or(2_000.0)
                })
                .sum::<f64>()
                / 4.0
        };
        let rarest = coverage_tick(false, PieceSelection::RarestFirst);
        let random = coverage_tick(false, PieceSelection::Random);
        let random_ss = coverage_tick(true, PieceSelection::Random);
        // Legout et al.: rarest-first is enough — and strictly better than
        // random selection for injection.
        assert!(
            rarest < random,
            "rarest-first must inject faster than random: {rarest} vs {random}"
        );
        // Super-seeding rescues a swarm with impaired (random) selection.
        assert!(
            random_ss < random,
            "super-seeding must help under random selection: {random_ss} vs {random}"
        );
    }

    #[test]
    fn aggregate_rate_bounded_by_total_capacity() {
        let cfg = BtConfig {
            record_timeline: true,
            horizon: 600,
            drain_ticks: 0,
            publisher: BtPublisher::AlwaysOn,
            ..BtConfig::paper_section_4_3(2, 51)
        };
        let r = run(&cfg);
        assert!(!r.aggregate_rate_curve.is_empty());
        // Peak aggregate rate cannot exceed publisher + all peers' upload
        // capacity (50 kB/s each; population bounded by arrivals).
        let max_rate = r
            .aggregate_rate_curve
            .iter()
            .map(|&(_, b)| b)
            .fold(0.0f64, f64::max);
        let cap = 100.0 + 50.0 * r.arrivals as f64;
        assert!(
            max_rate <= cap + 1e-6,
            "rate {max_rate} exceeds capacity {cap}"
        );
        // And total bytes moved >= completed downloads * content size.
        let total: f64 = r.aggregate_rate_curve.iter().map(|&(_, b)| b).sum();
        assert!(total >= r.completions as f64 * cfg.content_size() - 1e-6);
    }

    #[test]
    fn completion_curve_is_monotone() {
        let r = run(&always_on(2, 37));
        assert!(r
            .completion_curve
            .windows(2)
            .all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
    }
}
