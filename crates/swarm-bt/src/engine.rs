//! The block-level tick engine.
//!
//! Time advances in one-second ticks (the paper's instrumented client
//! logs per second). Each tick: publisher transitions, Poisson arrivals,
//! neighbor discovery (tracker + PEX), an unchoke/transfer round, piece
//! and content completions, linger expiry, and an availability check
//! (publisher online, or every piece present in the union of online
//! bitfields).
//!
//! The transfer round is a compact rendition of mainline BitTorrent:
//! uploaders rank interested neighbors by reciprocation (bytes received
//! from them on the previous tick), unchoke the top `unchoke_slots` plus
//! `optimistic_slots` random ones, and split capacity evenly; downloaders
//! pick pieces by strict priority (finish partial pieces first) then
//! rarest-first among their neighborhood.
//!
//! This is the repo's stand-in for the paper's PlanetLab testbed: it
//! reproduces the protocol-level phenomena of §4 — blocked leechers,
//! flash departures when an intermittent publisher returns, and the
//! self-sustaining transition as the bundle size K grows.

use crate::bitfield::Bitfield;
use crate::config::{BtConfig, BtPublisher, PieceSelection};
use crate::metrics::{BtResult, PeerSpan};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

const PUBLISHER: usize = 0;
/// Peers below this many neighbors re-query the tracker on re-announce.
// (file-completion tracking lives on PeerSpan; see metrics.rs)
const MIN_NEIGHBORS: usize = 5;
/// Ticks between tracker re-announces.
const REANNOUNCE_INTERVAL: u64 = 30;
/// Neighbors shared per PEX gossip exchange.
const PEX_SHARE: usize = 5;
/// Window (ticks) for the flash-departure statistic.
const FLASH_WINDOW: u64 = 5;
/// Ticks a per-connection piece request survives without receiving data
/// before it times out and the piece becomes fetchable elsewhere.
const REQUEST_TIMEOUT: u64 = 60;

struct Node {
    online: bool,
    is_publisher: bool,
    bitfield: Bitfield,
    /// Partial bytes per piece (peers only).
    progress: Vec<f64>,
    upload: f64,
    neighbors: Vec<usize>,
    arrived: u64,
    completed: Option<u64>,
    departed: Option<u64>,
    linger_until: Option<u64>,
    counted: bool,
    /// Bytes received per uploader on the previous tick (reciprocity).
    recv_prev: HashMap<usize, f64>,
    recv_cur: HashMap<usize, f64>,
    received_this_tick: f64,
    /// Piece currently being fetched from each uploader, with the tick it
    /// last received data. Each connection works on its own piece
    /// (request pipelining): without this, every connection piles onto
    /// the same partial piece and the publisher's capacity re-sends
    /// content leechers already serve, starving the swarm of *new*
    /// pieces. Entries idle beyond [`REQUEST_TIMEOUT`] expire, releasing
    /// the piece to other connections (mainline's request timeout).
    assigned: HashMap<usize, (usize, u64)>,
}

impl Node {
    fn active(&self) -> bool {
        self.online
    }

    fn is_seed(&self) -> bool {
        self.bitfield.is_complete()
    }
}

/// Run one block-level simulation.
pub fn run(cfg: &BtConfig) -> BtResult {
    cfg.validate();
    BtEngine::new(cfg).run()
}

/// Run with a per-tick inspector (diagnostics; not part of the stable
/// API). The callback receives `(tick, per-peer (age, pieces_held,
/// upload, online))` every 60 ticks.
#[doc(hidden)]
pub fn run_with_inspector(
    cfg: &BtConfig,
    mut inspect: impl FnMut(u64, &[(u64, usize, f64, bool)]),
) -> BtResult {
    cfg.validate();
    let mut engine = BtEngine::new(cfg);
    let hard_end = cfg.horizon + cfg.drain_ticks;
    for tick in 0..hard_end {
        if tick >= cfg.horizon && !engine.any_leecher_online() {
            break;
        }
        engine.publisher_transitions(tick);
        if tick < cfg.horizon {
            engine.arrivals(tick);
        }
        if tick % REANNOUNCE_INTERVAL == 0 && tick > 0 {
            engine.reannounce();
        }
        if cfg.pex_interval > 0 && tick > 0 && tick % cfg.pex_interval == 0 {
            engine.pex_round();
        }
        if engine.force_rechoke || tick % cfg.rechoke_interval == 0 {
            engine.rechoke();
            engine.force_rechoke = false;
        }
        engine.expire_requests(tick);
        engine.transfer_round(tick);
        engine.linger_expiry(tick);
        engine.availability_check(tick);
        if tick % 60 == 0 {
            let snapshot: Vec<(u64, usize, f64, bool)> = engine
                .nodes
                .iter()
                .skip(1)
                .filter(|n| n.online)
                .map(|n| (tick - n.arrived, n.bitfield.count(), n.upload, n.online))
                .collect();
            inspect(tick, &snapshot);
        }
    }
    engine.finalize()
}

struct BtEngine<'c> {
    cfg: &'c BtConfig,
    rng: ChaCha8Rng,
    nodes: Vec<Node>,
    num_pieces: usize,
    next_arrival: f64,
    next_toggle: Option<f64>,
    publisher_retired: bool,
    publisher_online_since: Option<u64>,
    result: BtResult,
    completions_total: u64,
    completions_per_tick: Vec<u64>,
    available_ticks: u64,
    /// Persistent unchoke sets: uploader -> unchoked downloaders. Rebuilt
    /// every `rechoke_interval` ticks (and when the publisher returns).
    unchoked: HashMap<usize, Vec<usize>>,
    force_rechoke: bool,
    /// Super-seeding bookkeeping: how many times the publisher has begun
    /// serving each piece.
    injected: Vec<u64>,
}

impl<'c> BtEngine<'c> {
    fn new(cfg: &'c BtConfig) -> Self {
        let num_pieces = cfg.num_pieces();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let initially_on = match cfg.publisher {
            BtPublisher::AlwaysOn | BtPublisher::UntilFirstCompletion => true,
            BtPublisher::OnOff { initially_on, .. } => initially_on,
        };
        let publisher = Node {
            online: initially_on,
            is_publisher: true,
            bitfield: Bitfield::full(num_pieces),
            progress: Vec::new(),
            upload: cfg.publisher_capacity,
            neighbors: Vec::new(),
            arrived: 0,
            completed: Some(0),
            departed: None,
            linger_until: None,
            counted: false,
            recv_prev: HashMap::new(),
            recv_cur: HashMap::new(),
            received_this_tick: 0.0,
            assigned: HashMap::new(),
        };
        let next_arrival = exp_sample(&mut rng, 1.0 / cfg.arrival_rate);
        let next_toggle = match cfg.publisher {
            BtPublisher::OnOff {
                on_mean, off_mean, ..
            } => Some(exp_sample(
                &mut rng,
                if initially_on { on_mean } else { off_mean },
            )),
            _ => None,
        };
        BtEngine {
            cfg,
            rng,
            nodes: vec![publisher],
            num_pieces,
            next_arrival,
            next_toggle,
            publisher_retired: false,
            publisher_online_since: initially_on.then_some(0),
            result: BtResult::default(),
            completions_total: 0,
            completions_per_tick: vec![0; (cfg.horizon + cfg.drain_ticks) as usize],
            available_ticks: 0,
            unchoked: HashMap::new(),
            force_rechoke: true,
            injected: vec![0; num_pieces],
        }
    }

    fn run(mut self) -> BtResult {
        let hard_end = self.cfg.horizon + self.cfg.drain_ticks;
        for tick in 0..hard_end {
            // Past the horizon we only drain: no new arrivals, and once no
            // leecher is left in flight the run is over.
            if tick >= self.cfg.horizon && !self.any_leecher_online() {
                break;
            }
            self.publisher_transitions(tick);
            if tick < self.cfg.horizon {
                self.arrivals(tick);
            }
            if tick % REANNOUNCE_INTERVAL == 0 && tick > 0 {
                self.reannounce();
            }
            if self.cfg.pex_interval > 0 && tick > 0 && tick % self.cfg.pex_interval == 0 {
                self.pex_round();
            }
            if self.force_rechoke || tick % self.cfg.rechoke_interval == 0 {
                self.rechoke();
                self.force_rechoke = false;
            }
            self.expire_requests(tick);
            self.transfer_round(tick);
            self.linger_expiry(tick);
            self.availability_check(tick);
        }
        self.finalize()
    }

    // --- membership -----------------------------------------------------

    fn any_leecher_online(&self) -> bool {
        self.nodes
            .iter()
            .skip(1)
            .any(|n| n.online && !n.is_seed())
    }

    fn online_ids(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].active())
            .collect()
    }

    fn active_neighbor_count(&self, i: usize) -> usize {
        self.nodes[i]
            .neighbors
            .iter()
            .filter(|&&n| self.nodes[n].active())
            .count()
    }

    fn connect(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        // Capacity counts *live* connections only: departed peers drop
        // their TCP connections, freeing slots for newcomers.
        if self.active_neighbor_count(a) < self.cfg.max_neighbors
            && self.active_neighbor_count(b) < self.cfg.max_neighbors
            && !self.nodes[a].neighbors.contains(&b)
        {
            self.nodes[a].neighbors.push(b);
            self.nodes[b].neighbors.push(a);
        }
    }

    fn tracker_join(&mut self, joiner: usize) {
        let mut candidates: Vec<usize> = self
            .online_ids()
            .into_iter()
            .filter(|&i| i != joiner)
            .collect();
        candidates.shuffle(&mut self.rng);
        candidates.truncate(self.cfg.tracker_response);
        for c in candidates {
            self.connect(joiner, c);
        }
    }

    fn arrivals(&mut self, tick: u64) {
        while self.next_arrival <= tick as f64 {
            self.next_arrival += exp_sample(&mut self.rng, 1.0 / self.cfg.arrival_rate);
            let upload = self.cfg.peer_capacity.sample(&mut self.rng);
            let counted = tick >= self.cfg.warmup;
            if counted {
                self.result.arrivals += 1;
            }
            self.nodes.push(Node {
                online: true,
                is_publisher: false,
                bitfield: Bitfield::new(self.num_pieces),
                progress: vec![0.0; self.num_pieces],
                upload,
                neighbors: Vec::new(),
                arrived: tick,
                completed: None,
                departed: None,
                linger_until: None,
                counted,
                recv_prev: HashMap::new(),
                recv_cur: HashMap::new(),
                received_this_tick: 0.0,
                assigned: HashMap::new(),
            });
            let id = self.nodes.len() - 1;
            self.tracker_join(id);
        }
    }

    fn reannounce(&mut self) {
        // Drop connections to departed peers, then let under-connected
        // peers query the tracker again.
        for i in 0..self.nodes.len() {
            let live: Vec<usize> = self.nodes[i]
                .neighbors
                .iter()
                .copied()
                .filter(|&n| self.nodes[n].active())
                .collect();
            self.nodes[i].neighbors = live;
        }
        let lonely: Vec<usize> = (1..self.nodes.len())
            .filter(|&i| {
                self.nodes[i].active() && self.active_neighbor_count(i) < MIN_NEIGHBORS
            })
            .collect();
        for id in lonely {
            self.tracker_join(id);
        }
    }

    fn pex_round(&mut self) {
        // Each online peer gossips with one random online neighbor and
        // learns up to PEX_SHARE of its neighbors.
        for id in self.online_ids() {
            if self.nodes[id].is_publisher {
                continue;
            }
            let online_neighbors: Vec<usize> = self.nodes[id]
                .neighbors
                .iter()
                .copied()
                .filter(|&n| self.nodes[n].active())
                .collect();
            let Some(&partner) = online_neighbors.choose(&mut self.rng) else {
                continue;
            };
            let mut shared: Vec<usize> = self.nodes[partner]
                .neighbors
                .iter()
                .copied()
                .filter(|&n| n != id && self.nodes[n].active())
                .collect();
            shared.shuffle(&mut self.rng);
            shared.truncate(PEX_SHARE);
            for s in shared {
                self.connect(id, s);
            }
        }
    }

    // --- publisher ------------------------------------------------------

    fn publisher_transitions(&mut self, tick: u64) {
        let BtPublisher::OnOff {
            on_mean, off_mean, ..
        } = self.cfg.publisher
        else {
            return;
        };
        while let Some(t) = self.next_toggle {
            if t > tick as f64 {
                break;
            }
            let was_online = self.nodes[PUBLISHER].online;
            if was_online {
                self.nodes[PUBLISHER].online = false;
                if let Some(since) = self.publisher_online_since.take() {
                    self.result.publisher_intervals.push((since, tick));
                }
                self.next_toggle = Some(t + exp_sample(&mut self.rng, off_mean));
            } else {
                self.nodes[PUBLISHER].online = true;
                self.publisher_online_since = Some(tick);
                self.next_toggle = Some(t + exp_sample(&mut self.rng, on_mean));
                // Returning publisher re-announces and reconnects.
                self.tracker_join(PUBLISHER);
                self.force_rechoke = true;
            }
        }
    }

    fn retire_publisher(&mut self, tick: u64) {
        self.publisher_retired = true;
        self.nodes[PUBLISHER].online = false;
        self.nodes[PUBLISHER].departed = Some(tick);
        if let Some(since) = self.publisher_online_since.take() {
            self.result.publisher_intervals.push((since, tick));
        }
    }

    // --- transfers ------------------------------------------------------

    /// Rebuild unchoke sets from reciprocity accumulated since the last
    /// rechoke. Unchoke decisions persist until the next rechoke, giving
    /// each unchoked peer a sustained stream (mainline behavior; without
    /// persistence a publisher facing many stuck peers hands every peer an
    /// epsilon of capacity and nobody ever finishes a piece).
    fn rechoke(&mut self) {
        for n in &mut self.nodes {
            n.recv_prev = std::mem::take(&mut n.recv_cur);
        }
        self.unchoked.clear();
        for u in self.online_ids() {
            if self.nodes[u].bitfield.count() == 0 {
                continue;
            }
            let mut interested: Vec<usize> = self.nodes[u]
                .neighbors
                .iter()
                .copied()
                .filter(|&d| {
                    self.nodes[d].active()
                        && !self.nodes[d].is_publisher
                        && !self.nodes[d].is_seed()
                        && self.nodes[d].bitfield.interested_in(&self.nodes[u].bitfield)
                })
                .collect();
            if interested.is_empty() {
                continue;
            }
            // Tit-for-tat ranking by bytes received from each candidate
            // over the last rechoke window; the publisher has no
            // self-interest and unchokes uniformly at random (mainline
            // seed behavior).
            interested.shuffle(&mut self.rng);
            if !self.nodes[u].is_publisher {
                let recv = &self.nodes[u].recv_prev;
                interested.sort_by(|a, b| {
                    let ra = recv.get(a).copied().unwrap_or(0.0);
                    let rb = recv.get(b).copied().unwrap_or(0.0);
                    rb.partial_cmp(&ra).expect("finite byte counts")
                });
            }
            let regular = self.cfg.unchoke_slots.min(interested.len());
            let mut chosen: Vec<usize> = interested[..regular].to_vec();
            // Optimistic unchoke: random picks from the remainder.
            let mut rest: Vec<usize> = interested[regular..].to_vec();
            rest.shuffle(&mut self.rng);
            chosen.extend(rest.into_iter().take(self.cfg.optimistic_slots));
            self.unchoked.insert(u, chosen);
        }
    }

    /// Expire per-connection requests that have not received data within
    /// the request timeout, releasing their pieces to other connections.
    fn expire_requests(&mut self, tick: u64) {
        for d in &mut self.nodes {
            d.assigned
                .retain(|_, &mut (_, last)| tick.saturating_sub(last) < REQUEST_TIMEOUT);
        }
    }

    fn transfer_round(&mut self, tick: u64) {
        for n in &mut self.nodes {
            n.received_this_tick = 0.0;
        }

        // Plan allocations from the persistent unchoke sets, skipping
        // entries that have gone offline, completed, or lost interest.
        // Iterate uploaders in sorted order: HashMap order is seeded per
        // process and would break run-for-run determinism.
        let mut allocations: Vec<(usize, usize, f64)> = Vec::new();
        let mut uploaders: Vec<usize> = self.unchoked.keys().copied().collect();
        uploaders.sort_unstable();
        for u in uploaders {
            let downloaders = &self.unchoked[&u];
            if !self.nodes[u].active() || self.nodes[u].bitfield.count() == 0 {
                continue;
            }
            let live: Vec<usize> = downloaders
                .iter()
                .copied()
                .filter(|&d| {
                    self.nodes[d].active()
                        && !self.nodes[d].is_seed()
                        && self.nodes[d].bitfield.interested_in(&self.nodes[u].bitfield)
                })
                .collect();
            if live.is_empty() {
                continue;
            }
            let share = self.nodes[u].upload / live.len() as f64;
            for d in live {
                allocations.push((u, d, share));
            }
        }

        // Execute transfers in deterministic shuffled order.
        allocations.shuffle(&mut self.rng);
        let mut newly_complete: Vec<usize> = Vec::new();
        let mut bytes_moved = 0.0;
        for (u, d, rate) in allocations {
            if !self.nodes[d].active() || self.nodes[d].is_seed() {
                continue;
            }
            let budget = (self.cfg.download_cap - self.nodes[d].received_this_tick).max(0.0);
            let bytes = rate.min(budget);
            if bytes <= 0.0 {
                continue;
            }
            let Some(piece) = self.pick_piece(u, d, tick) else {
                continue;
            };
            self.nodes[d].assigned.insert(u, (piece, tick));
            bytes_moved += bytes;
            self.nodes[d].received_this_tick += bytes;
            self.nodes[d].recv_cur.entry(u).and_modify(|b| *b += bytes).or_insert(bytes);
            self.nodes[d].progress[piece] += bytes;
            if self.nodes[d].progress[piece] >= self.piece_len(piece) {
                self.nodes[d].bitfield.set(piece);
                self.nodes[d].assigned.retain(|_, &mut (p, _)| p != piece);
                if self.nodes[d].is_seed() {
                    newly_complete.push(d);
                }
            }
        }

        if self.cfg.record_timeline {
            self.result.aggregate_rate_curve.push((tick, bytes_moved));
        }
        for d in newly_complete {
            self.complete(d, tick);
        }
    }

    fn piece_len(&self, piece: usize) -> f64 {
        // All pieces are piece_size except possibly the last.
        let full = self.cfg.piece_size;
        if piece + 1 == self.num_pieces {
            let rem = self.cfg.content_size() - full * (self.num_pieces - 1) as f64;
            if rem > 0.0 {
                rem
            } else {
                full
            }
        } else {
            full
        }
    }

    /// Per-connection piece choice: continue the piece already assigned to
    /// this (uploader, downloader) connection; otherwise pick rarest-first
    /// (over the downloader's online neighborhood) among pieces no other
    /// connection of this downloader is fetching; if every candidate is
    /// taken, join the most-complete one (endgame mode).
    fn pick_piece(&mut self, u: usize, d: usize, tick: u64) -> Option<usize> {
        // Continue this connection's piece if still valid.
        if let Some(&(p, _)) = self.nodes[d].assigned.get(&u) {
            if !self.nodes[d].bitfield.has(p) && self.nodes[u].bitfield.has(p) {
                return Some(p);
            }
        }
        let candidates: Vec<usize> = self.nodes[d]
            .bitfield
            .missing_from(&self.nodes[u].bitfield)
            .collect();
        if candidates.is_empty() {
            self.nodes[d].assigned.remove(&u);
            return None;
        }
        let taken: Vec<usize> = self.nodes[d]
            .assigned
            .iter()
            .filter(|(&up, _)| up != u)
            .map(|(_, &(p, _))| p)
            .collect();
        let free: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|p| !taken.contains(p))
            .collect();
        // Super-seeding: the publisher pushes its least-injected piece,
        // maximizing unique-piece injection into the swarm. Partially
        // transferred pieces are finished first — abandoning them would
        // litter the downloader with fragments.
        if self.cfg.super_seed && self.nodes[u].is_publisher && !free.is_empty() {
            let choice = free
                .iter()
                .copied()
                .filter(|&p| self.nodes[d].progress[p] > 0.0)
                .max_by(|&a, &b| {
                    self.nodes[d].progress[a]
                        .partial_cmp(&self.nodes[d].progress[b])
                        .expect("finite progress")
                })
                .unwrap_or_else(|| {
                    let fresh = free
                        .iter()
                        .copied()
                        .min_by_key(|&p| self.injected[p])
                        .expect("free nonempty");
                    self.injected[fresh] += 1;
                    fresh
                });
            self.nodes[d].assigned.insert(u, (choice, tick));
            return Some(choice);
        }
        let choice = if free.is_empty() {
            // Endgame: every interesting piece is already being fetched
            // from someone; double up on the most complete one.
            candidates.into_iter().max_by(|&a, &b| {
                self.nodes[d].progress[a]
                    .partial_cmp(&self.nodes[d].progress[b])
                    .expect("finite progress")
            })
        } else if let Some(&partial) = free
            .iter()
            .filter(|&&p| self.nodes[d].progress[p] > 0.0)
            .max_by(|&&a, &&b| {
                self.nodes[d].progress[a]
                    .partial_cmp(&self.nodes[d].progress[b])
                    .expect("finite progress")
            })
        {
            // Resume the most-complete orphaned partial before starting a
            // fresh piece: short unchoke windows otherwise litter the peer
            // with fragments of many pieces and it completes none.
            Some(partial)
        } else if self.cfg.piece_selection == PieceSelection::Random {
            // Strawman policy for the selection ablation.
            free.choose(&mut self.rng).copied()
        } else if self.cfg.piece_selection == PieceSelection::InOrder {
            // Streaming-style sequential pickup.
            free.iter().copied().min()
        } else {
            // Rarest-first among the downloader's online neighborhood.
            let neighbor_ids: Vec<usize> = self.nodes[d]
                .neighbors
                .iter()
                .copied()
                .filter(|&n| self.nodes[n].active())
                .collect();
            let mut best_piece = None;
            let mut best_count = usize::MAX;
            let mut ties = 0u32;
            for &p in &free {
                let count = neighbor_ids
                    .iter()
                    .filter(|&&n| self.nodes[n].bitfield.has(p))
                    .count();
                if count < best_count {
                    best_count = count;
                    best_piece = Some(p);
                    ties = 1;
                } else if count == best_count {
                    // Reservoir-sample among ties for an unbiased pick.
                    ties += 1;
                    if self.rng.gen_range(0..ties) == 0 {
                        best_piece = Some(p);
                    }
                }
            }
            best_piece
        };
        if let Some(p) = choice {
            self.nodes[d].assigned.insert(u, (p, tick));
        }
        choice
    }

    fn complete(&mut self, d: usize, tick: u64) {
        let done_at = tick + 1; // completion lands at the end of this tick
        self.nodes[d].completed = Some(done_at);
        self.completions_total += 1;
        self.result.completion_curve.push((done_at, self.completions_total));
        if (tick as usize) < self.completions_per_tick.len() {
            self.completions_per_tick[tick as usize] += 1;
        }
        if self.nodes[d].counted {
            self.result.completions += 1;
            self.result
                .download_times
                .add((done_at - self.nodes[d].arrived) as f64);
        }
        if matches!(self.cfg.publisher, BtPublisher::UntilFirstCompletion)
            && !self.publisher_retired
        {
            self.retire_publisher(tick);
        }
        match self.cfg.linger_mean {
            Some(mean) => {
                let linger = exp_sample(&mut self.rng, mean).ceil() as u64;
                self.nodes[d].linger_until = Some(done_at + linger.max(1));
            }
            None => {
                self.nodes[d].online = false;
                self.nodes[d].departed = Some(done_at);
            }
        }
    }

    fn linger_expiry(&mut self, tick: u64) {
        for n in &mut self.nodes {
            if n.online && !n.is_publisher {
                if let Some(until) = n.linger_until {
                    if until <= tick {
                        n.online = false;
                        n.departed = Some(tick);
                    }
                }
            }
        }
    }

    fn availability_check(&mut self, tick: u64) {
        let mut union = Bitfield::new(self.num_pieces);
        for n in &self.nodes {
            if n.active() && !n.is_publisher {
                union.union_with(&n.bitfield);
                if union.is_complete() {
                    break;
                }
            }
        }
        let peer_coverage = union.count();
        if self.cfg.record_timeline {
            self.result.peer_coverage_curve.push((tick, peer_coverage));
            let mut counts: Vec<usize> = (0..self.num_pieces)
                .map(|p| {
                    self.nodes
                        .iter()
                        .skip(1)
                        .filter(|n| n.active() && n.bitfield.has(p))
                        .count()
                })
                .collect();
            self.result
                .min_replication_curve
                .push((tick, counts.iter().copied().min().unwrap_or(0)));
            if tick.is_multiple_of(60) {
                counts.sort_unstable();
                self.result.replication_snapshots.push((tick, counts));
            }
        }
        let available = self.nodes[PUBLISHER].online || peer_coverage == self.num_pieces;
        if available {
            // The availability fraction is defined over the arrival
            // window; drain ticks keep the latch for last_available_tick
            // but do not inflate the fraction.
            if tick < self.cfg.horizon {
                self.available_ticks += 1;
            }
            self.result.last_available_tick = Some(tick);
        }
    }

    fn finalize(mut self) -> BtResult {
        let horizon = self.cfg.horizon;
        if let Some(since) = self.publisher_online_since.take() {
            self.result.publisher_intervals.push((since, horizon));
        }
        self.result.availability = self.available_ticks as f64 / horizon as f64;
        self.result.in_flight_at_horizon = self
            .nodes
            .iter()
            .skip(1)
            .filter(|n| n.online)
            .count() as u64;
        if self.cfg.record_timeline {
            self.result.spans = self
                .nodes
                .iter()
                .skip(1)
                .map(|n| PeerSpan {
                    arrived: n.arrived,
                    departed: n.departed,
                    completed: n.completed,
                    final_fraction: n.bitfield.count() as f64 / self.num_pieces as f64,
                })
                .collect();
        }
        // Flash departures: max completions in any FLASH_WINDOW-tick window.
        let w = FLASH_WINDOW as usize;
        let mut max_flash = 0u64;
        for i in 0..self.completions_per_tick.len() {
            let end = (i + w).min(self.completions_per_tick.len());
            let sum: u64 = self.completions_per_tick[i..end].iter().sum();
            max_flash = max_flash.max(sum);
        }
        self.result.max_flash_departures = max_flash;
        self.result
    }
}

fn exp_sample<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    -(1.0 - rng.gen::<f64>()).ln() * mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::CapacityDistribution;

    fn always_on(k: u32, seed: u64) -> BtConfig {
        BtConfig {
            publisher: BtPublisher::AlwaysOn,
            ..BtConfig::paper_section_4_3(k, seed)
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(&always_on(1, 5));
        let b = run(&always_on(1, 5));
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.download_times.values(), b.download_times.values());
    }

    #[test]
    fn peers_complete_under_always_on_publisher() {
        let r = run(&always_on(1, 7));
        assert!(r.completions > 0, "someone must finish in 1200 s");
        // 4 MB at >= 50 kB/s aggregate: download times bounded well below
        // the horizon; availability is total.
        assert!(r.availability > 0.999);
        assert!(r.mean_download_time() < 600.0, "mean {}", r.mean_download_time());
    }

    #[test]
    fn download_time_at_least_size_over_capacity() {
        let r = run(&always_on(1, 9));
        // 4000 kB at download_cap 4000 kB/s: absolute floor 1 s; with one
        // 100 kB/s publisher the realistic floor is 40 s. Check the hard
        // physical bound holds for every peer.
        for &t in r.download_times.values() {
            assert!(t >= 4000.0 / 4000.0, "download time {t} impossibly fast");
        }
    }

    #[test]
    fn arrival_rate_respected() {
        let cfg = BtConfig {
            horizon: 3_000,
            ..always_on(2, 11)
        };
        let r = run(&cfg);
        let expected = cfg.arrival_rate * cfg.horizon as f64;
        let got = r.arrivals as f64;
        assert!(
            (got - expected).abs() < 5.0 * expected.sqrt(),
            "arrivals {got} vs {expected}"
        );
    }

    #[test]
    fn seedless_swarm_small_k_dies_large_k_sustains() {
        // The Figure 4 contrast in miniature: K=1 stops serving peers soon
        // after the publisher leaves; K=8 keeps completing downloads.
        let small = run(&BtConfig::paper_section_4_2(1, 13));
        let large = run(&BtConfig::paper_section_4_2(8, 13));
        // K=1: the swarm dies early; completions stop well before 1500 s.
        let small_late = small.completions_between(900, 1_500);
        let large_late = large.completions_between(900, 1_500);
        assert!(
            large_late > small_late,
            "self-sustaining K=8 must keep completing: late completions {large_late} vs {small_late}"
        );
        assert!(
            large.last_available_tick.unwrap_or(0) > small.last_available_tick.unwrap_or(0),
            "K=8 must stay available longer"
        );
    }

    #[test]
    fn intermittent_publisher_blocks_small_bundles() {
        // §4.3: K=1 with an on/off publisher leaves peers stuck during off
        // periods; mean download time far exceeds the 80 s service time.
        let cfg = BtConfig {
            horizon: 4_800,
            ..BtConfig::paper_section_4_3(1, 17)
        };
        let r = run(&cfg);
        assert!(r.completions > 0);
        assert!(
            r.mean_download_time() > 160.0,
            "waiting should dominate: mean {}",
            r.mean_download_time()
        );
        assert!(r.availability < 0.9);
    }

    #[test]
    fn flash_departures_shrink_with_bundling() {
        // Figure 5: blocked peers finishing together (flash departures)
        // are the K=2 signature and fade by K=4. The raw burst size grows
        // with K (more arrivals overall), so compare the burst *share*:
        // the largest 5 s window's fraction of all completions. Average
        // over seeds to damp run-to-run noise.
        let flash_share = |k: u32| -> f64 {
            (0..4)
                .map(|s| {
                    let cfg = BtConfig {
                        horizon: 2_400,
                        ..BtConfig::paper_section_4_3(k, 100 + s)
                    };
                    let r = run(&cfg);
                    let total = r.completion_curve.len().max(1) as f64;
                    r.max_flash_departures as f64 / total
                })
                .sum::<f64>()
                / 4.0
        };
        let f2 = flash_share(2);
        let f4 = flash_share(4);
        assert!(
            f2 > f4,
            "flash-departure share must shrink with K: K=2 {f2} vs K=4 {f4}"
        );
    }

    #[test]
    fn lingering_seeds_keep_swarm_available() {
        let selfish = BtConfig::paper_section_4_2(2, 23);
        let altruists = BtConfig {
            linger_mean: Some(600.0),
            ..selfish.clone()
        };
        let a = run(&selfish);
        let b = run(&altruists);
        assert!(
            b.availability >= a.availability,
            "lingering cannot hurt availability: {} vs {}",
            b.availability,
            a.availability
        );
    }

    #[test]
    fn heterogeneous_capacities_run() {
        let cfg = BtConfig {
            peer_capacity: CapacityDistribution::BitTyrant,
            ..BtConfig::paper_section_4_3(3, 29)
        };
        let r = run(&cfg);
        assert!(r.completions > 0);
    }

    #[test]
    fn timeline_spans_recorded() {
        let cfg = BtConfig {
            record_timeline: true,
            ..always_on(1, 31)
        };
        let r = run(&cfg);
        assert!(!r.spans.is_empty());
        for s in &r.spans {
            if let (Some(c), Some(d)) = (s.completed, s.departed) {
                assert!(d >= c || s.final_fraction < 1.0);
            }
            assert!(s.final_fraction >= 0.0 && s.final_fraction <= 1.0);
        }
        assert!(!r.publisher_intervals.is_empty());
    }

    #[test]
    fn in_order_selection_destroys_diversity() {
        // Streaming-style sequential pickup: every peer holds a prefix,
        // so the swarm dies the moment the publisher leaves — far faster
        // than under rarest-first.
        use crate::config::PieceSelection;
        let survival = |selection: PieceSelection| -> f64 {
            (0..3)
                .map(|s| {
                    let cfg = BtConfig {
                        piece_selection: selection,
                        record_timeline: true,
                        horizon: 2_500,
                        ..BtConfig::paper_section_4_2(6, 400 + s)
                    };
                    let r = run(&cfg);
                    let pub_end = r.publisher_intervals.first().map(|p| p.1).unwrap_or(0);
                    r.peer_coverage_curve
                        .iter()
                        .filter(|&&(t, _)| t > pub_end)
                        .take_while(|&&(_, c)| c == cfg.num_pieces())
                        .count() as f64
                })
                .sum::<f64>()
                / 3.0
        };
        let rarest = survival(PieceSelection::RarestFirst);
        let in_order = survival(PieceSelection::InOrder);
        assert!(
            in_order < rarest,
            "in-order must die faster: {in_order} vs rarest-first {rarest}"
        );
    }

    #[test]
    fn selection_policies_order_piece_injection() {
        // Average tick at which the peer swarm first covers every piece
        // (publisher always on).
        use crate::config::PieceSelection;
        let coverage_tick = |super_seed: bool, selection: PieceSelection| -> f64 {
            (0..4)
                .map(|s| {
                    let cfg = BtConfig {
                        publisher: BtPublisher::AlwaysOn,
                        super_seed,
                        piece_selection: selection,
                        record_timeline: true,
                        horizon: 2_000,
                        drain_ticks: 0,
                        ..BtConfig::paper_section_4_2(6, 300 + s)
                    };
                    let r = run(&cfg);
                    let full = cfg.num_pieces();
                    r.peer_coverage_curve
                        .iter()
                        .find(|&&(_, c)| c == full)
                        .map(|&(t, _)| t as f64)
                        .unwrap_or(2_000.0)
                })
                .sum::<f64>()
                / 4.0
        };
        let rarest = coverage_tick(false, PieceSelection::RarestFirst);
        let random = coverage_tick(false, PieceSelection::Random);
        let random_ss = coverage_tick(true, PieceSelection::Random);
        // Legout et al.: rarest-first is enough — and strictly better than
        // random selection for injection.
        assert!(
            rarest < random,
            "rarest-first must inject faster than random: {rarest} vs {random}"
        );
        // Super-seeding rescues a swarm with impaired (random) selection.
        assert!(
            random_ss < random,
            "super-seeding must help under random selection: {random_ss} vs {random}"
        );
    }

    #[test]
    fn aggregate_rate_bounded_by_total_capacity() {
        let cfg = BtConfig {
            record_timeline: true,
            horizon: 600,
            drain_ticks: 0,
            publisher: BtPublisher::AlwaysOn,
            ..BtConfig::paper_section_4_3(2, 51)
        };
        let r = run(&cfg);
        assert!(!r.aggregate_rate_curve.is_empty());
        // Peak aggregate rate cannot exceed publisher + all peers' upload
        // capacity (50 kB/s each; population bounded by arrivals).
        let max_rate = r
            .aggregate_rate_curve
            .iter()
            .map(|&(_, b)| b)
            .fold(0.0f64, f64::max);
        let cap = 100.0 + 50.0 * r.arrivals as f64;
        assert!(max_rate <= cap + 1e-6, "rate {max_rate} exceeds capacity {cap}");
        // And total bytes moved >= completed downloads * content size.
        let total: f64 = r.aggregate_rate_curve.iter().map(|&(_, b)| b).sum();
        assert!(total >= r.completions as f64 * cfg.content_size() - 1e-6);
    }

    #[test]
    fn completion_curve_is_monotone() {
        let r = run(&always_on(2, 37));
        assert!(r
            .completion_curve
            .windows(2)
            .all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
    }
}
