//! Block-level engine configuration.

use crate::capacity::CapacityDistribution;
use serde::{Deserialize, Serialize};

/// Downloader piece-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PieceSelection {
    /// Mainline's rarest-first over the neighborhood (default).
    RarestFirst,
    /// Uniformly random among interesting pieces — the strawman Legout et
    /// al. (IMC'06) compare against; used by the selection ablation.
    Random,
    /// Lowest-index first — what a streaming client would do. Destroys
    /// piece diversity: every peer holds a prefix, so the swarm's union
    /// coverage collapses to the publisher's injection frontier.
    InOrder,
}

/// Publisher behavior over the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BtPublisher {
    /// Always online (control runs).
    AlwaysOn,
    /// Exponential on/off alternation — §4.3's intermittent publisher
    /// (on 300 s at 100 kB/s, off 900 s).
    OnOff {
        /// Mean on-time in seconds.
        on_mean: f64,
        /// Mean off-time in seconds.
        off_mean: f64,
        /// Online at t = 0?
        initially_on: bool,
    },
    /// Stays until the first peer completes the full content, then leaves
    /// forever — §4.2's seedless-swarm experiment (Figure 4).
    UntilFirstCompletion,
    /// Deterministic square wave: online for `on_ticks`, offline for
    /// `off_ticks`, repeating. Unlike [`BtPublisher::OnOff`] this draws
    /// nothing from the RNG, so two runtimes with different RNG streams
    /// (the tick simulator and `swarm-net`'s live mode) share an
    /// identical availability schedule — the sim-vs-live equivalence
    /// scenarios are built on it.
    Periodic {
        /// Ticks per online phase.
        on_ticks: u64,
        /// Ticks per offline phase.
        off_ticks: u64,
        /// Online at t = 0?
        initially_on: bool,
    },
}

/// Configuration of one block-level swarm run.
///
/// Sizes are in kB and rates in kB/s; one tick is one second (the paper's
/// instrumented client logs rates every second).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BtConfig {
    /// Number of files bundled (K). Content size is `num_files·file_size`.
    pub num_files: u32,
    /// Size of each constituent file (kB). The paper uses 4 MB.
    pub file_size: f64,
    /// Piece size (kB). The default 256 kB gives 16 pieces per 4 MB file.
    pub piece_size: f64,
    /// Total peer arrival rate for the swarm (peers/s). For a K-bundle of
    /// files with per-file rate λ this is K·λ (or Σλᵢ when heterogeneous).
    pub arrival_rate: f64,
    /// Per-peer upload capacity distribution.
    pub peer_capacity: CapacityDistribution,
    /// Per-peer download cap (kB/s).
    pub download_cap: f64,
    /// Publisher upload capacity (kB/s).
    pub publisher_capacity: f64,
    /// Publisher availability process.
    pub publisher: BtPublisher,
    /// Super-seeding: the publisher serves each connection the globally
    /// least-injected piece instead of honoring rarest-first requests,
    /// maximizing the rate at which *new* pieces enter the swarm
    /// (mainline's optional super-seed mode).
    pub super_seed: bool,
    /// Downloader piece-selection policy.
    pub piece_selection: PieceSelection,
    /// Mean lingering time after completion, or `None` for selfish peers.
    pub linger_mean: Option<f64>,
    /// Regular unchoke slots per uploader (mainline uses 4).
    pub unchoke_slots: usize,
    /// Additional optimistic-unchoke slots (mainline uses 1).
    pub optimistic_slots: usize,
    /// Ticks between rechoke decisions (mainline rechokes every 10 s).
    /// Unchoke sets persist between rechokes, which is essential: it
    /// gives each unchoked peer a sustained stream instead of splitting
    /// capacity over everyone in expectation.
    pub rechoke_interval: u64,
    /// Maximum neighbors per peer.
    pub max_neighbors: usize,
    /// Peers returned by the tracker on join.
    pub tracker_response: usize,
    /// Ticks between PEX gossip rounds (0 disables PEX).
    pub pex_interval: u64,
    /// Arrival window in ticks (seconds): no peers arrive past this.
    pub horizon: u64,
    /// Extra ticks after the horizon during which the swarm keeps running
    /// so in-flight peers can finish (the paper's controller dispatches
    /// arrivals for the run length but collects traces after clients
    /// complete). 0 stops the world exactly at the horizon; peers still
    /// online when the drain budget runs out are censored.
    pub drain_ticks: u64,
    /// Peers arriving before this tick are excluded from per-peer metrics.
    pub warmup: u64,
    /// RNG seed.
    pub seed: u64,
    /// Record per-entity timeline segments (Figure 5).
    pub record_timeline: bool,
    /// Debugging escape hatch: execute every tick densely instead of
    /// fast-forwarding across provably quiescent spans. The fast-forward
    /// path is bit-for-bit equivalent to the dense loop (same RNG stream,
    /// same `BtResult`, same telemetry counters), so this should only
    /// matter when bisecting a suspected detector bug.
    #[serde(default)]
    pub disable_fast_forward: bool,
    /// Scripted arrival schedule: explicit `(tick, upload_capacity)`
    /// pairs consumed in ascending tick order, replacing the Poisson
    /// process entirely (no arrival-time or capacity RNG draws). `None`
    /// (the default) keeps the stochastic process — and the RNG stream —
    /// exactly as before. Used by the sim-vs-live equivalence scenarios,
    /// which need both runtimes to see the same peers at the same ticks
    /// with the same capacities.
    #[serde(default)]
    pub scripted_arrivals: Option<Vec<(u64, f64)>>,
}

impl BtConfig {
    /// A §4.3-style configuration: K-file bundle of 4 MB files, per-file
    /// arrival rate λ = 1/60, homogeneous 50 kB/s peers, one 100 kB/s
    /// publisher alternating on 300 s / off 900 s.
    pub fn paper_section_4_3(k: u32, seed: u64) -> BtConfig {
        BtConfig {
            num_files: k,
            file_size: 4_000.0,
            piece_size: 250.0,
            arrival_rate: k as f64 / 60.0,
            peer_capacity: CapacityDistribution::Uniform(50.0),
            download_cap: 4_000.0,
            publisher_capacity: 100.0,
            publisher: BtPublisher::OnOff {
                on_mean: 300.0,
                off_mean: 900.0,
                initially_on: true,
            },
            super_seed: false,
            piece_selection: PieceSelection::RarestFirst,
            linger_mean: None,
            unchoke_slots: 4,
            optimistic_slots: 1,
            rechoke_interval: 10,
            max_neighbors: 55,
            tracker_response: 40,
            pex_interval: 30,
            horizon: 1_200,
            drain_ticks: 3_600,
            warmup: 0,
            seed,
            record_timeline: false,
            disable_fast_forward: false,
            scripted_arrivals: None,
        }
    }

    /// A §4.2-style configuration: K-file bundle, per-file λ = 1/150,
    /// 33 kB/s peers, 50 kB/s publisher that leaves after the first full
    /// download, 1500 s horizon.
    pub fn paper_section_4_2(k: u32, seed: u64) -> BtConfig {
        BtConfig {
            num_files: k,
            file_size: 4_000.0,
            piece_size: 250.0,
            arrival_rate: k as f64 / 150.0,
            peer_capacity: CapacityDistribution::Uniform(33.0),
            download_cap: 4_000.0,
            publisher_capacity: 50.0,
            publisher: BtPublisher::UntilFirstCompletion,
            super_seed: false,
            piece_selection: PieceSelection::RarestFirst,
            linger_mean: None,
            unchoke_slots: 4,
            optimistic_slots: 1,
            rechoke_interval: 10,
            max_neighbors: 55,
            tracker_response: 40,
            pex_interval: 30,
            horizon: 1_500,
            drain_ticks: 0,
            warmup: 0,
            seed,
            record_timeline: false,
            disable_fast_forward: false,
            scripted_arrivals: None,
        }
    }

    /// Total content size (kB).
    pub fn content_size(&self) -> f64 {
        self.num_files as f64 * self.file_size
    }

    /// Number of pieces the content splits into (last piece may be short).
    pub fn num_pieces(&self) -> usize {
        (self.content_size() / self.piece_size).ceil() as usize
    }

    /// Panic unless the configuration is self-consistent.
    pub fn validate(&self) {
        assert!(self.num_files >= 1, "need at least one file");
        assert!(self.file_size > 0.0 && self.file_size.is_finite());
        assert!(self.piece_size > 0.0 && self.piece_size <= self.content_size());
        assert!(self.arrival_rate > 0.0 && self.arrival_rate.is_finite());
        assert!(self.download_cap > 0.0);
        assert!(self.publisher_capacity > 0.0 && self.publisher_capacity.is_finite());
        assert!(
            self.unchoke_slots + self.optimistic_slots >= 1,
            "need at least one slot"
        );
        assert!(
            self.rechoke_interval >= 1,
            "rechoke interval must be at least one tick"
        );
        assert!(self.max_neighbors >= 1);
        assert!(self.tracker_response >= 1);
        assert!(self.horizon > 0);
        assert!(self.warmup < self.horizon, "warmup must precede horizon");
        if let Some(l) = self.linger_mean {
            assert!(l > 0.0 && l.is_finite());
        }
        match self.publisher {
            BtPublisher::OnOff {
                on_mean, off_mean, ..
            } => {
                assert!(on_mean > 0.0 && on_mean.is_finite());
                assert!(off_mean > 0.0 && off_mean.is_finite());
            }
            BtPublisher::Periodic {
                on_ticks,
                off_ticks,
                ..
            } => {
                assert!(on_ticks >= 1, "periodic on-phase must last a tick");
                assert!(off_ticks >= 1, "periodic off-phase must last a tick");
            }
            BtPublisher::AlwaysOn | BtPublisher::UntilFirstCompletion => {}
        }
        if let Some(script) = &self.scripted_arrivals {
            let mut prev = 0u64;
            for &(tick, upload) in script {
                assert!(tick >= prev, "scripted arrivals must be tick-sorted");
                assert!(tick < self.horizon, "scripted arrival past horizon");
                assert!(upload > 0.0 && upload.is_finite());
                prev = tick;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets_are_valid() {
        for k in [1u32, 4, 10] {
            BtConfig::paper_section_4_2(k, 0).validate();
            BtConfig::paper_section_4_3(k, 0).validate();
        }
    }

    #[test]
    fn piece_count_scales_with_bundle() {
        let c1 = BtConfig::paper_section_4_3(1, 0);
        let c4 = BtConfig::paper_section_4_3(4, 0);
        assert_eq!(c1.num_pieces(), 16);
        assert_eq!(c4.num_pieces(), 64);
        assert_eq!(c4.content_size(), 16_000.0);
    }

    #[test]
    fn arrival_rate_sums_per_file_demand() {
        let c3 = BtConfig::paper_section_4_3(3, 0);
        assert!((c3.arrival_rate - 3.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn periodic_publisher_and_scripted_arrivals_validate() {
        let mut c = BtConfig::paper_section_4_3(1, 0);
        c.publisher = BtPublisher::Periodic {
            on_ticks: 150,
            off_ticks: 60,
            initially_on: true,
        };
        c.scripted_arrivals = Some(vec![(0, 50.0), (3, 40.0), (3, 40.0), (10, 25.0)]);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "tick-sorted")]
    fn rejects_unsorted_script() {
        let mut c = BtConfig::paper_section_4_3(1, 0);
        c.scripted_arrivals = Some(vec![(10, 50.0), (3, 40.0)]);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "past horizon")]
    fn rejects_script_past_horizon() {
        let mut c = BtConfig::paper_section_4_3(1, 0);
        c.scripted_arrivals = Some(vec![(c.horizon, 50.0)]);
        c.validate();
    }

    #[test]
    fn scripted_arrivals_default_to_none_in_serde() {
        // Old serialized configs (without the field) must keep decoding.
        let c = BtConfig::paper_section_4_3(1, 7);
        let mut v = serde_json::to_value(&c).expect("encode");
        if let serde_json::Value::Object(map) = &mut v {
            map.remove("scripted_arrivals");
        }
        let back: BtConfig = serde_json::from_value(v).expect("decode");
        assert_eq!(back, c);
    }

    #[test]
    #[should_panic(expected = "warmup must precede horizon")]
    fn rejects_warmup_past_horizon() {
        let mut c = BtConfig::paper_section_4_3(1, 0);
        c.warmup = c.horizon;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn rejects_zero_slots() {
        let mut c = BtConfig::paper_section_4_3(1, 0);
        c.unchoke_slots = 0;
        c.optimistic_slots = 0;
        c.validate();
    }
}
