//! Metrics collected by the block-level engine.

use serde::{Deserialize, Serialize};
use swarm_stats::Samples;

/// One peer's presence record, for Figure-5-style timelines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeerSpan {
    /// Arrival tick.
    pub arrived: u64,
    /// Departure tick (completion or linger end), or `None` if still
    /// online at the horizon.
    pub departed: Option<u64>,
    /// Tick at which the download completed, if it did.
    pub completed: Option<u64>,
    /// Fraction of the content held at departure/horizon.
    pub final_fraction: f64,
}

/// Result of one block-level run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BtResult {
    /// Download times (s) of completed peers that arrived post-warmup.
    pub download_times: Samples,
    /// Peers that arrived (post-warmup).
    pub arrivals: u64,
    /// Completions among post-warmup arrivals.
    pub completions: u64,
    /// `(tick, cumulative completions)` — Figure 4's series (all peers).
    pub completion_curve: Vec<(u64, u64)>,
    /// Fraction of ticks on which the content was fully available (the
    /// publisher online, or every piece present in the union of online
    /// peers' bitfields).
    pub availability: f64,
    /// Tick of the last tick-with-full-availability, if any.
    pub last_available_tick: Option<u64>,
    /// Per-peer spans for timeline rendering.
    pub spans: Vec<PeerSpan>,
    /// Publisher online intervals `(start, end)` in ticks.
    pub publisher_intervals: Vec<(u64, u64)>,
    /// Largest number of completions within any 5-tick window — the
    /// "flash departure" signature of Figure 5(a): blocked peers all
    /// finish together when the publisher returns.
    pub max_flash_departures: u64,
    /// Peers still online (downloading or lingering) at the horizon.
    pub in_flight_at_horizon: u64,
    /// `(tick, pieces held by at least one online peer)` — recorded when
    /// `record_timeline` is set; shows piece extinction after the
    /// publisher leaves (Figure 4's availability story).
    pub peer_coverage_curve: Vec<(u64, usize)>,
    /// `(tick, minimum per-piece holder count among online peers)` —
    /// recorded when `record_timeline` is set; the swarm's replication
    /// safety margin (0 = some piece exists only at the publisher).
    pub min_replication_curve: Vec<(u64, usize)>,
    /// Sorted per-piece holder counts sampled every 60 ticks (recorded
    /// when `record_timeline` is set): the replication-balance histogram.
    pub replication_snapshots: Vec<(u64, Vec<usize>)>,
    /// Per-second swarm-aggregate transfer rate (kB/s) — the sum of all
    /// bytes moved each tick, the engine's equivalent of the paper's
    /// instrumented per-second client logs (recorded when
    /// `record_timeline` is set).
    pub aggregate_rate_curve: Vec<(u64, f64)>,
}

impl BtResult {
    /// Mean download time; `NaN` if nothing completed.
    pub fn mean_download_time(&self) -> f64 {
        self.download_times.mean()
    }

    /// Completions within the window `[from, to)` ticks (Figure 4 reads
    /// the curve between 0 and 1500 s).
    pub fn completions_between(&self, from: u64, to: u64) -> u64 {
        let at = |t: u64| -> u64 {
            self.completion_curve
                .iter()
                .take_while(|(tick, _)| *tick < t)
                .last()
                .map(|&(_, n)| n)
                .unwrap_or(0)
        };
        at(to).saturating_sub(at(from))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completions_between_windows() {
        let r = BtResult {
            completion_curve: vec![(10, 1), (20, 2), (30, 3), (100, 4)],
            ..Default::default()
        };
        assert_eq!(r.completions_between(0, 15), 1);
        assert_eq!(r.completions_between(15, 35), 2);
        assert_eq!(r.completions_between(0, 1000), 4);
        assert_eq!(r.completions_between(40, 50), 0);
    }

    #[test]
    fn mean_download_time_nan_when_empty() {
        assert!(BtResult::default().mean_download_time().is_nan());
    }
}
