//! Replicated block-level experiments.
//!
//! The paper's §4.3 experiments run "10 runs of 1200 s each" per bundle
//! size; this module parallelizes replications and aggregates download
//! times across runs.

use crate::config::BtConfig;
use crate::engine::run;
use crate::metrics::BtResult;
use swarm_stats::{BoxPlot, Samples};

/// Aggregate of independent replications of one configuration.
#[derive(Debug, Clone)]
pub struct BtReplicated {
    /// Download times pooled across runs.
    pub download_times: Samples,
    /// Mean availability across runs.
    pub availability: f64,
    /// Per-run results (timeline and curve inspection).
    pub runs: Vec<BtResult>,
}

impl BtReplicated {
    /// Pooled mean download time.
    pub fn mean_download_time(&self) -> f64 {
        self.download_times.mean()
    }

    /// Pooled box plot (quartiles and 5/95 percentiles, Figure 6(c)).
    pub fn box_plot(&mut self) -> BoxPlot {
        self.download_times.box_plot()
    }
}

/// Run `n` replications (seeds `seed..seed+n`) on up to `threads` threads.
pub fn replicate(cfg: &BtConfig, n: usize, threads: usize) -> BtReplicated {
    assert!(n >= 1, "need at least one replication");
    assert!(threads >= 1, "need at least one thread");
    cfg.validate();

    let results: Vec<BtResult> = swarm_stats::parallel::run_indexed(n, threads, |i| {
        run(&BtConfig {
            seed: cfg.seed.wrapping_add(i as u64),
            ..cfg.clone()
        })
    });

    let mut download_times = Samples::new();
    let mut availability = 0.0;
    for r in &results {
        download_times.extend_from(&r.download_times);
        availability += r.availability;
    }
    availability /= results.len() as f64;
    BtReplicated {
        download_times,
        availability,
        runs: results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BtPublisher;

    fn cfg() -> BtConfig {
        BtConfig {
            horizon: 600,
            publisher: BtPublisher::AlwaysOn,
            ..BtConfig::paper_section_4_3(1, 41)
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let s = replicate(&cfg(), 3, 1);
        let p = replicate(&cfg(), 3, 3);
        assert_eq!(s.download_times.values(), p.download_times.values());
        assert_eq!(s.availability, p.availability);
    }

    #[test]
    fn uneven_split_equals_serial() {
        // n not divisible by threads: 5 runs over 2 threads leaves one
        // thread with an extra replication; order and pooling must not
        // depend on how the work was chunked.
        let s = replicate(&cfg(), 5, 1);
        let p = replicate(&cfg(), 5, 2);
        assert_eq!(s.download_times.values(), p.download_times.values());
        assert_eq!(s.availability, p.availability);
        assert_eq!(s.runs.len(), p.runs.len());
    }

    #[test]
    fn more_threads_than_runs_equals_serial() {
        // threads > n: the surplus threads have nothing to do and must
        // not perturb ordering or results.
        let s = replicate(&cfg(), 2, 1);
        let p = replicate(&cfg(), 2, 8);
        assert_eq!(s.download_times.values(), p.download_times.values());
        assert_eq!(s.availability, p.availability);
        assert_eq!(p.runs.len(), 2);
    }

    #[test]
    fn pools_across_runs() {
        let one = replicate(&cfg(), 1, 1);
        let four = replicate(&cfg(), 4, 2);
        assert!(four.download_times.len() > one.download_times.len());
        assert_eq!(four.runs.len(), 4);
    }
}
