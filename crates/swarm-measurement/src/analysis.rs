//! §2.3.2 — bundled content is more available.
//!
//! Two case studies from the paper:
//!
//! * **Books**: 62% of all book swarms had no seed at the snapshot vs 36%
//!   for collections (25% after folding subset collections into their
//!   available super-collections); collections also see more downloads
//!   (4,216 vs 2,578 on average).
//! * **"Friends"**: 52 swarms for one TV show; the available ones are
//!   overwhelmingly bundles.

use crate::bundling::is_collection;
use crate::catalog::{Category, Swarm};
use crate::observe::{expected_downloads, stationary_availability};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Snapshot statistics for book swarms (the §2.3.2 numbers).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BookStats {
    /// Book swarms examined.
    pub total: u64,
    /// Fraction of all book swarms with no seed at the snapshot.
    pub unavailable_all: f64,
    /// Collections examined.
    pub collections: u64,
    /// Fraction of collections with no seed.
    pub unavailable_collections: f64,
    /// Fraction of collections with no seed *and no available
    /// super-collection* (the paper's effective 25%).
    pub unavailable_collections_effective: f64,
    /// Mean expected downloads for non-collection swarms.
    pub downloads_typical: f64,
    /// Mean expected downloads for collections.
    pub downloads_collections: f64,
}

/// Compute the book-availability contrast at a snapshot where each swarm
/// has its generated age. Seed presence is sampled from the stationary
/// availability of each swarm's seed process.
pub fn book_stats<R: Rng + ?Sized>(swarms: &[Swarm], rng: &mut R) -> BookStats {
    // Sample the snapshot seed-presence of every book swarm once.
    let mut seeded = vec![false; swarms.len()];
    for s in swarms.iter().filter(|s| s.category == Category::Books) {
        let p = stationary_availability(s, s.age_days);
        seeded[s.id as usize] = rng.gen::<f64>() < p;
    }
    book_stats_with(swarms, &seeded, |s| expected_downloads(s, 7))
}

/// The book contrast over externally supplied snapshot observations:
/// `seeded[id]` says whether swarm `id` had a seed at the snapshot and
/// `downloads` scores each swarm's download volume. [`book_stats`] feeds
/// it stationary samples and the closed-form expectation; the live
/// catalog runtime (`swarm-catalog`) feeds it the *measured* end-of-run
/// seed state and download counts — same folding and aggregation either
/// way.
pub fn book_stats_with(
    swarms: &[Swarm],
    seeded: &[bool],
    downloads: impl Fn(&Swarm) -> f64,
) -> BookStats {
    assert_eq!(seeded.len(), swarms.len(), "one seed flag per swarm");
    let books: Vec<&Swarm> = swarms
        .iter()
        .filter(|s| s.category == Category::Books)
        .collect();
    assert!(!books.is_empty(), "catalog has no book swarms");

    let mut total = 0u64;
    let mut unavailable = 0u64;
    let mut coll_total = 0u64;
    let mut coll_unavailable = 0u64;
    let mut coll_unavailable_eff = 0u64;
    let mut dl_typical = (0.0, 0u64);
    let mut dl_coll = (0.0, 0u64);

    for s in &books {
        total += 1;
        let has_seed = seeded[s.id as usize];
        if !has_seed {
            unavailable += 1;
        }
        let dl = downloads(s);
        if is_collection(s) {
            coll_total += 1;
            dl_coll.0 += dl;
            dl_coll.1 += 1;
            if !has_seed {
                coll_unavailable += 1;
                // Folding rule: content is effectively available if a
                // super-collection containing this one has a seed.
                let rescued = s.subset_of.map(|sup| seeded[sup as usize]).unwrap_or(false);
                if !rescued {
                    coll_unavailable_eff += 1;
                }
            }
        } else {
            dl_typical.0 += dl;
            dl_typical.1 += 1;
        }
    }

    BookStats {
        total,
        unavailable_all: unavailable as f64 / total as f64,
        collections: coll_total,
        unavailable_collections: coll_unavailable as f64 / coll_total.max(1) as f64,
        unavailable_collections_effective: coll_unavailable_eff as f64 / coll_total.max(1) as f64,
        downloads_typical: dl_typical.0 / dl_typical.1.max(1) as f64,
        downloads_collections: dl_coll.0 / dl_coll.1.max(1) as f64,
    }
}

/// The "Friends" case study: counts over the show's swarms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShowCaseStudy {
    /// Swarms for the show.
    pub total: u64,
    /// Swarms with at least one seed.
    pub available: u64,
    /// Available swarms that are bundles.
    pub available_bundles: u64,
    /// Unavailable swarms that are bundles.
    pub unavailable_bundles: u64,
}

/// Generate a Friends-style population — `total` swarms for one TV show,
/// a share of which are season bundles — and sample a snapshot. Bundles
/// aggregate episode demand and attract more committed publishers
/// (`commit` multiplies both the publisher arrival rate and residence),
/// exactly the structural asymmetry the paper observes: season packs of
/// a long-running show stay seeded, single episodes do not.
pub fn show_case_study<R: Rng + ?Sized>(
    total: u64,
    bundle_share: f64,
    rng: &mut R,
) -> ShowCaseStudy {
    let population = friends_population(total, bundle_share, rng);
    let seeded: Vec<bool> = population
        .iter()
        .map(|(swarm, _)| {
            let p = stationary_availability(swarm, swarm.age_days);
            rng.gen::<f64>() < p
        })
        .collect();
    show_case_counts(&population, &seeded)
}

/// Generate the Friends-style population itself: `total` swarms for one
/// TV show, each flagged as a season bundle or a single episode. Split
/// out of [`show_case_study`] so the live catalog runtime can run the
/// same population through its sharded engine and derive the snapshot
/// from *simulated* seed presence instead of a stationary sample.
pub fn friends_population<R: Rng + ?Sized>(
    total: u64,
    bundle_share: f64,
    rng: &mut R,
) -> Vec<(Swarm, bool)> {
    assert!(total > 0);
    assert!((0.0..=1.0).contains(&bundle_share));
    (0..total)
        .map(|i| {
            let is_bundle = rng.gen::<f64>() < bundle_share;
            let episodes = if is_bundle { rng.gen_range(6..=24) } else { 1 };
            let demand = 0.15 * episodes as f64; // per-episode demand aggregated
            let commit = if is_bundle { 4.0 } else { 1.0 };
            let swarm = Swarm {
                id: i,
                category: Category::Tv,
                title: format!("friends-{i}"),
                files: Vec::new(),
                age_days: 200.0,
                demand,
                publisher_rate: commit * 0.8,
                publisher_residence: commit * 15.0,
                altruist_rate: 0.05 * demand,
                altruist_residence: 2.0,
                subset_of: None,
            };
            (swarm, is_bundle)
        })
        .collect()
}

/// Tally a Friends population against per-swarm snapshot seed flags
/// (`seeded[i]` corresponds to `population[i]`).
pub fn show_case_counts(population: &[(Swarm, bool)], seeded: &[bool]) -> ShowCaseStudy {
    assert_eq!(population.len(), seeded.len());
    let mut stats = ShowCaseStudy {
        total: population.len() as u64,
        available: 0,
        available_bundles: 0,
        unavailable_bundles: 0,
    };
    for ((_, is_bundle), &has_seed) in population.iter().zip(seeded) {
        if has_seed {
            stats.available += 1;
            if *is_bundle {
                stats.available_bundles += 1;
            }
        } else if *is_bundle {
            stats.unavailable_bundles += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{generate_catalog, CatalogConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn book_contrast_matches_paper_direction() {
        let swarms = generate_catalog(&CatalogConfig {
            scale: 0.02,
            seed: 41,
        });
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        let stats = book_stats(&swarms, &mut rng);

        // Paper: 62% of book swarms unavailable vs 36% of collections,
        // 25% effective. Direction and rough magnitudes must hold.
        assert!(
            stats.unavailable_all > stats.unavailable_collections,
            "collections must be more available: {} vs {}",
            stats.unavailable_all,
            stats.unavailable_collections
        );
        assert!(stats.unavailable_collections_effective <= stats.unavailable_collections);
        assert!(
            (0.4..0.9).contains(&stats.unavailable_all),
            "overall unavailability {} out of plausible range",
            stats.unavailable_all
        );
        // Paper: collections see more downloads (4,216 vs 2,578).
        assert!(
            stats.downloads_collections > stats.downloads_typical,
            "collections must out-download typical swarms"
        );
    }

    #[test]
    fn friends_case_study_shape() {
        // The paper: 52 swarms, 23 available (21 bundles) vs 29
        // unavailable (7 bundles). With the paper's observed ~54% bundle
        // share, availability must concentrate in bundles.
        let mut rng = ChaCha8Rng::seed_from_u64(47);
        // Average 30 trials of 52-swarm populations to tame small-sample
        // noise, then check the aggregate.
        let mut avail_bundle_frac = 0.0;
        let mut unavail_bundle_frac = 0.0;
        for _ in 0..30 {
            let s = show_case_study(52, 0.54, &mut rng);
            if s.available > 0 {
                avail_bundle_frac += s.available_bundles as f64 / s.available as f64;
            }
            let unavailable = s.total - s.available;
            if unavailable > 0 {
                unavail_bundle_frac += s.unavailable_bundles as f64 / unavailable as f64;
            }
        }
        avail_bundle_frac /= 30.0;
        unavail_bundle_frac /= 30.0;
        assert!(
            avail_bundle_frac > unavail_bundle_frac + 0.15,
            "available swarms must be predominantly bundles: {avail_bundle_frac} vs {unavail_bundle_frac}"
        );
    }

    #[test]
    fn show_case_study_counts_consistent() {
        let mut rng = ChaCha8Rng::seed_from_u64(53);
        let s = show_case_study(52, 0.5, &mut rng);
        assert_eq!(s.total, 52);
        assert!(s.available <= s.total);
        assert!(s.available_bundles <= s.available);
        assert!(s.unavailable_bundles <= s.total - s.available);
    }
}
