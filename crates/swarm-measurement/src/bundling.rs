//! Extension-based bundle classification (§2.3.1).
//!
//! The paper detects bundling automatically in three categories by
//! counting files with known content extensions: two or more `.mp3`-like
//! files make a music bundle, `.mpg`-like a TV bundle, `.pdf`-like a book
//! bundle; book torrents with "collection" in the title are collections.

use crate::catalog::{Category, Swarm};
use serde::{Deserialize, Serialize};

/// Extensions that identify *content* (vs decoys) per §2.3.1.
fn content_extensions(cat: Category) -> &'static [&'static str] {
    match cat {
        Category::Music => &["mp3", "mid", "wav"],
        Category::Tv => &["mpg", "avi"],
        Category::Books => &["pdf", "djvu"],
        // The paper only classifies the three categories above; others
        // return an empty set and are never classified as bundles.
        _ => &[],
    }
}

/// Number of recognized content files in the swarm.
pub fn content_file_count(swarm: &Swarm) -> usize {
    let exts = content_extensions(swarm.category);
    swarm
        .files
        .iter()
        .filter(|f| exts.contains(&f.extension.as_str()))
        .count()
}

/// §2.3.1 rule: a swarm is a bundle if it has two or more files with the
/// category's known content extensions.
pub fn is_bundle(swarm: &Swarm) -> bool {
    content_file_count(swarm) >= 2
}

/// §2.3.1 rule for books: torrents with "collection" in the title.
pub fn is_collection(swarm: &Swarm) -> bool {
    swarm.category == Category::Books && swarm.title.to_lowercase().contains("collection")
}

/// Per-category bundling-extent statistics (the §2.3.1 table).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BundlingExtent {
    /// Swarms examined.
    pub total: u64,
    /// Swarms classified as bundles by the extension rule.
    pub bundles: u64,
    /// Swarms classified as collections (books only).
    pub collections: u64,
}

impl BundlingExtent {
    /// Bundled fraction.
    pub fn bundle_fraction(&self) -> f64 {
        self.bundles as f64 / self.total as f64
    }
}

/// Classify every swarm of `cat` in the catalog.
pub fn bundling_extent(swarms: &[Swarm], cat: Category) -> BundlingExtent {
    let mut ext = BundlingExtent {
        total: 0,
        bundles: 0,
        collections: 0,
    };
    for s in swarms.iter().filter(|s| s.category == cat) {
        ext.total += 1;
        if is_bundle(s) {
            ext.bundles += 1;
        }
        if is_collection(s) {
            ext.collections += 1;
        }
    }
    ext
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{generate_catalog, CatalogConfig, FileEntry};

    fn swarm_with(cat: Category, exts: &[&str], title: &str) -> Swarm {
        Swarm {
            id: 0,
            category: cat,
            title: title.to_string(),
            files: exts
                .iter()
                .enumerate()
                .map(|(i, e)| FileEntry {
                    name: format!("f{i}.{e}"),
                    extension: e.to_string(),
                    size_kb: 1000.0,
                })
                .collect(),
            age_days: 0.0,
            demand: 1.0,
            publisher_rate: 0.01,
            publisher_residence: 10.0,
            altruist_rate: 0.01,
            altruist_residence: 1.0,
            subset_of: None,
        }
    }

    #[test]
    fn two_mp3s_make_a_music_bundle() {
        assert!(is_bundle(&swarm_with(
            Category::Music,
            &["mp3", "mp3"],
            "x"
        )));
        assert!(!is_bundle(&swarm_with(Category::Music, &["mp3"], "x")));
    }

    #[test]
    fn decoys_do_not_count() {
        let s = swarm_with(Category::Music, &["mp3", "nfo", "jpg", "txt"], "x");
        assert!(!is_bundle(&s));
        assert_eq!(content_file_count(&s), 1);
    }

    #[test]
    fn movies_never_classified() {
        // The paper skips movie bundles (DVD file sets are ambiguous).
        let s = swarm_with(Category::Movies, &["avi", "avi", "avi"], "x");
        assert!(!is_bundle(&s));
    }

    #[test]
    fn collection_keyword_detection() {
        assert!(is_collection(&swarm_with(
            Category::Books,
            &["pdf"],
            "Ultimate Math Collection (1)"
        )));
        assert!(!is_collection(&swarm_with(
            Category::Books,
            &["pdf"],
            "a book"
        )));
        // keyword in another category does not count
        assert!(!is_collection(&swarm_with(
            Category::Music,
            &["mp3"],
            "collection of hits"
        )));
    }

    #[test]
    fn extent_matches_paper_shape() {
        let swarms = generate_catalog(&CatalogConfig {
            scale: 0.01,
            seed: 11,
        });
        let music = bundling_extent(&swarms, Category::Music);
        let tv = bundling_extent(&swarms, Category::Tv);
        let books = bundling_extent(&swarms, Category::Books);
        // Paper: 72.4% of music, 15.8% of TV, 10.7% of book swarms bundled.
        assert!(
            (music.bundle_fraction() - 0.724).abs() < 0.05,
            "music fraction {}",
            music.bundle_fraction()
        );
        assert!(
            (tv.bundle_fraction() - 0.158).abs() < 0.04,
            "tv fraction {}",
            tv.bundle_fraction()
        );
        assert!(
            (books.bundle_fraction() - 0.107).abs() < 0.04,
            "books fraction {}",
            books.bundle_fraction()
        );
        assert!(books.collections > 0);
        // Collections are a small share of book bundles (841/7111).
        assert!(books.collections < books.bundles);
    }
}
