//! Measurement-bias analysis: what if the agents miss seeds?
//!
//! The paper's monitoring agents discover peers through the tracker and
//! PEX (§2.2) and classify seeds from bitmaps. Discovery is not exhaustive
//! — an agent can miss an online seed in a given sample — which biases the
//! measured availability *downward*. This module quantifies that bias:
//! it degrades a ground-truth seed-presence trace through an imperfect
//! observer and compares the measured availability CDF against the truth.
//!
//! The headline finding (mirroring the robustness the paper implicitly
//! relies on): moderate discovery probabilities shift the CDF but do not
//! change its *shape* — the "most swarms are mostly unavailable"
//! conclusion survives even poor observers.

use crate::catalog::Swarm;
use crate::observe::{availability_fraction, monitor};
use rand::Rng;
use serde::{Deserialize, Serialize};
use swarm_stats::Ecdf;

/// An imperfect observer: each hourly sample independently detects an
/// online seed with probability `detection`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Observer {
    /// Per-sample probability of discovering at least one online seed
    /// when one exists. 1.0 is a perfect observer.
    pub detection: f64,
}

impl Observer {
    /// A new observer. `detection` must lie in (0, 1].
    pub fn new(detection: f64) -> Self {
        assert!(
            detection > 0.0 && detection <= 1.0,
            "detection must be in (0,1], got {detection}"
        );
        Observer { detection }
    }

    /// Degrade a ground-truth trace: true `false` samples stay `false`
    /// (the observer never hallucinates seeds), true `true` samples are
    /// seen with probability `detection`.
    pub fn observe<R: Rng + ?Sized>(&self, truth: &[bool], rng: &mut R) -> Vec<bool> {
        truth
            .iter()
            .map(|&up| up && rng.gen::<f64>() < self.detection)
            .collect()
    }
}

/// Paired true/measured availability study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BiasStudy {
    /// Detection probability used.
    pub detection: f64,
    /// CDF of true per-swarm availability.
    pub true_cdf: Ecdf,
    /// CDF of measured per-swarm availability.
    pub measured_cdf: Ecdf,
}

impl BiasStudy {
    /// Kolmogorov–Smirnov distance between measured and true CDFs — the
    /// size of the measurement bias.
    pub fn ks_bias(&self) -> f64 {
        self.true_cdf.ks_distance(&self.measured_cdf)
    }

    /// Mean downward shift in per-swarm availability.
    pub fn mean_shift(&self) -> f64 {
        let t: f64 =
            self.true_cdf.sorted_values().iter().sum::<f64>() / self.true_cdf.len().max(1) as f64;
        let m: f64 = self.measured_cdf.sorted_values().iter().sum::<f64>()
            / self.measured_cdf.len().max(1) as f64;
        t - m
    }
}

/// Monitor every swarm for `months` months through an imperfect observer
/// and report true-vs-measured availability CDFs.
pub fn bias_study<R: Rng + ?Sized>(
    swarms: &[Swarm],
    months: u32,
    observer: Observer,
    rng: &mut R,
) -> BiasStudy {
    let mut true_av = Vec::with_capacity(swarms.len());
    let mut meas_av = Vec::with_capacity(swarms.len());
    for s in swarms {
        let truth = monitor(s, months, rng);
        let seen = observer.observe(&truth, rng);
        true_av.push(availability_fraction(&truth));
        meas_av.push(availability_fraction(&seen));
    }
    BiasStudy {
        detection: observer.detection,
        true_cdf: Ecdf::new(true_av),
        measured_cdf: Ecdf::new(meas_av),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{generate_catalog, CatalogConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn swarms() -> Vec<Swarm> {
        generate_catalog(&CatalogConfig {
            scale: 0.001,
            seed: 31,
        })
    }

    #[test]
    fn perfect_observer_measures_the_truth() {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let study = bias_study(&swarms(), 2, Observer::new(1.0), &mut rng);
        assert_eq!(study.ks_bias(), 0.0);
        assert!(study.mean_shift().abs() < 1e-12);
    }

    #[test]
    fn observer_never_hallucinates() {
        let mut rng = ChaCha8Rng::seed_from_u64(35);
        let obs = Observer::new(0.5);
        let truth = vec![false; 100];
        let seen = obs.observe(&truth, &mut rng);
        assert!(seen.iter().all(|&s| !s));
    }

    #[test]
    fn bias_grows_as_detection_falls() {
        let sw = swarms();
        let bias = |det: f64| {
            let mut rng = ChaCha8Rng::seed_from_u64(37);
            bias_study(&sw, 2, Observer::new(det), &mut rng).mean_shift()
        };
        let b90 = bias(0.9);
        let b50 = bias(0.5);
        assert!(b90 >= 0.0, "bias is downward: {b90}");
        assert!(b50 > b90, "lower detection must bias more: {b50} vs {b90}");
    }

    #[test]
    fn conclusions_survive_moderate_bias() {
        // "Most swarms are mostly unavailable" holds for the measured CDF
        // whenever it holds for the truth: the observer only moves mass
        // toward *lower* availability.
        let sw = swarms();
        let mut rng = ChaCha8Rng::seed_from_u64(39);
        let study = bias_study(&sw, 3, Observer::new(0.8), &mut rng);
        let truth_mostly_off = study.true_cdf.eval(0.2);
        let measured_mostly_off = study.measured_cdf.eval(0.2);
        assert!(
            measured_mostly_off >= truth_mostly_off,
            "measured {measured_mostly_off} vs true {truth_mostly_off}"
        );
    }

    #[test]
    #[should_panic(expected = "detection must be in (0,1]")]
    fn rejects_zero_detection() {
        Observer::new(0.0);
    }
}
