//! Seed-presence dynamics and monitoring agents.
//!
//! The paper's agents join each swarm and classify seeds from peer
//! bitmaps, recording roughly hourly whether at least one seed is online.
//! Here, each swarm's *ground-truth* seed presence is an alternating
//! renewal process driven by the paper's own model: seeds (the original
//! publisher plus altruistic completers) form an M/G/∞ queue whose busy
//! periods are seed-present intervals (eq. 9 parameterization), and idle
//! periods are exponential with mean `1/r`. Demand and publisher interest
//! decay with swarm age, which is what separates the paper's first-month
//! curve from the whole-trace curve in Figure 1.

use crate::catalog::Swarm;
use rand::Rng;
use serde::{Deserialize, Serialize};
use swarm_queue::busy::TwoPhaseBusyPeriod;

/// Hours per "month" of monitoring (30 days).
pub const HOURS_PER_MONTH: f64 = 720.0;

/// How often (in hours) the slowly-varying seed-process parameters are
/// refreshed: weekly. Shared by the hourly [`monitor`] agents and the
/// event-driven catalog runtime (`swarm-catalog`), so both discretize
/// the age-decay the same way.
pub const PARAM_REFRESH_HOURS: usize = 24 * 7;

/// Age-dependent effective parameters of a swarm's seed process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeedProcessParams {
    /// Mean seed-present (busy) period length in hours.
    pub on_mean: f64,
    /// Mean seedless (idle) period length in hours (`1/r(age)`).
    pub off_mean: f64,
}

/// Demand decay with age: a popularity wave that fades over a few weeks
/// onto a small persistent tail (Figure 7's new-vs-old contrast).
pub fn demand_decay(age_days: f64) -> f64 {
    0.05 + 0.95 * (-age_days / 20.0).exp()
}

/// Publisher-interest decay with age: publishers re-seed new content
/// often, old content rarely.
pub fn publisher_decay(age_days: f64) -> f64 {
    0.008 + 0.992 * (-age_days / 14.0).exp()
}

/// Effective seed-process parameters of `swarm` at the given age.
///
/// The busy period comes from the eq. (9) machinery with seeds as
/// customers: publishers arrive at `r(age)` and stay `u`; altruistic
/// completers appear at `ψ(age)` (a fixed fraction of demand) and stay
/// their lingering time.
pub fn seed_process(swarm: &Swarm, age_days: f64) -> SeedProcessParams {
    let r = (swarm.publisher_rate * publisher_decay(age_days)).max(1e-7);
    let psi = (swarm.altruist_rate * demand_decay(age_days)).max(1e-9);
    let p = TwoPhaseBusyPeriod {
        beta: r + psi,
        theta: swarm.publisher_residence,
        q1: psi / (r + psi),
        alpha1: swarm.altruist_residence,
        alpha2: swarm.publisher_residence,
    };
    let on_mean = p.expected().min(24.0 * 365.0 * 10.0); // cap at 10 years
    SeedProcessParams {
        on_mean,
        off_mean: 1.0 / r,
    }
}

/// Stationary probability that at least one seed is online at the given
/// age (the snapshot statistic used in §2.3.2).
pub fn stationary_availability(swarm: &Swarm, age_days: f64) -> f64 {
    let p = seed_process(swarm, age_days);
    p.on_mean / (p.on_mean + p.off_mean)
}

/// Hourly seed-presence samples over `months` months of monitoring,
/// starting at the swarm's creation.
///
/// The ON/OFF process is simulated with *time-varying hazards*: both
/// period lengths are exponential with age-dependent means, so each hour
/// the state toggles with probability `1 − e^{−1/mean(age)}`. This is the
/// correct generalization of the alternating renewal process to decaying
/// parameters — a swarm that starts with a month-long busy period still
/// goes dark once its publisher's interest fades, which is what separates
/// Figure 1's first-month curve from its whole-trace curve. Parameters
/// are refreshed weekly (they vary slowly).
pub fn monitor<R: Rng + ?Sized>(swarm: &Swarm, months: u32, rng: &mut R) -> Vec<bool> {
    assert!(months >= 1, "must monitor for at least one month");
    let horizon_hours = (months as f64 * HOURS_PER_MONTH) as usize;
    let mut samples = Vec::with_capacity(horizon_hours);
    let p0 = seed_process(swarm, 0.0);
    let mut on = rng.gen::<f64>() < p0.on_mean / (p0.on_mean + p0.off_mean);
    let mut params = p0;
    for hour in 0..horizon_hours {
        if hour % PARAM_REFRESH_HOURS == 0 && hour > 0 {
            params = seed_process(swarm, hour as f64 / 24.0);
        }
        let mean = if on { params.on_mean } else { params.off_mean };
        if rng.gen::<f64>() < 1.0 - (-1.0 / mean).exp() {
            on = !on;
        }
        samples.push(on);
    }
    samples
}

/// Fraction of samples with a seed present.
pub fn availability_fraction(samples: &[bool]) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.iter().filter(|&&s| s).count() as f64 / samples.len() as f64
}

/// Expected number of completed downloads over a monitoring window: peers
/// arrive at the (decayed) demand and complete when content is available.
pub fn expected_downloads(swarm: &Swarm, months: u32) -> f64 {
    let mut total = 0.0;
    for m in 0..months {
        let age_days = m as f64 * 30.0 + 15.0;
        let demand = swarm.demand * demand_decay(age_days);
        let avail = stationary_availability(swarm, age_days);
        total += demand * avail * HOURS_PER_MONTH;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{generate_catalog, CatalogConfig, Category};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn any_swarm() -> Swarm {
        generate_catalog(&CatalogConfig {
            scale: 0.002,
            seed: 3,
        })
        .into_iter()
        .find(|s| s.category == Category::Music)
        .expect("music swarm exists")
    }

    #[test]
    fn decay_functions_monotone() {
        assert!(demand_decay(0.0) > demand_decay(10.0));
        assert!(demand_decay(10.0) > demand_decay(100.0));
        assert!(demand_decay(1e6) >= 0.05 - 1e-12);
        assert!(publisher_decay(0.0) > publisher_decay(365.0));
    }

    #[test]
    fn seed_process_degrades_with_age() {
        let s = any_swarm();
        let young = seed_process(&s, 0.0);
        let old = seed_process(&s, 365.0);
        assert!(young.on_mean >= old.on_mean);
        assert!(young.off_mean <= old.off_mean);
        assert!(stationary_availability(&s, 0.0) >= stationary_availability(&s, 365.0));
    }

    #[test]
    fn monitor_matches_stationary_availability() {
        let s = any_swarm();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        // Average over many independent month-long traces.
        let mut frac_sum = 0.0;
        let reps = 200;
        for _ in 0..reps {
            let samples = monitor(&s, 1, &mut rng);
            assert_eq!(samples.len(), 720);
            frac_sum += availability_fraction(&samples);
        }
        let measured = frac_sum / reps as f64;
        // With decaying parameters the occupancy lags the stationary
        // curve (the process remembers its more-available past), so the
        // measured month-average must lie between the end-of-month and
        // start-of-month stationary availabilities.
        let lo = stationary_availability(&s, 30.0);
        let hi = stationary_availability(&s, 0.0);
        assert!(
            measured >= lo - 0.05 && measured <= hi + 0.05,
            "measured {measured} outside stationary envelope [{lo}, {hi}]"
        );
    }

    #[test]
    fn availability_fraction_edge_cases() {
        assert!(availability_fraction(&[]).is_nan());
        assert_eq!(availability_fraction(&[true, true]), 1.0);
        assert_eq!(availability_fraction(&[true, false, false, false]), 0.25);
    }

    #[test]
    fn expected_downloads_positive_and_decaying() {
        let s = any_swarm();
        let one = expected_downloads(&s, 1);
        let seven = expected_downloads(&s, 7);
        assert!(one > 0.0);
        assert!(seven > one);
        // Month 7 adds less than month 1 did (decay).
        let six = expected_downloads(&s, 6);
        assert!(seven - six < one);
    }

    #[test]
    #[should_panic(expected = "at least one month")]
    fn monitor_rejects_zero_months() {
        let s = any_swarm();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        monitor(&s, 0, &mut rng);
    }
}
