//! Swarm-population estimation from incomplete agent samples.
//!
//! The paper's agents discovered 14M distinct IPs, but any single
//! tracker/PEX sample sees only part of a swarm. The standard tool for
//! sizing a population you can only sample is **capture–recapture**: take
//! two (approximately) independent samples, count the overlap, and apply
//! the Chapman-corrected Lincoln–Petersen estimator
//!
//! `N̂ = (n₁+1)(n₂+1)/(m+1) − 1`
//!
//! where `n₁`, `n₂` are sample sizes and `m` the number of peers seen in
//! both. This module implements the estimator, its standard error, and a
//! simulator of agent sampling used to validate both.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A capture–recapture estimate of a swarm's population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopulationEstimate {
    /// Chapman-corrected point estimate of the population size.
    pub n_hat: f64,
    /// Approximate standard error of the estimate.
    pub std_error: f64,
    /// Peers in the first sample.
    pub n1: u64,
    /// Peers in the second sample.
    pub n2: u64,
    /// Peers in both samples.
    pub recaptured: u64,
}

impl PopulationEstimate {
    /// Normal-approximation 95% interval `(lo, hi)`, floored at the
    /// number of distinct peers actually observed.
    pub fn interval95(&self) -> (f64, f64) {
        let observed = (self.n1 + self.n2 - self.recaptured) as f64;
        (
            (self.n_hat - 1.96 * self.std_error).max(observed),
            self.n_hat + 1.96 * self.std_error,
        )
    }
}

/// Chapman-corrected Lincoln–Petersen estimate from two sample sizes and
/// their overlap.
///
/// # Panics
/// If `recaptured` exceeds either sample size.
pub fn capture_recapture(n1: u64, n2: u64, recaptured: u64) -> PopulationEstimate {
    assert!(
        recaptured <= n1 && recaptured <= n2,
        "overlap {recaptured} cannot exceed sample sizes {n1}, {n2}"
    );
    let (a, b, m) = (n1 as f64, n2 as f64, recaptured as f64);
    let n_hat = (a + 1.0) * (b + 1.0) / (m + 1.0) - 1.0;
    // Chapman's variance approximation.
    let var = (a + 1.0) * (b + 1.0) * (a - m) * (b - m) / ((m + 1.0).powi(2) * (m + 2.0));
    PopulationEstimate {
        n_hat,
        std_error: var.max(0.0).sqrt(),
        n1,
        n2,
        recaptured,
    }
}

/// Simulate two independent agent samples of a swarm with `population`
/// online peers, each peer independently discovered with probability
/// `detection` per sample, and estimate the population from them.
pub fn sample_and_estimate<R: Rng + ?Sized>(
    population: u64,
    detection: f64,
    rng: &mut R,
) -> PopulationEstimate {
    assert!(population > 0, "population must be positive");
    assert!(
        detection > 0.0 && detection <= 1.0,
        "detection must be in (0,1], got {detection}"
    );
    let mut n1 = 0u64;
    let mut n2 = 0u64;
    let mut both = 0u64;
    for _ in 0..population {
        let in1 = rng.gen::<f64>() < detection;
        let in2 = rng.gen::<f64>() < detection;
        n1 += in1 as u64;
        n2 += in2 as u64;
        both += (in1 && in2) as u64;
    }
    capture_recapture(n1, n2, both)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn perfect_detection_recovers_population_exactly() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let est = sample_and_estimate(500, 1.0, &mut rng);
        // n1 = n2 = m = 500 → N̂ = 501²/501 − 1 = 500.
        assert_eq!(est.n1, 500);
        assert!((est.n_hat - 500.0).abs() < 1e-9);
        assert!(est.std_error < 1.0);
    }

    #[test]
    fn estimator_is_nearly_unbiased_at_moderate_detection() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let population = 1_000;
        let reps = 300;
        let mean: f64 = (0..reps)
            .map(|_| sample_and_estimate(population, 0.4, &mut rng).n_hat)
            .sum::<f64>()
            / reps as f64;
        assert!(
            (mean - population as f64).abs() / (population as f64) < 0.05,
            "mean estimate {mean} vs true {population}"
        );
    }

    #[test]
    fn interval_covers_truth_most_of_the_time() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let population = 800u64;
        let reps = 200;
        let covered = (0..reps)
            .filter(|_| {
                let est = sample_and_estimate(population, 0.3, &mut rng);
                let (lo, hi) = est.interval95();
                (lo..=hi).contains(&(population as f64))
            })
            .count();
        // Normal-approximation interval: expect ≥ 85% empirical coverage.
        assert!(
            covered * 100 >= reps * 85,
            "coverage {covered}/{reps} too low"
        );
    }

    #[test]
    fn lower_detection_widens_uncertainty() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let avg_se = |det: f64, rng: &mut ChaCha8Rng| -> f64 {
            (0..50)
                .map(|_| sample_and_estimate(1_000, det, rng).std_error)
                .sum::<f64>()
                / 50.0
        };
        let tight = avg_se(0.8, &mut rng);
        let loose = avg_se(0.2, &mut rng);
        assert!(loose > 2.0 * tight, "se {loose} vs {tight}");
    }

    #[test]
    fn estimate_never_below_observed_peers() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..100 {
            let est = sample_and_estimate(300, 0.5, &mut rng);
            let observed = (est.n1 + est.n2 - est.recaptured) as f64;
            assert!(est.n_hat >= observed - 1.0, "{} < {observed}", est.n_hat);
            let (lo, _) = est.interval95();
            assert!(lo >= observed - 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "cannot exceed sample sizes")]
    fn rejects_impossible_overlap() {
        capture_recapture(10, 10, 11);
    }
}
