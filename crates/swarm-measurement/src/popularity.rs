//! Arrival patterns of new and old swarms (§4.3.4, Figure 7).
//!
//! The paper contrasts a typical *new* swarm — a popularity wave whose
//! arrival rate decays rapidly over the first month — with a typical
//! *old* swarm whose rate has settled onto a low, steady plateau. The
//! model's Poisson assumption is justified for the latter.

use rand::Rng;
use serde::{Deserialize, Serialize};
use swarm_queue::arrivals::nonhomogeneous_poisson;
use swarm_stats::Histogram;

/// A binned arrival trace: `(day, arrivals)` pairs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArrivalTrace {
    /// Daily arrival counts.
    pub daily: Vec<(f64, u64)>,
    /// Total arrivals.
    pub total: u64,
}

/// Intensity (arrivals/day) of a new swarm of age `t` days: a fast
/// popularity wave on a persistent tail.
pub fn new_swarm_rate(peak: f64, t_days: f64) -> f64 {
    peak * (0.05 + 0.95 * (-t_days / 5.0).exp())
}

/// Intensity of an old swarm: steady.
pub fn old_swarm_rate(level: f64, _t_days: f64) -> f64 {
    level
}

/// Sample an arrival trace over `days` days from intensity `rate(t)`
/// (arrivals/day), binned daily.
pub fn sample_trace<R: Rng + ?Sized>(
    rate: impl Fn(f64) -> f64,
    rate_max: f64,
    days: u32,
    rng: &mut R,
) -> ArrivalTrace {
    assert!(days >= 1);
    let horizon = days as f64;
    let events = nonhomogeneous_poisson(rate, rate_max, horizon, rng);
    let mut hist = Histogram::new(0.0, horizon, days as usize);
    for &e in &events {
        hist.add(e);
    }
    ArrivalTrace {
        daily: hist
            .series()
            .into_iter()
            .map(|(center, c)| (center - 0.5, c))
            .collect(),
        total: events.len() as u64,
    }
}

/// Coefficient of variation of the daily arrival counts — the paper's
/// "old swarms show much less variation" statistic.
pub fn daily_cv(trace: &ArrivalTrace) -> f64 {
    let counts: Vec<f64> = trace.daily.iter().map(|d| d.1 as f64).collect();
    let n = counts.len() as f64;
    let mean = counts.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return f64::NAN;
    }
    let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / n;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn new_swarm_front_loads_arrivals() {
        let mut rng = ChaCha8Rng::seed_from_u64(61);
        let peak = 200.0;
        let trace = sample_trace(|t| new_swarm_rate(peak, t), peak, 30, &mut rng);
        let first_week: u64 = trace.daily[..7].iter().map(|d| d.1).sum();
        let last_week: u64 = trace.daily[23..].iter().map(|d| d.1).sum();
        assert!(
            first_week > 5 * last_week.max(1),
            "first week {first_week} vs last {last_week}"
        );
    }

    #[test]
    fn old_swarm_is_steady() {
        let mut rng = ChaCha8Rng::seed_from_u64(67);
        let trace = sample_trace(|t| old_swarm_rate(40.0, t), 40.0, 30, &mut rng);
        // Poisson(40)/day: CV ≈ 1/√40 ≈ 0.16.
        let cv = daily_cv(&trace);
        assert!(cv < 0.35, "old swarm CV {cv} too high");
    }

    #[test]
    fn new_swarm_cv_exceeds_old_swarm_cv() {
        let mut rng = ChaCha8Rng::seed_from_u64(71);
        let new = sample_trace(|t| new_swarm_rate(200.0, t), 200.0, 30, &mut rng);
        let old = sample_trace(|t| old_swarm_rate(40.0, t), 40.0, 30, &mut rng);
        assert!(daily_cv(&new) > 2.0 * daily_cv(&old));
    }

    #[test]
    fn trace_totals_match_bins() {
        let mut rng = ChaCha8Rng::seed_from_u64(73);
        let trace = sample_trace(|_| 10.0, 10.0, 10, &mut rng);
        let binned: u64 = trace.daily.iter().map(|d| d.1).sum();
        assert_eq!(binned, trace.total);
        assert_eq!(trace.daily.len(), 10);
    }
}
