//! Synthetic measurement study of swarm populations (paper §2).
//!
//! The paper's measurement study monitored 66k+ real Mininova swarms from
//! 300 PlanetLab vantage points for seven months, plus a 1.09M-swarm
//! snapshot. Neither data source exists here, so this crate builds the
//! closest synthetic equivalent and reproduces the full analysis pipeline
//! on it:
//!
//! * [`catalog`] — a Mininova-shaped catalog: nine categories, per-category
//!   bundle prevalence calibrated to §2.3.1, file-extension mixes, Zipf
//!   demand, heterogeneous publishers (more committed for bundles), and
//!   book super-collections;
//! * [`observe`] — per-swarm seed-presence as an alternating renewal
//!   process whose ON periods are M/G/∞ busy periods of the seed process
//!   (publishers + altruistic completers), with demand and publisher
//!   interest decaying in swarm age; hourly monitoring agents;
//! * [`bundling`] — the §2.3.1 extension-based bundle classifier and the
//!   per-category extent table;
//! * [`availability`] — the Figure 1 pipeline: first-month and
//!   whole-trace per-swarm availability CDFs;
//! * [`analysis`] — the §2.3.2 contrasts: books vs collections
//!   (availability, downloads, super-collection folding) and the
//!   "Friends" case study;
//! * [`popularity`] — Figure 7's new-vs-old swarm arrival patterns;
//! * [`bias`] — observation-bias analysis: how imperfect peer discovery
//!   (tracker + PEX sampling) shifts the measured availability CDF;
//! * [`population`] — capture–recapture estimation of swarm sizes from
//!   incomplete agent samples (Chapman-corrected Lincoln–Petersen).
//!
//! Absolute counts are scaled (default 1% of the paper's population); the
//! reproduced artifacts are *shapes and orderings* — the CDF of Figure 1,
//! the bundled-vs-unbundled availability gap, the bundling-extent table.

pub mod analysis;
pub mod availability;
pub mod bias;
pub mod bundling;
pub mod catalog;
pub mod observe;
pub mod popularity;
pub mod population;

pub use analysis::{
    book_stats, book_stats_with, friends_population, show_case_counts, show_case_study, BookStats,
    ShowCaseStudy,
};
pub use availability::{availability_study, AvailabilityStudy};
pub use bias::{bias_study, BiasStudy, Observer};
pub use bundling::{bundling_extent, is_bundle, is_collection, BundlingExtent};
pub use catalog::{generate_catalog, CatalogConfig, Category, FileEntry, Swarm};
pub use observe::{monitor, seed_process, stationary_availability};
pub use population::{capture_recapture, sample_and_estimate, PopulationEstimate};
