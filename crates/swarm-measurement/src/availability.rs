//! The Figure 1 pipeline: per-swarm seed-availability CDFs.
//!
//! Figure 1 plots, over ~45k swarms each monitored for at least a month,
//! the CDF of the fraction of time at least one seed was available —
//! once over the first month after creation, once over the whole
//! (7-month) trace.

use crate::catalog::Swarm;
use crate::observe::{availability_fraction, monitor};
use rand::Rng;
use serde::{Deserialize, Serialize};
use swarm_stats::Ecdf;

/// Result of the availability study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AvailabilityStudy {
    /// Per-swarm availability over the first month after creation.
    pub first_month: Ecdf,
    /// Per-swarm availability over the full monitoring window.
    pub whole_trace: Ecdf,
    /// Months in the full window.
    pub months: u32,
}

impl AvailabilityStudy {
    /// Fraction of swarms with a seed available the whole first month
    /// (the paper: "less than 35%").
    pub fn always_available_first_month(&self) -> f64 {
        1.0 - self.first_month.eval(1.0 - 1e-9)
    }

    /// Fraction of swarms unavailable at least `1 - threshold` of the
    /// whole trace; the paper: "almost 80% of the swarms are unavailable
    /// 80% of the time" → `whole_trace.eval(0.2) ≈ 0.8`.
    pub fn mostly_unavailable_whole_trace(&self, threshold: f64) -> f64 {
        self.whole_trace.eval(threshold)
    }
}

/// Run the availability study on the catalog: monitor every swarm hourly
/// for `months` months from its creation and build both CDFs.
pub fn availability_study<R: Rng + ?Sized>(
    swarms: &[Swarm],
    months: u32,
    rng: &mut R,
) -> AvailabilityStudy {
    assert!(months >= 1);
    let mut first = Vec::with_capacity(swarms.len());
    let mut whole = Vec::with_capacity(swarms.len());
    for s in swarms {
        let samples = monitor(s, months, rng);
        first.push(availability_fraction(&samples[..720.min(samples.len())]));
        whole.push(availability_fraction(&samples));
    }
    AvailabilityStudy {
        first_month: Ecdf::new(first),
        whole_trace: Ecdf::new(whole),
        months,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{generate_catalog, CatalogConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn study_reproduces_figure_1_calibration() {
        let swarms = generate_catalog(&CatalogConfig {
            scale: 0.004,
            seed: 17,
        });
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let study = availability_study(&swarms, 7, &mut rng);

        // Paper: "less than 35% of the swarms had at least one seed
        // available all the time" in the first month.
        let always = study.always_available_first_month();
        assert!(always < 0.45, "always-available share too high: {always}");
        assert!(always > 0.05, "some swarms must be fully seeded: {always}");

        // Paper: "almost 80% of the swarms are unavailable 80% of the
        // time" over the whole trace.
        let mostly_off = study.mostly_unavailable_whole_trace(0.2);
        assert!(
            mostly_off > 0.55,
            "whole-trace unavailability too low: {mostly_off}"
        );

        // The whole-trace curve dominates the first-month curve (old
        // swarms are less available): CDF higher at every point.
        for q in [0.1, 0.3, 0.5, 0.7, 0.9] {
            assert!(
                study.whole_trace.eval(q) >= study.first_month.eval(q) - 0.05,
                "whole-trace CDF must lie above first-month at {q}"
            );
        }
    }

    #[test]
    fn fractions_are_probabilities() {
        let swarms = generate_catalog(&CatalogConfig {
            scale: 0.001,
            seed: 29,
        });
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let study = availability_study(&swarms, 2, &mut rng);
        for &v in study.first_month.sorted_values() {
            assert!((0.0..=1.0).contains(&v));
        }
        assert_eq!(study.months, 2);
    }
}
