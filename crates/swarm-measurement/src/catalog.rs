//! Synthetic swarm-catalog generation (the Mininova stand-in).
//!
//! §2 of the paper monitors real torrent-hosting-site swarms. We have no
//! Mininova feed, so this module generates a synthetic population whose
//! *structure* matches what the paper reports: nine content categories,
//! per-category bundle prevalence (72% of music swarms are albums, 16% of
//! TV swarms are season packs, books have rare large "collections"),
//! realistic file-extension mixes, Zipf demand across swarms, and
//! heterogeneous publisher behavior in which bundles enjoy both higher
//! aggregate demand and more committed publishers — the two causal inputs
//! the paper's model turns into higher availability.

use rand::seq::SliceRandom;
use rand::Rng;
use rand_distr::Distribution as _;
use serde::{Deserialize, Serialize};

/// Mininova's nine content categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Music: albums are common bundles.
    Music,
    /// TV shows: season packs.
    Tv,
    /// Books: rare but huge "collections".
    Books,
    /// Movies (bundle detection nontrivial; the paper skips it).
    Movies,
    /// Games.
    Games,
    /// Software.
    Software,
    /// Anime.
    Anime,
    /// Pictures.
    Pictures,
    /// Everything else.
    Other,
}

impl Category {
    /// All categories, in a fixed order.
    pub const ALL: [Category; 9] = [
        Category::Music,
        Category::Tv,
        Category::Books,
        Category::Movies,
        Category::Games,
        Category::Software,
        Category::Anime,
        Category::Pictures,
        Category::Other,
    ];
}

/// One file inside a swarm's content.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileEntry {
    /// File name (synthetic, unique within the swarm).
    pub name: String,
    /// Lower-case extension without the dot.
    pub extension: String,
    /// Size in kB.
    pub size_kb: f64,
}

/// One swarm in the catalog.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Swarm {
    /// Catalog-unique identifier.
    pub id: u64,
    /// Content category.
    pub category: Category,
    /// Torrent title.
    pub title: String,
    /// Constituent files.
    pub files: Vec<FileEntry>,
    /// Days before the snapshot the swarm was created.
    pub age_days: f64,
    /// Aggregate peer arrival rate λ (peers/hour) at creation time; for
    /// bundles this is the *sum* over the bundled items' demands.
    pub demand: f64,
    /// Publisher arrival rate r (1/hour).
    pub publisher_rate: f64,
    /// Mean publisher residence u (hours).
    pub publisher_residence: f64,
    /// Rate at which completing peers choose to stay and seed (1/hour of
    /// swarm time — the altruist arrival process feeding seed presence).
    pub altruist_rate: f64,
    /// Mean time an altruist seed stays (hours).
    pub altruist_residence: f64,
    /// For generated collections: the id of a super-collection this swarm
    /// is a strict subset of, if any (the paper's Garfield example).
    pub subset_of: Option<u64>,
}

impl Swarm {
    /// Total content size in kB.
    pub fn total_size_kb(&self) -> f64 {
        self.files.iter().map(|f| f.size_kb).sum()
    }

    /// Number of constituent files (decoys included).
    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

/// Catalog generation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CatalogConfig {
    /// Scale factor on the paper's population (1.0 ≈ 1.09 M swarms in the
    /// snapshot dataset; the default 0.01 keeps experiments fast while
    /// leaving thousands of swarms per category).
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            scale: 0.01,
            seed: 42,
        }
    }
}

/// Paper §2.3.1 calibration: swarm counts in the May 2009 snapshot and the
/// fraction of each category that is bundled.
const CATEGORY_PLAN: &[(Category, u64, f64)] = &[
    // (category, snapshot count, bundle fraction)
    (Category::Music, 267_117, 0.724), // 193,491 / 267,117
    (Category::Tv, 164_930, 0.158),    // 25,990 / 164,930
    (Category::Books, 66_387, 0.107),  // (841 + 6,270) / 66,387
    (Category::Movies, 260_000, 0.30),
    (Category::Games, 90_000, 0.25),
    (Category::Software, 110_000, 0.35),
    (Category::Anime, 60_000, 0.40),
    (Category::Pictures, 30_000, 0.50),
    (Category::Other, 39_499, 0.20),
];

/// Fraction of book bundles that are keyword "collections"
/// (841 of the 7,111 book bundles).
const BOOK_COLLECTION_SHARE: f64 = 841.0 / 7_111.0;

fn extensions(cat: Category) -> (&'static [&'static str], &'static [&'static str]) {
    // (primary content extensions, decoy extensions)
    match cat {
        Category::Music => (&["mp3", "mid", "wav"], &["nfo", "jpg", "txt"]),
        Category::Tv => (&["mpg", "avi"], &["nfo", "srt", "txt"]),
        Category::Books => (&["pdf", "djvu"], &["nfo", "txt"]),
        Category::Movies => (&["avi", "mkv"], &["nfo", "srt", "jpg"]),
        Category::Games => (&["iso", "bin"], &["nfo", "txt"]),
        Category::Software => (&["exe", "iso"], &["nfo", "txt"]),
        Category::Anime => (&["mkv", "avi"], &["ass", "nfo"]),
        Category::Pictures => (&["jpg", "png"], &["txt"]),
        Category::Other => (&["dat", "zip"], &["nfo"]),
    }
}

fn typical_file_size_kb(cat: Category) -> f64 {
    match cat {
        Category::Music => 5_000.0, // one song
        Category::Tv => 350_000.0,  // one episode
        Category::Books => 9_000.0, // one pdf
        Category::Movies => 700_000.0,
        Category::Games => 2_000_000.0,
        Category::Software => 300_000.0,
        Category::Anime => 250_000.0,
        Category::Pictures => 2_000.0,
        Category::Other => 50_000.0,
    }
}

fn bundle_file_count<R: Rng + ?Sized>(cat: Category, rng: &mut R) -> usize {
    match cat {
        Category::Music => rng.gen_range(8..=16), // album
        Category::Tv => rng.gen_range(6..=24),    // season(s)
        Category::Books => rng.gen_range(3..=30), // themed pack
        _ => rng.gen_range(2..=10),
    }
}

/// Generate the synthetic catalog.
///
/// Deterministic for a given config. Swarm ids are dense from 0.
pub fn generate_catalog(cfg: &CatalogConfig) -> Vec<Swarm> {
    assert!(
        cfg.scale > 0.0 && cfg.scale <= 1.0,
        "scale must be in (0, 1]"
    );
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(cfg.seed);
    use rand::SeedableRng;

    let mut swarms = Vec::new();
    let mut id = 0u64;
    for &(cat, count, bundle_frac) in CATEGORY_PLAN {
        let n = ((count as f64 * cfg.scale).round() as u64).max(10);
        let mut collection_ids: Vec<u64> = Vec::new();
        for i in 0..n {
            let is_bundle = rng.gen::<f64>() < bundle_frac;
            let is_collection =
                cat == Category::Books && is_bundle && rng.gen::<f64>() < BOOK_COLLECTION_SHARE;
            let swarm = synth_swarm(&mut rng, id, cat, i, is_bundle, is_collection);
            if is_collection {
                collection_ids.push(id);
            }
            swarms.push(swarm);
            id += 1;
        }
        // Some collections are strict subsets of a larger super-collection
        // (the paper's Garfield-comics example): link ~25% of collections
        // to a random larger one.
        if cat == Category::Books && collection_ids.len() >= 4 {
            let supers: Vec<u64> = collection_ids
                .iter()
                .copied()
                .filter(|_| rng.gen::<f64>() < 0.3)
                .collect();
            for &cid in &collection_ids {
                if !supers.contains(&cid) && rng.gen::<f64>() < 0.25 {
                    if let Some(&sup) = supers.choose(&mut rng) {
                        swarms[cid as usize].subset_of = Some(sup);
                    }
                }
            }
        }
    }
    swarms
}

fn synth_swarm<R: Rng + ?Sized>(
    rng: &mut R,
    id: u64,
    cat: Category,
    index_in_cat: u64,
    is_bundle: bool,
    is_collection: bool,
) -> Swarm {
    let (content_exts, decoy_exts) = extensions(cat);
    let n_files = if is_collection {
        rng.gen_range(50..=700) // "Ultimate Math Collection" has 642 books
    } else if is_bundle {
        bundle_file_count(cat, rng)
    } else {
        1
    };
    let mut files = Vec::with_capacity(n_files + 2);
    let base_size = typical_file_size_kb(cat);
    for f in 0..n_files {
        let ext = content_exts[rng.gen_range(0..content_exts.len())];
        // Log-normal-ish spread around the typical size.
        let factor = (rng.gen::<f64>() * 2.0 - 1.0).exp();
        files.push(FileEntry {
            name: format!("{cat:?}-{index_in_cat}-{f}.{ext}").to_lowercase(),
            extension: ext.to_string(),
            size_kb: base_size * factor,
        });
    }
    // Decoys (nfo/txt/...) never trip the bundle classifier.
    for d in 0..rng.gen_range(0..=2usize) {
        let ext = decoy_exts[rng.gen_range(0..decoy_exts.len())];
        files.push(FileEntry {
            name: format!("extra-{d}.{ext}"),
            extension: ext.to_string(),
            size_kb: rng.gen_range(1.0..50.0),
        });
    }

    // Zipf demand across swarms within the category: most swarms are
    // unpopular. Demand is per item; a bundle of n items aggregates the
    // demand of its constituents (any peer wanting any item fetches the
    // bundle) — the model's Λ = Σ λ_k.
    let rank = index_in_cat + 1;
    let per_item = 6.0 / (rank as f64).powf(0.78) + 0.002;
    let demand = if is_collection {
        // A themed collection aggregates demand across its whole theme,
        // decoupled from any single item's rank, but grows far
        // sublinearly in the item count (most constituents are obscure).
        0.5 + per_item * 0.5 * (n_files as f64).powf(0.25)
    } else if is_bundle {
        per_item * n_files as f64 * 0.9
    } else {
        per_item
    };

    // Publisher behavior: bundles (and especially collections) come from
    // more committed publishers — the paper's observation that "content
    // publishers are intrinsically more willing to support seeds for
    // bundled content".
    let commit = if is_collection {
        3.0
    } else if is_bundle {
        1.8
    } else {
        1.0
    };
    let publisher_rate = commit * sample_lognormal(rng, 0.04, 1.0);
    let publisher_residence = commit * sample_lognormal(rng, 40.0, 1.4);

    // A small fraction of completing peers stays to seed for a while.
    let altruist_rate = 0.05 * demand;
    let altruist_residence = sample_lognormal(rng, 2.0, 0.5);

    let title = if is_collection {
        format!("{cat:?} ultimate collection {index_in_cat}")
    } else if is_bundle {
        format!("{cat:?} pack {index_in_cat}")
    } else {
        format!("{cat:?} item {index_in_cat}")
    };

    Swarm {
        id,
        category: cat,
        title,
        files,
        // Torrent sites grow: the snapshot is biased toward recent swarms
        // (exponential ages with a 150-day mean, capped at two years).
        age_days: sample_lognormal(rng, 80.0, 1.1).min(700.0),
        demand,
        publisher_rate,
        publisher_residence,
        altruist_rate,
        altruist_residence,
        subset_of: None,
    }
}

fn sample_lognormal<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    let normal = rand_distr::Normal::new(0.0, sigma).expect("valid sigma");
    median * normal.sample(rng).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Vec<Swarm> {
        generate_catalog(&CatalogConfig {
            scale: 0.01,
            seed: 7,
        })
    }

    #[test]
    fn catalog_is_deterministic() {
        let a = catalog();
        let b = catalog();
        assert_eq!(a.len(), b.len());
        assert_eq!(a[100].title, b[100].title);
        assert_eq!(a[100].demand, b[100].demand);
    }

    #[test]
    fn category_counts_scale() {
        let swarms = catalog();
        let music = swarms
            .iter()
            .filter(|s| s.category == Category::Music)
            .count();
        // 267,117 * 0.01 ≈ 2,671
        assert!(
            (music as i64 - 2671).unsigned_abs() < 30,
            "music count {music}"
        );
        let total = swarms.len();
        assert!(
            (total as i64 - 10_879).unsigned_abs() < 200,
            "total {total}"
        );
    }

    #[test]
    fn ids_are_dense_and_match_indices() {
        let swarms = catalog();
        for (i, s) in swarms.iter().enumerate() {
            assert_eq!(s.id, i as u64);
        }
    }

    #[test]
    fn bundles_have_multiple_content_files() {
        let swarms = catalog();
        let with_many = swarms
            .iter()
            .filter(|s| s.files.iter().filter(|f| f.extension == "mp3").count() >= 2)
            .count();
        assert!(with_many > 0, "some music bundles must exist");
    }

    #[test]
    fn collections_are_large_and_linked() {
        let swarms = catalog();
        let collections: Vec<&Swarm> = swarms
            .iter()
            .filter(|s| s.title.contains("collection"))
            .collect();
        assert!(!collections.is_empty());
        assert!(collections.iter().all(|c| c.file_count() >= 50));
        let subsets = swarms.iter().filter(|s| s.subset_of.is_some()).count();
        assert!(
            subsets > 0,
            "some collections must be subsets of super-collections"
        );
        // subset links point at collections
        for s in &swarms {
            if let Some(sup) = s.subset_of {
                assert!(swarms[sup as usize].title.contains("collection"));
            }
        }
    }

    #[test]
    fn bundle_demand_exceeds_item_demand_on_average() {
        let swarms = catalog();
        let music: Vec<&Swarm> = swarms
            .iter()
            .filter(|s| s.category == Category::Music)
            .collect();
        let (mut bundle_sum, mut bundle_n, mut single_sum, mut single_n) = (0.0, 0, 0.0, 0);
        for s in music {
            let content = s
                .files
                .iter()
                .filter(|f| f.extension != "nfo" && f.extension != "jpg" && f.extension != "txt")
                .count();
            if content >= 2 {
                bundle_sum += s.demand;
                bundle_n += 1;
            } else {
                single_sum += s.demand;
                single_n += 1;
            }
        }
        assert!(bundle_sum / bundle_n as f64 > single_sum / single_n as f64);
    }

    #[test]
    fn publisher_commitment_favors_collections() {
        // Larger scale: collections are rare, medians need a sample.
        let swarms = generate_catalog(&CatalogConfig {
            scale: 0.05,
            seed: 7,
        });
        let books: Vec<&Swarm> = swarms
            .iter()
            .filter(|s| s.category == Category::Books)
            .collect();
        let coll_res: Vec<f64> = books
            .iter()
            .filter(|s| s.title.contains("collection"))
            .map(|s| s.publisher_residence)
            .collect();
        let single_res: Vec<f64> = books
            .iter()
            .filter(|s| s.file_count() == 1)
            .map(|s| s.publisher_residence)
            .collect();
        let median = |v: &[f64]| {
            let mut v = v.to_vec();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        assert!(median(&coll_res) > median(&single_res));
    }

    #[test]
    #[should_panic(expected = "scale must be in (0, 1]")]
    fn rejects_bad_scale() {
        generate_catalog(&CatalogConfig {
            scale: 0.0,
            seed: 0,
        });
    }
}
