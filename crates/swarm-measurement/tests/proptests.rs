//! Property-based tests for the measurement crate.
//!
//! The catalog is the root of every measurement experiment *and* of the
//! sharded catalog runtime's per-swarm RNG streams, so its determinism
//! contract is load-bearing: the same `CatalogConfig` must produce a
//! byte-identical catalog every time, no matter what other randomness
//! the process consumed before the call.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use swarm_measurement::{generate_catalog, CatalogConfig};

/// Serialize the full catalog — every field of every swarm — so equality
/// means byte-identical, not just same-shape.
fn catalog_bytes(cfg: &CatalogConfig) -> String {
    serde_json::to_string(&generate_catalog(cfg)).expect("catalog serializes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same config + seed ⇒ byte-identical catalog, and the generation
    /// is hermetic: interleaving unrelated RNG draws (as the repro
    /// suite's other experiments do constantly) cannot perturb it.
    #[test]
    fn catalog_is_seed_deterministic_and_hermetic(
        seed in 0u64..u64::MAX,
        // Keep the population small: the smallest legal scales still
        // produce ~100 swarms (10 per category minimum).
        scale_millis in 1u64..5,
        noise_draws in 0usize..64,
        noise_seed in 0u64..u64::MAX,
    ) {
        let cfg = CatalogConfig { scale: scale_millis as f64 / 1000.0, seed };
        let first = catalog_bytes(&cfg);

        // Burn unrelated randomness between generations.
        let mut noise = ChaCha8Rng::seed_from_u64(noise_seed);
        for _ in 0..noise_draws {
            let _ = noise.gen::<f64>();
        }
        let second = catalog_bytes(&cfg);
        prop_assert_eq!(&first, &second, "regeneration must be byte-identical");

        // And a different seed must actually change the catalog.
        let other = catalog_bytes(&CatalogConfig {
            scale: cfg.scale,
            seed: seed.wrapping_add(1),
        });
        prop_assert!(first != other, "seed must matter");
    }

    /// Structural invariants hold at every seed: dense ids matching
    /// indices (the runtime indexes per-swarm results by id), positive
    /// rates, and subset links pointing at earlier collections.
    #[test]
    fn catalog_structure_is_sound_at_any_seed(seed in 0u64..u64::MAX) {
        let swarms = generate_catalog(&CatalogConfig { scale: 0.001, seed });
        for (i, s) in swarms.iter().enumerate() {
            prop_assert_eq!(s.id, i as u64);
            prop_assert!(s.demand > 0.0);
            prop_assert!(s.publisher_rate > 0.0);
            prop_assert!(s.publisher_residence > 0.0);
            prop_assert!(s.age_days >= 0.0 && s.age_days <= 700.0);
            if let Some(sup) = s.subset_of {
                prop_assert!((sup as usize) < swarms.len());
            }
        }
    }
}
