//! Mixed vs pure bundling (paper §5, "Economics of bundling").
//!
//! The paper distinguishes **pure bundling** — the publisher ships a
//! single archive, every peer downloads all K files — from **mixed
//! bundling** — peers may choose between the bundle and the individual
//! file, and even a small fraction opting for the bundle improves
//! availability for everyone.
//!
//! This module formalizes that discussion with the machinery of §3:
//!
//! * under mixed bundling with *take rate* `φ`, a share `φ` of each
//!   file's demand goes to the bundled swarm (arrival rate `φ·Σλₖ`) and
//!   the rest to the individual swarm (`(1−φ)·λₖ`);
//! * file k is available if *either* swarm is in a busy period; the two
//!   swarms' availability processes are driven by independent publisher
//!   and peer arrivals, so a peer wanting file k is blocked only when
//!   both are idle: `Pₖ(φ) = Pₖ_indiv(φ) · P_bundle(φ)`;
//! * a blocked peer waits for whichever swarm revives first — publisher
//!   arrivals race at rate `rₖ + R`, so the mean wait is
//!   `Pₖ(φ) / (rₖ + R)`.
//!
//! The module computes per-file unavailability and download time across
//! the bundling spectrum: `φ = 0` (no bundling), `φ = 1` (pure
//! bundling), and everything between (mixed).

use crate::impatient;
use crate::params::SwarmParams;
use serde::{Deserialize, Serialize};

/// One file's demand and size in a mixed-bundling catalog.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FileSpec {
    /// Peer arrival rate λₖ for this file.
    pub lambda: f64,
    /// File size sₖ.
    pub size: f64,
}

/// Per-file outcome under a given take rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FileOutcome {
    /// Probability a request for this file finds *neither* swarm busy.
    pub unavailability: f64,
    /// Mean download time for a peer fetching this file individually
    /// (service sₖ/μ plus the both-swarms-idle wait).
    pub individual_download_time: f64,
    /// Mean download time for a peer taking the bundle instead.
    pub bundle_download_time: f64,
}

/// Outcome of a mixed-bundling configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MixedOutcome {
    /// The take rate evaluated.
    pub phi: f64,
    /// Per-file outcomes, in input order.
    pub files: Vec<FileOutcome>,
    /// Unavailability of the bundled swarm itself.
    pub bundle_unavailability: f64,
}

/// Evaluate mixed bundling at take rate `phi ∈ [0, 1]`.
///
/// `mu` is the per-swarm effective capacity; the publisher posts both the
/// individual torrents and the bundle with the same process `(r, u)`.
/// At `phi = 1` the individual swarms receive no demand (pure bundling);
/// at `phi = 0` the bundle receives none and the outcome reduces to
/// isolated swarms.
///
/// ```
/// use swarm_core::mixed::{mixed_bundling, FileSpec};
/// let files = vec![
///     FileSpec { lambda: 0.2, size: 4_000.0 },    // a hit
///     FileSpec { lambda: 0.002, size: 4_000.0 },  // a niche file
/// ];
/// let none = mixed_bundling(&files, 50.0, 2e-4, 300.0, 0.0);
/// let some = mixed_bundling(&files, 50.0, 2e-4, 300.0, 0.2);
/// // Even a 20% take rate rescues the niche file (§5).
/// assert!(some.files[1].unavailability < none.files[1].unavailability);
/// ```
pub fn mixed_bundling(files: &[FileSpec], mu: f64, r: f64, u: f64, phi: f64) -> MixedOutcome {
    assert!(!files.is_empty(), "need at least one file");
    assert!(
        (0.0..=1.0).contains(&phi),
        "phi must be in [0,1], got {phi}"
    );
    for f in files {
        assert!(f.lambda > 0.0 && f.lambda.is_finite());
        assert!(f.size > 0.0 && f.size.is_finite());
    }

    // The bundled swarm under take rate φ. λ = 0 is invalid for the busy
    // period machinery; treat a dead swarm as never available.
    let bundle_lambda = phi * files.iter().map(|f| f.lambda).sum::<f64>();
    let bundle_size: f64 = files.iter().map(|f| f.size).sum();
    let p_bundle = if bundle_lambda > 0.0 {
        let bundle = SwarmParams {
            lambda: bundle_lambda,
            size: bundle_size,
            mu,
            r,
            u,
        };
        impatient::unavailability(&bundle)
    } else {
        1.0
    };
    let bundle_service = bundle_size / mu;

    let outcomes = files
        .iter()
        .map(|f| {
            let indiv_lambda = (1.0 - phi) * f.lambda;
            let p_indiv = if indiv_lambda > 0.0 {
                impatient::unavailability(&SwarmParams {
                    lambda: indiv_lambda,
                    size: f.size,
                    mu,
                    r,
                    u,
                })
            } else {
                1.0
            };
            // Both swarms idle simultaneously; the publisher processes
            // are independent.
            let p_both = p_indiv * p_bundle;
            // Blocked peers wait for whichever swarm's publisher returns
            // first (rate r for each torrent: r + r).
            let wait = p_both / (2.0 * r);
            FileOutcome {
                unavailability: p_both,
                individual_download_time: f.size / mu + wait,
                bundle_download_time: bundle_service + p_bundle / r,
            }
        })
        .collect();

    MixedOutcome {
        phi,
        files: outcomes,
        bundle_unavailability: p_bundle,
    }
}

/// Pure bundling (`φ = 1`): everyone downloads the bundle. Equivalent to
/// [`mixed_bundling`] at φ = 1, exposed for readability.
pub fn pure_bundling(files: &[FileSpec], mu: f64, r: f64, u: f64) -> MixedOutcome {
    mixed_bundling(files, mu, r, u, 1.0)
}

/// Availability-per-byte comparison the §5 discussion gestures at: the
/// minimum take rate at which every file's unavailability drops below
/// `target`, or `None` if even pure bundling cannot reach it.
pub fn min_take_rate_for_availability(
    files: &[FileSpec],
    mu: f64,
    r: f64,
    u: f64,
    target: f64,
    step: f64,
) -> Option<f64> {
    assert!((0.0..1.0).contains(&target));
    assert!(step > 0.0 && step < 1.0);
    let mut phi = 0.0f64;
    while phi <= 1.0 + 1e-9 {
        let o = mixed_bundling(files, mu, r, u, phi.min(1.0));
        if o.files.iter().all(|f| f.unavailability <= target) {
            return Some(phi.min(1.0));
        }
        phi += step;
    }
    None
}

/// The §5 tension in one number: under pure bundling, how much *longer*
/// does a peer interested only in file `k` spend downloading content it
/// did not want, relative to fetching the file alone under mixed
/// bundling at take rate `phi`?
pub fn forced_download_overhead(
    files: &[FileSpec],
    mu: f64,
    r: f64,
    u: f64,
    k: usize,
    phi: f64,
) -> f64 {
    assert!(k < files.len(), "file index out of range");
    let pure = pure_bundling(files, mu, r, u);
    let mixed = mixed_bundling(files, mu, r, u, phi);
    pure.files[k].bundle_download_time - mixed.files[k].individual_download_time
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Vec<FileSpec> {
        vec![
            // Genuinely popular: load λs/μ = 16, self-sustaining alone.
            FileSpec {
                lambda: 1.0 / 5.0,
                size: 4_000.0,
            },
            FileSpec {
                lambda: 1.0 / 600.0,
                size: 4_000.0,
            }, // niche
            FileSpec {
                lambda: 1.0 / 1_200.0,
                size: 4_000.0,
            },
        ]
    }

    const MU: f64 = 50.0;
    const R: f64 = 1.0 / 5_000.0;
    const U: f64 = 300.0;

    #[test]
    fn phi_zero_matches_isolated_swarms() {
        let o = mixed_bundling(&catalog(), MU, R, U, 0.0);
        assert_eq!(o.bundle_unavailability, 1.0);
        for (f, spec) in o.files.iter().zip(catalog()) {
            let iso = impatient::unavailability(&SwarmParams {
                lambda: spec.lambda,
                size: spec.size,
                mu: MU,
                r: R,
                u: U,
            });
            assert!((f.unavailability - iso).abs() < 1e-12);
        }
    }

    #[test]
    fn even_small_take_rates_improve_availability() {
        // §5: "Even a small fraction of users opting to download more
        // content than they strictly sought can significantly improve
        // availability."
        let none = mixed_bundling(&catalog(), MU, R, U, 0.0);
        let small = mixed_bundling(&catalog(), MU, R, U, 0.1);
        // The niche files gain dramatically...
        for k in [1, 2] {
            assert!(
                small.files[k].unavailability < 0.5 * none.files[k].unavailability,
                "file {k}: {} !< half of {}",
                small.files[k].unavailability,
                none.files[k].unavailability
            );
        }
        // ...while the popular file — already essentially always
        // available — pays at most a negligible availability tax from
        // the diverted demand (the paper's "may increase download times
        // of peers downloading the most popular contents").
        assert!(small.files[0].unavailability < 1e-3);
    }

    #[test]
    fn unavailability_monotone_decreasing_for_niche_files() {
        let mut prev = f64::INFINITY;
        for phi in [0.0, 0.2, 0.4, 0.6, 0.8] {
            let o = mixed_bundling(&catalog(), MU, R, U, phi);
            let p = o.files[2].unavailability;
            assert!(p <= prev + 1e-12, "phi={phi}: {p} > {prev}");
            prev = p;
        }
    }

    #[test]
    fn pure_bundling_penalizes_popular_file_seekers() {
        // The popular file's fans must fetch 3x the bytes under pure
        // bundling; mixed bundling keeps an individual swarm alive for
        // them.
        let overhead = forced_download_overhead(&catalog(), MU, R, U, 0, 0.3);
        assert!(
            overhead > 0.0,
            "pure bundling must cost the popular seekers"
        );
    }

    #[test]
    fn min_take_rate_is_monotone_in_target() {
        let loose = min_take_rate_for_availability(&catalog(), MU, R, U, 0.5, 0.05);
        let tight = min_take_rate_for_availability(&catalog(), MU, R, U, 0.05, 0.05);
        match (loose, tight) {
            (Some(l), Some(t)) => assert!(l <= t, "loose {l} > tight {t}"),
            (Some(_), None) => {}
            (None, Some(_)) => panic!("tighter target reachable but looser not"),
            (None, None) => {}
        }
    }

    #[test]
    fn pure_bundling_equals_phi_one() {
        let a = pure_bundling(&catalog(), MU, R, U);
        let b = mixed_bundling(&catalog(), MU, R, U, 1.0);
        assert_eq!(a.bundle_unavailability, b.bundle_unavailability);
        assert_eq!(a.files.len(), b.files.len());
    }

    #[test]
    fn bundle_download_time_consistent_with_patient_model() {
        let o = pure_bundling(&catalog(), MU, R, U);
        let total_lambda: f64 = catalog().iter().map(|f| f.lambda).sum();
        let bundle = SwarmParams {
            lambda: total_lambda,
            size: 12_000.0,
            mu: MU,
            r: R,
            u: U,
        };
        let t_model = crate::patient::download_time(&bundle);
        // Same structure: service + P/r.
        assert!(
            (o.files[0].bundle_download_time - t_model).abs() / t_model < 1e-9,
            "{} vs {}",
            o.files[0].bundle_download_time,
            t_model
        );
    }

    #[test]
    #[should_panic(expected = "phi must be in [0,1]")]
    fn rejects_bad_phi() {
        mixed_bundling(&catalog(), MU, R, U, 1.5);
    }
}
