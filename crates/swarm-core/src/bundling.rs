//! §3.4 — when can bundling reduce download time?
//!
//! Sweeps the patient-peer model (eq. 11) over the bundle size K,
//! reproducing the shape of Figure 3: as K grows the mean download time
//! first *increases* (small bundles add service time without buying
//! enough busy period), then *decreases* (availability gains kick in),
//! then increases again (service time dominates once the swarm is fully
//! self-sustaining). The benefit grows as the publisher becomes rarer
//! (smaller R).

use crate::params::{PublisherScaling, SwarmParams};
use crate::{impatient, patient, threshold};
use serde::{Deserialize, Serialize};

/// One point of a bundling sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Bundle size.
    pub k: u32,
    /// Mean download time `E[T]` of the bundle (per-peer, for the whole
    /// bundle).
    pub download_time: f64,
    /// Unavailability `P` of the bundle.
    pub unavailability: f64,
    /// Expected availability period `ln E[B]` (log domain; linear value
    /// overflows for large K).
    pub ln_busy_period: f64,
}

/// Sweep the patient-peer model over bundle sizes `ks`.
pub fn sweep(file: &SwarmParams, scaling: PublisherScaling, ks: &[u32]) -> Vec<SweepPoint> {
    ks.iter()
        .map(|&k| {
            let b = file.bundle(k, scaling);
            SweepPoint {
                k,
                download_time: patient::download_time(&b),
                unavailability: impatient::unavailability(&b),
                ln_busy_period: impatient::ln_busy_period(&b),
            }
        })
        .collect()
}

/// Sweep the threshold-coverage model (Theorem 3.3 with a single
/// intermittent publisher, eq. 16) over bundle sizes — the model curve of
/// §4.3.1 / Figure 6(a).
pub fn sweep_single_publisher(
    file: &SwarmParams,
    scaling: PublisherScaling,
    m: u64,
    ks: &[u32],
) -> Vec<SweepPoint> {
    ks.iter()
        .map(|&k| {
            let b = file.bundle(k, scaling);
            SweepPoint {
                k,
                download_time: threshold::single_publisher_download_time(&b, m),
                unavailability: threshold::single_publisher_unavailability(&b, m),
                ln_busy_period: impatient::ln_busy_period(&b),
            }
        })
        .collect()
}

/// The bundle size minimizing mean download time over `1..=k_max`
/// (patient model). Returns `(k_opt, E[T](k_opt))`.
///
/// ```
/// use swarm_core::bundling::optimal_bundle_size;
/// use swarm_core::{PublisherScaling, SwarmParams};
/// // A rarely-reseeded file: some bundling is optimal.
/// let file = SwarmParams {
///     lambda: 1.0 / 60.0, size: 4_000.0, mu: 50.0,
///     r: 1.0 / 20_000.0, u: 300.0,
/// };
/// let (k, t) = optimal_bundle_size(&file, PublisherScaling::Fixed, 10);
/// assert!(k > 1);
/// assert!(t < 20_000.0);
/// ```
pub fn optimal_bundle_size(
    file: &SwarmParams,
    scaling: PublisherScaling,
    k_max: u32,
) -> (u32, f64) {
    assert!(k_max >= 1);
    let ks: Vec<u32> = (1..=k_max).collect();
    sweep(file, scaling, &ks)
        .into_iter()
        .min_by(|a, b| {
            a.download_time
                .partial_cmp(&b.download_time)
                .expect("finite times")
        })
        .map(|p| (p.k, p.download_time))
        .expect("nonempty sweep")
}

/// Does bundling (at the optimal size ≤ `k_max`) strictly reduce download
/// time relative to distributing the file alone?
pub fn bundling_helps(file: &SwarmParams, scaling: PublisherScaling, k_max: u32) -> bool {
    let single = patient::download_time(file);
    let (k, t) = optimal_bundle_size(file, scaling, k_max);
    k > 1 && t < single
}

/// Per-file verdict for a heterogeneous bundle (§4.3.3 / Figure 6(c)):
/// compares each file's stand-alone download time against the common
/// bundle download time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeterogeneousVerdict {
    /// Stand-alone `E[T]` per file, in input order.
    pub individual_times: Vec<f64>,
    /// `E[T]` of the bundle containing every file.
    pub bundle_time: f64,
    /// For each file, whether joining the bundle reduces its download time.
    pub helped: Vec<bool>,
}

/// Evaluate bundling for files with heterogeneous popularities
/// `(λₖ, sₖ)`; every file shares `mu` and the publisher process `(r, u)`.
pub fn heterogeneous_bundle(files: &[(f64, f64)], mu: f64, r: f64, u: f64) -> HeterogeneousVerdict {
    assert!(!files.is_empty());
    let individual_times: Vec<f64> = files
        .iter()
        .map(|&(lambda, size)| {
            patient::download_time(&SwarmParams {
                lambda,
                size,
                mu,
                r,
                u,
            })
        })
        .collect();
    let bundle = SwarmParams::aggregate(files, mu, r, u);
    let bundle_time = patient::download_time(&bundle);
    let helped = individual_times.iter().map(|&t| bundle_time < t).collect();
    HeterogeneousVerdict {
        individual_times,
        bundle_time,
        helped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A Figure-3-like configuration: unpopular file, rare publisher.
    fn fig3_file(inv_r: f64) -> SwarmParams {
        SwarmParams {
            lambda: 1.0 / 55.0,
            size: 4000.0,
            mu: 80.0,
            r: 1.0 / inv_r,
            u: 50.0,
        }
    }

    #[test]
    fn sweep_is_ordered_and_finite() {
        let pts = sweep(&fig3_file(800.0), PublisherScaling::Fixed, &[1, 2, 3, 4, 5]);
        assert_eq!(pts.len(), 5);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(p.k, i as u32 + 1);
            assert!(p.download_time.is_finite() && p.download_time > 0.0);
            assert!((0.0..=1.0).contains(&p.unavailability));
        }
    }

    #[test]
    fn figure3_shape_rare_publisher_has_interior_minimum() {
        // For large 1/R, E[T](K) has an interior minimum at K > 1.
        let file = fig3_file(1100.0);
        let (k_opt, t_opt) = optimal_bundle_size(&file, PublisherScaling::Fixed, 10);
        assert!(k_opt > 1, "optimal K = {k_opt}");
        assert!(t_opt < patient::download_time(&file));
        // Curve rises again past the optimum.
        let pts = sweep(&file, PublisherScaling::Fixed, &[k_opt, k_opt + 3]);
        assert!(pts[1].download_time > pts[0].download_time);
    }

    #[test]
    fn figure3_shape_frequent_publisher_prefers_no_bundling() {
        // For small 1/R the wait is cheap; K = 1 wins.
        let file = fig3_file(50.0);
        let (k_opt, _) = optimal_bundle_size(&file, PublisherScaling::Fixed, 10);
        assert_eq!(k_opt, 1);
        assert!(!bundling_helps(&file, PublisherScaling::Fixed, 10));
    }

    #[test]
    fn benefits_increase_as_publisher_rarer() {
        // Figure 3: "the benefits of bundling increase as the value of R
        // decreases" — measure the relative gain of the optimal bundle.
        let mut prev_gain = f64::NEG_INFINITY;
        for inv_r in [600.0, 900.0, 1300.0, 2000.0] {
            let file = fig3_file(inv_r);
            let single = patient::download_time(&file);
            let (_, t_opt) = optimal_bundle_size(&file, PublisherScaling::Fixed, 12);
            let gain = (single - t_opt) / single;
            assert!(
                gain >= prev_gain - 1e-9,
                "1/R={inv_r}: gain {gain} fell below {prev_gain}"
            );
            prev_gain = gain;
        }
        assert!(
            prev_gain > 0.0,
            "rarest publisher must benefit from bundling"
        );
    }

    #[test]
    fn single_publisher_sweep_matches_fig6a_shape() {
        // §4.3: λ=1/60, s/μ=80 s, one publisher on 300 s / off 900 s, m=9.
        let file = SwarmParams {
            lambda: 1.0 / 60.0,
            size: 4000.0,
            mu: 50.0,
            r: 1.0 / 900.0,
            u: 300.0,
        };
        let ks: Vec<u32> = (1..=8).collect();
        let pts = sweep_single_publisher(&file, PublisherScaling::Fixed, 9, &ks);
        let best = pts
            .iter()
            .min_by(|a, b| a.download_time.partial_cmp(&b.download_time).unwrap())
            .unwrap();
        assert!(
            (3..=6).contains(&best.k),
            "model optimum ~K=5 per the paper, got {} ({pts:?})",
            best.k
        );
        // K=1,2 dominated by waiting: download times near P/r scale.
        assert!(pts[0].download_time > 2.0 * pts[best.k as usize - 1].download_time / 1.5);
    }

    #[test]
    fn heterogeneous_bundle_helps_unpopular_files_only() {
        // §4.3.3: λᵢ = 1/(8i)·(scaled), most popular file loses, the
        // unpopular ones win.
        let mu = 50.0;
        let files: Vec<(f64, f64)> = (1..=4).map(|i| (1.0 / (80.0 * i as f64), 4000.0)).collect();
        let v = heterogeneous_bundle(&files, mu, 1.0 / 900.0, 300.0);
        // Download times rise with decreasing popularity.
        for w in v.individual_times.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // The most popular file should gain least (or lose); the least
        // popular should gain most.
        let gain_first = v.individual_times[0] - v.bundle_time;
        let gain_last = v.individual_times[3] - v.bundle_time;
        assert!(gain_last > gain_first);
        assert!(v.helped[3], "least popular file must benefit");
    }

    #[test]
    fn optimal_bundle_size_respects_k_max() {
        let file = fig3_file(5000.0);
        let (k, _) = optimal_bundle_size(&file, PublisherScaling::Fixed, 3);
        assert!(k <= 3);
    }
}
