//! §3.2 — the simple availability model (paper eqs. 1–8).
//!
//! Two nested instances of the same idea:
//!
//! 1. **Publishers only** (eqs. 1–6): content is available iff a publisher
//!    is online. Publisher presence is an M/G/∞ queue with arrival rate
//!    `r` and residence `u`, so availability intervals are its busy
//!    periods, `E[B] = (e^{ru} − 1)/r`, and a Poisson (peer) arrival finds
//!    the content unavailable with probability
//!    `P = (1/r)/(E[B] + 1/r) = e^{−ru}`.
//! 2. **Publishers and peers** (eqs. 7–8): peers also hold the content
//!    while they download; with the simplifying assumption `u = s/μ`,
//!    everyone is a homogeneous customer and the busy period is
//!    `(e^{(λ+r)s/μ} − 1)/(λ+r)`.
//!
//! Bundling K files multiplies both the arrival rate and the residence
//! time by K, so the exponent grows as K² — the paper's headline
//! `e^Θ(K²)` unavailability reduction, in its simplest form.

use crate::params::SwarmParams;
use swarm_queue::busy::{classical_busy_period, ln_classical_busy_period};

/// Expected availability (busy) period with publishers only — eq. (2):
/// `E[B] = (e^{r·u} − 1)/r`.
pub fn publisher_busy_period(p: &SwarmParams) -> f64 {
    p.validate();
    classical_busy_period(p.r, p.u)
}

/// `ln E[B]` of [`publisher_busy_period`] (finite at any load).
pub fn ln_publisher_busy_period(p: &SwarmParams) -> f64 {
    p.validate();
    ln_classical_busy_period(p.r, p.u)
}

/// Probability a peer arrives during an idle period, publishers only —
/// eq. (1). Closed form: `P = 1/(1 + r·E[B]) = e^{−r·u}`.
pub fn publisher_unavailability(p: &SwarmParams) -> f64 {
    p.validate();
    (-p.r * p.u).exp()
}

/// `ln P` of [`publisher_unavailability`]: simply `−r·u`.
pub fn ln_publisher_unavailability(p: &SwarmParams) -> f64 {
    p.validate();
    -p.r * p.u
}

/// Expected availability period when peers also serve the content and the
/// publisher stays exactly one service time (`u = s/μ`) — eq. (7):
/// `E[B] = (e^{(λ+r)s/μ} − 1)/(λ+r)`.
///
/// Note: this model *ignores* the configured `u` and uses `s/μ` in its
/// place, per the paper's simplifying assumption.
pub fn coverage_busy_period(p: &SwarmParams) -> f64 {
    p.validate();
    classical_busy_period(p.lambda + p.r, p.service_time())
}

/// `ln E[B]` of [`coverage_busy_period`].
pub fn ln_coverage_busy_period(p: &SwarmParams) -> f64 {
    p.validate();
    ln_classical_busy_period(p.lambda + p.r, p.service_time())
}

/// Unavailability in the peers-and-publishers model: with homogeneous
/// customers at rate `λ+r` and residence `s/μ`,
/// `P = 1/(1 + (λ+r)E[B]) = e^{−(λ+r)s/μ}`.
pub fn coverage_unavailability(p: &SwarmParams) -> f64 {
    ln_coverage_unavailability(p).exp()
}

/// `ln P` of [`coverage_unavailability`]: `−(λ+r)·s/μ`.
pub fn ln_coverage_unavailability(p: &SwarmParams) -> f64 {
    p.validate();
    -(p.lambda + p.r) * p.service_time()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PublisherScaling;

    fn swarm() -> SwarmParams {
        SwarmParams {
            lambda: 1.0 / 150.0,
            size: 4000.0,
            mu: 33.0,
            r: 1.0 / 1000.0,
            u: 400.0,
        }
    }

    #[test]
    fn unavailability_is_exp_minus_ru() {
        let p = swarm();
        // Closed form e^{-ru} must agree with the ratio definition (eq. 1).
        let eb = publisher_busy_period(&p);
        let ratio = (1.0 / p.r) / (eb + 1.0 / p.r);
        assert!((publisher_unavailability(&p) - ratio).abs() < 1e-12);
        assert!((publisher_unavailability(&p) - (-0.4f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn ln_forms_agree_with_linear() {
        let p = swarm();
        assert!((ln_publisher_busy_period(&p) - publisher_busy_period(&p).ln()).abs() < 1e-10);
        assert!((ln_coverage_busy_period(&p) - coverage_busy_period(&p).ln()).abs() < 1e-10);
    }

    #[test]
    fn bundling_k_proportional_gives_k_squared_exponent() {
        // eq (5)/(6): with R = Kr, U = Ku, ln E[B] ≈ K² r u − ln(Kr).
        let p = swarm();
        for k in [2u32, 5, 10] {
            let b = p.bundle(k, PublisherScaling::Proportional);
            let ln_eb = ln_publisher_busy_period(&b);
            let kf = k as f64;
            let expected =
                swarm_queue::series::ln_sub_exp(kf * kf * p.r * p.u, 0.0) - (kf * p.r).ln();
            assert!((ln_eb - expected).abs() < 1e-9, "k={k}");
            // Unavailability falls exactly as e^{−K²ru}.
            assert!((ln_publisher_unavailability(&b) + kf * kf * p.r * p.u).abs() < 1e-12);
        }
    }

    #[test]
    fn unavailability_decreases_with_bundling() {
        let p = swarm();
        let mut prev = publisher_unavailability(&p);
        for k in 2..=8 {
            let cur = publisher_unavailability(&p.bundle(k, PublisherScaling::Proportional));
            assert!(cur < prev, "k={k}: {cur} >= {prev}");
            prev = cur;
        }
    }

    #[test]
    fn coverage_model_uses_peer_demand() {
        // Even with the same publisher process, more peer demand means
        // longer availability periods.
        let p = swarm();
        let popular = SwarmParams {
            lambda: 10.0 * p.lambda,
            ..p
        };
        assert!(coverage_busy_period(&popular) > coverage_busy_period(&p));
    }

    #[test]
    fn coverage_model_bundling_exponent_with_fixed_publisher() {
        // §3.2 closing remark: E[B] = e^{Θ(K²)} "even if the bundled
        // publisher arrival rate is equal to the publisher arrival rate of
        // the individual swarms".
        let p = swarm();
        let ln_1 = ln_coverage_busy_period(&p.bundle(1, PublisherScaling::Fixed));
        let ln_4 = ln_coverage_busy_period(&p.bundle(4, PublisherScaling::Fixed));
        let ln_8 = ln_coverage_busy_period(&p.bundle(8, PublisherScaling::Fixed));
        // Quadratic growth: going 4→8 should add ~4x what going 1→4 added
        // ... precisely, ln E[B](K) ≈ (Kλ+r)(Ks/μ) ~ K²λs/μ.
        let g14 = ln_4 - ln_1;
        let g48 = ln_8 - ln_4;
        assert!(
            g48 > 2.5 * g14,
            "quadratic growth expected: {g14} then {g48}"
        );
    }
}
