//! The paper's Table 1 notation: swarm parameters and bundle construction.

use serde::{Deserialize, Serialize};

/// Parameters of one swarm (Table 1 of the paper).
///
/// Units are free as long as they are consistent: `size/mu` must come out
/// in the same time unit as `1/lambda`, `1/r` and `u`. The experiments use
/// kB and seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwarmParams {
    /// Peer arrival rate λ (peers per unit time).
    pub lambda: f64,
    /// Content size s.
    pub size: f64,
    /// Mean effective download rate μ of peers (size units per unit time).
    pub mu: f64,
    /// Publisher arrival rate r.
    pub r: f64,
    /// Mean publisher residence time u.
    pub u: f64,
}

/// How the publisher process scales when `K` files are bundled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PublisherScaling {
    /// `R = K·r`, `U = K·u` — each file's publisher now serves the bundle
    /// (§3.2: "If R and U scale as R = Kr and U = Ku").
    Proportional,
    /// `R = r`, `U = u` — the bundle gets no more publisher effort than a
    /// single file (the conservative assumption of Lemma 3.1 and
    /// Theorem 3.1; bundling still wins by e^Θ(K²)).
    Fixed,
    /// Explicit bundle publisher parameters.
    Custom {
        /// Bundle publisher arrival rate R.
        r: f64,
        /// Bundle publisher mean residence U.
        u: f64,
    },
}

impl SwarmParams {
    /// Mean service (active download) time `s/μ` — the residence time of a
    /// peer during a busy period.
    pub fn service_time(&self) -> f64 {
        self.size / self.mu
    }

    /// Offered peer load `λ·s/μ`: the steady-state mean population of
    /// concurrently downloading peers.
    pub fn peer_load(&self) -> f64 {
        self.lambda * self.service_time()
    }

    /// Panic unless every parameter is positive and finite. Models call
    /// this on entry so misconfigurations fail loudly at the boundary.
    pub fn validate(&self) {
        for (name, v) in [
            ("lambda", self.lambda),
            ("size", self.size),
            ("mu", self.mu),
            ("r", self.r),
            ("u", self.u),
        ] {
            assert!(
                v > 0.0 && v.is_finite(),
                "SwarmParams.{name} must be positive and finite, got {v}"
            );
        }
    }

    /// Bundle `k` copies of this (homogeneous) file: the bundled swarm has
    /// peer arrival rate `Λ = kλ` (any peer wanting any constituent file
    /// downloads the bundle) and size `S = ks`, with the publisher process
    /// scaled per `scaling`.
    ///
    /// The result is itself a [`SwarmParams`], so every model applies
    /// uniformly to files and bundles — exactly how the paper replaces
    /// (λ, s, r, u) with (Λ, S, R, U).
    pub fn bundle(&self, k: u32, scaling: PublisherScaling) -> SwarmParams {
        assert!(k >= 1, "bundle size must be at least 1");
        let kf = k as f64;
        let (r, u) = match scaling {
            PublisherScaling::Proportional => (self.r * kf, self.u * kf),
            PublisherScaling::Fixed => (self.r, self.u),
            PublisherScaling::Custom { r, u } => (r, u),
        };
        SwarmParams {
            lambda: self.lambda * kf,
            size: self.size * kf,
            mu: self.mu,
            r,
            u,
        }
    }

    /// Bundle heterogeneous files: `Λ = Σλₖ`, `S = Σsₖ` (§3.3.4 and the
    /// heterogeneous-popularity experiment of §4.3.3). `mu` is the common
    /// swarm capacity; `r`/`u` describe the bundle's publisher.
    pub fn aggregate(files: &[(f64, f64)], mu: f64, r: f64, u: f64) -> SwarmParams {
        assert!(!files.is_empty(), "aggregate of zero files");
        let lambda = files.iter().map(|f| f.0).sum();
        let size = files.iter().map(|f| f.1).sum();
        let p = SwarmParams {
            lambda,
            size,
            mu,
            r,
            u,
        };
        p.validate();
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file() -> SwarmParams {
        SwarmParams {
            lambda: 1.0 / 60.0,
            size: 4000.0,
            mu: 50.0,
            r: 1.0 / 900.0,
            u: 300.0,
        }
    }

    #[test]
    fn service_time_and_load() {
        let p = file();
        assert!((p.service_time() - 80.0).abs() < 1e-12);
        assert!((p.peer_load() - 80.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn bundle_proportional_scales_everything() {
        let p = file();
        let b = p.bundle(4, PublisherScaling::Proportional);
        assert!((b.lambda - 4.0 * p.lambda).abs() < 1e-15);
        assert!((b.size - 4.0 * p.size).abs() < 1e-9);
        assert!((b.r - 4.0 * p.r).abs() < 1e-15);
        assert!((b.u - 4.0 * p.u).abs() < 1e-9);
        assert_eq!(b.mu, p.mu);
        // Load scales as K².
        assert!((b.peer_load() - 16.0 * p.peer_load()).abs() < 1e-9);
    }

    #[test]
    fn bundle_fixed_keeps_publisher() {
        let p = file();
        let b = p.bundle(6, PublisherScaling::Fixed);
        assert_eq!(b.r, p.r);
        assert_eq!(b.u, p.u);
        assert!((b.lambda - 6.0 * p.lambda).abs() < 1e-15);
    }

    #[test]
    fn bundle_custom_overrides_publisher() {
        let p = file();
        let b = p.bundle(2, PublisherScaling::Custom { r: 0.5, u: 7.0 });
        assert_eq!(b.r, 0.5);
        assert_eq!(b.u, 7.0);
    }

    #[test]
    fn bundle_of_one_with_proportional_is_identity() {
        let p = file();
        let b = p.bundle(1, PublisherScaling::Proportional);
        assert_eq!(p, b);
    }

    #[test]
    fn aggregate_sums_demand_and_size() {
        // Fig 6(c): λᵢ = 1/(8i), four files of 4 MB.
        let files: Vec<(f64, f64)> = (1..=4).map(|i| (1.0 / (8.0 * i as f64), 4000.0)).collect();
        let b = SwarmParams::aggregate(&files, 50.0, 1.0 / 900.0, 300.0);
        assert!((b.lambda - (1.0 / 8.0 + 1.0 / 16.0 + 1.0 / 24.0 + 1.0 / 32.0)).abs() < 1e-12);
        assert!((b.size - 16000.0).abs() < 1e-9);
        // The paper quotes the aggregate as λ = 1/3.84.
        assert!((b.lambda - 1.0 / 3.84).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn validate_rejects_zero_rate() {
        SwarmParams {
            lambda: 0.0,
            ..file()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn bundle_of_zero_rejected() {
        file().bundle(0, PublisherScaling::Fixed);
    }
}
