//! §3.3.4 — altruistic lingering.
//!
//! Peers may stay online as seeds for an exponential time with mean `1/γ`
//! after completing their download (altruism, or publisher-provided
//! incentives). A lingering peer's total residence is then
//! `download + lingering` — a *hypoexponential* — so the busy period needs
//! the generalized Browne–Steele form (the paper's technical report
//! parameterizes "a general version of eq. (9)"; we reconstruct it via
//! [`swarm_queue::general`]).
//!
//! The module also implements the eq. (15) comparison: how long must peers
//! of a small unpopular swarm linger to match the availability a bundle
//! would give them for free?

use crate::params::SwarmParams;
use swarm_queue::general::{general_busy_period, IntegratedTail};
use swarm_queue::series::ln_add_exp;

/// Expected availability period when every peer lingers for an exponential
/// time with mean `1/gamma` after completing its download.
///
/// Busy-period parameterization: arrivals at `β = λ + r`; an arrival is a
/// peer w.p. `λ/(λ+r)` with residence `hypoexp(s/μ, 1/γ)`, else a
/// publisher with residence `Exp(u)`; the initiator is a publisher.
pub fn busy_period(p: &SwarmParams, gamma: f64) -> f64 {
    p.validate();
    assert!(
        gamma > 0.0 && gamma.is_finite(),
        "gamma must be positive, got {gamma}"
    );
    let linger_mean = 1.0 / gamma;
    let service = p.service_time();
    // The signed-mixture representation of the hypoexponential has
    // coefficients ∝ 1/(rate difference), so nearly-equal stage rates are
    // numerically hostile. The busy period is smooth in γ: near the
    // degenerate point evaluate at ±10% and average (second-order
    // accurate through the removable singularity).
    if (linger_mean - service).abs() < 0.1 * service {
        let lo = busy_period_at(p, service * 0.85);
        let hi = busy_period_at(p, service * 1.15);
        return 0.5 * (lo + hi);
    }
    busy_period_at(p, linger_mean)
}

fn busy_period_at(p: &SwarmParams, linger_mean: f64) -> f64 {
    let peer_tail = IntegratedTail::hypoexp2(p.service_time(), linger_mean);
    let publisher_tail = IntegratedTail::exponential(p.u);
    let q1 = p.lambda / (p.lambda + p.r);
    let tail = IntegratedTail::mix(q1, &peer_tail, &publisher_tail);
    general_busy_period(p.lambda + p.r, p.u, &tail)
}

/// Probability a peer arrives while content is unavailable, with
/// lingering: `P = 1/(1 + r·E[B])`.
pub fn unavailability(p: &SwarmParams, gamma: f64) -> f64 {
    let eb = busy_period(p, gamma);
    (-ln_add_exp(0.0, (p.r * eb).ln())).exp()
}

/// Mean download time with patient peers and lingering:
/// `E[T] = s/μ + P/r`. (Lingering happens *after* completion, so it does
/// not add to the download time — it only lengthens busy periods.)
pub fn download_time(p: &SwarmParams, gamma: f64) -> f64 {
    p.service_time() + unavailability(p, gamma) / p.r
}

/// The eq. (15) equivalence. Consider swarms 1 (small, unpopular) and 2
/// (large, popular) and a bundle of both. For swarm 1 *alone* to offer the
/// same peer-sustained load as the bundle, its peers must linger so that
///
/// `s₁/μ + 1/γ = (λ₁ + λ₂)(s₁ + s₂)/(μ λ₁)`
///
/// Returns the required mean residence `s₁/μ + 1/γ` (the eq. 15 RHS) and
/// the implied mean lingering time `1/γ`.
///
/// The lingering time is always strictly positive: the target residence
/// `(λ₁+λ₂)(s₁+s₂)/(μλ₁)` exceeds `s₁/μ` because `(λ₁+λ₂)/λ₁ > 1` and
/// `s₁+s₂ > s₁` — swarm 1 alone can never match the bundle on service
/// time alone.
pub fn equivalent_lingering(
    lambda1: f64,
    size1: f64,
    lambda2: f64,
    size2: f64,
    mu: f64,
) -> (f64, f64) {
    for (name, v) in [
        ("lambda1", lambda1),
        ("size1", size1),
        ("lambda2", lambda2),
        ("size2", size2),
        ("mu", mu),
    ] {
        assert!(v > 0.0 && v.is_finite(), "{name} must be positive, got {v}");
    }
    let target_residence = (lambda1 + lambda2) * (size1 + size2) / (mu * lambda1);
    let service = size1 / mu;
    debug_assert!(target_residence > service);
    (target_residence, target_residence - service)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn swarm() -> SwarmParams {
        SwarmParams {
            lambda: 1.0 / 100.0,
            size: 2000.0,
            mu: 50.0,
            r: 1.0 / 2000.0,
            u: 200.0,
        }
    }

    #[test]
    fn lingering_lengthens_busy_periods() {
        let p = swarm();
        // γ → ∞ approximates no lingering.
        let b_none = busy_period(&p, 1e6);
        let b_some = busy_period(&p, 1.0 / 60.0); // linger 60 s
        let b_long = busy_period(&p, 1.0 / 600.0); // linger 600 s
        assert!(b_some > b_none, "{b_some} vs {b_none}");
        assert!(b_long > b_some);
    }

    #[test]
    fn no_lingering_limit_matches_patient_model() {
        let p = swarm();
        let b_limit = busy_period(&p, 1e8);
        let b_patient = crate::patient::busy_period(&p);
        assert!(
            ((b_limit - b_patient) / b_patient).abs() < 1e-3,
            "γ→∞ limit {b_limit} vs patient {b_patient}"
        );
    }

    #[test]
    fn lingering_reduces_download_time() {
        let p = swarm();
        let t_none = download_time(&p, 1e6);
        let t_linger = download_time(&p, 1.0 / 300.0);
        assert!(t_linger < t_none);
        // Lingering never drives T below pure service time.
        assert!(t_linger >= p.service_time());
    }

    #[test]
    fn unavailability_falls_with_lingering() {
        let p = swarm();
        let mut prev = 1.0;
        for linger in [1.0, 30.0, 120.0, 600.0] {
            let pr = unavailability(&p, 1.0 / linger);
            assert!(pr < prev, "linger={linger}: {pr} >= {prev}");
            prev = pr;
        }
    }

    #[test]
    fn eq15_unpopular_small_file_needs_enormous_lingering() {
        // s₁ ≪ s₂, λ₁ ≪ 1 ≪ λ₂: the residence target explodes as
        // (1 + λ₂/λ₁)(s₁+s₂)/μ — matching the paper's λ₁ → 0 limit.
        let (mu, s1, s2) = (50.0, 100.0, 40_000.0);
        let (l1, l2) = (1e-4, 2.0);
        let (residence, linger) = equivalent_lingering(l1, s1, l2, s2, mu);
        let expected = (s1 + s2) / mu * (1.0 + l2 / l1);
        assert!(((residence - expected) / expected).abs() < 1e-9);
        // The bundle gives the same availability with residence
        // (s1+s2)/μ ≈ 802 s; lingering alone needs ~16M s.
        assert!(linger > 1e7);
    }

    #[test]
    fn eq15_lingering_always_positive() {
        // Even with overwhelming demand for file 1, the target residence
        // strictly exceeds the pure service time, so some lingering is
        // always required to emulate the bundle.
        let (residence, linger) = equivalent_lingering(1e6, 4000.0, 1e-6, 1.0, 50.0);
        assert!(linger > 0.0);
        assert!(residence > 4000.0 / 50.0);
        assert!((residence - linger - 80.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_gamma_equal_service_rate_does_not_panic() {
        let p = swarm();
        let service = p.service_time();
        // 1/γ exactly equals s/μ: internally perturbed, must not panic.
        let b = busy_period(&p, 1.0 / service);
        assert!(b.is_finite() && b > 0.0);
    }
}
