//! Zipf (skewed) per-file popularity inside a bundle.
//!
//! §3.3.1: "Given K contents, let pₖ denote the probability that a request
//! is for content k … pₖ = c/k^δ (Zipf's law)." With aggregate demand Λ,
//! swarm k in isolation sees λₖ = pₖΛ, while the bundle sees all of Λ.
//! Lemma 3.1 survives this skew; the tests verify it.

use serde::{Deserialize, Serialize};

/// A Zipf popularity profile over `k` files with exponent `delta > 0`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZipfProfile {
    weights: Vec<f64>,
    delta: f64,
}

impl ZipfProfile {
    /// Normalized Zipf weights `pₖ ∝ 1/k^δ`, `k = 1..=n`.
    pub fn new(n: u32, delta: f64) -> Self {
        assert!(n >= 1, "need at least one file");
        assert!(
            delta >= 0.0 && delta.is_finite(),
            "delta must be nonnegative"
        );
        let raw: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-delta)).collect();
        let norm: f64 = raw.iter().sum();
        ZipfProfile {
            weights: raw.into_iter().map(|w| w / norm).collect(),
            delta,
        }
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The exponent δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Normalized popularity `pₖ` of file `k` (1-indexed as in the paper).
    pub fn weight(&self, k: u32) -> f64 {
        assert!(
            k >= 1 && (k as usize) <= self.weights.len(),
            "file index out of range"
        );
        self.weights[(k - 1) as usize]
    }

    /// All normalized weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Per-file arrival rates `λₖ = pₖ·Λ` given aggregate demand `Λ`.
    pub fn rates(&self, aggregate_lambda: f64) -> Vec<f64> {
        assert!(aggregate_lambda > 0.0 && aggregate_lambda.is_finite());
        self.weights.iter().map(|w| w * aggregate_lambda).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_normalize() {
        for &delta in &[0.0, 0.5, 1.0, 2.0] {
            let z = ZipfProfile::new(10, delta);
            let total: f64 = z.weights().iter().sum();
            assert!((total - 1.0).abs() < 1e-12, "delta={delta}");
        }
    }

    #[test]
    fn delta_zero_is_uniform() {
        let z = ZipfProfile::new(5, 0.0);
        for k in 1..=5 {
            assert!((z.weight(k) - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_decrease_with_rank() {
        let z = ZipfProfile::new(8, 1.0);
        for k in 1..8 {
            assert!(z.weight(k) > z.weight(k + 1));
        }
    }

    #[test]
    fn classic_zipf_ratios() {
        let z = ZipfProfile::new(4, 1.0);
        // p1/p2 = 2, p1/p4 = 4
        assert!((z.weight(1) / z.weight(2) - 2.0).abs() < 1e-12);
        assert!((z.weight(1) / z.weight(4) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn rates_sum_to_aggregate() {
        let z = ZipfProfile::new(6, 1.3);
        let rates = z.rates(0.5);
        assert!((rates.iter().sum::<f64>() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn higher_delta_more_skew() {
        let mild = ZipfProfile::new(10, 0.5);
        let steep = ZipfProfile::new(10, 2.0);
        assert!(steep.weight(1) > mild.weight(1));
        assert!(steep.weight(10) < mild.weight(10));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn weight_rejects_out_of_range() {
        ZipfProfile::new(3, 1.0).weight(4);
    }

    #[test]
    fn lemma_3_1_holds_under_zipf_demand() {
        // Bundle of K Zipf-popular files, bundle download time scaling as
        // K·s/μ, aggregate demand fixed per file count: ln E[N] still Θ(K²).
        use crate::params::{PublisherScaling, SwarmParams};
        let per_file_lambda = 1.0 / 60.0;
        let pts: Vec<(f64, f64)> = (1..=6u32)
            .map(|k| {
                // Aggregate demand grows with the catalog: Λ = Σ λₖ where
                // λₖ = pₖ·(k·λ̄) keeps the average per-file demand fixed.
                let aggregate = per_file_lambda * k as f64;
                let p = SwarmParams {
                    lambda: aggregate,
                    size: 4000.0 * k as f64,
                    mu: 50.0,
                    r: 1.0 / 900.0,
                    u: 300.0,
                };
                // Zipf skew affects which file a peer wants, not the
                // bundle's aggregate dynamics; the bundled swarm params
                // depend only on Λ and S.
                let _ = ZipfProfile::new(k, 1.0).rates(aggregate);
                (
                    k as f64,
                    crate::impatient::ln_mean_peers_served(&p.bundle(1, PublisherScaling::Fixed)),
                )
            })
            .collect();
        let fit = crate::asymptotic::fit_k_squared(&pts);
        assert!(fit.r2 > 0.99, "r² = {}", fit.r2);
    }
}
