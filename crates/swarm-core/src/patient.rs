//! §3.3.2 — mean download time with patient peers.
//!
//! Peers arriving during an idle period now *wait* for a publisher. Their
//! download time is waiting time plus service time. The idle period is
//! exponential with mean `1/r` and, by PASTA, a fraction `P` of peers
//! arrive idle, giving Lemma 3.2 (eq. 11):
//!
//! `E[T] = s/μ + P/r`,  with  `P = (1/r)/(1/r + E[B])`.
//!
//! The busy period uses the same eq. (9) parameterization as §3.3.1
//! (`α₂ = θ = u`), neglecting the accumulated group of waiting peers that
//! is served when a publisher returns (the paper's stated simplification).
//!
//! Theorem 3.2 (Download Time Theorem) follows: bundling K files can
//! increase `E[T]` by at most a factor K (service-dominated regime), and
//! can *decrease* it by Θ(1/R) (wait-dominated regime, highly unavailable
//! publishers) — peers obtain more content in less time.

use crate::impatient;
use crate::params::SwarmParams;

/// Expected availability period `E[B]`; identical parameterization to
/// [`impatient::busy_period`] (the models differ in peer behavior during
/// idleness, not in the busy-period law).
pub fn busy_period(p: &SwarmParams) -> f64 {
    impatient::busy_period(p)
}

/// `ln E[B]`.
pub fn ln_busy_period(p: &SwarmParams) -> f64 {
    impatient::ln_busy_period(p)
}

/// Probability a peer arrives while content is unavailable.
pub fn unavailability(p: &SwarmParams) -> f64 {
    impatient::unavailability(p)
}

/// Mean download time — Lemma 3.2, eq. (11): `E[T] = s/μ + P/r`.
///
/// ```
/// use swarm_core::{patient, SwarmParams};
/// let file = SwarmParams {
///     lambda: 1.0 / 60.0, size: 4_000.0, mu: 50.0,
///     r: 1.0 / 900.0, u: 300.0,
/// };
/// let t = patient::download_time(&file);
/// // Download time decomposes into service plus waiting.
/// assert!((t - (file.service_time() + patient::waiting_time(&file))).abs() < 1e-9);
/// ```
pub fn download_time(p: &SwarmParams) -> f64 {
    p.validate();
    p.service_time() + unavailability(p) / p.r
}

/// Mean time spent *waiting* (the `P/r` component of eq. 11).
pub fn waiting_time(p: &SwarmParams) -> f64 {
    p.validate();
    unavailability(p) / p.r
}

/// Theorem 3.2(a): the worst-case download-time inflation from bundling K
/// files is the service-time ratio, at most K (bundle service is `Ks/μ`
/// and waiting cannot exceed the unbundled wait ceiling `1/r`).
pub fn max_inflation_factor(k: u32) -> f64 {
    assert!(k >= 1);
    k as f64
}

/// Theorem 3.2(b) illustration: the download-time *reduction* factor
/// achievable by bundling when waits dominate, `E[T]/E[T_bundle]`.
/// As `r → 0` with the bundle self-sustaining, this grows as Θ(1/r).
pub fn reduction_factor(single: &SwarmParams, bundle: &SwarmParams) -> f64 {
    download_time(single) / download_time(bundle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PublisherScaling;

    /// Paper §4.3 parameters: s/μ = 80 s, λ = 1/60, 1/r = 900 s, u = 300 s.
    fn swarm() -> SwarmParams {
        SwarmParams {
            lambda: 1.0 / 60.0,
            size: 4000.0,
            mu: 50.0,
            r: 1.0 / 900.0,
            u: 300.0,
        }
    }

    #[test]
    fn download_time_decomposes() {
        let p = swarm();
        let t = download_time(&p);
        assert!((t - (p.service_time() + waiting_time(&p))).abs() < 1e-9);
        assert!(t >= p.service_time());
        // Waiting can never exceed the mean idle period.
        assert!(waiting_time(&p) <= 1.0 / p.r);
    }

    #[test]
    fn perfectly_available_publisher_removes_waiting() {
        // r u >> 1: publisher virtually always there, P ≈ 0, T ≈ s/μ.
        let p = SwarmParams {
            r: 1.0,
            u: 100.0,
            ..swarm()
        };
        let t = download_time(&p);
        assert!((t - p.service_time()).abs() / p.service_time() < 1e-6);
    }

    #[test]
    fn theorem_3_2a_inflation_bounded_by_k() {
        let p = swarm();
        for k in 2..=8u32 {
            let b = p.bundle(k, PublisherScaling::Fixed);
            let ratio = download_time(&b) / download_time(&p);
            assert!(
                ratio <= k as f64 + 1e-9,
                "k={k}: inflation {ratio} exceeds K"
            );
        }
    }

    #[test]
    fn theorem_3_2b_reduction_grows_as_publishers_vanish() {
        // As r → 0 the single-file wait 1/r explodes while a self-
        // sustaining bundle keeps E[T] ≈ Ks/μ: reduction factor ~ Θ(1/r).
        let base = swarm();
        let k = 6u32;
        let mut prev_factor = 0.0;
        for inv_r in [2_000.0, 8_000.0, 32_000.0] {
            let p = SwarmParams {
                r: 1.0 / inv_r,
                ..base
            };
            let b = p.bundle(k, PublisherScaling::Fixed);
            let f = reduction_factor(&p, &b);
            assert!(
                f > prev_factor,
                "reduction factor must grow as r shrinks: {f} after {prev_factor}"
            );
            prev_factor = f;
        }
        assert!(
            prev_factor > 10.0,
            "waits dominate: bundling wins big, got {prev_factor}"
        );
    }

    #[test]
    fn bundling_helps_unavailable_publisher_hurts_available_one() {
        // The paper's central tradeoff in one test.
        let k = 4u32;

        // Highly unavailable publisher: bundling reduces download time.
        let unavailable = SwarmParams {
            r: 1.0 / 20_000.0,
            ..swarm()
        };
        let b = unavailable.bundle(k, PublisherScaling::Fixed);
        assert!(
            download_time(&b) < download_time(&unavailable),
            "bundle {} vs single {}",
            download_time(&b),
            download_time(&unavailable)
        );

        // Highly available publisher: bundling only adds service time.
        let available = SwarmParams {
            r: 0.1,
            u: 1000.0,
            ..swarm()
        };
        let b = available.bundle(k, PublisherScaling::Fixed);
        assert!(download_time(&b) > download_time(&available));
    }

    #[test]
    fn waiting_time_monotone_decreasing_in_k() {
        let p = swarm();
        let mut prev = waiting_time(&p);
        for k in 2..=8u32 {
            let w = waiting_time(&p.bundle(k, PublisherScaling::Fixed));
            assert!(w <= prev + 1e-12, "k={k}");
            prev = w;
        }
    }

    #[test]
    fn max_inflation_factor_is_k() {
        assert_eq!(max_inflation_factor(1), 1.0);
        assert_eq!(max_inflation_factor(7), 7.0);
    }
}
