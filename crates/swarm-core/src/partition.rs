//! Optimal bundle composition — the paper's open question.
//!
//! §5: "more work is needed to understand how a content provider should
//! optimally bundle files to meet performance or cost objectives". This
//! module takes a concrete swing at it with the §3 machinery: given a
//! catalog of files with heterogeneous demands and sizes, partition it
//! into bundles (each file in exactly one bundle) to minimize the
//! demand-weighted mean download time.
//!
//! The objective for a bundle B with files {(λₖ, sₖ)} follows §3.3.2
//! applied to the aggregated swarm (Λ = Σλₖ, S = Σsₖ): every peer in the
//! bundle downloads all of S, so the bundle contributes
//! `Λ_B · E[T_B]` to the demand-weighted total.
//!
//! Exact partition optimization is exponential; we provide:
//!
//! * [`evaluate_partition`] — the exact objective for any partition,
//! * [`greedy_partition`] — seed singletons, then greedily merge the pair
//!   of bundles whose merge most reduces the objective (classic
//!   agglomerative heuristic),
//! * [`local_search`] — first-improvement moves of single files between
//!   bundles until a local optimum.
//!
//! The tests verify the heuristics against brute force on small catalogs.

use crate::params::SwarmParams;
use crate::patient;
use serde::{Deserialize, Serialize};

/// One catalog file: demand and size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CatalogFile {
    /// Peer arrival rate λₖ.
    pub lambda: f64,
    /// File size sₖ.
    pub size: f64,
}

/// A partition of the catalog into bundles, as index sets.
pub type Partition = Vec<Vec<usize>>;

/// Shared swarm environment for every bundle: capacity and publisher
/// process (the publisher posts one torrent per bundle with the same
/// effort).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Environment {
    /// Effective per-peer capacity μ.
    pub mu: f64,
    /// Publisher arrival rate r per torrent.
    pub r: f64,
    /// Mean publisher residence u.
    pub u: f64,
}

fn bundle_params(files: &[CatalogFile], bundle: &[usize], env: Environment) -> SwarmParams {
    let lambda: f64 = bundle.iter().map(|&i| files[i].lambda).sum();
    let size: f64 = bundle.iter().map(|&i| files[i].size).sum();
    SwarmParams {
        lambda,
        size,
        mu: env.mu,
        r: env.r,
        u: env.u,
    }
}

/// Demand-weighted mean download time of a partition:
/// `Σ_B Λ_B·E[T_B] / Σ λ` — the expected download time of a random
/// arriving peer.
pub fn evaluate_partition(files: &[CatalogFile], partition: &Partition, env: Environment) -> f64 {
    validate_partition(files, partition);
    let total_lambda: f64 = files.iter().map(|f| f.lambda).sum();
    let weighted: f64 = partition
        .iter()
        .filter(|b| !b.is_empty())
        .map(|b| {
            let p = bundle_params(files, b, env);
            p.lambda * patient::download_time(&p)
        })
        .sum();
    weighted / total_lambda
}

/// Panic unless `partition` covers every file exactly once.
pub fn validate_partition(files: &[CatalogFile], partition: &Partition) {
    let mut seen = vec![false; files.len()];
    for b in partition {
        for &i in b {
            assert!(i < files.len(), "file index {i} out of range");
            assert!(!seen[i], "file {i} appears in two bundles");
            seen[i] = true;
        }
    }
    assert!(
        seen.iter().all(|&s| s),
        "partition must cover every file exactly once"
    );
}

/// Agglomerative greedy: start from singletons; repeatedly merge the pair
/// of bundles whose merge most reduces the objective; stop when no merge
/// helps (or a single bundle remains).
pub fn greedy_partition(files: &[CatalogFile], env: Environment) -> Partition {
    assert!(!files.is_empty(), "empty catalog");
    let mut bundles: Partition = (0..files.len()).map(|i| vec![i]).collect();
    loop {
        let current = evaluate_partition(files, &bundles, env);
        let mut best: Option<(usize, usize, f64)> = None;
        for a in 0..bundles.len() {
            for b in (a + 1)..bundles.len() {
                let mut candidate = bundles.clone();
                let merged: Vec<usize> = candidate[a]
                    .iter()
                    .chain(candidate[b].iter())
                    .copied()
                    .collect();
                candidate[a] = merged;
                candidate.remove(b);
                let score = evaluate_partition(files, &candidate, env);
                if score < current - 1e-12 && best.is_none_or(|(_, _, s)| score < s) {
                    best = Some((a, b, score));
                }
            }
        }
        match best {
            Some((a, b, _)) => {
                let moved = bundles.remove(b);
                bundles[a].extend(moved);
            }
            None => return bundles,
        }
    }
}

/// First-improvement local search: move single files between bundles
/// (including into a fresh singleton bundle) while any move improves the
/// objective. Returns the improved partition and its objective.
pub fn local_search(
    files: &[CatalogFile],
    start: Partition,
    env: Environment,
    max_rounds: usize,
) -> (Partition, f64) {
    let mut partition = start;
    partition.retain(|b| !b.is_empty());
    let mut score = evaluate_partition(files, &partition, env);
    for _ in 0..max_rounds {
        let mut improved = false;
        'outer: for from in 0..partition.len() {
            for fi in 0..partition[from].len() {
                let file = partition[from][fi];
                // Try moving `file` into every other bundle and a new one.
                for to in 0..=partition.len() {
                    if to == from {
                        continue;
                    }
                    let mut candidate = partition.clone();
                    candidate[from].remove(fi);
                    if to == partition.len() {
                        candidate.push(vec![file]);
                    } else {
                        candidate[to].push(file);
                    }
                    candidate.retain(|b| !b.is_empty());
                    let s = evaluate_partition(files, &candidate, env);
                    if s < score - 1e-12 {
                        partition = candidate;
                        score = s;
                        improved = true;
                        break 'outer;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    (partition, score)
}

/// Brute-force optimal partition (Bell-number enumeration): only feasible
/// for tiny catalogs; used to validate the heuristics.
pub fn brute_force_partition(files: &[CatalogFile], env: Environment) -> (Partition, f64) {
    assert!(
        files.len() <= 8,
        "brute force is exponential; use greedy_partition for {} files",
        files.len()
    );
    let mut best: Option<(Partition, f64)> = None;
    let mut assignment = vec![0usize; files.len()];
    enumerate_partitions(files.len(), 0, 0, &mut assignment, &mut |assign, blocks| {
        let mut partition: Partition = vec![Vec::new(); blocks];
        for (i, &b) in assign.iter().enumerate() {
            partition[b].push(i);
        }
        let score = evaluate_partition(files, &partition, env);
        if best.as_ref().is_none_or(|(_, s)| score < *s) {
            best = Some((partition, score));
        }
    });
    best.expect("at least one partition exists")
}

/// Enumerate set partitions in restricted-growth form.
fn enumerate_partitions(
    n: usize,
    i: usize,
    max_block: usize,
    assignment: &mut Vec<usize>,
    f: &mut impl FnMut(&[usize], usize),
) {
    if i == n {
        f(assignment, max_block);
        return;
    }
    for b in 0..=max_block {
        assignment[i] = b;
        enumerate_partitions(n, i + 1, max_block.max(b + 1), assignment, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENV: Environment = Environment {
        mu: 50.0,
        r: 1.0 / 20_000.0,
        u: 300.0,
    };

    fn mixed_catalog() -> Vec<CatalogFile> {
        // One self-sustaining hit plus niche files whose *aggregate*
        // demand is enough to self-sustain as a bundle but not alone.
        vec![
            CatalogFile {
                lambda: 1.0 / 10.0,
                size: 4_000.0,
            }, // hit
            CatalogFile {
                lambda: 1.0 / 50.0,
                size: 4_000.0,
            }, // niche
            CatalogFile {
                lambda: 1.0 / 80.0,
                size: 4_000.0,
            }, // niche
            CatalogFile {
                lambda: 1.0 / 150.0,
                size: 2_000.0,
            }, // tiny niche
        ]
    }

    #[test]
    fn evaluate_matches_patient_model_for_singletons() {
        let files = mixed_catalog();
        let singletons: Partition = (0..files.len()).map(|i| vec![i]).collect();
        let total_lambda: f64 = files.iter().map(|f| f.lambda).sum();
        let expected: f64 = files
            .iter()
            .map(|f| {
                let p = SwarmParams {
                    lambda: f.lambda,
                    size: f.size,
                    mu: ENV.mu,
                    r: ENV.r,
                    u: ENV.u,
                };
                f.lambda * patient::download_time(&p)
            })
            .sum::<f64>()
            / total_lambda;
        let got = evaluate_partition(&files, &singletons, ENV);
        assert!((got - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn bundling_niche_files_beats_no_bundling() {
        let files = mixed_catalog();
        let singletons: Partition = (0..files.len()).map(|i| vec![i]).collect();
        // Bundle the three niche files, keep the hit solo.
        let smart: Partition = vec![vec![0], vec![1, 2, 3]];
        let t_single = evaluate_partition(&files, &singletons, ENV);
        let t_smart = evaluate_partition(&files, &smart, ENV);
        assert!(
            t_smart < t_single,
            "bundling niche files must help: {t_smart} vs {t_single}"
        );
    }

    #[test]
    fn greedy_never_loses_to_singletons() {
        let files = mixed_catalog();
        let singletons: Partition = (0..files.len()).map(|i| vec![i]).collect();
        let greedy = greedy_partition(&files, ENV);
        let t_greedy = evaluate_partition(&files, &greedy, ENV);
        let t_single = evaluate_partition(&files, &singletons, ENV);
        assert!(t_greedy <= t_single + 1e-9);
    }

    #[test]
    fn greedy_close_to_brute_force_on_small_catalogs() {
        let files = mixed_catalog();
        let (best, t_best) = brute_force_partition(&files, ENV);
        let greedy = greedy_partition(&files, ENV);
        let t_greedy = evaluate_partition(&files, &greedy, ENV);
        // Greedy should be within 10% of optimal here (it is usually exact).
        assert!(
            t_greedy <= t_best * 1.1,
            "greedy {t_greedy} vs optimal {t_best} ({best:?})"
        );
    }

    #[test]
    fn local_search_improves_or_preserves() {
        let files = mixed_catalog();
        // Start from the (bad) everything-in-one-bundle partition.
        let all: Partition = vec![(0..files.len()).collect()];
        let t_all = evaluate_partition(&files, &all, ENV);
        let (refined, t_refined) = local_search(&files, all, ENV, 50);
        assert!(t_refined <= t_all + 1e-9);
        validate_partition(&files, &refined);
    }

    #[test]
    fn brute_force_agrees_with_evaluate() {
        let files = vec![
            CatalogFile {
                lambda: 0.01,
                size: 1_000.0,
            },
            CatalogFile {
                lambda: 0.002,
                size: 1_000.0,
            },
        ];
        let (best, t) = brute_force_partition(&files, ENV);
        assert!((evaluate_partition(&files, &best, ENV) - t).abs() < 1e-12);
        // Only two partitions exist; check the better one was chosen.
        let merged = evaluate_partition(&files, &vec![vec![0, 1]], ENV);
        let split = evaluate_partition(&files, &vec![vec![0], vec![1]], ENV);
        assert!((t - merged.min(split)).abs() < 1e-12);
    }

    #[test]
    fn rare_publisher_prefers_bigger_bundles() {
        // As the publisher gets rarer, the optimal partition coarsens.
        let files = mixed_catalog();
        let frequent = Environment {
            r: 1.0 / 500.0,
            ..ENV
        };
        let rare = Environment {
            r: 1.0 / 50_000.0,
            ..ENV
        };
        let bundles_frequent = greedy_partition(&files, frequent).len();
        let bundles_rare = greedy_partition(&files, rare).len();
        assert!(
            bundles_rare <= bundles_frequent,
            "rare publisher must coarsen: {bundles_rare} vs {bundles_frequent}"
        );
    }

    #[test]
    #[should_panic(expected = "appears in two bundles")]
    fn validate_rejects_overlap() {
        let files = mixed_catalog();
        validate_partition(&files, &vec![vec![0, 1], vec![1, 2, 3]]);
    }

    #[test]
    #[should_panic(expected = "cover every file")]
    fn validate_rejects_missing() {
        let files = mixed_catalog();
        validate_partition(&files, &vec![vec![0, 1]]);
    }
}
