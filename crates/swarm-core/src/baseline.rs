//! The naive fluid-model baseline (Qiu–Srikant style).
//!
//! Related Work: "A naive adaptation of the fluid model in [17] to bundles
//! suggests strictly longer download times under bundling, whereas our
//! model shows that bundling can decrease download times by improving
//! availability."
//!
//! This module implements that strawman faithfully so the ablation benches
//! can show exactly where it breaks. The Qiu–Srikant fluid model describes
//! a swarm in steady state with abundant availability: leechers arrive at
//! rate λ, upload at rate μ_up with effectiveness η, download at most
//! c_down, and seeds depart at rate γ_s. In steady state (no abandonment)
//! the mean download time is
//!
//! `T = max( s/c_down , s·(1/μ_up − 1/γ_s)/η )`
//!
//! (uplink-constrained unless the downlink cap binds). The model has **no
//! notion of availability**: the publisher never matters, so bundling K
//! files simply multiplies `s` — and therefore `T` — by K.

use serde::{Deserialize, Serialize};

/// Parameters of the fluid steady-state model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FluidParams {
    /// Content size `s`.
    pub size: f64,
    /// Per-peer upload capacity `μ_up` (size units per time).
    pub upload: f64,
    /// Per-peer download cap `c_down`.
    pub download_cap: f64,
    /// Upload effectiveness `η ∈ (0, 1]` (fraction of upload capacity
    /// actually utilized; Qiu–Srikant argue η ≈ 1 for BitTorrent).
    pub eta: f64,
    /// Seed departure rate `γ_s` (seeds linger `1/γ_s` on average).
    pub seed_departure: f64,
}

impl FluidParams {
    fn validate(&self) {
        assert!(self.size > 0.0 && self.size.is_finite());
        assert!(self.upload > 0.0 && self.upload.is_finite());
        assert!(self.download_cap > 0.0 && self.download_cap.is_finite());
        assert!(
            self.eta > 0.0 && self.eta <= 1.0,
            "eta in (0,1], got {}",
            self.eta
        );
        assert!(self.seed_departure > 0.0 && self.seed_departure.is_finite());
    }

    /// Steady-state mean download time of the fluid model.
    ///
    /// `1/μ_up − 1/γ_s` can be negative when seeds linger so long that
    /// capacity is effectively infinite; the downlink cap then binds.
    pub fn download_time(&self) -> f64 {
        self.validate();
        let uplink_limited = self.size * (1.0 / self.upload - 1.0 / self.seed_departure) / self.eta;
        let downlink_limited = self.size / self.download_cap;
        uplink_limited.max(downlink_limited)
    }

    /// The naive bundle adaptation: K files of this size in one swarm —
    /// only `size` changes, so `T(K) = K·T(1)`, *strictly increasing*.
    pub fn bundle_download_time(&self, k: u32) -> f64 {
        assert!(k >= 1);
        let bundled = FluidParams {
            size: self.size * k as f64,
            ..*self
        };
        bundled.download_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> FluidParams {
        FluidParams {
            size: 4000.0,
            upload: 50.0,
            download_cap: 400.0,
            eta: 1.0,
            seed_departure: 1.0 / 10.0,
        }
    }

    #[test]
    fn uplink_limited_regime() {
        let p = params();
        // 1/50 - 10 < 0 → wait, seed_departure = 0.1 → 1/γ = 10 s linger.
        // uplink: 4000·(0.02 - 10) < 0 → downlink binds: 4000/400 = 10 s.
        assert_eq!(p.download_time(), 10.0);
    }

    #[test]
    fn seeds_leaving_fast_slows_downloads() {
        let fast_leaving = FluidParams {
            seed_departure: 1000.0, // seeds vanish instantly
            ..params()
        };
        let lingering = FluidParams {
            seed_departure: 0.01, // seeds stay ~100 s
            ..params()
        };
        assert!(fast_leaving.download_time() >= lingering.download_time());
        // With no seed help the time approaches s/μ_up.
        let t = fast_leaving.download_time();
        assert!((t - 4000.0 * (1.0 / 50.0 - 1.0 / 1000.0)).abs() < 1e-9);
    }

    #[test]
    fn naive_bundling_is_strictly_linear_in_k() {
        let p = params();
        let t1 = p.bundle_download_time(1);
        for k in 2..=8u32 {
            let tk = p.bundle_download_time(k);
            assert!((tk - k as f64 * t1).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn fluid_model_never_predicts_bundling_gains() {
        // The whole point of the baseline: it cannot see availability, so
        // bundling monotonically hurts.
        let p = params();
        let mut prev = 0.0;
        for k in 1..=10u32 {
            let t = p.bundle_download_time(k);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn eta_scales_uplink_limited_time() {
        let p = FluidParams {
            eta: 0.5,
            seed_departure: 1000.0,
            download_cap: 1e9,
            ..params()
        };
        let full = FluidParams { eta: 1.0, ..p };
        assert!((p.download_time() - 2.0 * full.download_time()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "eta in (0,1]")]
    fn rejects_bad_eta() {
        FluidParams {
            eta: 1.5,
            ..params()
        }
        .download_time();
    }
}
