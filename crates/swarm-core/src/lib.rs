//! Content availability and bundling models for swarming systems.
//!
//! This crate is the primary contribution of *"Content Availability and
//! Bundling in Swarming Systems"* (Menasche, Rocha, Li, Towsley,
//! Venkataramani — CoNEXT 2009), implemented as a library:
//!
//! * [`params`] — the paper's Table 1 notation: per-swarm parameters
//!   (λ, s, μ, r, u) and bundle construction (Λ = Kλ, S = Ks, with
//!   publisher scaling policies for R and U);
//! * [`simple`] — §3.2, the simple availability model (eqs. 1–8):
//!   publisher-only availability and the first e^Θ(K²) bundling result;
//! * [`impatient`] — §3.3.1, availability with impatient peers (eq. 10),
//!   peers served per busy period (Lemma 3.1) and the Availability Theorem
//!   (Theorem 3.1);
//! * [`patient`] — §3.3.2, mean download time with patient peers (eq. 11)
//!   and the Download Time Theorem (Theorem 3.2);
//! * [`threshold`] — §3.3.3, coverage thresholds: residual busy periods
//!   B(m) (eqs. 12–13), availability and download time under a threshold
//!   (Theorem 3.3), and the single-publisher adaptation (eq. 16) used to
//!   validate against the experiments of §4.3;
//! * [`lingering`] — §3.3.4, altruistic lingering: peers staying online
//!   for an exponential time after completing, and the eq. (15)
//!   equivalence between lingering and bundling;
//! * [`mixed`] — §5's economics: pure vs mixed bundling, take-rate
//!   sweeps and the forced-download overhead;
//! * [`partition`] — the paper's open question made concrete: partition a
//!   heterogeneous catalog into bundles minimizing the demand-weighted
//!   mean download time (greedy + local search, brute-force validated);
//! * [`zipf`] — skewed (Zipf) per-file popularity inside a bundle;
//! * [`bundling`] — §3.4, the download-time-vs-K tradeoff: sweep curves,
//!   optimal bundle size, and when bundling reduces download time;
//! * [`baseline`] — the naive fluid-model adaptation (Qiu–Srikant style)
//!   that the paper contrasts in Related Work: it predicts bundling
//!   *always* hurts because it has no availability term;
//! * [`asymptotic`] — regression helpers that verify the e^Θ(K²) laws
//!   empirically (used heavily by the test suite and ablation benches).
//!
//! # Quick start
//!
//! ```
//! use swarm_core::params::{PublisherScaling, SwarmParams};
//! use swarm_core::{impatient, patient};
//!
//! // An unpopular 4 MB file served at 33 kB/s, one peer every 150 s,
//! // a publisher that shows up every 1000 s and stays 300 s.
//! let file = SwarmParams {
//!     lambda: 1.0 / 150.0,
//!     size: 4_000.0,
//!     mu: 33.0,
//!     r: 1.0 / 1000.0,
//!     u: 300.0,
//! };
//! let p_single = impatient::unavailability(&file);
//!
//! // Bundle five such files (demand and size both scale by 5).
//! let bundle = file.bundle(5, PublisherScaling::Fixed);
//! let p_bundle = impatient::unavailability(&bundle);
//! assert!(p_bundle < p_single, "bundling must improve availability");
//!
//! // ... and with a very unavailable publisher it downloads faster too.
//! let t_single = patient::download_time(&file);
//! let t_bundle = patient::download_time(&bundle);
//! assert!(t_bundle < 5.0 * t_single);
//! ```

pub mod asymptotic;
pub mod baseline;
pub mod bundling;
pub mod impatient;
pub mod lingering;
pub mod mixed;
pub mod params;
pub mod partition;
pub mod patient;
pub mod simple;
pub mod threshold;
pub mod zipf;

pub use params::{PublisherScaling, SwarmParams};
