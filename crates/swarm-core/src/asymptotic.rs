//! Empirical verification of the paper's e^Θ(K²) asymptotics.
//!
//! Lemma 3.1 and Theorem 3.1 claim `ln E[B]`, `ln E[N]` and `−ln P` all
//! grow as Θ(K²) under bundling. The test suites and ablation benches
//! verify this by regressing those logarithms on K² and checking the fit.

use serde::{Deserialize, Serialize};

/// Least-squares fit of `y = slope·K² + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KSquaredFit {
    /// Coefficient on K².
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination of the fit.
    pub r2: f64,
}

/// Fit `y = slope·K² + intercept` to points `(K, y)` by least squares.
///
/// # Panics
/// With fewer than 3 points (the fit would be trivial or undetermined).
pub fn fit_k_squared(points: &[(f64, f64)]) -> KSquaredFit {
    assert!(
        points.len() >= 3,
        "need at least 3 points, got {}",
        points.len()
    );
    let n = points.len() as f64;
    let xs: Vec<f64> = points.iter().map(|p| p.0 * p.0).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
    assert!(
        ys.iter().all(|y| y.is_finite()),
        "all y values must be finite (use ln_* model forms)"
    );
    let x_mean = xs.iter().sum::<f64>() / n;
    let y_mean = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - x_mean).powi(2)).sum();
    let sxy: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| (x - x_mean) * (y - y_mean))
        .sum();
    assert!(sxx > 0.0, "all K values identical; cannot fit");
    let slope = sxy / sxx;
    let intercept = y_mean - slope * x_mean;
    let ss_tot: f64 = ys.iter().map(|y| (y - y_mean).powi(2)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| (y - (slope * x + intercept)).powi(2))
        .sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    KSquaredFit {
        slope,
        intercept,
        r2,
    }
}

/// Compare quadratic (`y ~ K²`) against linear (`y ~ K`) explanatory
/// power: returns `(r2_quadratic, r2_linear)`. A Θ(K²) law should show
/// `r2_quadratic` near 1 *and clearly above* `r2_linear`.
pub fn quadratic_vs_linear(points: &[(f64, f64)]) -> (f64, f64) {
    let quad = fit_k_squared(points).r2;
    // Linear fit on (K, y) re-uses the same code by pre-square-rooting:
    // fit y = a·(√K)² + b == y = a·K + b.
    let lin_pts: Vec<(f64, f64)> = points.iter().map(|p| (p.0.sqrt(), p.1)).collect();
    let lin = fit_k_squared(&lin_pts).r2;
    (quad, lin)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_quadratic_fits_perfectly() {
        let pts: Vec<(f64, f64)> = (1..=6)
            .map(|k| (k as f64, 3.0 * (k * k) as f64 + 2.0))
            .collect();
        let fit = fit_k_squared(&pts);
        assert!((fit.slope - 3.0).abs() < 1e-9);
        assert!((fit.intercept - 2.0).abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_data_fits_quadratic_poorly_relative_to_linear() {
        let pts: Vec<(f64, f64)> = (1..=10).map(|k| (k as f64, 5.0 * k as f64)).collect();
        let (quad, lin) = quadratic_vs_linear(&pts);
        assert!((lin - 1.0).abs() < 1e-12);
        assert!(quad < lin);
    }

    #[test]
    fn quadratic_data_prefers_quadratic() {
        let pts: Vec<(f64, f64)> = (1..=10)
            .map(|k| (k as f64, 0.7 * (k * k) as f64 + 0.1))
            .collect();
        let (quad, lin) = quadratic_vs_linear(&pts);
        assert!(quad > lin);
        assert!((quad - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_quadratic_still_high_r2() {
        let pts: Vec<(f64, f64)> = (1..=8)
            .map(|k| {
                let kf = k as f64;
                (kf, 2.0 * kf * kf + (kf * 17.0).sin() * 0.5)
            })
            .collect();
        let fit = fit_k_squared(&pts);
        assert!(fit.r2 > 0.99);
    }

    #[test]
    #[should_panic(expected = "at least 3 points")]
    fn rejects_too_few_points() {
        fit_k_squared(&[(1.0, 1.0), (2.0, 4.0)]);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn rejects_degenerate_x() {
        fit_k_squared(&[(2.0, 1.0), (2.0, 2.0), (2.0, 3.0)]);
    }
}
