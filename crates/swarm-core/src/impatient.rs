//! §3.3.1 — availability with impatient peers.
//!
//! Publishers arrive at rate `r` and stay `u` on average; peers arrive at
//! rate `λ` and stay one download (`s/μ`). A peer arriving during an idle
//! period leaves immediately (it is *impatient*), so the metric is the
//! probability `P` that a request goes unserved — eq. (10):
//!
//! `P = (1/r) / (E[B] + 1/r)`
//!
//! with `E[B]` from the Browne–Steele formula (eq. 9) parameterized as
//! `β = λ + r`, `θ = u`, `α₁ = s/μ`, `q₁ = λ/(λ+r)`, `α₂ = u`.

use crate::params::SwarmParams;
use swarm_queue::busy::TwoPhaseBusyPeriod;
use swarm_queue::series::ln_add_exp;

/// The eq. (9) parameterization of this model's busy period.
pub fn busy_period_params(p: &SwarmParams) -> TwoPhaseBusyPeriod {
    p.validate();
    TwoPhaseBusyPeriod {
        beta: p.lambda + p.r,
        theta: p.u,
        q1: p.lambda / (p.lambda + p.r),
        alpha1: p.service_time(),
        alpha2: p.u,
    }
}

/// Expected availability period `E[B]` (may be `+inf` for extreme bundle
/// loads; see [`ln_busy_period`]).
pub fn busy_period(p: &SwarmParams) -> f64 {
    busy_period_params(p).expected()
}

/// `ln E[B]`, finite at any load.
pub fn ln_busy_period(p: &SwarmParams) -> f64 {
    busy_period_params(p).ln_expected()
}

/// Probability an (impatient) request finds the content unavailable —
/// eq. (10): `P = 1/(1 + r·E[B])`.
///
/// ```
/// use swarm_core::{impatient, SwarmParams, PublisherScaling};
/// let file = SwarmParams {
///     lambda: 1.0 / 150.0, size: 4_000.0, mu: 50.0,
///     r: 1.0 / 10_000.0, u: 300.0,
/// };
/// let p1 = impatient::unavailability(&file);
/// let p4 = impatient::unavailability(&file.bundle(4, PublisherScaling::Fixed));
/// assert!(p4 < p1); // Theorem 3.1: bundling slashes unavailability
/// ```
pub fn unavailability(p: &SwarmParams) -> f64 {
    ln_unavailability(p).exp()
}

/// `ln P`, computed without overflow as `−ln(1 + r·E[B])`.
pub fn ln_unavailability(p: &SwarmParams) -> f64 {
    let ln_b = ln_busy_period(p);
    // ln(1 + r e^{ln_b})
    -ln_add_exp(0.0, p.r.ln() + ln_b)
}

/// Mean number of peers served in one busy period, `E[N] = λ·E[B]`
/// (Lemma 3.1 studies its e^Θ(K²) growth under bundling).
pub fn mean_peers_served(p: &SwarmParams) -> f64 {
    ln_mean_peers_served(p).exp()
}

/// `ln E[N]`.
pub fn ln_mean_peers_served(p: &SwarmParams) -> f64 {
    p.lambda.ln() + ln_busy_period(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PublisherScaling;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use swarm_queue::dist::{Exp, Mixture2, ResidenceTime};
    use swarm_queue::mc::{mean_busy_period, McConfig};

    fn swarm() -> SwarmParams {
        SwarmParams {
            lambda: 1.0 / 60.0,
            size: 4000.0,
            mu: 50.0,
            r: 1.0 / 900.0,
            u: 300.0,
        }
    }

    #[test]
    fn busy_period_matches_monte_carlo() {
        let p = swarm();
        let params = busy_period_params(&p);
        let service = Mixture2::new(params.q1, Exp::new(params.alpha1), Exp::new(params.alpha2));
        let initiator = Exp::new(params.theta);
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let cfg = McConfig {
            beta: params.beta,
            service: &service,
            initial: vec![],
            threshold: 0,
            max_time: 1e8,
        };
        let (mc, _) = mean_busy_period(
            &cfg,
            20_000,
            |buf, rng| buf.push(initiator.sample(rng)),
            &mut rng,
        );
        let analytic = busy_period(&p);
        assert!(
            ((mc - analytic) / analytic).abs() < 0.05,
            "MC {mc} vs analytic {analytic}"
        );
    }

    #[test]
    fn unavailability_in_unit_interval_and_consistent() {
        let p = swarm();
        let pr = unavailability(&p);
        assert!((0.0..=1.0).contains(&pr));
        let eb = busy_period(&p);
        let direct = (1.0 / p.r) / (eb + 1.0 / p.r);
        assert!(((pr - direct) / direct).abs() < 1e-10);
    }

    #[test]
    fn theorem_3_1_unavailability_falls_as_exp_k_squared() {
        // With R, U fixed (independent of K), −ln P = Θ(K²).
        let p = swarm();
        let ks = [1u32, 2, 3, 4, 5, 6];
        let pts: Vec<(f64, f64)> = ks
            .iter()
            .map(|&k| {
                let b = p.bundle(k, PublisherScaling::Fixed);
                (k as f64, -ln_unavailability(&b))
            })
            .collect();
        let fit = crate::asymptotic::fit_k_squared(&pts);
        assert!(fit.r2 > 0.99, "quadratic fit r²={}", fit.r2);
        assert!(fit.slope > 0.0);
    }

    #[test]
    fn lemma_3_1_peers_served_grows_as_exp_k_squared() {
        let p = swarm();
        let pts: Vec<(f64, f64)> = (1..=6u32)
            .map(|k| {
                let b = p.bundle(k, PublisherScaling::Fixed);
                (k as f64, ln_mean_peers_served(&b))
            })
            .collect();
        let fit = crate::asymptotic::fit_k_squared(&pts);
        assert!(fit.r2 > 0.99, "quadratic fit r²={}", fit.r2);
    }

    #[test]
    fn individual_swarm_metrics_are_theta_one_in_k() {
        // P_k and E[B_k] do not depend on K at all for the individual
        // swarm — sanity-check the obvious.
        let p = swarm();
        let p1 = unavailability(&p);
        let p2 = unavailability(&p);
        assert_eq!(p1, p2);
    }

    #[test]
    fn more_frequent_publishers_improve_availability() {
        let p = swarm();
        let better = SwarmParams { r: p.r * 5.0, ..p };
        assert!(unavailability(&better) < unavailability(&p));
    }

    #[test]
    fn robustness_publisher_rate_shrinking_as_exp_minus_ck2() {
        // Remark after Theorem 3.1: even if R = Ω(e^{−cK²}) with small c,
        // bundle availability still improves with K.
        let p = swarm();
        let c = 0.05;
        let mut prev = ln_unavailability(&p);
        for k in 2..=6u32 {
            let kf = k as f64;
            let shrunk_r = p.r * (-c * kf * kf).exp();
            let b = p.bundle(
                k,
                PublisherScaling::Custom {
                    r: shrunk_r,
                    u: p.u,
                },
            );
            let cur = ln_unavailability(&b);
            assert!(cur < prev, "k={k}: ln P {cur} >= {prev}");
            prev = cur;
        }
    }
}
