//! §3.3.3 — threshold coverage.
//!
//! A departing peer can take the last copy of a block with it, so content
//! may become unavailable while several peers are still online. The model
//! captures this with a coverage threshold `m`: when no publisher is
//! online and the peer population drops to `m`, the busy period ends.
//!
//! The machinery is the residual busy period `B(n, m)` of Lemma 3.3
//! (eq. 12) mixed over the steady-state Poisson population (eq. 13),
//! giving Theorem 3.3:
//!
//! `P = exp(−r(u + B(m)))`,  `E[T] = s/μ + P/r`
//!
//! and the single-publisher adaptation used to validate against the
//! PlanetLab experiments (§4.3.1, eq. 16):
//!
//! `P = exp(−r·B(m)) / (u·r + 1)`.

use crate::params::SwarmParams;
use swarm_queue::residual::poisson_mixture_residual;

/// `B(m)` — the expected residual busy period after the last publisher
/// departs, starting from the steady-state peer population (eq. 13).
///
/// This is the paper's measure of how long a swarm stays *self-sustaining*
/// without any publisher (§4.2, Figure 4).
pub fn residual_busy_period(p: &SwarmParams, m: u64) -> f64 {
    p.validate();
    poisson_mixture_residual(m, p.lambda, p.service_time())
}

/// Unavailability under coverage threshold `m` — Theorem 3.3, eq. (14):
/// `P = exp(−r(u + B(m)))`.
///
/// The exponent is the expected number of busy periods a publisher
/// arrival process at rate `r` "misses": each busy period lasts `u + B(m)`
/// on average (publisher phase plus peer-sustained phase, with the
/// geometric phase-1/phase-2 cycling folded in).
pub fn unavailability(p: &SwarmParams, m: u64) -> f64 {
    p.validate();
    (-p.r * (p.u + residual_busy_period(p, m))).exp()
}

/// Mean download time under coverage threshold `m` — Theorem 3.3:
/// `E[T] = s/μ + P/r` with `P` from [`unavailability`].
pub fn download_time(p: &SwarmParams, m: u64) -> f64 {
    p.service_time() + unavailability(p, m) / p.r
}

/// Unavailability with a *single* intermittent publisher (on/off with mean
/// on-time `u` and mean off-time `1/r`) — eq. (16):
/// `P = exp(−r·B(m)) / (u·r + 1)`.
///
/// This is the form validated against the §4.3 experiments, where exactly
/// one publisher alternates between on (300 s) and off (900 s).
pub fn single_publisher_unavailability(p: &SwarmParams, m: u64) -> f64 {
    p.validate();
    (-p.r * residual_busy_period(p, m)).exp() / (p.u * p.r + 1.0)
}

/// Mean download time with a single intermittent publisher:
/// `E[T] = s/μ + P/r` with `P` from
/// [`single_publisher_unavailability`] (§4.3.1).
///
/// ```
/// use swarm_core::{threshold, SwarmParams, PublisherScaling};
/// // The paper's §4.3 setup: λ=1/60, s/μ=80 s, on 300 s / off 900 s, m=9.
/// let file = SwarmParams {
///     lambda: 1.0 / 60.0, size: 4_000.0, mu: 50.0,
///     r: 1.0 / 900.0, u: 300.0,
/// };
/// let t1 = threshold::single_publisher_download_time(&file, 9);
/// let t4 = threshold::single_publisher_download_time(
///     &file.bundle(4, PublisherScaling::Fixed), 9);
/// assert!(t4 < t1); // Figure 6(a): the K=4 bundle wins
/// ```
pub fn single_publisher_download_time(p: &SwarmParams, m: u64) -> f64 {
    p.service_time() + single_publisher_unavailability(p, m) / p.r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PublisherScaling;

    /// §4.2 parameters: μ = 33 kB/s, s = 4 MB, λ = 1/150 peers/s.
    fn fig4_swarm() -> SwarmParams {
        SwarmParams {
            lambda: 1.0 / 150.0,
            size: 4000.0,
            mu: 33.0,
            r: 1.0 / 900.0,
            u: 300.0,
        }
    }

    /// §4.3 parameters: s/μ = 80 s, λ = 1/60, 1/r = 900 s, u = 300 s.
    fn fig6_swarm() -> SwarmParams {
        SwarmParams {
            lambda: 1.0 / 60.0,
            size: 4000.0,
            mu: 50.0,
            r: 1.0 / 900.0,
            u: 300.0,
        }
    }

    #[test]
    fn residual_busy_period_explodes_with_bundling() {
        // The §4.2 table: B(m) for m = 9 is ≈0 for K = 1, 2 and crosses
        // the 1500 s experiment horizon by K ≈ 5-6 (self-sustaining).
        let p = fig4_swarm();
        let bm: Vec<f64> = (1..=8u32)
            .map(|k| residual_busy_period(&p.bundle(k, PublisherScaling::Fixed), 9))
            .collect();
        assert!(bm[0] < 1.0, "K=1 must not self-sustain: {}", bm[0]);
        assert!(bm[1] < 5.0, "K=2 must not self-sustain: {}", bm[1]);
        assert!(bm.windows(2).all(|w| w[0] <= w[1]), "monotone in K");
        assert!(
            bm[5] > 1500.0,
            "K=6 must outlive the 1500 s experiment: {}",
            bm[5]
        );
    }

    #[test]
    fn residual_busy_period_decreasing_in_threshold() {
        let p = fig4_swarm().bundle(5, PublisherScaling::Fixed);
        let b3 = residual_busy_period(&p, 3);
        let b9 = residual_busy_period(&p, 9);
        let b15 = residual_busy_period(&p, 15);
        assert!(
            b3 > b9 && b9 > b15,
            "B(m) must fall with m: {b3}, {b9}, {b15}"
        );
    }

    #[test]
    fn unavailability_bounded_and_falls_with_k() {
        let p = fig6_swarm();
        let mut prev = 1.0;
        for k in 1..=8u32 {
            let b = p.bundle(k, PublisherScaling::Fixed);
            let pr = unavailability(&b, 9);
            assert!((0.0..=1.0).contains(&pr), "k={k}: P={pr}");
            assert!(pr <= prev + 1e-15, "k={k}: P must fall");
            prev = pr;
        }
    }

    #[test]
    fn theorem_3_3_reduces_toward_patient_model_as_m_grows_small() {
        // With m = 0 and a modest load the threshold model's P and the
        // patient model's P agree within modeling slack (they use slightly
        // different busy-period accounting, so only coarse agreement is
        // expected).
        let p = fig6_swarm();
        let pt = unavailability(&p, 0);
        let pp = crate::patient::unavailability(&p);
        assert!(
            (pt - pp).abs() < 0.3,
            "threshold P={pt} vs patient P={pp} diverge wildly"
        );
    }

    #[test]
    fn single_publisher_download_time_has_interior_optimum() {
        // Figure 6(a): E[T](K) first falls (availability gain) then rises
        // (service cost); the model predicts an optimum near K = 4-5.
        let p = fig6_swarm();
        let times: Vec<f64> = (1..=8u32)
            .map(|k| single_publisher_download_time(&p.bundle(k, PublisherScaling::Fixed), 9))
            .collect();
        let (best_k, _) = times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let best_k = best_k as u32 + 1;
        assert!(
            (3..=6).contains(&best_k),
            "optimal K should be ~4-5 per §4.3.1, got {best_k} (times {times:?})"
        );
        // And beyond the optimum the curve grows roughly linearly in K.
        assert!(times[7] > times[5]);
    }

    #[test]
    fn single_publisher_unavailability_without_self_sustaining_swarm() {
        // K = 1: B(m) ≈ 0, so P ≈ 1/(ur + 1) — peers can only download
        // while the publisher is up.
        let p = fig6_swarm();
        let pr = single_publisher_unavailability(&p, 9);
        let expected = 1.0 / (p.u * p.r + 1.0);
        assert!((pr - expected).abs() < 0.01, "{pr} vs {expected}");
    }

    #[test]
    fn download_time_exceeds_service_time() {
        let p = fig6_swarm();
        for k in 1..=6u32 {
            let b = p.bundle(k, PublisherScaling::Fixed);
            assert!(download_time(&b, 9) >= b.service_time());
            assert!(single_publisher_download_time(&b, 9) >= b.service_time());
        }
    }
}
