//! Shard-invariance of the catalog time series.
//!
//! The `"catalog"` series is built from per-swarm recorder
//! contributions merged at the shard barriers; since each swarm's walk
//! is deterministic in `(catalog_seed, swarm_id)` and merging is
//! additive, the serialized windows must be bit-identical across shard
//! counts — 1, 2, 4 and 8 — exactly like the per-swarm summaries.
//!
//! Own test binary: it owns the process-global `swarm-obs` state
//! (enable switch + timeseries registry), which must not race with
//! other tests' runs.

use std::collections::BTreeMap;
use swarm_catalog::{run_catalog, CatalogRunConfig, TS_WINDOW_HOURS};
use swarm_measurement::{generate_catalog, CatalogConfig};

#[test]
fn windows_are_shard_invariant() {
    let swarms = generate_catalog(&CatalogConfig {
        scale: 0.002,
        seed: 23,
    });
    assert!(swarms.len() >= 16, "need enough swarms to shard");

    swarm_obs::set_enabled(true);
    let _ = swarm_obs::take_series("catalog");
    let mut baseline: Option<(Vec<swarm_catalog::SwarmSummary>, String)> = None;
    for threads in [1usize, 2, 4, 8] {
        let cfg = CatalogRunConfig {
            months: 3,
            threads,
            ..CatalogRunConfig::default()
        };
        let run = run_catalog(&swarms, &cfg);
        let rec = swarm_obs::take_series("catalog").expect("run recorded a series");
        assert_eq!(rec.window(), TS_WINDOW_HOURS);
        assert!(!rec.is_empty(), "a 3-month catalog must produce windows");
        let mut series = BTreeMap::new();
        series.insert("catalog".to_string(), rec);
        let jsonl = swarm_obs::series_to_jsonl(&series);
        match &baseline {
            None => {
                // The series must be time-resolved: weekly windows with
                // arrivals and on-time spread over the horizon.
                let windows = series["catalog"].windows();
                assert!(windows.len() > 4, "expected a multi-window series");
                let arrivals: u64 = windows
                    .iter()
                    .filter_map(|w| w.counters.get("arrivals"))
                    .sum();
                let expected: u64 = run.per_swarm.iter().map(|s| s.arrivals).sum();
                assert_eq!(arrivals, expected, "window sums must match summaries");
                assert!(windows
                    .iter()
                    .any(|w| w.counters.contains_key("on_seconds")));
                baseline = Some((run.per_swarm, jsonl));
            }
            Some((per_swarm, base_jsonl)) => {
                assert_eq!(&run.per_swarm, per_swarm, "summaries must be invariant");
                assert_eq!(
                    &jsonl, base_jsonl,
                    "timeseries diverged at {threads} threads"
                );
            }
        }
    }
    swarm_obs::set_enabled(false);
}
