//! Integration tests for the sharded catalog runtime.
//!
//! The contract under test: the number of shards and the steal order
//! must not change a single bit of any result — per-swarm summaries,
//! deterministic `catalog.*` counters, or the downloads histogram. The
//! `swarm-obs` registry and enable switch are process-wide and the test
//! harness is multi-threaded, so every test that runs the engine holds
//! one shared lock (an engine run with telemetry enabled elsewhere in
//! the process would flush into a concurrent test's snapshot delta).

use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};
use swarm_catalog::{run_catalog, CatalogRunConfig};
use swarm_measurement::{generate_catalog, CatalogConfig, Swarm};

fn engine_guard() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// RAII: telemetry on while held, off (and unlocked) on drop.
struct Enabled {
    _guard: MutexGuard<'static, ()>,
}

impl Enabled {
    fn new() -> Self {
        let guard = engine_guard();
        swarm_obs::set_enabled(true);
        Enabled { _guard: guard }
    }
}

impl Drop for Enabled {
    fn drop(&mut self) {
        swarm_obs::set_enabled(false);
    }
}

fn catalog(scale: f64, seed: u64) -> Vec<Swarm> {
    generate_catalog(&CatalogConfig { scale, seed })
}

fn summaries_json(swarms: &[Swarm], threads: usize, months: u32) -> String {
    let run = run_catalog(
        swarms,
        &CatalogRunConfig {
            threads,
            months,
            ..CatalogRunConfig::default()
        },
    );
    serde_json::to_string(&run.per_swarm).expect("summaries serialize")
}

#[test]
fn results_are_bit_identical_across_shard_counts() {
    let _lock = engine_guard();
    let swarms = catalog(0.002, 7);
    let baseline = summaries_json(&swarms, 1, 3);
    for threads in [2, 4, 8] {
        let sharded = summaries_json(&swarms, threads, 3);
        assert_eq!(
            baseline, sharded,
            "{threads}-thread run must be bit-identical to serial"
        );
    }
}

#[test]
fn sharded_telemetry_merges_to_the_single_threaded_registry() {
    let _on = Enabled::new();
    let swarms = catalog(0.002, 19);
    let cfg = |threads| CatalogRunConfig {
        threads,
        months: 2,
        ..CatalogRunConfig::default()
    };

    let base = swarm_obs::snapshot();
    let serial = run_catalog(&swarms, &cfg(1));
    let after_serial = swarm_obs::snapshot();
    let sharded = run_catalog(&swarms, &cfg(4));
    let after_sharded = swarm_obs::snapshot();

    let d1 = after_serial.delta_since(&base);
    let d4 = after_sharded.delta_since(&after_serial);

    // Every deterministic counter matches across shard counts, and
    // matches the summaries it was batched from.
    for name in [
        "catalog.swarms",
        "catalog.toggles",
        "catalog.peers.arrived",
        "catalog.peers.lingered",
        "catalog.events",
        "catalog.final_on",
    ] {
        assert_eq!(
            d1.counter(name),
            d4.counter(name),
            "counter {name} must be shard-count invariant"
        );
    }
    assert_eq!(d1.counter("catalog.swarms"), swarms.len() as u64);
    assert_eq!(d1.counter("catalog.peers.arrived"), serial.total_arrivals());
    assert_eq!(
        d4.counter("catalog.peers.arrived"),
        sharded.total_arrivals()
    );
    assert_eq!(d1.counter("catalog.toggles"), serial.total_toggles());

    // The per-shard downloads histograms merge to exactly the serial
    // histogram: same count, sum and every bucket.
    let h1 = &d1.histograms["catalog.swarm.downloads"];
    let h4 = &d4.histograms["catalog.swarm.downloads"];
    assert_eq!(h1, h4, "downloads histogram must be shard-count invariant");
    assert_eq!(h1.count, swarms.len() as u64);

    // Each worker flushed exactly once at the barrier.
    assert!(d1.counter("stats.catalog.shard_flushes") >= 1);
}

#[test]
fn disabled_telemetry_records_nothing() {
    let _lock = engine_guard();
    assert!(!swarm_obs::enabled());
    let swarms = catalog(0.001, 23);
    let base = swarm_obs::snapshot();
    let _ = run_catalog(
        &swarms,
        &CatalogRunConfig {
            threads: 4,
            months: 1,
            ..CatalogRunConfig::default()
        },
    );
    let delta = swarm_obs::snapshot().delta_since(&base);
    assert_eq!(delta.counter("catalog.swarms"), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any catalog seed, any thread count, any horizon: sharded equals
    /// serial, bit for bit.
    #[test]
    fn sharding_never_perturbs_results(
        seed in 0u64..u64::MAX,
        threads in 2usize..9,
        months in 1u32..4,
    ) {
        let _lock = engine_guard();
        let swarms = catalog(0.001, seed);
        let serial = summaries_json(&swarms, 1, months);
        let sharded = summaries_json(&swarms, threads, months);
        prop_assert_eq!(serial, sharded);
    }
}
