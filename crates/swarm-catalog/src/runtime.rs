//! The sharded catalog engine.
//!
//! One [`SwarmSummary`] per catalog swarm, produced by an event-driven
//! walk of the swarm's seed process over the monitoring horizon. The
//! walk mirrors `swarm_measurement::observe::monitor` — same
//! [`seed_process`] parameterization, same weekly parameter refresh,
//! same stationary initial draw — but replaces the hourly Bernoulli
//! toggle with exact exponential dwell times, and additionally counts
//! the peers that arrive (and the completers that linger as seeds)
//! while the swarm is available. An idle swarm therefore costs one RNG
//! draw per week of simulated time instead of 168.
//!
//! # Determinism
//!
//! Every swarm draws from a private ChaCha8 stream keyed by
//! `(catalog_seed, swarm_id)` (see [`swarm_stream`]), and every field of
//! [`SwarmSummary`] is accumulated sequentially inside that swarm's own
//! walk. Shard assignment, shard count and steal order therefore cannot
//! perturb any summary: a run at 8 threads is bit-identical to a
//! 1-thread run. Anything aggregated *across* swarms must either be an
//! integer sum (order-independent) or be computed serially in id order
//! from the returned summaries — which is what [`CatalogRun`]'s
//! accessors do.

use crate::obsbatch::ShardObs;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rand_distr::{Distribution, Exp};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};
use swarm_measurement::observe::{
    demand_decay, seed_process, HOURS_PER_MONTH, PARAM_REFRESH_HOURS,
};
use swarm_measurement::Swarm;
use swarm_stats::parallel::run_stealing;

/// Default root seed for per-swarm streams.
pub const DEFAULT_CATALOG_SEED: u64 = 0xCA7A_1065;

/// Window width of the catalog time series, in hours of simulated time
/// (the virtual-tick unit of this engine). One week — the same
/// [`PARAM_REFRESH_HOURS`] discretization the walk itself advances by,
/// so window boundaries align with parameter-refresh segments.
pub const TS_WINDOW_HOURS: u64 = PARAM_REFRESH_HOURS as u64;

/// Configuration of one catalog run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CatalogRunConfig {
    /// Root seed all per-swarm streams derive from.
    pub catalog_seed: u64,
    /// Monitoring horizon in 30-day months (≥ 1).
    pub months: u32,
    /// Worker threads to request (≥ 1 effective; extra workers beyond
    /// the first are leased from the global [`ThreadBudget`] and the
    /// pool degrades gracefully when the budget grants fewer).
    ///
    /// [`ThreadBudget`]: swarm_stats::parallel::ThreadBudget
    pub threads: usize,
    /// When true, each swarm starts at its generated `age_days` (a
    /// snapshot continuation, as in the §2.3.2 case studies); when
    /// false all swarms start at creation (age 0), as in Figure 1.
    pub start_at_generated_age: bool,
}

impl Default for CatalogRunConfig {
    fn default() -> Self {
        CatalogRunConfig {
            catalog_seed: DEFAULT_CATALOG_SEED,
            months: 7,
            threads: 1,
            start_at_generated_age: false,
        }
    }
}

/// Per-swarm outcome of a catalog run. Every field is deterministic in
/// `(catalog_seed, swarm_id, config)` alone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwarmSummary {
    /// Swarm id (== index into [`CatalogRun::per_swarm`]).
    pub id: u64,
    /// Hours with at least one seed online, over the whole horizon.
    pub on_hours: f64,
    /// Hours with a seed online during the first month.
    pub first_month_on_hours: f64,
    /// ON↔OFF transitions of the seed process.
    pub toggles: u64,
    /// Peers that arrived while a seed was present — i.e. downloads
    /// served. (Arrivals during seedless time find nothing to fetch and
    /// are not counted, matching the impatient-peer reading of §2.)
    pub arrivals: u64,
    /// Arrived peers that stayed to seed after completing (the
    /// altruists feeding the swarm's own seed process).
    pub lingered: u64,
    /// Dwell segments processed (the engine's event count).
    pub events: u64,
    /// Was a seed present at the end of the horizon?
    pub final_on: bool,
}

impl SwarmSummary {
    /// Fraction of the horizon with a seed available.
    pub fn availability(&self, horizon_hours: f64) -> f64 {
        self.on_hours / horizon_hours
    }

    /// Fraction of the first month with a seed available.
    pub fn first_month_availability(&self) -> f64 {
        self.first_month_on_hours / HOURS_PER_MONTH
    }
}

/// Outcome of ticking the whole catalog.
#[derive(Debug, Clone)]
pub struct CatalogRun {
    /// The configuration that produced this run.
    pub config: CatalogRunConfig,
    /// Monitoring horizon in hours.
    pub horizon_hours: f64,
    /// One summary per swarm, indexed by swarm id.
    pub per_swarm: Vec<SwarmSummary>,
    /// Wall-clock time of the sharded execution.
    pub wall: Duration,
}

impl CatalogRun {
    /// Total downloads served across the catalog.
    pub fn total_arrivals(&self) -> u64 {
        self.per_swarm.iter().map(|s| s.arrivals).sum()
    }

    /// Total seed-process transitions across the catalog.
    pub fn total_toggles(&self) -> u64 {
        self.per_swarm.iter().map(|s| s.toggles).sum()
    }

    /// End-of-horizon seed presence per swarm — the live analog of the
    /// stationary snapshot sample used by `book_stats`.
    pub fn seeded_flags(&self) -> Vec<bool> {
        self.per_swarm.iter().map(|s| s.final_on).collect()
    }
}

/// SplitMix64 — the standard 64-bit mixer, used here to expand
/// `(catalog_seed, swarm_id)` into a 256-bit ChaCha key.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The private RNG stream of one swarm: ChaCha8 keyed by a SplitMix64
/// expansion of `(catalog_seed, swarm_id)`. Streams for distinct ids
/// are statistically independent, and a swarm's stream never depends on
/// which shard simulates it.
pub fn swarm_stream(catalog_seed: u64, swarm_id: u64) -> ChaCha8Rng {
    let mut state = catalog_seed ^ swarm_id.wrapping_mul(0xA076_1D64_78BD_642F);
    let mut key = [0u8; 32];
    for chunk in key.chunks_exact_mut(8) {
        chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
    }
    ChaCha8Rng::from_seed(key)
}

fn sample_exp<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    Exp::new(rate).expect("positive rate").sample(rng)
}

/// Event-driven walk of one swarm's seed process over the horizon.
///
/// Time advances in weekly segments (the [`PARAM_REFRESH_HOURS`]
/// discretization shared with the hourly monitor): within a segment the
/// hazards are constant, so dwell times are exponential and truncation
/// at the segment boundary is exact by memorylessness. While a seed is
/// present, peer arrivals are generated from their exponential
/// inter-arrival times at the (age-decayed) demand, and each arrival
/// lingers as a seed with probability `altruist_rate / demand`.
pub fn simulate_swarm(swarm: &Swarm, cfg: &CatalogRunConfig) -> SwarmSummary {
    simulate_swarm_recorded(swarm, cfg, None)
}

/// Credit an on-dwell `[from, until)` (hours) to the recorder as
/// integer seconds, split at [`TS_WINDOW_HOURS`] boundaries so each
/// window carries exactly its share. Integer seconds keep the series
/// in the exactly-summable domain the cross-shard diff gate needs.
fn record_on_span(rec: &mut swarm_obs::Recorder, from: f64, until: f64) {
    let w = TS_WINDOW_HOURS as f64;
    let mut a = from;
    while a < until {
        let b = until.min(((a / w).floor() + 1.0) * w);
        rec.add(a as u64, "on_seconds", ((b - a) * 3600.0).round() as u64);
        a = b;
    }
}

/// [`simulate_swarm`] with an optional time-series recorder: arrivals,
/// lingering completers and seed toggles land in the window of their
/// event hour, seed on-time is spread across the windows it covers.
/// Every recorded quantity is derived from the swarm's own
/// deterministic walk, so recorders merged across any shard partition
/// produce identical windows (the shard-invariance test enforces it).
pub fn simulate_swarm_recorded(
    swarm: &Swarm,
    cfg: &CatalogRunConfig,
    mut ts: Option<&mut swarm_obs::Recorder>,
) -> SwarmSummary {
    assert!(cfg.months >= 1, "must run for at least one month");
    let mut rng = swarm_stream(cfg.catalog_seed, swarm.id);
    let horizon = cfg.months as f64 * HOURS_PER_MONTH;
    let start_age = if cfg.start_at_generated_age {
        swarm.age_days
    } else {
        0.0
    };
    let refresh = PARAM_REFRESH_HOURS as f64;
    let linger_p = (swarm.altruist_rate / swarm.demand).clamp(0.0, 1.0);

    let p0 = seed_process(swarm, start_age);
    let mut on = rng.gen::<f64>() < p0.on_mean / (p0.on_mean + p0.off_mean);

    let mut out = SwarmSummary {
        id: swarm.id,
        on_hours: 0.0,
        first_month_on_hours: 0.0,
        toggles: 0,
        arrivals: 0,
        lingered: 0,
        events: 0,
        final_on: on,
    };

    let mut t = 0.0f64;
    while t < horizon {
        let seg_end = (((t / refresh).floor() + 1.0) * refresh).min(horizon);
        let age_days = start_age + t / 24.0;
        let params = seed_process(swarm, age_days);
        let lambda = (swarm.demand * demand_decay(age_days)).max(1e-12);
        while t < seg_end {
            let mean = if on { params.on_mean } else { params.off_mean };
            let until = (t + sample_exp(&mut rng, 1.0 / mean)).min(seg_end);
            if on {
                out.on_hours += until - t;
                let fm_end = HOURS_PER_MONTH.min(horizon);
                if t < fm_end {
                    out.first_month_on_hours += until.min(fm_end) - t;
                }
                if let Some(rec) = ts.as_deref_mut() {
                    record_on_span(rec, t, until);
                }
                // Peers arriving while the content is fetchable.
                let mut next = t + sample_exp(&mut rng, lambda);
                while next < until {
                    out.arrivals += 1;
                    let lingers = rng.gen::<f64>() < linger_p;
                    if lingers {
                        out.lingered += 1;
                    }
                    if let Some(rec) = ts.as_deref_mut() {
                        rec.add(next as u64, "arrivals", 1);
                        rec.add(next as u64, "lingered", u64::from(lingers));
                    }
                    next += sample_exp(&mut rng, lambda);
                }
            }
            out.events += 1;
            t = until;
            if until < seg_end {
                on = !on;
                out.toggles += 1;
                if let Some(rec) = ts.as_deref_mut() {
                    rec.add(until as u64, "toggles", 1);
                }
            }
        }
    }
    out.final_on = on;
    out
}

/// Tick the entire catalog.
///
/// Swarms are partitioned in contiguous blocks across the shard pool;
/// idle shards steal from busy ones, and each shard batches its
/// telemetry locally, flushing to the global registry exactly once at
/// the shard barrier (see [`ShardObs`]). Swarm ids must be dense and
/// equal to their index (the catalog generator guarantees this).
pub fn run_catalog(swarms: &[Swarm], cfg: &CatalogRunConfig) -> CatalogRun {
    for (i, s) in swarms.iter().enumerate() {
        assert_eq!(s.id, i as u64, "catalog ids must be dense");
    }
    let start = Instant::now();
    let per_swarm = run_stealing(
        swarms.len(),
        cfg.threads,
        ShardObs::new,
        |obs, i| {
            let tick = Instant::now();
            let summary = simulate_swarm_recorded(&swarms[i], cfg, obs.ts_mut());
            obs.record_swarm(&summary, tick.elapsed());
            summary
        },
        |_shard, obs| obs.flush(),
    );
    CatalogRun {
        config: *cfg,
        horizon_hours: cfg.months as f64 * HOURS_PER_MONTH,
        per_swarm,
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_measurement::{generate_catalog, CatalogConfig};

    fn small_catalog() -> Vec<Swarm> {
        generate_catalog(&CatalogConfig {
            scale: 0.001,
            seed: 11,
        })
    }

    #[test]
    fn streams_are_keyed_by_seed_and_id() {
        let mut a = swarm_stream(1, 2);
        let mut b = swarm_stream(1, 2);
        let mut c = swarm_stream(1, 3);
        let mut d = swarm_stream(2, 2);
        let (xa, xb, xc, xd) = (
            a.gen::<u64>(),
            b.gen::<u64>(),
            c.gen::<u64>(),
            d.gen::<u64>(),
        );
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
        assert_ne!(xa, xd);
    }

    #[test]
    fn summary_is_internally_consistent() {
        for s in small_catalog().iter().take(40) {
            let cfg = CatalogRunConfig {
                months: 2,
                ..CatalogRunConfig::default()
            };
            let out = simulate_swarm(s, &cfg);
            let horizon = 2.0 * HOURS_PER_MONTH;
            assert!(out.on_hours >= 0.0 && out.on_hours <= horizon + 1e-9);
            assert!(out.first_month_on_hours <= HOURS_PER_MONTH + 1e-9);
            assert!(out.first_month_on_hours <= out.on_hours + 1e-9);
            assert!(out.lingered <= out.arrivals);
            assert!(out.events >= out.toggles);
            // A walk covering the horizon needs at least one dwell per
            // refresh segment.
            assert!(out.events as f64 >= horizon / PARAM_REFRESH_HOURS as f64);
        }
    }

    #[test]
    fn rerun_is_bit_identical() {
        let swarms = small_catalog();
        let cfg = CatalogRunConfig {
            months: 2,
            ..CatalogRunConfig::default()
        };
        let a = run_catalog(&swarms, &cfg);
        let b = run_catalog(&swarms, &cfg);
        assert_eq!(a.per_swarm, b.per_swarm);
    }

    #[test]
    #[should_panic(expected = "at least one month")]
    fn zero_months_rejected() {
        let swarms = small_catalog();
        simulate_swarm(
            &swarms[0],
            &CatalogRunConfig {
                months: 0,
                ..CatalogRunConfig::default()
            },
        );
    }
}
