//! Shard-local telemetry batching.
//!
//! The global `swarm-obs` registry is made of atomics, and hammering
//! them from every swarm tick on every shard would put a shared cache
//! line in the middle of the hot loop. Instead each shard owns a
//! [`ShardObs`]: plain integer counters plus local
//! [`HistogramSnapshot`]s, all touched without synchronization, and
//! flushed to the registry exactly once — at the shard barrier, when
//! the work-stealing pool hands the shard state back.
//!
//! Tick latencies are additionally windowed: every [`TICK_WINDOW`]
//! simulated swarms the shard records the window's *average* latency
//! into the local histogram and resets the window, so the histogram
//! tracks sustained per-swarm cost rather than per-call jitter.
//!
//! # Metric namespaces
//!
//! Everything deterministic lands under `catalog.*` — those counters
//! are integer sums over per-swarm values and therefore invariant in
//! shard count and steal order; `swarm-trace` treats the `catalog.`
//! prefix as part of its deterministic domain and CI diffs it across
//! thread counts. Scheduling-dependent telemetry (flush counts, tick
//! latency) lands under `stats.*` or carries a `_ns` suffix, both of
//! which the deterministic gate excludes.

use crate::runtime::{SwarmSummary, TS_WINDOW_HOURS};
use std::time::Duration;
use swarm_obs::{counter, histogram, HistogramSnapshot, Recorder};

/// Tick-latency window length, in simulated swarms.
pub const TICK_WINDOW: u32 = 50;

/// Per-shard telemetry batch. Created at shard start, mutated without
/// synchronization while the shard runs, consumed by [`flush`] at the
/// shard barrier.
///
/// [`flush`]: ShardObs::flush
#[derive(Debug)]
pub struct ShardObs {
    shard: usize,
    enabled: bool,
    swarms: u64,
    toggles: u64,
    arrivals: u64,
    lingered: u64,
    events: u64,
    final_on: u64,
    window_len: u32,
    window_ns: u64,
    latency_windows: HistogramSnapshot,
    downloads: HistogramSnapshot,
    /// Shard-local slice of the `"catalog"` time series (weekly windows
    /// keyed by simulated hours); merged into the global series at the
    /// shard barrier. `None` while recording is disabled.
    ts: Option<Recorder>,
}

impl ShardObs {
    /// Fresh batch for shard `shard`. The enable switch is sampled once
    /// here so the hot path doesn't re-check it per swarm.
    pub fn new(shard: usize) -> Self {
        let enabled = swarm_obs::enabled();
        ShardObs {
            shard,
            enabled,
            ts: (enabled && swarm_obs::series_enabled()).then(|| Recorder::new(TS_WINDOW_HOURS)),
            swarms: 0,
            toggles: 0,
            arrivals: 0,
            lingered: 0,
            events: 0,
            final_on: 0,
            window_len: 0,
            window_ns: 0,
            latency_windows: HistogramSnapshot::new(),
            downloads: HistogramSnapshot::new(),
        }
    }

    /// The shard's time-series recorder, for the simulation to record
    /// into directly (`None` while recording is disabled).
    pub fn ts_mut(&mut self) -> Option<&mut Recorder> {
        self.ts.as_mut()
    }

    /// Fold one simulated swarm into the batch.
    pub fn record_swarm(&mut self, summary: &SwarmSummary, elapsed: Duration) {
        if !self.enabled {
            return;
        }
        self.swarms += 1;
        self.toggles += summary.toggles;
        self.arrivals += summary.arrivals;
        self.lingered += summary.lingered;
        self.events += summary.events;
        self.final_on += u64::from(summary.final_on);
        self.downloads.record(summary.arrivals);

        self.window_ns += elapsed.as_nanos() as u64;
        self.window_len += 1;
        if self.window_len == TICK_WINDOW {
            self.roll_window();
        }
    }

    fn roll_window(&mut self) {
        if self.window_len == 0 {
            return;
        }
        let avg_ns = self.window_ns / u64::from(self.window_len);
        self.latency_windows.record(avg_ns);
        swarm_obs::log_debug!(
            "catalog",
            "shard {} window: {} swarms, avg tick {} ns",
            self.shard,
            self.window_len,
            avg_ns
        );
        self.window_len = 0;
        self.window_ns = 0;
    }

    /// Flush the batch to the global registry. Called exactly once per
    /// shard, at the pool's shard barrier.
    pub fn flush(mut self) {
        if !self.enabled {
            return;
        }
        self.roll_window();
        counter("catalog.swarms").add(self.swarms);
        counter("catalog.toggles").add(self.toggles);
        counter("catalog.peers.arrived").add(self.arrivals);
        counter("catalog.peers.lingered").add(self.lingered);
        counter("catalog.events").add(self.events);
        counter("catalog.final_on").add(self.final_on);
        histogram("catalog.swarm.downloads").merge_snapshot(&self.downloads);
        histogram("catalog.tick_latency_ns").merge_snapshot(&self.latency_windows);
        // Per-swarm window contributions are deterministic and merging
        // is additive, so the flushed series is shard-invariant too.
        if let Some(ts) = self.ts.take() {
            swarm_obs::merge_series_owned("catalog", ts);
        }
        // Shard-count-dependent by construction: keep it out of the
        // deterministic `catalog.*` namespace.
        counter("stats.catalog.shard_flushes").inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(arrivals: u64, toggles: u64) -> SwarmSummary {
        SwarmSummary {
            id: 0,
            on_hours: 1.0,
            first_month_on_hours: 1.0,
            toggles,
            arrivals,
            lingered: 0,
            events: toggles + 1,
            final_on: true,
        }
    }

    #[test]
    fn disabled_batch_records_nothing() {
        // Recording is off by default in unit tests.
        let mut obs = ShardObs::new(0);
        assert!(!obs.enabled || swarm_obs::enabled());
        if !obs.enabled {
            obs.record_swarm(&summary(3, 2), Duration::from_nanos(10));
            assert_eq!(obs.swarms, 0);
            assert!(obs.downloads.is_empty());
            obs.flush(); // must not touch the registry
        }
    }

    #[test]
    fn windows_roll_at_tick_window() {
        let mut obs = ShardObs::new(1);
        obs.enabled = true; // force local batching without the registry
        for _ in 0..TICK_WINDOW {
            obs.record_swarm(&summary(1, 1), Duration::from_nanos(100));
        }
        assert_eq!(obs.window_len, 0, "window must reset after rolling");
        assert_eq!(obs.latency_windows.count, 1);
        // A partial window stays pending until the flush.
        obs.record_swarm(&summary(1, 1), Duration::from_nanos(100));
        assert_eq!(obs.window_len, 1);
        assert_eq!(obs.latency_windows.count, 1);
    }
}
