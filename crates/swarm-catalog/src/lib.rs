//! Catalog-scale sharded multi-swarm runtime.
//!
//! The measurement crate reproduces the paper's §2 study by *sampling*:
//! every experiment walks the generated catalog serially, drawing each
//! swarm's hourly seed-presence from one shared RNG. That caps the
//! population size an experiment can afford and welds the results to a
//! single visit order. This crate lifts the same seed-presence model to
//! catalog scale:
//!
//! * [`runtime`] — the sharded engine. The whole catalog is partitioned
//!   across a work-stealing shard pool (built on
//!   `swarm_stats::parallel::run_stealing`, which leases its workers
//!   from the process-wide [`ThreadBudget`]). Each swarm advances
//!   *event-driven*: seed-present/seedless dwell times are drawn
//!   directly from the alternating-renewal process instead of being
//!   sampled hour by hour, so a quiescent swarm — months of seedless
//!   time — costs one exponential draw per parameter-refresh window.
//!   That is the measurement-layer analog of the swarm-bt engine's
//!   quiescence fast-forward.
//! * Determinism: every swarm owns a private ChaCha8 stream derived
//!   from `(catalog_seed, swarm_id)` via SplitMix64, so results are
//!   bit-identical no matter how many shards run or how work is stolen
//!   between them.
//! * [`obsbatch`] — shard-local telemetry batching: plain (non-atomic)
//!   counters and histogram snapshots accumulated per shard, flushed to
//!   the global `swarm-obs` registry once at the shard barrier, with
//!   per-swarm tick latencies aggregated into fixed-size windows.
//! * [`study`] — the paper's E1–E3 analyses (Figure 1 CDFs, the books
//!   contrast, the "Friends" case study) recomputed from a *live* run's
//!   measured seed-time and download counts instead of stationary
//!   samples.
//!
//! [`ThreadBudget`]: swarm_stats::parallel::ThreadBudget

pub mod obsbatch;
pub mod runtime;
pub mod study;

pub use obsbatch::{ShardObs, TICK_WINDOW};
pub use runtime::{
    run_catalog, simulate_swarm_recorded, swarm_stream, CatalogRun, CatalogRunConfig, SwarmSummary,
    DEFAULT_CATALOG_SEED, TS_WINDOW_HOURS,
};
pub use study::{availability_study_live, book_stats_live, friends_case_live};
