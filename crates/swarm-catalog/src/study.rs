//! E1–E3 analyses recomputed from a live catalog run.
//!
//! The measurement crate's experiment pipeline samples each statistic
//! from closed forms (stationary availability, expected downloads).
//! Here the same analyses are fed *measured* quantities from a
//! [`CatalogRun`]: seed-time fractions for the Figure 1 CDFs, measured
//! download counts and end-of-run seed presence for the §2.3.2
//! contrasts. Aggregation happens serially in swarm-id order over the
//! deterministic per-swarm summaries, so every number here inherits the
//! runtime's shard-count invariance.

use crate::runtime::{run_catalog, CatalogRun, CatalogRunConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use swarm_measurement::{
    book_stats_with, friends_population, show_case_counts, AvailabilityStudy, BookStats,
    ShowCaseStudy, Swarm,
};
use swarm_stats::Ecdf;

/// The Figure 1 pipeline over a live run: per-swarm seed-availability
/// fractions (first month and whole horizon) as ECDFs, in id order.
pub fn availability_study_live(run: &CatalogRun) -> AvailabilityStudy {
    let first: Vec<f64> = run
        .per_swarm
        .iter()
        .map(|s| s.first_month_availability())
        .collect();
    let whole: Vec<f64> = run
        .per_swarm
        .iter()
        .map(|s| s.availability(run.horizon_hours))
        .collect();
    AvailabilityStudy {
        first_month: Ecdf::new(first),
        whole_trace: Ecdf::new(whole),
        months: run.config.months,
    }
}

/// The §2.3.2 books contrast over a live run: seed presence is the
/// measured end-of-horizon state and download volume is the measured
/// arrival count, instead of a stationary sample and the closed-form
/// expectation.
pub fn book_stats_live(swarms: &[Swarm], run: &CatalogRun) -> BookStats {
    assert_eq!(swarms.len(), run.per_swarm.len());
    let seeded = run.seeded_flags();
    book_stats_with(swarms, &seeded, |s| {
        run.per_swarm[s.id as usize].arrivals as f64
    })
}

/// The "Friends" case study over a live run: generate the show's
/// population, run it through the sharded engine as a one-month
/// snapshot continuation from the generated ages, and tally the
/// end-of-run seed presence.
pub fn friends_case_live(
    total: u64,
    bundle_share: f64,
    seed: u64,
    threads: usize,
) -> ShowCaseStudy {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let population = friends_population(total, bundle_share, &mut rng);
    let swarms: Vec<Swarm> = population.iter().map(|(s, _)| s.clone()).collect();
    let run = run_catalog(
        &swarms,
        &CatalogRunConfig {
            catalog_seed: seed ^ 0x5EED_F00D,
            months: 1,
            threads,
            start_at_generated_age: true,
        },
    );
    show_case_counts(&population, &run.seeded_flags())
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_measurement::{generate_catalog, CatalogConfig, Category};

    #[test]
    fn live_study_reproduces_figure_1_calibration() {
        let swarms = generate_catalog(&CatalogConfig {
            scale: 0.004,
            seed: 17,
        });
        let run = run_catalog(
            &swarms,
            &CatalogRunConfig {
                months: 7,
                ..CatalogRunConfig::default()
            },
        );
        let study = availability_study_live(&run);

        // Same calibration window the sampled pipeline asserts: fewer
        // than ~45% of swarms fully seeded in their first month, but
        // some are; most swarms mostly unavailable over the whole trace.
        let always = study.always_available_first_month();
        assert!(always < 0.45, "always-available share too high: {always}");
        assert!(always > 0.05, "some swarms must be fully seeded: {always}");
        let mostly_off = study.mostly_unavailable_whole_trace(0.2);
        assert!(
            mostly_off > 0.55,
            "whole-trace unavailability too low: {mostly_off}"
        );
        for q in [0.1, 0.3, 0.5, 0.7, 0.9] {
            assert!(
                study.whole_trace.eval(q) >= study.first_month.eval(q) - 0.05,
                "whole-trace CDF must lie above first-month at {q}"
            );
        }
    }

    #[test]
    fn live_book_contrast_matches_paper_direction() {
        let swarms = generate_catalog(&CatalogConfig {
            scale: 0.02,
            seed: 41,
        });
        let run = run_catalog(
            &swarms,
            &CatalogRunConfig {
                months: 7,
                start_at_generated_age: true,
                ..CatalogRunConfig::default()
            },
        );
        assert!(
            swarms.iter().any(|s| s.category == Category::Books),
            "catalog must include books"
        );
        let stats = book_stats_live(&swarms, &run);
        assert!(
            stats.unavailable_all > stats.unavailable_collections,
            "collections must be more available: {} vs {}",
            stats.unavailable_all,
            stats.unavailable_collections
        );
        assert!(stats.unavailable_collections_effective <= stats.unavailable_collections);
        assert!(
            stats.downloads_collections > stats.downloads_typical,
            "collections must out-download typical swarms: {} vs {}",
            stats.downloads_collections,
            stats.downloads_typical
        );
    }

    #[test]
    fn live_friends_availability_concentrates_in_bundles() {
        // Average over trials as the sampled test does; the live engine
        // replaces the stationary coin flip with simulated dynamics.
        let mut avail_bundle_frac = 0.0;
        let mut unavail_bundle_frac = 0.0;
        let trials = 30;
        for t in 0..trials {
            let s = friends_case_live(52, 0.54, 47 + t, 1);
            if s.available > 0 {
                avail_bundle_frac += s.available_bundles as f64 / s.available as f64;
            }
            let unavailable = s.total - s.available;
            if unavailable > 0 {
                unavail_bundle_frac += s.unavailable_bundles as f64 / unavailable as f64;
            }
        }
        avail_bundle_frac /= trials as f64;
        unavail_bundle_frac /= trials as f64;
        assert!(
            avail_bundle_frac > unavail_bundle_frac + 0.15,
            "available swarms must be predominantly bundles: \
             {avail_bundle_frac} vs {unavail_bundle_frac}"
        );
    }
}
