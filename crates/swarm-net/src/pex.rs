//! Peer-exchange gossip helpers.
//!
//! Pure functions over a peer's (sorted) neighbor id list, so the PEX
//! decisions are deterministic given the peer's own RNG stream and
//! independent of hash/thread order. Both the loopback and TCP hosts use
//! these through [`crate::peer::PeerCore`].

use rand::seq::SliceRandom;
use rand::Rng;

/// How many neighbor addresses one PEX reply carries (mirrors the sim
/// engine's gossip fanout).
pub const PEX_SHARE: usize = 5;

/// Choose the neighbor to gossip with this interval: uniform over the
/// caller's sorted neighbor ids. `None` when there is nobody to ask.
pub fn pick_partner<R: Rng + ?Sized>(sorted_ids: &[usize], rng: &mut R) -> Option<usize> {
    if sorted_ids.is_empty() {
        return None;
    }
    Some(sorted_ids[rng.gen_range(0..sorted_ids.len())])
}

/// Build the address list for a PEX reply: up to [`PEX_SHARE`] of our
/// neighbors, excluding the requester itself, in shuffled order (so a
/// crowded neighborhood doesn't always gossip the same prefix).
pub fn share_list<R: Rng + ?Sized>(
    sorted_ids: &[usize],
    requester: usize,
    rng: &mut R,
) -> Vec<u64> {
    let mut pool: Vec<usize> = sorted_ids
        .iter()
        .copied()
        .filter(|&p| p != requester)
        .collect();
    pool.shuffle(rng);
    pool.truncate(PEX_SHARE);
    pool.into_iter().map(|p| p as u64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn pick_partner_is_none_only_when_lonely() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(pick_partner(&[], &mut rng), None);
        for _ in 0..50 {
            let got = pick_partner(&[3, 7, 9], &mut rng).unwrap();
            assert!([3, 7, 9].contains(&got));
        }
    }

    #[test]
    fn share_list_excludes_requester_and_caps_fanout() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ids: Vec<usize> = (1..20).collect();
        for requester in 1..20 {
            let got = share_list(&ids, requester, &mut rng);
            assert_eq!(got.len(), PEX_SHARE);
            assert!(!got.contains(&(requester as u64)));
        }
        // Small neighborhoods share everyone they know (minus requester).
        let mut got = share_list(&[2, 5], 5, &mut rng);
        got.sort_unstable();
        assert_eq!(got, vec![2]);
    }

    #[test]
    fn share_list_is_a_pure_function_of_the_rng_stream() {
        let ids: Vec<usize> = (1..30).collect();
        let a = share_list(&ids, 4, &mut ChaCha8Rng::seed_from_u64(9));
        let b = share_list(&ids, 4, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
