//! Tracker service: announce/scrape over the same wire frames as peers.
//!
//! The tracker is endpoint 0 of every swarm and holds the only global
//! membership view. It is deliberately dumb — a registry keyed by wire
//! peer id plus a shuffled-sample announce response — because that is
//! all the paper's availability story needs from a tracker: discovery,
//! not coordination.

use std::collections::BTreeMap;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::wire::{Message, EVENT_COMPLETED, EVENT_STOPPED};

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    complete: bool,
    stopped: bool,
}

/// Transport-agnostic tracker state machine.
pub struct TrackerCore {
    /// Registry keyed by wire peer id (a `BTreeMap`, so every derived
    /// iteration order is id order — never insertion or hash order).
    registry: BTreeMap<u64, Entry>,
    /// Maximum peers returned per announce.
    response_size: usize,
    /// Announces served (for the run report).
    pub announces: u64,
    /// Scrapes served.
    pub scrapes: u64,
}

impl TrackerCore {
    pub fn new(response_size: usize) -> Self {
        TrackerCore {
            registry: BTreeMap::new(),
            response_size,
            announces: 0,
            scrapes: 0,
        }
    }

    /// Active (non-stopped) registered peers, in id order.
    pub fn active_peers(&self) -> Vec<u64> {
        self.registry
            .iter()
            .filter(|(_, e)| !e.stopped)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Seeders / leechers among active peers — the scrape numbers.
    pub fn census(&self) -> (u32, u32) {
        let mut seeders = 0;
        let mut leechers = 0;
        for e in self.registry.values().filter(|e| !e.stopped) {
            if e.complete {
                seeders += 1;
            } else {
                leechers += 1;
            }
        }
        (seeders, leechers)
    }

    /// Process one frame from endpoint `from`; replies (if any) are
    /// pushed onto `out` as `(destination endpoint, message)`.
    pub fn handle<R: Rng + ?Sized>(
        &mut self,
        from: usize,
        msg: &Message,
        rng: &mut R,
        out: &mut Vec<(usize, Message)>,
    ) {
        match msg {
            Message::Announce { peer, left, event } => {
                self.announces += 1;
                if swarm_obs::enabled() {
                    swarm_obs::counter("net.tracker.announce.served").inc();
                }
                let entry = self.registry.entry(*peer).or_default();
                entry.complete = *left <= 0.0 || *event == EVENT_COMPLETED;
                entry.stopped = *event == EVENT_STOPPED;
                if *event == EVENT_STOPPED {
                    return;
                }
                let mut peers: Vec<u64> = self
                    .registry
                    .iter()
                    .filter(|(&id, e)| id != *peer && !e.stopped)
                    .map(|(&id, _)| id)
                    .collect();
                peers.shuffle(rng);
                peers.truncate(self.response_size);
                out.push((from, Message::AnnounceResponse { peers }));
            }
            Message::Scrape => {
                self.scrapes += 1;
                if swarm_obs::enabled() {
                    swarm_obs::counter("net.tracker.scrape.served").inc();
                }
                let (seeders, leechers) = self.census();
                out.push((from, Message::ScrapeResponse { seeders, leechers }));
            }
            // Trackers ignore peer-protocol traffic.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{EVENT_NONE, EVENT_STARTED};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn announce(peer: u64, left: f64, event: u8) -> Message {
        Message::Announce { peer, left, event }
    }

    #[test]
    fn announce_registers_and_returns_other_active_peers() {
        let mut t = TrackerCore::new(50);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut out = Vec::new();
        for id in 1..=4u64 {
            t.handle(
                id as usize,
                &announce(id, 100.0, EVENT_STARTED),
                &mut rng,
                &mut out,
            );
        }
        let Some((dest, Message::AnnounceResponse { peers })) = out.last() else {
            panic!("expected announce response");
        };
        assert_eq!(*dest, 4);
        let mut got = peers.clone();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3], "everyone but the requester");
    }

    #[test]
    fn stopped_peers_leave_the_pool_and_get_no_reply() {
        let mut t = TrackerCore::new(50);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut out = Vec::new();
        t.handle(1, &announce(1, 100.0, EVENT_STARTED), &mut rng, &mut out);
        t.handle(2, &announce(2, 100.0, EVENT_STARTED), &mut rng, &mut out);
        out.clear();
        t.handle(2, &announce(2, 0.0, EVENT_STOPPED), &mut rng, &mut out);
        assert!(out.is_empty(), "STOPPED announces are fire-and-forget");
        assert_eq!(t.active_peers(), vec![1]);
    }

    #[test]
    fn census_counts_seeders_and_leechers() {
        let mut t = TrackerCore::new(50);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut out = Vec::new();
        t.handle(1, &announce(1, 0.0, EVENT_COMPLETED), &mut rng, &mut out);
        t.handle(2, &announce(2, 700.0, EVENT_STARTED), &mut rng, &mut out);
        t.handle(3, &announce(3, 300.0, EVENT_NONE), &mut rng, &mut out);
        assert_eq!(t.census(), (1, 2));
        out.clear();
        t.handle(9, &Message::Scrape, &mut rng, &mut out);
        assert_eq!(
            out,
            vec![(
                9,
                Message::ScrapeResponse {
                    seeders: 1,
                    leechers: 2
                }
            )]
        );
    }

    #[test]
    fn response_size_caps_the_sample() {
        let mut t = TrackerCore::new(3);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut out = Vec::new();
        for id in 1..=10u64 {
            t.handle(
                id as usize,
                &announce(id, 50.0, EVENT_STARTED),
                &mut rng,
                &mut out,
            );
        }
        let Some((_, Message::AnnounceResponse { peers })) = out.last() else {
            panic!("expected announce response");
        };
        assert_eq!(peers.len(), 3);
    }
}
