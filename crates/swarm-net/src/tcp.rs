//! Real-socket host: the same cores over `std::net` TCP.
//!
//! This host exists to prove the protocol stack is not a simulation
//! artifact: [`PeerCore`] and [`TrackerCore`] run unmodified over real
//! sockets, paced by a [`WallTicker`] instead of the virtual clock, with
//! frames carried by the identical wire codec. It is exercised by the
//! loopback smoke test (2 seeds + 3 leechers on 127.0.0.1), which is
//! `#[ignore]` by default and run by its own CI job — wall-clock runs
//! are inherently nondeterministic, so they assert protocol outcomes
//! (everyone completes, the tracker census agrees), never traces.
//!
//! ## Connection model
//!
//! Every endpoint sends only on connections it opened and reads from
//! everything. The first frame on any outbound connection is an
//! *identification handshake* consumed by the host layer (it names the
//! sender's endpoint id); it is never shown to the core. Protocol-level
//! handshakes travel as ordinary frames after it. The tracker is the
//! one exception to "send only on outbound": it replies on the inbound
//! connection the request arrived on, and peers therefore poll their
//! outbound tracker connection for responses.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::clock::WallTicker;
use crate::peer::{PeerCore, PeerParams, TRACKER};
use crate::run::{next_net_run_ordinal, peer_stream};
use crate::tracker::TrackerCore;
use crate::wire::{self, Message};
use swarm_obs::Recorder;

/// Default ticks between `net.health` snapshots per peer thread, and
/// the width of the `"net.tcp"` recorder windows.
pub const DEFAULT_HEALTH_INTERVAL: u64 = 20;
/// Default ticks without download progress before an incomplete online
/// leecher is flagged stalled.
pub const DEFAULT_STALL_TICKS: u64 = 40;

/// Outcome of one TCP smoke run.
#[derive(Debug, Clone)]
pub struct TcpSmokeReport {
    /// Leechers that completed before the deadline.
    pub completions: u64,
    /// Tracker census at the end (seeders, leechers) — stopped peers
    /// excluded, so this counts the still-serving seeds.
    pub census: (u32, u32),
    /// Ticks the slowest leecher needed, if all completed.
    pub slowest_completion_tick: Option<u64>,
    /// Where the live `GET /metrics` exposition was served, when
    /// [`TcpSmokeOpts::metrics_port`] asked for one.
    pub metrics_addr: Option<SocketAddr>,
}

/// Host-level options for [`run_tcp_smoke_with`].
#[derive(Debug, Clone)]
pub struct TcpSmokeOpts {
    /// When the run ends with leechers still incomplete and recording
    /// is on, dump the whole event sink (header + JSONL) here — the
    /// flight-recorder black box for post-mortem `repro trace`.
    pub flight_dump: Option<std::path::PathBuf>,
    /// Ticks between `net.health` snapshots per peer thread; also the
    /// window width of the `"net.tcp"` time series.
    pub health_interval: u64,
    /// Ticks without download progress before an incomplete online
    /// leecher is flagged stalled.
    pub stall_ticks: u64,
    /// Serve a live Prometheus-style `GET /metrics` text exposition on
    /// `127.0.0.1:<port>` for the duration of the run (`0` lets the OS
    /// pick; the bound address lands in [`TcpSmokeReport::metrics_addr`]
    /// and on [`TcpSmokeOpts::on_metrics_addr`]).
    pub metrics_port: Option<u16>,
    /// Receives the bound metrics address as soon as the exposition
    /// endpoint is up, so callers can poll it *while the swarm runs*.
    pub on_metrics_addr: Option<std::sync::mpsc::Sender<SocketAddr>>,
}

impl Default for TcpSmokeOpts {
    fn default() -> Self {
        TcpSmokeOpts {
            flight_dump: None,
            health_interval: DEFAULT_HEALTH_INTERVAL,
            stall_ticks: DEFAULT_STALL_TICKS,
            metrics_port: None,
            on_metrics_addr: None,
        }
    }
}

struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    /// Sender's endpoint id; `None` until the identification handshake
    /// arrives on an inbound connection.
    from: Option<usize>,
}

impl Conn {
    fn new(stream: TcpStream, from: Option<usize>) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            buf: Vec::new(),
            from,
        })
    }

    /// Pull whatever bytes are available and decode complete frames.
    /// Returns `(closed, messages)`.
    fn poll(&mut self) -> (bool, Vec<(usize, Message)>) {
        let mut scratch = [0u8; 4096];
        loop {
            match self.stream.read(&mut scratch) {
                Ok(0) => return (true, self.drain()),
                Ok(n) => self.buf.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => return (true, self.drain()),
            }
        }
        (false, self.drain())
    }

    fn drain(&mut self) -> Vec<(usize, Message)> {
        let msgs = match wire::drain_frames(&mut self.buf) {
            Ok(m) => m,
            // A malformed stream poisons the connection; drop what we
            // had and let the closure path clean up.
            Err(_) => return Vec::new(),
        };
        let mut out = Vec::with_capacity(msgs.len());
        for msg in msgs {
            match self.from {
                Some(id) => out.push((id, msg)),
                None => {
                    // First frame identifies the sender; it is host
                    // plumbing, not protocol input.
                    if let Message::Handshake { peer, .. } = msg {
                        self.from = Some(peer as usize);
                    }
                }
            }
        }
        out
    }
}

/// Shared id → address book, filled at bind time before any traffic.
type AddrBook = Arc<Mutex<HashMap<usize, SocketAddr>>>;

fn send_frames(
    my_id: usize,
    pieces: u32,
    outbound: &mut HashMap<usize, Conn>,
    book: &AddrBook,
    batch: Vec<(usize, Message)>,
) {
    for (to, msg) in batch {
        if let std::collections::hash_map::Entry::Vacant(slot) = outbound.entry(to) {
            let addr = match book.lock().expect("addr book poisoned").get(&to).copied() {
                Some(a) => a,
                None => continue,
            };
            let Ok(stream) = TcpStream::connect(addr) else {
                continue;
            };
            let ident = wire::encode(&Message::Handshake {
                peer: my_id as u64,
                pieces,
            });
            let mut conn = match Conn::new(stream, Some(to)) {
                Ok(c) => c,
                Err(_) => continue,
            };
            if conn.stream.write_all(&ident).is_err() {
                continue;
            }
            slot.insert(conn);
        }
        let conn = outbound.get_mut(&to).expect("just inserted");
        if conn.stream.write_all(&wire::encode(&msg)).is_err() {
            outbound.remove(&to);
        }
    }
}

fn tracker_thread(listener: TcpListener, stop: Arc<AtomicBool>, seed: u64) {
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    let mut core = TrackerCore::new(40);
    let mut rng = peer_stream(seed, TRACKER as u64);
    let mut conns: Vec<Conn> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        while let Ok((stream, _)) = listener.accept() {
            if let Ok(c) = Conn::new(stream, None) {
                conns.push(c);
            }
        }
        let mut closed = Vec::new();
        for (i, conn) in conns.iter_mut().enumerate() {
            let (dead, msgs) = conn.poll();
            let mut out = Vec::new();
            for (from, msg) in &msgs {
                core.handle(*from, msg, &mut rng, &mut out);
            }
            // The tracker replies on the connection the request came on.
            for (_, msg) in out {
                if conn.stream.write_all(&wire::encode(&msg)).is_err() {
                    closed.push(i);
                    break;
                }
            }
            if dead {
                closed.push(i);
            }
        }
        for i in closed.into_iter().rev() {
            conns.swap_remove(i);
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Handles every peer thread shares with the host.
#[derive(Clone)]
struct PeerShared {
    book: AddrBook,
    stop: Arc<AtomicBool>,
    completions: Arc<AtomicU64>,
    slowest: Arc<AtomicU64>,
    /// Live slice of the `"net.tcp"` time series; peer threads add
    /// per-tick deltas, the metrics endpoint renders it, and the host
    /// merges it into the global registry at the end of the run.
    ts: Arc<Mutex<Recorder>>,
}

/// Per-run pacing and watchdog knobs, identical for every peer thread.
#[derive(Clone, Copy)]
struct PeerPacing {
    tick_ms: u64,
    max_ticks: u64,
    run: u64,
    health_interval: u64,
    stall_ticks: u64,
}

fn peer_thread(mut core: PeerCore, listener: TcpListener, shared: PeerShared, pacing: PeerPacing) {
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    let my_id = core.id;
    let pieces = core.bitfield.len() as u32;
    let ticker = WallTicker::new(pacing.tick_ms);
    let mut inbound: Vec<Conn> = Vec::new();
    let mut outbound: HashMap<usize, Conn> = HashMap::new();
    let mut counted_done = false;
    let mut last_tick = u64::MAX;
    let mut pending: Vec<(usize, Message)> = Vec::new();
    // Stall detector state: last observed byte total and when it moved.
    let mut last_bytes = core.bytes_received;
    let mut last_progress_tick = 0u64;
    let mut stalled = false;
    // Rounded cumulative totals behind the recorder deltas, so window
    // sums telescope to the endpoint totals.
    let mut ts_prev_bytes = core.bytes_received.round() as u64;
    let mut ts_prev_pieces = core.bitfield.count() as u64;
    while !shared.stop.load(Ordering::Acquire) {
        let tick = ticker.current_tick();
        if tick > pacing.max_ticks {
            break;
        }
        while let Ok((stream, _)) = listener.accept() {
            if let Ok(c) = Conn::new(stream, None) {
                inbound.push(c);
            }
        }
        let mut closed = Vec::new();
        for (i, conn) in inbound.iter_mut().enumerate() {
            let (dead, msgs) = conn.poll();
            pending.extend(msgs);
            if dead {
                closed.push(i);
            }
        }
        for i in closed.into_iter().rev() {
            inbound.swap_remove(i);
        }
        let mut dead_out = Vec::new();
        for (&id, conn) in outbound.iter_mut() {
            let (dead, msgs) = conn.poll();
            pending.extend(msgs);
            if dead {
                dead_out.push(id);
            }
        }
        for id in dead_out {
            outbound.remove(&id);
        }
        // Frames accumulate between tick edges; the core steps exactly
        // once per wall tick, like one virtual round.
        if tick != last_tick {
            last_tick = tick;
            let mut out = Vec::new();
            core.step(tick, std::mem::take(&mut pending), &mut out);
            send_frames(my_id, pieces, &mut outbound, &shared.book, out);
            let mut just_completed = false;
            if !counted_done && core.completed.is_some() && !core.is_publisher {
                counted_done = true;
                just_completed = true;
                shared.completions.fetch_add(1, Ordering::Relaxed);
                shared
                    .slowest
                    .fetch_max(core.completed.unwrap_or(0), Ordering::Relaxed);
            }
            // Download-progress watchdog: an online, incomplete leecher
            // whose byte total has not moved for `stall_ticks` is
            // stalled. One event per episode; any progress re-arms the
            // detector.
            let mut just_stalled = false;
            if core.bytes_received > last_bytes {
                last_bytes = core.bytes_received;
                last_progress_tick = tick;
                stalled = false;
            } else if !stalled
                && !core.is_publisher
                && core.online
                && core.completed.is_none()
                && tick.saturating_sub(last_progress_tick) >= pacing.stall_ticks
            {
                stalled = true;
                just_stalled = true;
                if swarm_obs::enabled() {
                    // Wall-clock behavior → `stats.` prefix keeps the
                    // counter out of the deterministic diff domain.
                    swarm_obs::counter("stats.net.stalls").inc();
                    swarm_obs::emit(
                        "net.stall",
                        &[
                            ("run", swarm_obs::val(pacing.run)),
                            ("tick", swarm_obs::val(tick)),
                            ("peer", swarm_obs::val(my_id as u64)),
                            (
                                "since",
                                swarm_obs::val(tick.saturating_sub(last_progress_tick)),
                            ),
                        ],
                    );
                }
            }
            // Windowed telemetry: per-tick deltas into the shared
            // recorder. Additive merging across peer threads means the
            // window sums are the swarm totals; wall ticks are the
            // window key, so the series lines up with the health
            // events' tick axis.
            {
                let bytes = core.bytes_received.round() as u64;
                let pieces_now = core.bitfield.count() as u64;
                let mut ts = shared.ts.lock().unwrap_or_else(|e| e.into_inner());
                ts.add_batch(
                    tick,
                    &[
                        ("peer_ticks", 1),
                        ("bytes_moved", bytes.saturating_sub(ts_prev_bytes)),
                        ("pieces", pieces_now.saturating_sub(ts_prev_pieces)),
                        ("completions", u64::from(just_completed)),
                        ("stalls", u64::from(just_stalled)),
                    ],
                );
                ts_prev_bytes = bytes;
                ts_prev_pieces = pieces_now;
            }
            if swarm_obs::enabled() && tick.is_multiple_of(pacing.health_interval) {
                swarm_obs::emit(
                    "net.health",
                    &[
                        ("run", swarm_obs::val(pacing.run)),
                        ("tick", swarm_obs::val(tick)),
                        ("peer", swarm_obs::val(my_id as u64)),
                        ("pieces", swarm_obs::val(core.bitfield.count() as u64)),
                        ("bytes_kb", swarm_obs::val(core.bytes_received)),
                        ("neighbors", swarm_obs::val(core.neighbor_count() as u64)),
                        ("online", swarm_obs::val(core.online)),
                        ("stalled", swarm_obs::val(stalled)),
                    ],
                );
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Run a small real-TCP swarm on 127.0.0.1: `seeds` full peers plus
/// `leechers` empty ones, one tracker, OS-assigned ports. Returns once
/// every leecher completed or `max_ticks` wall ticks elapsed.
pub fn run_tcp_smoke(
    seeds: usize,
    leechers: usize,
    num_pieces: usize,
    tick_ms: u64,
    max_ticks: u64,
) -> std::io::Result<TcpSmokeReport> {
    run_tcp_smoke_with(
        seeds,
        leechers,
        num_pieces,
        tick_ms,
        max_ticks,
        &TcpSmokeOpts::default(),
    )
}

/// [`run_tcp_smoke`] with host-level options (flight-recorder dump).
pub fn run_tcp_smoke_with(
    seeds: usize,
    leechers: usize,
    num_pieces: usize,
    tick_ms: u64,
    max_ticks: u64,
    opts: &TcpSmokeOpts,
) -> std::io::Result<TcpSmokeReport> {
    assert!(seeds >= 1 && leechers >= 1 && num_pieces >= 1);
    assert!(
        opts.health_interval >= 1 && opts.stall_ticks >= 1,
        "intervals must be positive"
    );
    let run = next_net_run_ordinal();
    let params = PeerParams {
        num_pieces,
        piece_size: 100.0,
        unchoke_slots: 4,
        optimistic_slots: 1,
        rechoke_interval: 5,
        pex_interval: 10,
        max_neighbors: 40,
        run,
    };
    let seed = 0x7ec5;
    let book: AddrBook = Arc::new(Mutex::new(HashMap::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let completions = Arc::new(AtomicU64::new(0));
    let slowest = Arc::new(AtomicU64::new(0));
    // Window the live series at the health cadence: recorder windows
    // are the structured replacement for eyeballing health snapshots.
    let ts = Arc::new(Mutex::new(Recorder::new(opts.health_interval)));

    // Live exposition endpoint, up before the swarm starts so watchers
    // never race the run.
    let mut metrics_addr = None;
    let mut metrics_handle = None;
    if let Some(port) = opts.metrics_port {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        metrics_addr = Some(addr);
        if let Some(tx) = &opts.on_metrics_addr {
            let _ = tx.send(addr);
        }
        let ts = Arc::clone(&ts);
        let stop = Arc::clone(&stop);
        metrics_handle = Some(std::thread::spawn(move || {
            crate::http::serve_metrics(listener, stop, move || {
                let windows = ts.lock().unwrap_or_else(|e| e.into_inner()).windows();
                crate::http::render_exposition(&swarm_obs::snapshot(), &[("net.tcp", &windows)])
            })
        }));
    }

    let tracker_listener = TcpListener::bind("127.0.0.1:0")?;
    let tracker_addr = tracker_listener.local_addr()?;
    book.lock().unwrap().insert(TRACKER, tracker_addr);

    let n_peers = seeds + leechers;
    let mut listeners = Vec::with_capacity(n_peers);
    for id in 1..=n_peers {
        let l = TcpListener::bind("127.0.0.1:0")?;
        book.lock().unwrap().insert(id, l.local_addr()?);
        listeners.push(l);
    }

    let mut handles = Vec::new();
    {
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            tracker_thread(tracker_listener, stop, seed)
        }));
    }
    for (i, listener) in listeners.into_iter().enumerate() {
        let id = 1 + i;
        let core = if i < seeds {
            let mut p = PeerCore::publisher(id, 500.0, params, peer_stream(seed, id as u64));
            p.set_online(true);
            p
        } else {
            PeerCore::leecher(id, 0, 200.0, 2_000.0, params, peer_stream(seed, id as u64))
        };
        let shared = PeerShared {
            book: Arc::clone(&book),
            stop: Arc::clone(&stop),
            completions: Arc::clone(&completions),
            slowest: Arc::clone(&slowest),
            ts: Arc::clone(&ts),
        };
        let pacing = PeerPacing {
            tick_ms,
            max_ticks,
            run,
            health_interval: opts.health_interval,
            stall_ticks: opts.stall_ticks,
        };
        handles.push(std::thread::spawn(move || {
            peer_thread(core, listener, shared, pacing)
        }));
    }

    // Wait for every leecher (or the deadline), then stop the swarm.
    let deadline = Instant::now() + Duration::from_millis(tick_ms * (max_ticks + 2));
    while completions.load(Ordering::Relaxed) < leechers as u64 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    // Scrape before stopping the tracker so the census reflects the
    // final swarm state.
    let census = scrape(tracker_addr, n_peers, num_pieces)?;
    stop.store(true, Ordering::Release);
    for h in handles {
        h.join().expect("swarm thread panicked");
    }
    if let Some(h) = metrics_handle {
        h.join().expect("metrics thread panicked");
    }
    // The wall-clock series is nondeterministic by nature, so it lives
    // under its own name; `repro trace --timeseries` reports it but the
    // deterministic diff gate never touches it.
    if swarm_obs::enabled() {
        let ts = ts.lock().unwrap_or_else(|e| e.into_inner());
        if !ts.is_empty() {
            swarm_obs::merge_series("net.tcp", &ts);
        }
    }
    let done = completions.load(Ordering::Relaxed);
    if done < leechers as u64 {
        if let Some(path) = &opts.flight_dump {
            if swarm_obs::enabled() {
                // Post-mortem black box: everything still in the ring,
                // header first, ready for `repro trace`/`net-report`.
                let events = swarm_obs::drain_all();
                let mut text = swarm_obs::header_line();
                text.push_str(&swarm_obs::to_jsonl(&events));
                let _ = std::fs::write(path, text);
            }
        }
    }
    Ok(TcpSmokeReport {
        completions: done,
        census,
        slowest_completion_tick: if done == leechers as u64 {
            Some(slowest.load(Ordering::Relaxed))
        } else {
            None
        },
        metrics_addr,
    })
}

/// One blocking scrape round-trip against the live tracker.
fn scrape(addr: SocketAddr, my_id: usize, pieces: usize) -> std::io::Result<(u32, u32)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(&wire::encode(&Message::Handshake {
        peer: (my_id + 1) as u64,
        pieces: pieces as u32,
    }))?;
    stream.write_all(&wire::encode(&Message::Scrape))?;
    let mut buf = Vec::new();
    let mut scratch = [0u8; 256];
    loop {
        let n = stream.read(&mut scratch)?;
        if n == 0 {
            return Err(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "tracker closed before scrape response",
            ));
        }
        buf.extend_from_slice(&scratch[..n]);
        if let Ok(msgs) = wire::drain_frames(&mut buf) {
            for msg in msgs {
                if let Message::ScrapeResponse { seeders, leechers } = msg {
                    return Ok((seeders, leechers));
                }
            }
        }
    }
}
