//! Canonical sim-vs-live scenarios.
//!
//! Each scenario is a `BtConfig` built so the comparable counters —
//! ticks, arrivals, completions, availability transitions — are *equal
//! by construction* between the `swarm-bt` simulator and the live
//! networked engine, rather than approximately similar:
//!
//! * arrivals are **scripted** (no Poisson draws to keep in lockstep);
//! * the publisher follows a **deterministic schedule** (always-on or a
//!   square wave — no exponential dwell draws);
//! * **no linger, no drain**: departures are completions, and the run
//!   is exactly `horizon` ticks in both engines;
//! * capacities are generous enough that every leecher completes well
//!   inside the first publisher on-phase, so the availability timeline
//!   is purely schedule-driven in both engines regardless of protocol
//!   micro-timing.
//!
//! The swarm-bench `net-live` job and the sim-vs-live integration tests
//! both read their scenarios from here, so the CI gate and the unit
//! gate can never drift apart.

use swarm_bt::{BtConfig, BtPublisher, CapacityDistribution};

/// Scenario A: always-on publisher, 8 scripted leechers, 300-tick run.
/// Expected: 8 arrivals, 8 completions, availability 1.0, 0 transitions.
pub fn scenario_a(seed: u64) -> BtConfig {
    let mut cfg = BtConfig::paper_section_4_3(1, seed);
    cfg.file_size = 1_000.0; // 4 pieces of 250 kB
    cfg.publisher = BtPublisher::AlwaysOn;
    cfg.publisher_capacity = 200.0;
    cfg.peer_capacity = CapacityDistribution::Uniform(100.0);
    cfg.download_cap = 400.0;
    cfg.horizon = 300;
    cfg.drain_ticks = 0;
    cfg.linger_mean = None;
    cfg.scripted_arrivals = Some((0..8).map(|i| (i as u64, 100.0)).collect());
    cfg.validate();
    cfg
}

/// Scenario B: square-wave publisher (on 150 / off 60, starting on), 10
/// scripted leechers, 360-tick run. Every leecher completes inside the
/// first on-phase, so availability follows the publisher schedule
/// exactly: available on `[0, 150)` and `[210, 360)`.
/// Expected: 10 arrivals, 10 completions, availability 300/360, 2
/// transitions.
pub fn scenario_b(seed: u64) -> BtConfig {
    let mut cfg = BtConfig::paper_section_4_3(1, seed);
    cfg.file_size = 1_000.0;
    cfg.publisher = BtPublisher::Periodic {
        on_ticks: 150,
        off_ticks: 60,
        initially_on: true,
    };
    cfg.publisher_capacity = 200.0;
    cfg.peer_capacity = CapacityDistribution::Uniform(100.0);
    cfg.download_cap = 400.0;
    cfg.horizon = 360;
    cfg.drain_ticks = 0;
    cfg.linger_mean = None;
    cfg.scripted_arrivals = Some((0..10).map(|i| (i as u64, 100.0)).collect());
    cfg.validate();
    cfg
}

/// All canonical scenarios as `(name, config)` pairs.
pub fn all(seed: u64) -> Vec<(&'static str, BtConfig)> {
    vec![
        ("scenario-a", scenario_a(seed)),
        ("scenario-b", scenario_b(seed)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_live_eligible() {
        for (name, cfg) in all(42) {
            assert!(cfg.scripted_arrivals.is_some(), "{name}");
            assert_eq!(cfg.drain_ticks, 0, "{name}");
            assert!(cfg.linger_mean.is_none(), "{name}");
            assert_eq!(cfg.num_pieces(), 4, "{name}");
        }
    }
}
