//! Length-prefixed wire format for the live swarm protocol.
//!
//! Every frame is `[u32 BE payload length][u8 tag][payload]`. The length
//! covers the tag byte and the payload, so a reader can skip unknown
//! frames wholesale. Integers are big-endian; rates/volumes travel as
//! IEEE-754 bit patterns (`f64::to_bits`), so encode → decode is
//! bit-identical even for non-round values. Bitfields are bit-packed
//! MSB-first, mainline style, with the trailing pad bits required to be
//! zero.
//!
//! Decoding is total: any byte sequence either yields a message or a
//! typed [`WireError`] — never a panic, never an allocation proportional
//! to an attacker-chosen length beyond [`MAX_FRAME`].

use swarm_bt::Bitfield;

/// Upper bound on the declared payload length (tag + body) of one frame.
/// Generous for this protocol (the largest legitimate frame is a
/// bitfield of a few thousand pieces) while keeping a hostile length
/// prefix from driving an allocation.
pub const MAX_FRAME: usize = 1 << 20;

/// Announce event codes (mainline's `event=` query values).
pub const EVENT_NONE: u8 = 0;
pub const EVENT_STARTED: u8 = 1;
pub const EVENT_COMPLETED: u8 = 2;
pub const EVENT_STOPPED: u8 = 3;

/// A decoded protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Connection opener: the sender's endpoint id and the piece count it
    /// believes the torrent has (validated against local config).
    Handshake {
        peer: u64,
        pieces: u32,
    },
    /// Full bitmap of held pieces, sent right after the handshake.
    Bitfield(Bitfield),
    /// The sender now holds `piece`.
    Have {
        piece: u32,
    },
    Interested,
    NotInterested,
    Choke,
    Unchoke,
    /// Request data from `piece` (block offsets are abstracted away: the
    /// engine's transfer model moves fractional-piece volumes per tick).
    Request {
        piece: u32,
    },
    /// `bytes` kB of `piece` (the model world measures volume, not
    /// payload bytes — the f64 travels as its exact bit pattern).
    Piece {
        piece: u32,
        bytes: f64,
    },
    /// Withdraw an earlier request for `piece`.
    Cancel {
        piece: u32,
    },
    /// Tracker announce: who, how much is left, and a mainline event code
    /// (`EVENT_STARTED` / `EVENT_COMPLETED` / `EVENT_STOPPED` / none).
    Announce {
        peer: u64,
        left: f64,
        event: u8,
    },
    /// Tracker response: endpoint ids of up to `tracker_response` swarm
    /// members.
    AnnounceResponse {
        peers: Vec<u64>,
    },
    /// Tracker scrape request.
    Scrape,
    /// Tracker scrape response: current seeder/leecher counts.
    ScrapeResponse {
        seeders: u32,
        leechers: u32,
    },
    /// PEX: ask a neighbor for its peer list.
    PexRequest,
    /// PEX: share up to `PEX_SHARE` neighbor endpoint ids.
    PexPeers {
        peers: Vec<u64>,
    },
}

const TAG_HANDSHAKE: u8 = 0;
const TAG_BITFIELD: u8 = 1;
const TAG_HAVE: u8 = 2;
const TAG_INTERESTED: u8 = 3;
const TAG_NOT_INTERESTED: u8 = 4;
const TAG_CHOKE: u8 = 5;
const TAG_UNCHOKE: u8 = 6;
const TAG_REQUEST: u8 = 7;
const TAG_PIECE: u8 = 8;
const TAG_CANCEL: u8 = 9;
const TAG_ANNOUNCE: u8 = 10;
const TAG_ANNOUNCE_RESPONSE: u8 = 11;
const TAG_SCRAPE: u8 = 12;
const TAG_SCRAPE_RESPONSE: u8 = 13;
const TAG_PEX_REQUEST: u8 = 14;
const TAG_PEX_PEERS: u8 = 15;

/// Typed decode failure. Every variant is a clean error return — the
/// decoder never panics on hostile input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ends before the declared frame does (also covers a
    /// buffer shorter than the 4-byte length prefix). Retry with more
    /// bytes.
    Truncated,
    /// The length prefix declares a payload larger than [`MAX_FRAME`].
    Oversized { declared: usize },
    /// A frame must carry at least its tag byte.
    EmptyFrame,
    /// The tag byte names no known message type.
    UnknownTag(u8),
    /// The payload is malformed for its tag (wrong size, bad counts,
    /// nonzero bitfield padding, …).
    BadPayload(&'static str),
    /// Well-formed payload followed by extra bytes inside the frame.
    Trailing,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::Oversized { declared } => {
                write!(
                    f,
                    "declared payload of {declared} bytes exceeds {MAX_FRAME}"
                )
            }
            WireError::EmptyFrame => write!(f, "zero-length frame (missing tag)"),
            WireError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            WireError::BadPayload(what) => write!(f, "bad payload: {what}"),
            WireError::Trailing => write!(f, "trailing bytes after payload"),
        }
    }
}

impl std::error::Error for WireError {}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_be_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::BadPayload("payload shorter than its fields"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Trailing)
        }
    }
}

fn put_peer_list(out: &mut Vec<u8>, peers: &[u64]) {
    put_u32(out, peers.len() as u32);
    for &p in peers {
        put_u64(out, p);
    }
}

fn get_peer_list(r: &mut Reader<'_>) -> Result<Vec<u64>, WireError> {
    let n = r.u32()? as usize;
    // A count the remaining payload cannot possibly hold is malformed;
    // checking before the reserve keeps hostile counts allocation-free.
    if r.buf.len() - r.pos < n * 8 {
        return Err(WireError::BadPayload("peer count exceeds payload"));
    }
    let mut peers = Vec::with_capacity(n);
    for _ in 0..n {
        peers.push(r.u64()?);
    }
    Ok(peers)
}

/// Encode one message as a complete frame (length prefix included).
pub fn encode(msg: &Message) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&[0, 0, 0, 0]); // length backpatched below
    match msg {
        Message::Handshake { peer, pieces } => {
            out.push(TAG_HANDSHAKE);
            put_u64(&mut out, *peer);
            put_u32(&mut out, *pieces);
        }
        Message::Bitfield(bf) => {
            out.push(TAG_BITFIELD);
            put_u32(&mut out, bf.len() as u32);
            // Bit-packed MSB-first, mainline style; pad bits are zero.
            let mut byte = 0u8;
            for p in 0..bf.len() {
                if bf.has(p) {
                    byte |= 0x80 >> (p % 8);
                }
                if p % 8 == 7 {
                    out.push(byte);
                    byte = 0;
                }
            }
            if bf.len() % 8 != 0 {
                out.push(byte);
            }
        }
        Message::Have { piece } => {
            out.push(TAG_HAVE);
            put_u32(&mut out, *piece);
        }
        Message::Interested => out.push(TAG_INTERESTED),
        Message::NotInterested => out.push(TAG_NOT_INTERESTED),
        Message::Choke => out.push(TAG_CHOKE),
        Message::Unchoke => out.push(TAG_UNCHOKE),
        Message::Request { piece } => {
            out.push(TAG_REQUEST);
            put_u32(&mut out, *piece);
        }
        Message::Piece { piece, bytes } => {
            out.push(TAG_PIECE);
            put_u32(&mut out, *piece);
            put_f64(&mut out, *bytes);
        }
        Message::Cancel { piece } => {
            out.push(TAG_CANCEL);
            put_u32(&mut out, *piece);
        }
        Message::Announce { peer, left, event } => {
            out.push(TAG_ANNOUNCE);
            put_u64(&mut out, *peer);
            put_f64(&mut out, *left);
            out.push(*event);
        }
        Message::AnnounceResponse { peers } => {
            out.push(TAG_ANNOUNCE_RESPONSE);
            put_peer_list(&mut out, peers);
        }
        Message::Scrape => out.push(TAG_SCRAPE),
        Message::ScrapeResponse { seeders, leechers } => {
            out.push(TAG_SCRAPE_RESPONSE);
            put_u32(&mut out, *seeders);
            put_u32(&mut out, *leechers);
        }
        Message::PexRequest => out.push(TAG_PEX_REQUEST),
        Message::PexPeers { peers } => {
            out.push(TAG_PEX_PEERS);
            put_peer_list(&mut out, peers);
        }
    }
    let len = (out.len() - 4) as u32;
    out[..4].copy_from_slice(&len.to_be_bytes());
    out
}

/// Decode one frame from the front of `buf`.
///
/// Returns the message and the total number of bytes consumed (prefix
/// included). [`WireError::Truncated`] means "feed me more bytes" — the
/// streaming reader loops on it; every other error is fatal for the
/// frame.
pub fn decode(buf: &[u8]) -> Result<(Message, usize), WireError> {
    if buf.len() < 4 {
        return Err(WireError::Truncated);
    }
    let declared = u32::from_be_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
    if declared > MAX_FRAME {
        return Err(WireError::Oversized { declared });
    }
    if declared == 0 {
        return Err(WireError::EmptyFrame);
    }
    if buf.len() < 4 + declared {
        return Err(WireError::Truncated);
    }
    let frame = &buf[4..4 + declared];
    let tag = frame[0];
    let mut r = Reader::new(&frame[1..]);
    let msg = match tag {
        TAG_HANDSHAKE => Message::Handshake {
            peer: r.u64()?,
            pieces: r.u32()?,
        },
        TAG_BITFIELD => {
            let n = r.u32()? as usize;
            let nbytes = n.div_ceil(8);
            let bits = r.take(nbytes)?;
            let mut bf = Bitfield::new(n);
            for p in 0..n {
                if bits[p / 8] & (0x80 >> (p % 8)) != 0 {
                    bf.set(p);
                }
            }
            // Pad bits past the piece count must be zero (mainline drops
            // peers that set them; we reject the frame).
            if !n.is_multiple_of(8) {
                let pad = bits[nbytes - 1] & (0xFFu8 >> (n % 8)) != 0;
                if pad {
                    return Err(WireError::BadPayload("nonzero bitfield padding"));
                }
            }
            Message::Bitfield(bf)
        }
        TAG_HAVE => Message::Have { piece: r.u32()? },
        TAG_INTERESTED => Message::Interested,
        TAG_NOT_INTERESTED => Message::NotInterested,
        TAG_CHOKE => Message::Choke,
        TAG_UNCHOKE => Message::Unchoke,
        TAG_REQUEST => Message::Request { piece: r.u32()? },
        TAG_PIECE => Message::Piece {
            piece: r.u32()?,
            bytes: r.f64()?,
        },
        TAG_CANCEL => Message::Cancel { piece: r.u32()? },
        TAG_ANNOUNCE => Message::Announce {
            peer: r.u64()?,
            left: r.f64()?,
            event: {
                let e = r.u8()?;
                if e > EVENT_STOPPED {
                    return Err(WireError::BadPayload("unknown announce event"));
                }
                e
            },
        },
        TAG_ANNOUNCE_RESPONSE => Message::AnnounceResponse {
            peers: get_peer_list(&mut r)?,
        },
        TAG_SCRAPE => Message::Scrape,
        TAG_SCRAPE_RESPONSE => Message::ScrapeResponse {
            seeders: r.u32()?,
            leechers: r.u32()?,
        },
        TAG_PEX_REQUEST => Message::PexRequest,
        TAG_PEX_PEERS => Message::PexPeers {
            peers: get_peer_list(&mut r)?,
        },
        t => return Err(WireError::UnknownTag(t)),
    };
    r.finish()?;
    Ok((msg, 4 + declared))
}

/// Streaming frame extraction for byte-stream transports (TCP): pull
/// complete frames off the front of `buf`, leaving any partial tail in
/// place. Stops at the first decode error other than truncation.
pub fn drain_frames(buf: &mut Vec<u8>) -> Result<Vec<Message>, WireError> {
    let mut out = Vec::new();
    let mut consumed = 0usize;
    loop {
        match decode(&buf[consumed..]) {
            Ok((msg, n)) => {
                out.push(msg);
                consumed += n;
            }
            Err(WireError::Truncated) => break,
            Err(e) => {
                buf.drain(..consumed);
                return Err(e);
            }
        }
    }
    buf.drain(..consumed);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: &Message) {
        let frame = encode(msg);
        let (back, n) = decode(&frame).expect("decode");
        assert_eq!(&back, msg);
        assert_eq!(n, frame.len(), "whole frame consumed");
    }

    #[test]
    fn fixed_messages_round_trip() {
        let mut bf = Bitfield::new(13);
        bf.set(0);
        bf.set(7);
        bf.set(12);
        for msg in [
            Message::Handshake {
                peer: 7,
                pieces: 64,
            },
            Message::Bitfield(bf),
            Message::Have { piece: 3 },
            Message::Interested,
            Message::NotInterested,
            Message::Choke,
            Message::Unchoke,
            Message::Request { piece: 9 },
            Message::Piece {
                piece: 2,
                bytes: 33.333333333333336,
            },
            Message::Cancel { piece: 1 },
            Message::Announce {
                peer: 42,
                left: 1234.5,
                event: EVENT_STARTED,
            },
            Message::AnnounceResponse {
                peers: vec![1, 2, 3, u64::MAX],
            },
            Message::Scrape,
            Message::ScrapeResponse {
                seeders: 2,
                leechers: 3,
            },
            Message::PexRequest,
            Message::PexPeers { peers: vec![] },
        ] {
            roundtrip(&msg);
        }
    }

    #[test]
    fn truncated_frames_ask_for_more() {
        let frame = encode(&Message::Have { piece: 5 });
        for cut in 0..frame.len() {
            assert_eq!(
                decode(&frame[..cut]).unwrap_err(),
                WireError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversized_length_is_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&((MAX_FRAME as u32) + 1).to_be_bytes());
        buf.push(TAG_HAVE);
        assert_eq!(
            decode(&buf).unwrap_err(),
            WireError::Oversized {
                declared: MAX_FRAME + 1
            }
        );
    }

    #[test]
    fn unknown_tag_and_empty_frame_are_typed_errors() {
        let mut buf = vec![0, 0, 0, 1, 200];
        assert_eq!(decode(&buf).unwrap_err(), WireError::UnknownTag(200));
        buf = vec![0, 0, 0, 0];
        assert_eq!(decode(&buf).unwrap_err(), WireError::EmptyFrame);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut frame = encode(&Message::Choke);
        frame.push(0xAB);
        let len = (frame.len() - 4) as u32;
        frame[..4].copy_from_slice(&len.to_be_bytes());
        assert_eq!(decode(&frame).unwrap_err(), WireError::Trailing);
    }

    #[test]
    fn hostile_peer_count_is_rejected() {
        // Declares 2^28 peers in a 12-byte payload.
        let mut buf = Vec::new();
        buf.extend_from_slice(&13u32.to_be_bytes());
        buf.push(TAG_ANNOUNCE_RESPONSE);
        buf.extend_from_slice(&(1u32 << 28).to_be_bytes());
        buf.extend_from_slice(&[0; 8]);
        assert!(matches!(
            decode(&buf).unwrap_err(),
            WireError::BadPayload(_)
        ));
    }

    #[test]
    fn nonzero_bitfield_padding_is_rejected() {
        let mut bf = Bitfield::new(4);
        bf.set(0);
        let mut frame = encode(&Message::Bitfield(bf));
        // Set a pad bit (bit 5 of the single bitmap byte).
        let last = frame.len() - 1;
        frame[last] |= 0x04;
        assert_eq!(
            decode(&frame).unwrap_err(),
            WireError::BadPayload("nonzero bitfield padding")
        );
    }

    #[test]
    fn drain_frames_handles_partial_tail() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&encode(&Message::Interested));
        buf.extend_from_slice(&encode(&Message::Have { piece: 8 }));
        let tail = encode(&Message::Unchoke);
        buf.extend_from_slice(&tail[..3]); // partial frame stays put
        let msgs = drain_frames(&mut buf).expect("drain");
        assert_eq!(msgs, vec![Message::Interested, Message::Have { piece: 8 }]);
        assert_eq!(buf, &tail[..3]);
    }
}
