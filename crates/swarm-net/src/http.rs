//! Minimal blocking HTTP: the live metrics exposition endpoint.
//!
//! The TCP host serves its telemetry as Prometheus-style text over
//! `GET /metrics` on a 127.0.0.1 side port while the swarm runs, and
//! `repro watch` polls it from another process. Both ends are plain
//! `std::net` — a request here is one read until the blank line and one
//! write of the whole response, which is all an exposition endpoint
//! needs. No async runtime, no HTTP library, in keeping with the
//! workspace's vendored-dependency rule.
//!
//! The exposition renders three layers:
//!
//! * every registry counter/gauge as `swarm_<name>` with a `# TYPE`
//!   header, names sanitized to the metric charset;
//! * every histogram as `_count`/`_sum` pairs;
//! * the newest window of each live time series as
//!   `swarm_ts_<series>_<counter>` gauges plus a `_window_start` marker,
//!   so a scraper sees per-window rates without parsing JSONL.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use swarm_obs::{Snapshot, Window};

/// Sanitize a metric name to the Prometheus charset
/// (`[a-zA-Z0-9_:]`); everything else becomes `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Render a registry snapshot plus the newest window of each named
/// series as Prometheus text exposition format.
pub fn render_exposition(snap: &Snapshot, series: &[(&str, &[Window])]) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let n = sanitize(name);
        out.push_str(&format!("# TYPE swarm_{n} counter\nswarm_{n} {value}\n"));
    }
    for (name, value) in &snap.gauges {
        let n = sanitize(name);
        out.push_str(&format!("# TYPE swarm_{n} gauge\nswarm_{n} {value}\n"));
    }
    for (name, h) in &snap.histograms {
        let n = sanitize(name);
        out.push_str(&format!(
            "# TYPE swarm_{n}_count counter\nswarm_{n}_count {}\n",
            h.count
        ));
        out.push_str(&format!(
            "# TYPE swarm_{n}_sum counter\nswarm_{n}_sum {}\n",
            h.sum
        ));
    }
    for (series_name, windows) in series {
        let Some(last) = windows.last() else {
            continue;
        };
        let s = sanitize(series_name);
        out.push_str(&format!(
            "# TYPE swarm_ts_{s}_window_start gauge\nswarm_ts_{s}_window_start {}\n",
            last.start
        ));
        out.push_str(&format!(
            "# TYPE swarm_ts_{s}_window_len gauge\nswarm_ts_{s}_window_len {}\n",
            last.len
        ));
        for (counter, value) in &last.counters {
            let c = sanitize(counter);
            out.push_str(&format!(
                "# TYPE swarm_ts_{s}_{c} gauge\nswarm_ts_{s}_{c} {value}\n"
            ));
        }
    }
    out
}

/// Read one HTTP request off `stream` and return the request path, or
/// `None` if the request never completed.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut buf = Vec::new();
    let mut scratch = [0u8; 1024];
    loop {
        match stream.read(&mut scratch) {
            Ok(0) => return None,
            Ok(n) => {
                buf.extend_from_slice(&scratch[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 16 * 1024 {
                    break;
                }
            }
            Err(_) => return None,
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let mut parts = text.lines().next()?.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if method != "GET" {
        return None;
    }
    Some(path.to_string())
}

fn respond(stream: &mut TcpStream, status: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
}

/// Serve `GET /metrics` on `listener` until `stop` is raised. `render`
/// is called per request, so every scrape sees the live registry and
/// the recorder's current windows.
pub fn serve_metrics<F>(listener: TcpListener, stop: Arc<AtomicBool>, render: F)
where
    F: Fn() -> String,
{
    listener
        .set_nonblocking(true)
        .expect("nonblocking metrics listener");
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nonblocking(false);
                match read_request_path(&mut stream) {
                    Some(path) if path == "/metrics" || path == "/" => {
                        respond(&mut stream, "200 OK", &render());
                    }
                    Some(_) => respond(&mut stream, "404 Not Found", "not found\n"),
                    None => {}
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// One blocking `GET` round-trip; returns the response body on 200.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> std::io::Result<String> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidInput, "no address"))?;
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let req = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes())?;
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf)?;
    let text = String::from_utf8_lossy(&buf).into_owned();
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            "malformed HTTP response",
        ));
    };
    let status = head.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(std::io::Error::other(format!(
            "metrics endpoint answered: {status}"
        )));
    }
    Ok(body.to_string())
}

/// `repro watch <host:port>` — poll a live `/metrics` endpoint and
/// print the exposition's `swarm_` samples each round. Returns a
/// process exit code.
pub fn watch_main(args: &[String]) -> i32 {
    let mut target = None;
    let mut interval_ms = 1_000u64;
    let mut iters = 0u64; // 0 = until the endpoint goes away
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--interval-ms" => {
                i += 1;
                interval_ms = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("watch: --interval-ms needs a number");
                        return 2;
                    }
                };
            }
            "--iters" => {
                i += 1;
                iters = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("watch: --iters needs a number");
                        return 2;
                    }
                };
            }
            other if target.is_none() && !other.starts_with('-') => {
                target = Some(other.to_string());
            }
            other => {
                eprintln!("watch: unexpected argument {other}");
                return 2;
            }
        }
        i += 1;
    }
    let Some(target) = target else {
        eprintln!("usage: repro watch <host:port> [--interval-ms N] [--iters N]");
        return 2;
    };

    let mut round = 0u64;
    loop {
        round += 1;
        match http_get(target.as_str(), "/metrics") {
            Ok(body) => {
                println!("--- round {round} @ {target} ---");
                for line in body.lines().filter(|l| l.starts_with("swarm_")) {
                    println!("{line}");
                }
            }
            Err(e) => {
                if round == 1 {
                    eprintln!("watch: cannot reach {target}: {e}");
                    return 1;
                }
                // A vanished endpoint after a successful round means
                // the run finished; that is a clean exit.
                println!("--- endpoint gone after round {} ({e}) ---", round - 1);
                return 0;
            }
        }
        if iters != 0 && round >= iters {
            return 0;
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_obs::Recorder;

    fn sample_window() -> Vec<Window> {
        let mut rec = Recorder::new(16);
        rec.add(3, "bytes_moved", 400);
        rec.add(5, "completions", 1);
        rec.windows()
    }

    #[test]
    fn exposition_renders_counters_and_series() {
        let mut snap = Snapshot::default();
        snap.counters.insert("net.ticks".into(), 120);
        snap.gauges.insert("net.depth".into(), -2);
        let windows = sample_window();
        let text = render_exposition(&snap, &[("net.tcp", &windows)]);
        assert!(text.contains("# TYPE swarm_net_ticks counter\nswarm_net_ticks 120\n"));
        assert!(text.contains("swarm_net_depth -2\n"));
        assert!(text.contains("swarm_ts_net_tcp_window_start 0\n"));
        assert!(text.contains("swarm_ts_net_tcp_bytes_moved 400\n"));
        assert!(text.contains("swarm_ts_net_tcp_completions 1\n"));
        // Every sample line is `name value`, parseable exposition text.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split(' ');
            let name = parts.next().unwrap();
            assert!(name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'));
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "unparseable value in {line}");
            assert_eq!(parts.next(), None);
        }
    }

    #[test]
    fn empty_series_is_omitted() {
        let snap = Snapshot::default();
        let text = render_exposition(&snap, &[("net.tcp", &[])]);
        assert!(!text.contains("net_tcp"));
    }

    #[test]
    fn serve_and_fetch_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let server = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                serve_metrics(listener, stop, || {
                    let mut snap = Snapshot::default();
                    snap.counters.insert("net.ticks".into(), 7);
                    let windows = sample_window();
                    render_exposition(&snap, &[("net.tcp", &windows)])
                })
            })
        };
        let body = http_get(addr, "/metrics").expect("fetch /metrics");
        assert!(body.contains("swarm_net_ticks 7"));
        assert!(body.contains("swarm_ts_net_tcp_window_start"));
        assert!(http_get(addr, "/nope").is_err(), "404 maps to an error");
        stop.store(true, Ordering::Release);
        server.join().unwrap();
    }

    #[test]
    fn watch_rejects_bad_usage() {
        assert_eq!(watch_main(&[]), 2);
        assert_eq!(watch_main(&["--interval-ms".into()]), 2);
    }
}
