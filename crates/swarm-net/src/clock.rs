//! Time sources for the two transport modes.
//!
//! Deterministic mode runs on a [`VirtualClock`]: a barrier-coordinated
//! round counter. Each round is one engine tick; worker threads (one per
//! endpoint) execute strictly inside the span between the two barrier
//! crossings, and the coordinator owns everything between rounds —
//! message delivery, schedule toggles, metric aggregation. Nothing about
//! thread scheduling can reorder observable work across a barrier, which
//! is what makes the threaded host bit-identical to the single-threaded
//! one.
//!
//! TCP mode runs on a [`WallTicker`]: real elapsed time quantized into
//! the same tick domain, so the protocol logic is oblivious to which
//! clock is underneath (the `lightyear`-style tick-manager split).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Barrier-round virtual clock shared by `workers` endpoint threads and
/// one coordinator.
///
/// Protocol per round:
/// 1. coordinator does between-round work, then calls [`begin_round`];
/// 2. every worker returns from [`worker_begin`] with the tick, steps
///    its endpoint, calls [`worker_end`];
/// 3. coordinator returns from [`end_round`] and owns the world again.
///
/// [`begin_round`]: VirtualClock::begin_round
/// [`worker_begin`]: VirtualClock::worker_begin
/// [`worker_end`]: VirtualClock::worker_end
/// [`end_round`]: VirtualClock::end_round
pub struct VirtualClock {
    barrier: Barrier,
    tick: AtomicU64,
    stopped: AtomicBool,
}

impl VirtualClock {
    pub fn new(workers: usize) -> Self {
        VirtualClock {
            barrier: Barrier::new(workers + 1),
            tick: AtomicU64::new(0),
            stopped: AtomicBool::new(false),
        }
    }

    /// Coordinator: publish `tick` and release the workers into it.
    pub fn begin_round(&self, tick: u64) {
        self.tick.store(tick, Ordering::Release);
        self.barrier.wait();
    }

    /// Coordinator: block until every worker finished the round.
    pub fn end_round(&self) {
        self.barrier.wait();
    }

    /// Coordinator: release the workers one last time with the stop flag
    /// raised; they exit instead of stepping.
    pub fn shutdown(&self) {
        self.stopped.store(true, Ordering::Release);
        self.barrier.wait();
    }

    /// Worker: wait for the round to open. `None` means shut down.
    pub fn worker_begin(&self) -> Option<u64> {
        self.barrier.wait();
        if self.stopped.load(Ordering::Acquire) {
            None
        } else {
            Some(self.tick.load(Ordering::Acquire))
        }
    }

    /// Worker: mark this round's work complete.
    pub fn worker_end(&self) {
        self.barrier.wait();
    }
}

/// Wall-clock tick source for TCP mode: quantizes real elapsed time into
/// ticks of `tick_ms` milliseconds.
pub struct WallTicker {
    start: Instant,
    tick_ms: u64,
}

impl WallTicker {
    pub fn new(tick_ms: u64) -> Self {
        WallTicker {
            start: Instant::now(),
            tick_ms: tick_ms.max(1),
        }
    }

    /// The tick the wall clock is currently inside.
    pub fn current_tick(&self) -> u64 {
        (self.start.elapsed().as_millis() as u64) / self.tick_ms
    }

    /// Sleep until the start of the tick after `tick` (bounded nap so a
    /// late thread never oversleeps its schedule).
    pub fn sleep_past(&self, tick: u64) {
        let next_at = Duration::from_millis((tick + 1) * self.tick_ms);
        let elapsed = self.start.elapsed();
        if next_at > elapsed {
            std::thread::sleep(next_at - elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn virtual_clock_rounds_are_totally_ordered() {
        // 3 workers append (tick, phase) marks; barrier discipline must
        // keep every worker's mark for round t strictly between the
        // coordinator's open and close of round t.
        let workers = 3;
        let clock = Arc::new(VirtualClock::new(workers));
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for w in 0..workers {
            let clock = Arc::clone(&clock);
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                while let Some(tick) = clock.worker_begin() {
                    log.lock().unwrap().push((tick, w));
                    clock.worker_end();
                }
            }));
        }
        for tick in 0..5u64 {
            clock.begin_round(tick);
            clock.end_round();
            // Coordinator-owned span: exactly `workers` marks for `tick`.
            let marks = log.lock().unwrap();
            let this_round = marks.iter().filter(|&&(t, _)| t == tick).count();
            assert_eq!(this_round, workers, "round {tick}");
        }
        clock.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn wall_ticker_advances() {
        let t = WallTicker::new(1);
        let t0 = t.current_tick();
        t.sleep_past(t0 + 1);
        assert!(t.current_tick() > t0);
    }
}
