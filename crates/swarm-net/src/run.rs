//! Deterministic live-swarm coordinator.
//!
//! Runs a scripted `BtConfig` scenario as a *networked* swarm: one
//! [`TrackerCore`] plus one [`PeerCore`] per participant, exchanging
//! encoded wire frames over a [`LoopbackHub`], paced by a
//! [`VirtualClock`]. Two host modes exist and must be bit-identical:
//!
//! * [`HostMode::SingleThread`] — endpoints stepped in id order on the
//!   caller's thread (the reference semantics);
//! * [`HostMode::ThreadPerPeer`] — one OS thread per endpoint, fenced by
//!   the clock's barrier each round.
//!
//! Identity holds because each endpoint touches only its own state
//! during a round, frames become visible only at the round boundary in
//! `(sender, sequence)` order, and all cross-peer aggregation happens on
//! the coordinator between rounds, in id order.
//!
//! Telemetry mirrors the sim's `bt.*` namespace as `net.*`: the
//! deterministic counters (`net.ticks`, `net.arrivals`, …) carry the
//! same meanings as their `bt.*` twins, while anything wall-clock-ish
//! stays under a `_ns` suffix so the trace-diff gate never compares
//! scheduler noise.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use swarm_bt::{Bitfield, BtConfig, BtPublisher};

use crate::clock::VirtualClock;
use crate::peer::{PeerCore, PeerParams, PUBLISHER, TRACKER};
use crate::tracker::TrackerCore;
use crate::transport::LoopbackHub;
use crate::wire;

/// Process-wide run ordinal for `net.run.*` events (mirrors the sim's
/// run counter so traces from repeated runs stay distinguishable).
static NET_RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// Claim the next `net.run.*` ordinal — shared with the TCP host so
/// loopback and socket runs in one process never collide on a run id.
pub(crate) fn next_net_run_ordinal() -> u64 {
    NET_RUN_SEQ.fetch_add(1, Ordering::Relaxed)
}

/// How the deterministic host schedules endpoint work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostMode {
    /// Endpoints stepped in id order on one thread.
    SingleThread,
    /// One worker thread per endpoint, barrier-fenced per tick.
    ThreadPerPeer,
}

/// Result of one live run — the networked twin of `BtResult`, carrying
/// exactly the aggregates the sim-vs-live diff compares plus the
/// network-side extras.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetResult {
    /// Ticks executed (always the horizon; live mode runs drain-free
    /// scenarios).
    pub ticks: u64,
    /// Leechers that joined the swarm.
    pub arrivals: u64,
    /// Leechers that finished the download.
    pub completions: u64,
    /// Fraction of ticks with the content fully available.
    pub availability: f64,
    /// Availability flips after the initial latch (the sim's
    /// `bt.availability.transitions`).
    pub availability_transitions: u64,
    /// `(tick, available)` at each transition, initial state included.
    pub availability_flips: Vec<(u64, bool)>,
    pub last_available_tick: Option<u64>,
    /// `(completion tick, cumulative completions)`.
    pub completion_curve: Vec<(u64, u64)>,
    /// Publisher online intervals `(start, end)` in ticks.
    pub publisher_intervals: Vec<(u64, u64)>,
    /// kB accepted by receivers over the whole run.
    pub bytes_moved: f64,
    /// Wire frames processed by peers.
    pub messages: u64,
    /// Announces served by the tracker.
    pub announces: u64,
    /// Deterministic counter snapshot, keyed by `net.*` name — the same
    /// values land in the process registry when telemetry is on, but
    /// tests read them here to stay independent of global state.
    pub counters: BTreeMap<String, u64>,
    /// Tick-windowed counter deltas (the `"net"` time series), recorded
    /// coordinator-side between rounds in id order — identical across
    /// host modes by construction, and carried here so tests can
    /// compare series without the global registry. Empty while
    /// telemetry is off.
    #[serde(default)]
    pub timeseries: Vec<swarm_obs::Window>,
}

/// Window width of the live engine's time series, in virtual ticks.
/// Scenarios are a few hundred ticks, so 16-tick windows give the
/// analyzer enough resolution to see availability dips.
pub const NET_TS_WINDOW: u64 = 16;

/// Per-run window recorder plus the previous cumulative totals (the
/// aggregator tracks run totals; the series wants per-tick deltas).
///
/// The hot `observe` path only does integer math on the `acc_*`
/// fields; the recorder's string-keyed maps are touched once per
/// window boundary (and once at finish), not once per tick.
struct NetTs {
    rec: swarm_obs::Recorder,
    prev_arrivals: u64,
    prev_completions: u64,
    prev_transitions: u64,
    prev_bytes: u64,
    /// Tick of the last `observe` folded into the accumulators; names
    /// the window the pending deltas belong to.
    acc_tick: u64,
    acc_ticks: u64,
    acc_available: u64,
    acc_arrivals: u64,
    acc_completions: u64,
    acc_transitions: u64,
    acc_bytes: u64,
}

impl NetTs {
    fn new() -> NetTs {
        NetTs {
            rec: swarm_obs::Recorder::new(NET_TS_WINDOW),
            prev_arrivals: 0,
            prev_completions: 0,
            prev_transitions: 0,
            prev_bytes: 0,
            acc_tick: 0,
            acc_ticks: 0,
            acc_available: 0,
            acc_arrivals: 0,
            acc_completions: 0,
            acc_transitions: 0,
            acc_bytes: 0,
        }
    }

    /// Fold the pending per-tick deltas into the recorder. Flushing is
    /// additive, so flushing more often than the (possibly downsampled)
    /// slot width is always correct — the boundary check in `observe`
    /// uses the base window width for exactly that reason.
    fn flush(&mut self) {
        if self.acc_ticks == 0 {
            return;
        }
        self.rec.add_batch(
            self.acc_tick,
            &[
                ("ticks", self.acc_ticks),
                ("available_ticks", self.acc_available),
                ("arrivals", self.acc_arrivals),
                ("completions", self.acc_completions),
                ("transitions", self.acc_transitions),
                ("bytes_moved", self.acc_bytes),
            ],
        );
        self.acc_ticks = 0;
        self.acc_available = 0;
        self.acc_arrivals = 0;
        self.acc_completions = 0;
        self.acc_transitions = 0;
        self.acc_bytes = 0;
    }
}

/// SplitMix64 expansion, identical to swarm-catalog's stream keying.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The private ChaCha8 stream of endpoint `id` under `seed`. Keyed the
/// way swarm-catalog keys per-swarm streams, so per-endpoint randomness
/// is independent of how many endpoints exist and of host mode.
pub fn peer_stream(seed: u64, id: u64) -> ChaCha8Rng {
    use rand::SeedableRng;
    let mut state = seed ^ id.wrapping_mul(0xA076_1D64_78BD_642F);
    let mut key = [0u8; 32];
    for chunk in key.chunks_exact_mut(8) {
        chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
    }
    ChaCha8Rng::from_seed(key)
}

/// Is the publisher scheduled online at `tick`? Mirrors the sim's
/// square-wave semantics for `Periodic` (on-phase first when
/// `initially_on`).
pub fn publisher_online_at(publisher: &BtPublisher, tick: u64) -> bool {
    match publisher {
        BtPublisher::AlwaysOn => true,
        BtPublisher::Periodic {
            on_ticks,
            off_ticks,
            initially_on,
        } => {
            let phase = tick % (on_ticks + off_ticks);
            if *initially_on {
                phase < *on_ticks
            } else {
                phase >= *off_ticks
            }
        }
        _ => unreachable!("live mode requires a deterministic publisher schedule"),
    }
}

/// One hub endpoint: the tracker or a peer.
enum Endpoint {
    // The RNG is boxed: `ChaCha8Rng` carries a 4-block keystream buffer,
    // which would otherwise dwarf the `Peer` variant.
    Tracker {
        core: TrackerCore,
        rng: Box<ChaCha8Rng>,
    },
    Peer(Box<PeerCore>),
}

/// Drain, decode, step, encode, send — one endpoint's whole round.
fn step_endpoint(ep: &mut Endpoint, id: usize, tick: u64, hub: &LoopbackHub) {
    let inbox = hub.take_inbox(id);
    let mut msgs = Vec::with_capacity(inbox.len());
    for env in inbox {
        match wire::decode(&env.frame) {
            Ok((msg, _)) => msgs.push((env.from, msg)),
            // In-process frames are always well-formed; a decode error
            // here is a codec bug, so surface it loudly in debug builds.
            Err(e) => debug_assert!(false, "loopback frame failed to decode: {e}"),
        }
    }
    let mut out = Vec::new();
    match ep {
        Endpoint::Tracker { core, rng } => {
            for (from, msg) in &msgs {
                core.handle(*from, msg, &mut **rng, &mut out);
            }
        }
        Endpoint::Peer(core) => core.step(tick, msgs, &mut out),
    }
    for (to, msg) in out {
        hub.send(id, to, wire::encode(&msg));
    }
}

/// Check that `cfg` describes a scenario live mode can replay exactly:
/// scripted arrivals (no Poisson draws), a deterministic publisher
/// schedule, no linger, no drain.
fn validate_live(cfg: &BtConfig) -> &[(u64, f64)] {
    cfg.validate();
    assert!(
        matches!(
            cfg.publisher,
            BtPublisher::AlwaysOn | BtPublisher::Periodic { .. }
        ),
        "live mode needs a schedule-driven publisher (AlwaysOn or Periodic)"
    );
    assert!(cfg.linger_mean.is_none(), "live mode is linger-free");
    assert_eq!(cfg.drain_ticks, 0, "live mode runs without a drain window");
    cfg.scripted_arrivals
        .as_deref()
        .expect("live mode needs scripted arrivals")
}

/// Run the scripted scenario in `cfg` as a live networked swarm.
pub fn run_live(cfg: &BtConfig, mode: HostMode) -> NetResult {
    let script = validate_live(cfg);
    let run_ord = next_net_run_ordinal();
    let num_pieces = cfg.num_pieces();
    let params = PeerParams {
        num_pieces,
        piece_size: cfg.piece_size,
        unchoke_slots: cfg.unchoke_slots,
        optimistic_slots: cfg.optimistic_slots,
        rechoke_interval: cfg.rechoke_interval,
        pex_interval: cfg.pex_interval,
        max_neighbors: cfg.max_neighbors,
        run: run_ord,
    };

    // Endpoint layout: 0 tracker, 1 publisher, 2.. one leecher per
    // scripted arrival.
    let n = 2 + script.len();
    let mut endpoints: Vec<Arc<Mutex<Endpoint>>> = Vec::with_capacity(n);
    endpoints.push(Arc::new(Mutex::new(Endpoint::Tracker {
        core: TrackerCore::new(cfg.tracker_response),
        rng: Box::new(peer_stream(cfg.seed, TRACKER as u64)),
    })));
    endpoints.push(Arc::new(Mutex::new(Endpoint::Peer(Box::new(
        PeerCore::publisher(
            PUBLISHER,
            cfg.publisher_capacity,
            params,
            peer_stream(cfg.seed, PUBLISHER as u64),
        ),
    )))));
    for (i, &(arrive, upload)) in script.iter().enumerate() {
        let id = 2 + i;
        endpoints.push(Arc::new(Mutex::new(Endpoint::Peer(Box::new(
            PeerCore::leecher(
                id,
                arrive,
                upload,
                cfg.download_cap,
                params,
                peer_stream(cfg.seed, id as u64),
            ),
        )))));
    }
    let hub = Arc::new(LoopbackHub::new(n));

    if swarm_obs::enabled() {
        let publisher_kind = match cfg.publisher {
            BtPublisher::AlwaysOn => "always_on",
            _ => "periodic",
        };
        swarm_obs::emit(
            "net.run.start",
            &[
                ("run", swarm_obs::val(run_ord)),
                ("k", swarm_obs::val(cfg.num_files as u64)),
                ("file_size", swarm_obs::val(cfg.file_size)),
                ("pieces", swarm_obs::val(num_pieces as u64)),
                ("horizon", swarm_obs::val(cfg.horizon)),
                ("seed", swarm_obs::val(cfg.seed)),
                ("publisher", swarm_obs::val(publisher_kind)),
                ("peers", swarm_obs::val(script.len() as u64)),
                (
                    "mode",
                    swarm_obs::val(match mode {
                        HostMode::SingleThread => "single_thread",
                        HostMode::ThreadPerPeer => "thread_per_peer",
                    }),
                ),
            ],
        );
    }

    let mut agg = Aggregator::new(cfg, run_ord);
    match mode {
        HostMode::SingleThread => {
            for tick in 0..cfg.horizon {
                let t0 = std::time::Instant::now();
                set_publisher(&endpoints[PUBLISHER], cfg, tick);
                for (id, ep) in endpoints.iter().enumerate() {
                    step_endpoint(&mut ep.lock().expect("endpoint poisoned"), id, tick, &hub);
                }
                hub.deliver_round();
                agg.observe(tick, &endpoints);
                if swarm_obs::enabled() {
                    swarm_obs::histogram("stats.net.tick_ns").record_duration(t0.elapsed());
                }
            }
        }
        HostMode::ThreadPerPeer => {
            let clock = Arc::new(VirtualClock::new(n));
            let mut workers = Vec::with_capacity(n);
            for (id, ep) in endpoints.iter().enumerate() {
                let ep = Arc::clone(ep);
                let hub = Arc::clone(&hub);
                let clock = Arc::clone(&clock);
                workers.push(std::thread::spawn(move || {
                    while let Some(tick) = clock.worker_begin() {
                        step_endpoint(&mut ep.lock().expect("endpoint poisoned"), id, tick, &hub);
                        clock.worker_end();
                    }
                }));
            }
            for tick in 0..cfg.horizon {
                let t0 = std::time::Instant::now();
                set_publisher(&endpoints[PUBLISHER], cfg, tick);
                clock.begin_round(tick);
                clock.end_round();
                hub.deliver_round();
                agg.observe(tick, &endpoints);
                if swarm_obs::enabled() {
                    swarm_obs::histogram("stats.net.tick_ns").record_duration(t0.elapsed());
                }
            }
            clock.shutdown();
            for w in workers {
                w.join().expect("endpoint worker panicked");
            }
        }
    }
    agg.finish(&endpoints)
}

fn set_publisher(ep: &Arc<Mutex<Endpoint>>, cfg: &BtConfig, tick: u64) {
    let mut guard = ep.lock().expect("publisher poisoned");
    let Endpoint::Peer(core) = &mut *guard else {
        unreachable!("endpoint 1 is the publisher")
    };
    core.set_online(publisher_online_at(&cfg.publisher, tick));
}

/// Coordinator-side aggregation: the live twin of the sim's
/// `availability_check` + completion accounting. Runs strictly between
/// rounds and iterates endpoints in id order, so it is identical across
/// host modes by construction.
struct Aggregator {
    horizon: u64,
    warmup: u64,
    num_pieces: usize,
    run_ord: u64,
    available_ticks: u64,
    last_available: Option<bool>,
    transitions: u64,
    flips: Vec<(u64, bool)>,
    last_available_tick: Option<u64>,
    arrivals: u64,
    arrival_seen: Vec<bool>,
    completion_seen: Vec<bool>,
    completions: u64,
    completion_curve: Vec<(u64, u64)>,
    publisher_was_on: bool,
    publisher_on_since: u64,
    publisher_intervals: Vec<(u64, u64)>,
    /// `"net"` series recorder; `None` while telemetry is off.
    ts: Option<NetTs>,
}

impl Aggregator {
    fn new(cfg: &BtConfig, run_ord: u64) -> Self {
        Aggregator {
            horizon: cfg.horizon,
            warmup: cfg.warmup,
            num_pieces: cfg.num_pieces(),
            run_ord,
            available_ticks: 0,
            last_available: None,
            transitions: 0,
            flips: Vec::new(),
            last_available_tick: None,
            arrivals: 0,
            arrival_seen: Vec::new(),
            completion_seen: Vec::new(),
            completions: 0,
            completion_curve: Vec::new(),
            publisher_was_on: false,
            publisher_on_since: 0,
            publisher_intervals: Vec::new(),
            ts: swarm_obs::series_active().then(NetTs::new),
        }
    }

    fn observe(&mut self, tick: u64, endpoints: &[Arc<Mutex<Endpoint>>]) {
        let leechers = endpoints.len() - 2;
        if self.arrival_seen.is_empty() {
            self.arrival_seen = vec![false; leechers];
            self.completion_seen = vec![false; leechers];
        }
        let mut union = Bitfield::new(self.num_pieces);
        // Cumulative kB received so far (publisher included, matching
        // `finish`'s sum); summed in id order so the per-window deltas
        // below are host-mode-invariant floats.
        let mut cum_bytes = 0.0f64;
        let pub_online = {
            let guard = endpoints[PUBLISHER].lock().expect("publisher poisoned");
            let Endpoint::Peer(core) = &*guard else {
                unreachable!()
            };
            cum_bytes += core.bytes_received;
            core.online
        };
        if pub_online && !self.publisher_was_on {
            self.publisher_on_since = tick;
        } else if !pub_online && self.publisher_was_on {
            self.publisher_intervals
                .push((self.publisher_on_since, tick));
        }
        self.publisher_was_on = pub_online;
        let mut newly_done: Vec<u64> = Vec::new();
        for (i, ep) in endpoints.iter().enumerate().skip(2) {
            let guard = ep.lock().expect("endpoint poisoned");
            let Endpoint::Peer(core) = &*guard else {
                unreachable!()
            };
            let slot = i - 2;
            cum_bytes += core.bytes_received;
            if core.online {
                union.union_with(&core.bitfield);
            }
            if !self.arrival_seen[slot] && (core.online || core.departed) {
                self.arrival_seen[slot] = true;
                if core.arrived >= self.warmup {
                    self.arrivals += 1;
                }
            }
            if !self.completion_seen[slot] {
                if let Some(done) = core.completed {
                    self.completion_seen[slot] = true;
                    self.completions += 1;
                    newly_done.push(done);
                }
            }
        }
        for done in newly_done {
            let total = self.completion_curve.last().map_or(0, |&(_, n)| n) + 1;
            self.completion_curve.push((done, total));
        }
        let available = pub_online || union.is_complete();
        if self.last_available != Some(available) {
            if self.last_available.is_some() {
                self.transitions += 1;
            }
            self.last_available = Some(available);
            self.flips.push((tick, available));
            if swarm_obs::enabled() {
                swarm_obs::emit(
                    "net.availability",
                    &[
                        ("run", swarm_obs::val(self.run_ord)),
                        ("tick", swarm_obs::val(tick)),
                        ("available", swarm_obs::val(available)),
                        ("covered", swarm_obs::val(union.count() as u64)),
                    ],
                );
            }
        }
        if available {
            self.available_ticks += 1;
            self.last_available_tick = Some(tick);
        }
        // Windowed time series: per-tick deltas of the run totals this
        // function maintains, all computed coordinator-side in id order
        // — the host-mode invariance the loopback test enforces.
        if let Some(ts) = &mut self.ts {
            if ts.acc_ticks > 0 && tick / NET_TS_WINDOW != ts.acc_tick / NET_TS_WINDOW {
                ts.flush();
            }
            ts.acc_tick = tick;
            ts.acc_ticks += 1;
            ts.acc_available += u64::from(available);
            ts.acc_arrivals += self.arrivals - ts.prev_arrivals;
            ts.acc_completions += self.completions - ts.prev_completions;
            ts.acc_transitions += self.transitions - ts.prev_transitions;
            // Rounded-cumulative deltas telescope: the window sums
            // reconcile exactly with `net.bytes_moved` at finish.
            let rounded = cum_bytes.round() as u64;
            ts.acc_bytes += rounded.saturating_sub(ts.prev_bytes);
            ts.prev_arrivals = self.arrivals;
            ts.prev_completions = self.completions;
            ts.prev_transitions = self.transitions;
            ts.prev_bytes = rounded;
        }
        if swarm_obs::enabled() && tick.is_multiple_of(64) {
            swarm_obs::emit(
                "net.tick",
                &[
                    ("run", swarm_obs::val(self.run_ord)),
                    ("tick", swarm_obs::val(tick)),
                    ("covered", swarm_obs::val(union.count() as u64)),
                    ("completions", swarm_obs::val(self.completions)),
                ],
            );
        }
    }

    fn finish(mut self, endpoints: &[Arc<Mutex<Endpoint>>]) -> NetResult {
        if self.publisher_was_on {
            self.publisher_intervals
                .push((self.publisher_on_since, self.horizon));
        }
        let mut bytes_moved = 0.0;
        let mut messages = 0;
        let mut rechokes = 0;
        for ep in endpoints.iter().skip(1) {
            let guard = ep.lock().expect("endpoint poisoned");
            let Endpoint::Peer(core) = &*guard else {
                unreachable!()
            };
            bytes_moved += core.bytes_received;
            messages += core.messages_handled;
            rechokes += core.rechokes;
        }
        let announces = {
            let guard = endpoints[TRACKER].lock().expect("tracker poisoned");
            let Endpoint::Tracker { core, .. } = &*guard else {
                unreachable!()
            };
            core.announces
        };
        let timeseries = match self.ts.take() {
            Some(mut ts) => {
                ts.flush();
                let windows = ts.rec.windows();
                swarm_obs::merge_series_owned("net", ts.rec);
                windows
            }
            None => Vec::new(),
        };
        let mut counters = BTreeMap::new();
        counters.insert("net.ticks".to_string(), self.horizon);
        counters.insert("net.arrivals".to_string(), self.arrivals);
        counters.insert("net.completions".to_string(), self.completions);
        counters.insert("net.availability.transitions".to_string(), self.transitions);
        counters.insert("net.bytes_moved".to_string(), bytes_moved.round() as u64);
        counters.insert("net.messages".to_string(), messages);
        counters.insert("net.rechoke.count".to_string(), rechokes);
        counters.insert("net.tracker.announces".to_string(), announces);
        if swarm_obs::enabled() {
            for (name, v) in &counters {
                swarm_obs::counter(name).add(*v);
            }
            swarm_obs::emit(
                "net.run.end",
                &[
                    ("run", swarm_obs::val(self.run_ord)),
                    (
                        "availability",
                        swarm_obs::val(self.available_ticks as f64 / self.horizon as f64),
                    ),
                    ("completions", swarm_obs::val(self.completions)),
                    (
                        "last_available_tick",
                        swarm_obs::val(self.last_available_tick.unwrap_or(0)),
                    ),
                ],
            );
        }
        NetResult {
            ticks: self.horizon,
            arrivals: self.arrivals,
            completions: self.completions,
            availability: self.available_ticks as f64 / self.horizon as f64,
            availability_transitions: self.transitions,
            availability_flips: self.flips,
            last_available_tick: self.last_available_tick,
            completion_curve: self.completion_curve,
            publisher_intervals: self.publisher_intervals,
            bytes_moved,
            messages,
            announces,
            counters,
            timeseries,
        }
    }
}
