//! Live networked swarm mode.
//!
//! `swarm-net` runs the repo's swarm protocol as *actual endpoints
//! exchanging encoded frames*, instead of nodes inside one simulator
//! loop. Each participant — tracker, publisher, leechers — is a state
//! machine speaking a length-prefixed wire format (handshake, bitfield,
//! have, interested/choke, request/piece/cancel, tracker announce and
//! scrape, PEX) over a pluggable transport:
//!
//! * **deterministic loopback** — in-process channels, barrier-paced
//!   virtual time, `(sender, seq)`-ordered delivery, per-endpoint
//!   ChaCha8 streams. Single-threaded and thread-per-peer hosts are
//!   bit-identical, so live runs are reproducible and diffable.
//! * **real TCP** — the same cores over `std::net` sockets and a
//!   wall-clock ticker, for smoke-testing the stack end to end.
//!
//! Piece selection and rechoking are the *same policy functions* the
//! `swarm-bt` simulator calls ([`swarm_bt::policy`]), which is what
//! makes the sim-vs-live comparison meaningful: the two engines share
//! one decision brain and differ only in how bytes and time move. The
//! canonical scripted scenarios in [`scenarios`] are constructed so the
//! deterministic counters (`net.ticks`/`net.arrivals`/
//! `net.completions`/`net.availability.transitions`) match the sim's
//! `bt.*` twins exactly; `swarm-trace repro diff --sim-vs-live`
//! enforces that equivalence in CI.
//!
//! No async runtime is involved: threads, channels and barriers only,
//! in keeping with the workspace's vendored-dependency rule.

pub mod clock;
pub mod http;
pub mod peer;
pub mod pex;
pub mod run;
pub mod scenarios;
pub mod tcp;
pub mod tracker;
pub mod transport;
pub mod wire;

pub use http::{http_get, render_exposition, serve_metrics, watch_main};
pub use peer::{PeerCore, PeerParams, MIN_NEIGHBORS, PUBLISHER, REQUEST_TIMEOUT, TRACKER};
pub use run::{peer_stream, publisher_online_at, run_live, HostMode, NetResult, NET_TS_WINDOW};
pub use tcp::{
    run_tcp_smoke, run_tcp_smoke_with, TcpSmokeOpts, TcpSmokeReport, DEFAULT_HEALTH_INTERVAL,
    DEFAULT_STALL_TICKS,
};
pub use tracker::TrackerCore;
pub use transport::{Envelope, LoopbackEndpoint, LoopbackHub, Transport};
pub use wire::{decode, drain_frames, encode, Message, WireError};
