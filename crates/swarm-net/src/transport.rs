//! Pluggable message transports.
//!
//! [`Transport`] is the seam between protocol logic and byte movement:
//! endpoints hand encoded frames to `send` and drain delivered frames
//! with `take_inbox`. Two implementations exist — the deterministic
//! in-process [`LoopbackHub`] below, and the real-socket TCP host in
//! [`crate::tcp`] (which speaks to cores directly rather than through a
//! hub object, but over the identical wire frames).
//!
//! ## Determinism of the loopback hub
//!
//! The hub double-buffers: `send` drops an envelope into the *pending*
//! lane (an `mpsc` channel per receiver — threads send without sharing
//! locks), and nothing becomes readable until the coordinator calls
//! [`LoopbackHub::deliver_round`] at the tick barrier. Delivery drains
//! each pending lane and sorts by `(sender, per-sender sequence)` before
//! appending to the receiver's inbox. Within one round every sender's
//! own frames keep their send order (the sequence), and frames from
//! different senders are ordered by sender id — never by thread arrival
//! — so the delivered stream is a pure function of what was sent, not of
//! how the OS scheduled the sending threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;

/// One framed message in flight.
#[derive(Debug)]
pub struct Envelope {
    pub from: usize,
    /// Per-sender send ordinal — the deterministic tie-break for frames
    /// from the same sender in the same round.
    pub seq: u64,
    pub frame: Vec<u8>,
}

/// A frame sink/source pair, as seen by one endpoint.
pub trait Transport {
    /// Queue `frame` for `to`. Delivery semantics are transport-defined
    /// (next virtual round for loopback, socket write for TCP).
    fn send(&self, to: usize, frame: Vec<u8>);
    /// Drain every frame delivered since the last call, in the
    /// transport's delivery order.
    fn take_inbox(&self) -> Vec<Envelope>;
    /// This endpoint's id.
    fn id(&self) -> usize;
}

struct Lane {
    /// Pending sends targeting this endpoint (drained at the barrier).
    tx: Sender<Envelope>,
    rx: Mutex<Receiver<Envelope>>,
    /// Delivered, readable frames.
    inbox: Mutex<Vec<Envelope>>,
}

/// Deterministic in-process transport for `n` endpoints.
pub struct LoopbackHub {
    lanes: Vec<Lane>,
    seq: Vec<AtomicU64>,
}

// Sender<T> is !Sync, but every use here is behind &self with one clone
// taken per send call; we instead guard by cloning under the hood:
// mpsc Senders are Send+Clone, and each `send` clones from the stored
// prototype. To keep LoopbackHub Sync we wrap the prototype in a Mutex.
impl LoopbackHub {
    pub fn new(n: usize) -> Self {
        let mut lanes = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            lanes.push(Lane {
                tx,
                rx: Mutex::new(rx),
                inbox: Mutex::new(Vec::new()),
            });
        }
        LoopbackHub {
            lanes,
            seq: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub fn endpoints(&self) -> usize {
        self.lanes.len()
    }

    /// Queue a frame from `from` to `to`; readable after the next
    /// [`deliver_round`](LoopbackHub::deliver_round). Frames to unknown
    /// endpoints are dropped (a closed socket, in TCP terms).
    pub fn send(&self, from: usize, to: usize, frame: Vec<u8>) {
        let Some(lane) = self.lanes.get(to) else {
            return;
        };
        let seq = self.seq[from].fetch_add(1, Ordering::Relaxed);
        // Cloning the sender per call keeps the shared hub Sync without
        // a lock on the hot path; mpsc channels are MPSC by design.
        let _ = lane.tx.clone().send(Envelope { from, seq, frame });
    }

    /// Coordinator only, between barriers: move every pending frame into
    /// its receiver's inbox in `(sender, seq)` order.
    pub fn deliver_round(&self) {
        for lane in &self.lanes {
            let rx = lane.rx.lock().expect("pending lane poisoned");
            let mut batch: Vec<Envelope> = rx.try_iter().collect();
            drop(rx);
            if batch.is_empty() {
                continue;
            }
            batch.sort_by_key(|e| (e.from, e.seq));
            lane.inbox.lock().expect("inbox poisoned").extend(batch);
        }
    }

    /// Drain endpoint `id`'s delivered frames.
    pub fn take_inbox(&self, id: usize) -> Vec<Envelope> {
        std::mem::take(&mut *self.lanes[id].inbox.lock().expect("inbox poisoned"))
    }

    /// Discard endpoint `id`'s delivered frames (an offline endpoint's
    /// connections are down; frames addressed to it vanish).
    pub fn drop_inbox(&self, id: usize) {
        self.lanes[id].inbox.lock().expect("inbox poisoned").clear();
    }
}

/// Endpoint-scoped view of a shared hub, for code written against the
/// [`Transport`] trait.
pub struct LoopbackEndpoint {
    pub hub: std::sync::Arc<LoopbackHub>,
    pub id: usize,
}

impl Transport for LoopbackEndpoint {
    fn send(&self, to: usize, frame: Vec<u8>) {
        self.hub.send(self.id, to, frame);
    }

    fn take_inbox(&self) -> Vec<Envelope> {
        self.hub.take_inbox(self.id)
    }

    fn id(&self) -> usize {
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn nothing_is_readable_before_delivery() {
        let hub = LoopbackHub::new(2);
        hub.send(0, 1, vec![1]);
        assert!(hub.take_inbox(1).is_empty());
        hub.deliver_round();
        let got = hub.take_inbox(1);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].from, 0);
        assert_eq!(got[0].frame, vec![1]);
    }

    #[test]
    fn delivery_order_is_sender_then_seq_not_thread_arrival() {
        // 4 sender threads race 25 frames each at endpoint 0; delivery
        // order must be exactly (sender asc, seq asc) regardless of how
        // the race interleaved.
        let hub = Arc::new(LoopbackHub::new(5));
        let mut handles = Vec::new();
        for sender in 1..5usize {
            let hub = Arc::clone(&hub);
            handles.push(std::thread::spawn(move || {
                for k in 0..25u8 {
                    hub.send(sender, 0, vec![sender as u8, k]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        hub.deliver_round();
        let got = hub.take_inbox(0);
        assert_eq!(got.len(), 100);
        let order: Vec<(usize, u64)> = got.iter().map(|e| (e.from, e.seq)).collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted, "delivery must ignore thread arrival order");
        // And each sender's payloads arrive in its own send order.
        for sender in 1..5usize {
            let payloads: Vec<u8> = got
                .iter()
                .filter(|e| e.from == sender)
                .map(|e| e.frame[1])
                .collect();
            let expect: Vec<u8> = (0..25).collect();
            assert_eq!(payloads, expect);
        }
    }

    #[test]
    fn frames_to_unknown_endpoints_are_dropped() {
        let hub = LoopbackHub::new(1);
        hub.send(0, 9, vec![1, 2, 3]); // no such endpoint; must not panic
        hub.deliver_round();
        assert!(hub.take_inbox(0).is_empty());
    }

    #[test]
    fn drop_inbox_models_an_offline_endpoint() {
        let hub = LoopbackHub::new(2);
        hub.send(0, 1, vec![7]);
        hub.deliver_round();
        hub.drop_inbox(1);
        assert!(hub.take_inbox(1).is_empty());
    }
}
