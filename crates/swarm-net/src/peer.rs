//! Per-endpoint protocol state machine.
//!
//! [`PeerCore`] is the live-mode counterpart of one node inside the
//! `swarm-bt` engine: it holds a bitfield, a neighbor table, and the
//! tit-for-tat/rarest-first policy state — but it communicates *only*
//! through wire [`Message`]s handed in and out by a host. The same core
//! runs under the deterministic loopback coordinator, the threaded
//! coordinator, and the TCP host; nothing in here knows which transport
//! or clock is underneath.
//!
//! Piece selection and rechoking call the pure policy functions in
//! [`swarm_bt::policy`] — the exact code the simulator runs — so sim and
//! live share one brain and differ only in how bytes move.
//!
//! ## Determinism contract
//!
//! A core's behavior is a pure function of `(its ChaCha8 stream, the
//! ordered inbox it is handed each tick)`. All iteration is over
//! `BTreeMap`/sorted ids, never hash order, and the host guarantees the
//! inbox order is `(sender id, sender sequence)` — so two hosts that
//! deliver the same frames produce bit-identical cores regardless of
//! thread scheduling.

use std::collections::{BTreeMap, BTreeSet};

use rand_chacha::ChaCha8Rng;
use swarm_bt::{policy, Bitfield};
use swarm_obs::{
    ConnEvent, ConnPhase, Counter, CounterFamily, Dir, Gauge, Histogram, ReqEvent, ReqPhase,
    XferEvent, XferPhase,
};

use crate::pex;
use crate::wire::{Message, EVENT_COMPLETED, EVENT_NONE, EVENT_STARTED, EVENT_STOPPED};

/// Endpoint id of the tracker in every swarm.
pub const TRACKER: usize = 0;
/// Endpoint id of the publisher in every swarm.
pub const PUBLISHER: usize = 1;

/// Below this many neighbors a leecher re-announces (mirrors the sim).
pub const MIN_NEIGHBORS: usize = 5;
/// Tracker re-announce cadence in ticks (mirrors the sim).
pub const REANNOUNCE_INTERVAL: u64 = 30;
/// Ticks of silence after which an outstanding request is abandoned
/// (mirrors the sim's request expiry).
pub const REQUEST_TIMEOUT: u64 = 60;

/// Knobs shared by every peer of one swarm (lifted from `BtConfig`).
#[derive(Debug, Clone, Copy)]
pub struct PeerParams {
    pub num_pieces: usize,
    /// Piece size in kB.
    pub piece_size: f64,
    pub unchoke_slots: usize,
    pub optimistic_slots: usize,
    pub rechoke_interval: u64,
    /// 0 disables PEX.
    pub pex_interval: u64,
    pub max_neighbors: usize,
    /// `net.run.*` ordinal of the hosting run, stamped onto every
    /// lifecycle event this peer emits (telemetry only — no protocol
    /// effect).
    pub run: u64,
}

/// Cached `&'static` probe handles for one core — the live-mode twin of
/// the sim engine's probe struct. `None` when recording was off at
/// construction, which keeps the uninstrumented hot path at a single
/// branch per site. Every probe is telemetry-only: nothing here reads
/// or advances the peer's ChaCha8 stream or mutates protocol state.
#[derive(Debug, Clone, Copy)]
struct NetProbes {
    run: u64,
    conn_opened: &'static Counter,
    conn_accepted: &'static Counter,
    conn_refused: &'static Counter,
    conn_closed: &'static Counter,
    snubs: &'static Counter,
    rejoins: &'static Counter,
    req_sent: &'static Counter,
    req_received: &'static Counter,
    req_cancelled: &'static Counter,
    req_choked: &'static Counter,
    pieces_served: &'static Counter,
    pieces_completed: &'static Counter,
    choke_tx: &'static Counter,
    unchoke_tx: &'static Counter,
    pex_requests: &'static Counter,
    pex_replies: &'static Counter,
    /// Request→piece latency in ticks, when attributable.
    req_latency: &'static Histogram,
    /// Per-connection accepted bytes, labelled `from->to` (data flow).
    bytes_in: &'static CounterFamily,
    /// Per-connection offered bytes, same label orientation.
    bytes_out: &'static CounterFamily,
    /// This peer's last rolled receive-window total,
    /// `net.peer.window_kb{<id>}`.
    window_kb: &'static Gauge,
}

impl NetProbes {
    fn new(id: usize, run: u64) -> Option<NetProbes> {
        if !swarm_obs::enabled() {
            return None;
        }
        Some(NetProbes {
            run,
            conn_opened: swarm_obs::counter("net.conn.opened"),
            conn_accepted: swarm_obs::counter("net.conn.accepted"),
            conn_refused: swarm_obs::counter("net.conn.refused"),
            conn_closed: swarm_obs::counter("net.conn.closed"),
            snubs: swarm_obs::counter("net.conn.snubs"),
            rejoins: swarm_obs::counter("net.conn.rejoins"),
            req_sent: swarm_obs::counter("net.req.sent"),
            req_received: swarm_obs::counter("net.req.received"),
            req_cancelled: swarm_obs::counter("net.req.cancelled"),
            req_choked: swarm_obs::counter("net.req.choked"),
            pieces_served: swarm_obs::counter("net.xfer.served"),
            pieces_completed: swarm_obs::counter("net.xfer.completed"),
            choke_tx: swarm_obs::counter("net.choke.sent"),
            unchoke_tx: swarm_obs::counter("net.unchoke.sent"),
            pex_requests: swarm_obs::counter("net.pex.requests"),
            pex_replies: swarm_obs::counter("net.pex.replies"),
            req_latency: swarm_obs::histogram("net.req.latency_ticks"),
            bytes_in: swarm_obs::counter_family("net.conn.bytes_in"),
            bytes_out: swarm_obs::counter_family("net.conn.bytes_out"),
            window_kb: swarm_obs::gauge_family("net.peer.window_kb").with_name(&id.to_string()),
        })
    }

    fn conn(&self, tick: u64, local: usize, remote: usize, phase: ConnPhase) -> ConnEvent {
        ConnEvent {
            run: self.run,
            tick,
            local: local as u64,
            remote: remote as u64,
            phase,
            dir: None,
            piece: None,
        }
    }

    fn req(&self, tick: u64, local: usize, remote: usize, piece: u32, phase: ReqPhase) -> ReqEvent {
        ReqEvent {
            run: self.run,
            tick,
            local: local as u64,
            remote: remote as u64,
            piece: piece as u64,
            phase,
            reason: None,
        }
    }
}

/// Kilobytes → whole bytes for per-connection byte counters (counters
/// are integral; sub-byte residue from fractional-kB frames rounds per
/// frame, deterministically).
fn kb_to_bytes(kb: f64) -> u64 {
    (kb * 1024.0).round() as u64
}

/// What we know about one neighbor, keyed by endpoint id in
/// [`PeerCore::neighbors`].
#[derive(Debug, Clone)]
struct Neighbor {
    bitfield: Bitfield,
    /// They told us they want something we have.
    they_interested: bool,
    /// We told them we want something they have.
    we_interested: bool,
    we_choke_them: bool,
    they_choke_us: bool,
    /// Piece they asked us for (service continues until cancelled).
    their_request: Option<u32>,
    /// Piece we asked them for, plus the last tick data arrived for it
    /// (the timeout stamp).
    our_request: Option<(u32, u64)>,
    /// kB received from them in the current rechoke window.
    recv_window: f64,
    /// Previous window — the tit-for-tat score.
    recv_prev: f64,
    /// Tick the current request was issued — unlike the timeout stamp
    /// in `our_request`, never refreshed by arriving data, so it
    /// anchors the request→piece latency. Telemetry only.
    requested_at: u64,
    /// Telemetry flag: we snubbed them on a request timeout and they
    /// have not proven liveness (sent `Unchoke`) since.
    snubbed: bool,
    /// Telemetry flag: the current service episode already emitted its
    /// `net.xfer` serve event (reset each time they place a request).
    serve_logged: bool,
    /// Lazily interned per-connection byte counters, labelled in
    /// data-flow direction (`remote->local` in, `local->remote` out).
    obs_bytes_in: Option<&'static Counter>,
    obs_bytes_out: Option<&'static Counter>,
}

impl Neighbor {
    fn new(num_pieces: usize) -> Self {
        Neighbor {
            bitfield: Bitfield::new(num_pieces),
            they_interested: false,
            we_interested: false,
            we_choke_them: true,
            they_choke_us: true,
            their_request: None,
            our_request: None,
            recv_window: 0.0,
            recv_prev: 0.0,
            requested_at: 0,
            snubbed: false,
            serve_logged: false,
            obs_bytes_in: None,
            obs_bytes_out: None,
        }
    }
}

/// One peer's complete protocol state.
pub struct PeerCore {
    pub id: usize,
    params: PeerParams,
    pub is_publisher: bool,
    pub online: bool,
    /// Set once the peer leaves for good (completion, since live mode
    /// runs linger-free scenarios).
    pub departed: bool,
    /// Tick at which a leecher joins the swarm.
    pub arrived: u64,
    /// Completion tick (the sim's `done_at = tick + 1` convention).
    pub completed: Option<u64>,
    pub bitfield: Bitfield,
    /// kB received per piece.
    progress: Vec<f64>,
    /// Upload capacity in kB per tick.
    upload_cap: f64,
    /// Download cap in kB per tick.
    download_cap: f64,
    received_this_tick: f64,
    /// Total kB accepted (the receiver-side "bytes moved" truth).
    pub bytes_received: f64,
    neighbors: BTreeMap<usize, Neighbor>,
    rng: ChaCha8Rng,
    needs_announce: bool,
    /// Frames processed (for the run report).
    pub messages_handled: u64,
    /// Rechoke rounds executed.
    pub rechokes: u64,
    /// `None` when recording was off at construction.
    probes: Option<NetProbes>,
}

impl PeerCore {
    pub fn leecher(
        id: usize,
        arrived: u64,
        upload_cap: f64,
        download_cap: f64,
        params: PeerParams,
        rng: ChaCha8Rng,
    ) -> Self {
        PeerCore {
            id,
            params,
            is_publisher: false,
            online: false,
            departed: false,
            arrived,
            completed: None,
            bitfield: Bitfield::new(params.num_pieces),
            progress: vec![0.0; params.num_pieces],
            upload_cap,
            download_cap,
            received_this_tick: 0.0,
            bytes_received: 0.0,
            neighbors: BTreeMap::new(),
            rng,
            needs_announce: false,
            messages_handled: 0,
            rechokes: 0,
            probes: NetProbes::new(id, params.run),
        }
    }

    pub fn publisher(id: usize, upload_cap: f64, params: PeerParams, rng: ChaCha8Rng) -> Self {
        PeerCore {
            id,
            params,
            is_publisher: true,
            online: false,
            departed: false,
            arrived: 0,
            completed: None,
            bitfield: Bitfield::full(params.num_pieces),
            progress: vec![params.piece_size; params.num_pieces],
            upload_cap,
            download_cap: 0.0,
            received_this_tick: 0.0,
            bytes_received: 0.0,
            neighbors: BTreeMap::new(),
            rng,
            needs_announce: false,
            messages_handled: 0,
            rechokes: 0,
            probes: NetProbes::new(id, params.run),
        }
    }

    /// Host-driven presence toggle (the publisher's on/off schedule).
    /// Going online re-announces and resets upload-side choke state so
    /// the next rechoke re-emits `Unchoke` deltas — neighbors that
    /// snubbed us while we were gone need fresh frames to revive.
    /// Going offline keeps the neighbor table (the sim's publisher also
    /// resumes with its view intact); the host stops delivering frames
    /// while offline.
    pub fn set_online(&mut self, on: bool) {
        if on && !self.online && !self.departed {
            self.online = true;
            self.needs_announce = true;
            for n in self.neighbors.values_mut() {
                n.we_choke_them = true;
                n.their_request = None;
            }
        } else if !on {
            self.online = false;
        }
    }

    pub fn neighbor_count(&self) -> usize {
        self.neighbors.len()
    }

    /// kB still missing — the announce `left` field.
    fn remaining(&self) -> f64 {
        let total = self.params.num_pieces as f64 * self.params.piece_size;
        (total - self.progress.iter().sum::<f64>()).max(0.0)
    }

    /// Run one tick: ingest `inbox` (already in delivery order), then do
    /// this tick's protocol duties. Outgoing messages are pushed onto
    /// `out` as `(destination endpoint, message)` — the host encodes and
    /// sends them.
    pub fn step(
        &mut self,
        tick: u64,
        inbox: Vec<(usize, Message)>,
        out: &mut Vec<(usize, Message)>,
    ) {
        self.received_this_tick = 0.0;
        if !self.is_publisher && !self.online && !self.departed && tick >= self.arrived {
            self.online = true;
            self.needs_announce = true;
        }
        if !self.online {
            return;
        }
        for (from, msg) in inbox {
            self.messages_handled += 1;
            self.handle(from, &msg, tick, out);
            if !self.online {
                // Completed mid-inbox; the rest of the frames are for a
                // peer that no longer exists.
                return;
            }
        }
        if self.needs_announce {
            self.needs_announce = false;
            out.push((
                TRACKER,
                Message::Announce {
                    peer: self.id as u64,
                    left: self.remaining(),
                    event: EVENT_STARTED,
                },
            ));
        }
        if !self.is_publisher
            && tick > 0
            && tick.is_multiple_of(REANNOUNCE_INTERVAL)
            && self.neighbors.len() < MIN_NEIGHBORS
        {
            out.push((
                TRACKER,
                Message::Announce {
                    peer: self.id as u64,
                    left: self.remaining(),
                    event: EVENT_NONE,
                },
            ));
        }
        if self.params.pex_interval > 0 && tick > 0 && tick.is_multiple_of(self.params.pex_interval)
        {
            let ids: Vec<usize> = self.neighbors.keys().copied().collect();
            if let Some(partner) = pex::pick_partner(&ids, &mut self.rng) {
                if let Some(pr) = self.probes {
                    pr.pex_requests.inc();
                }
                out.push((partner, Message::PexRequest));
            }
        }
        if tick.is_multiple_of(self.params.rechoke_interval) {
            self.rechoke(tick, out);
        }
        if !self.is_publisher && !self.bitfield.is_complete() {
            self.request_pieces(tick, out);
        }
        self.serve_requests(tick, out);
    }

    /// Tit-for-tat rechoke: roll the receive windows, rank interested
    /// neighbors with the shared policy code, and emit only the
    /// choke-state deltas.
    fn rechoke(&mut self, tick: u64, out: &mut Vec<(usize, Message)>) {
        self.rechokes += 1;
        if let Some(pr) = self.probes {
            // Publish the window about to be rolled: this peer's
            // aggregate receive throughput over the last rechoke
            // interval, `net.peer.window_kb{<id>}`.
            let window: f64 = self.neighbors.values().map(|n| n.recv_window).sum();
            pr.window_kb.set(window.round() as i64);
        }
        for n in self.neighbors.values_mut() {
            n.recv_prev = n.recv_window;
            n.recv_window = 0.0;
        }
        let mut interested: Vec<usize> = self
            .neighbors
            .iter()
            .filter(|(_, n)| n.they_interested)
            .map(|(&id, _)| id)
            .collect();
        let neighbors = &self.neighbors;
        let chosen = policy::rechoke_order(
            &mut interested,
            self.is_publisher,
            |id| neighbors.get(&id).map_or(0.0, |n| n.recv_prev),
            self.params.unchoke_slots,
            self.params.optimistic_slots,
            &mut self.rng,
        );
        let unchoked: BTreeSet<usize> = interested[..chosen].iter().copied().collect();
        let probes = self.probes;
        let my_id = self.id;
        for (&id, n) in self.neighbors.iter_mut() {
            let want_open = unchoked.contains(&id);
            if want_open != n.we_choke_them {
                continue;
            }
            n.we_choke_them = !want_open;
            if want_open {
                if let Some(pr) = probes {
                    pr.unchoke_tx.inc();
                    let mut ev = pr.conn(tick, my_id, id, ConnPhase::Unchoke);
                    ev.dir = Some(Dir::Tx);
                    ev.emit();
                }
                out.push((id, Message::Unchoke));
            } else {
                n.their_request = None;
                if let Some(pr) = probes {
                    pr.choke_tx.inc();
                    let mut ev = pr.conn(tick, my_id, id, ConnPhase::Choke);
                    ev.dir = Some(Dir::Tx);
                    ev.emit();
                }
                out.push((id, Message::Choke));
            }
        }
    }

    /// Issue one outstanding request per unchoking neighbor, preferring
    /// partial pieces then rarest-first over this peer's local view —
    /// the same selection the sim makes, via the same policy functions.
    fn request_pieces(&mut self, tick: u64, out: &mut Vec<(usize, Message)>) {
        // Local replication view: how many neighbors hold each piece.
        let mut counts = vec![0u32; self.params.num_pieces];
        for n in self.neighbors.values() {
            for p in n.bitfield.ones() {
                counts[p] += 1;
            }
        }
        let mut in_flight: BTreeSet<usize> = self
            .neighbors
            .values()
            .filter_map(|n| n.our_request.map(|(p, _)| p as usize))
            .collect();
        let ids: Vec<usize> = self.neighbors.keys().copied().collect();
        for id in ids {
            // Expire a stalled request so the piece can be re-sourced —
            // and snub the silent neighbor (treat it as choking us) so
            // the freed piece is requested from someone alive instead of
            // bouncing back to a dead endpoint forever. An `Unchoke`
            // from the neighbor revives it.
            if let Some((p, stamp)) = self.neighbors[&id].our_request {
                if tick.saturating_sub(stamp) >= REQUEST_TIMEOUT {
                    let n = self.neighbors.get_mut(&id).unwrap();
                    n.our_request = None;
                    n.they_choke_us = true;
                    n.snubbed = true;
                    in_flight.remove(&(p as usize));
                    if let Some(pr) = self.probes {
                        pr.snubs.inc();
                        pr.req_cancelled.inc();
                        let mut ev = pr.conn(tick, self.id, id, ConnPhase::Snub);
                        ev.piece = Some(p as u64);
                        ev.emit();
                        let mut rq = pr.req(tick, self.id, id, p, ReqPhase::Cancel);
                        rq.reason = Some("timeout".into());
                        rq.emit();
                    }
                    out.push((id, Message::Cancel { piece: p }));
                }
            }
            let n = &self.neighbors[&id];
            if !n.we_interested || n.they_choke_us || n.our_request.is_some() {
                continue;
            }
            // Want-list via the word-level AND-NOT kernel (ascending
            // piece order, identical to the old ones()+has() filter).
            let free: Vec<usize> = self
                .bitfield
                .missing_from(&n.bitfield)
                .filter(|&p| !in_flight.contains(&p))
                .collect();
            if free.is_empty() {
                continue;
            }
            let progress = &self.progress;
            let pick = match policy::most_complete_partial(&free, |p| progress[p]) {
                Some(p) => Some(p),
                None => policy::rarest_first(&free, |p| counts[p], &mut self.rng),
            };
            if let Some(p) = pick {
                in_flight.insert(p);
                let n = self.neighbors.get_mut(&id).unwrap();
                n.our_request = Some((p as u32, tick));
                n.requested_at = tick;
                if let Some(pr) = self.probes {
                    pr.req_sent.inc();
                    pr.req(tick, self.id, id, p as u32, ReqPhase::Tx).emit();
                }
                out.push((id, Message::Request { piece: p as u32 }));
            }
        }
    }

    /// Split this tick's upload capacity evenly across neighbors with an
    /// open request — the per-second capacity sharing of the sim's
    /// transfer round, expressed as `Piece` frames.
    fn serve_requests(&mut self, tick: u64, out: &mut Vec<(usize, Message)>) {
        let active: Vec<(usize, u32)> = self
            .neighbors
            .iter()
            .filter(|(_, n)| !n.we_choke_them)
            .filter_map(|(&id, n)| n.their_request.map(|p| (id, p)))
            .collect();
        if active.is_empty() || self.upload_cap <= 0.0 {
            return;
        }
        let share = self.upload_cap / active.len() as f64;
        let my_id = self.id;
        for (id, piece) in active {
            if let Some(pr) = self.probes {
                let n = self.neighbors.get_mut(&id).unwrap();
                if !n.serve_logged {
                    // First frame of a service episode: one serve event
                    // per request, however many ticks the stream takes.
                    n.serve_logged = true;
                    pr.pieces_served.inc();
                    XferEvent {
                        run: pr.run,
                        tick,
                        local: my_id as u64,
                        remote: id as u64,
                        piece: piece as u64,
                        phase: XferPhase::Serve,
                        kb: None,
                        latency_ticks: None,
                    }
                    .emit();
                }
                let c = *n
                    .obs_bytes_out
                    .get_or_insert_with(|| pr.bytes_out.with_name(&format!("{my_id}->{id}")));
                c.add(kb_to_bytes(share));
            }
            out.push((
                id,
                Message::Piece {
                    piece,
                    bytes: share,
                },
            ));
        }
    }

    /// Process one inbound message.
    fn handle(&mut self, from: usize, msg: &Message, tick: u64, out: &mut Vec<(usize, Message)>) {
        let probes = self.probes;
        let my_id = self.id;
        match msg {
            Message::Handshake { pieces, .. } => {
                if *pieces as usize != self.params.num_pieces {
                    if let Some(pr) = probes {
                        pr.conn_refused.inc();
                        pr.conn(tick, my_id, from, ConnPhase::Refused).emit();
                    }
                    return;
                }
                if self.neighbors.contains_key(&from) {
                    // Reply leg of a handshake we initiated (or a
                    // simultaneous open): the connection is now paired
                    // on this side, no frames owed.
                    if let Some(pr) = probes {
                        pr.conn(tick, my_id, from, ConnPhase::Handshake).emit();
                    }
                } else if self.neighbors.len() < self.params.max_neighbors {
                    self.neighbors
                        .insert(from, Neighbor::new(self.params.num_pieces));
                    if let Some(pr) = probes {
                        pr.conn_accepted.inc();
                        pr.conn(tick, my_id, from, ConnPhase::Handshake).emit();
                    }
                    out.push((
                        from,
                        Message::Handshake {
                            peer: self.id as u64,
                            pieces: *pieces,
                        },
                    ));
                    out.push((from, Message::Bitfield(self.bitfield.clone())));
                } else if let Some(pr) = probes {
                    // Neighbor table full.
                    pr.conn_refused.inc();
                    pr.conn(tick, my_id, from, ConnPhase::Refused).emit();
                }
            }
            Message::Bitfield(bf) => {
                if bf.len() != self.params.num_pieces || !self.neighbors.contains_key(&from) {
                    return;
                }
                self.neighbors.get_mut(&from).unwrap().bitfield = bf.clone();
                self.update_interest(from, out);
            }
            Message::Have { piece } => {
                let Some(n) = self.neighbors.get_mut(&from) else {
                    return;
                };
                if (*piece as usize) < self.params.num_pieces {
                    n.bitfield.set(*piece as usize);
                    self.update_interest(from, out);
                }
            }
            Message::Interested => {
                if let Some(n) = self.neighbors.get_mut(&from) {
                    n.they_interested = true;
                }
            }
            Message::NotInterested => {
                if let Some(n) = self.neighbors.get_mut(&from) {
                    n.they_interested = false;
                    n.their_request = None;
                }
            }
            Message::Choke => {
                if let Some(n) = self.neighbors.get_mut(&from) {
                    if let Some(pr) = probes {
                        let mut ev = pr.conn(tick, my_id, from, ConnPhase::Choke);
                        ev.dir = Some(Dir::Rx);
                        ev.emit();
                        if let Some((rp, _)) = n.our_request {
                            // Our outstanding request dies with the
                            // choke — log the resolution before the
                            // state is cleared below.
                            pr.req_choked.inc();
                            pr.req(tick, my_id, from, rp, ReqPhase::Choked).emit();
                        }
                    }
                    n.they_choke_us = true;
                    n.our_request = None;
                }
            }
            Message::Unchoke => {
                if let Some(n) = self.neighbors.get_mut(&from) {
                    n.they_choke_us = false;
                    if let Some(pr) = probes {
                        let mut ev = pr.conn(tick, my_id, from, ConnPhase::Unchoke);
                        ev.dir = Some(Dir::Rx);
                        ev.emit();
                    }
                    if n.snubbed {
                        // Liveness proven: the snub episode ends here.
                        n.snubbed = false;
                        if let Some(pr) = probes {
                            pr.rejoins.inc();
                            pr.conn(tick, my_id, from, ConnPhase::Rejoin).emit();
                        }
                    }
                }
            }
            Message::Request { piece } => {
                if !self.bitfield.has(*piece as usize) {
                    return;
                }
                if let Some(n) = self.neighbors.get_mut(&from) {
                    n.their_request = Some(*piece);
                    n.serve_logged = false;
                    if let Some(pr) = probes {
                        pr.req_received.inc();
                        pr.req(tick, my_id, from, *piece, ReqPhase::Rx).emit();
                    }
                }
            }
            Message::Piece { piece, bytes } => {
                self.receive_piece(from, *piece, *bytes, tick, out);
            }
            Message::Cancel { piece } => {
                if let Some(n) = self.neighbors.get_mut(&from) {
                    if n.their_request == Some(*piece) {
                        n.their_request = None;
                    }
                }
            }
            Message::AnnounceResponse { peers } | Message::PexPeers { peers } => {
                for &p in peers {
                    self.connect(p as usize, tick, out);
                }
            }
            Message::PexRequest => {
                let ids: Vec<usize> = self.neighbors.keys().copied().collect();
                let peers = pex::share_list(&ids, from, &mut self.rng);
                if let Some(pr) = probes {
                    pr.pex_replies.inc();
                }
                out.push((from, Message::PexPeers { peers }));
            }
            // Tracker-bound traffic and scrape responses are not for
            // peers; ignore rather than error (hostile tolerance).
            Message::Announce { .. } | Message::Scrape | Message::ScrapeResponse { .. } => {}
        }
    }

    /// Open a connection to `pid` if it is new and there is table room.
    fn connect(&mut self, pid: usize, tick: u64, out: &mut Vec<(usize, Message)>) {
        if pid == self.id
            || pid == TRACKER
            || self.neighbors.contains_key(&pid)
            || self.neighbors.len() >= self.params.max_neighbors
        {
            return;
        }
        self.neighbors
            .insert(pid, Neighbor::new(self.params.num_pieces));
        if let Some(pr) = self.probes {
            pr.conn_opened.inc();
            pr.conn(tick, self.id, pid, ConnPhase::Open).emit();
        }
        out.push((
            pid,
            Message::Handshake {
                peer: self.id as u64,
                pieces: self.params.num_pieces as u32,
            },
        ));
        out.push((pid, Message::Bitfield(self.bitfield.clone())));
    }

    /// Recompute our interest in `from` and emit the delta if it flipped.
    fn update_interest(&mut self, from: usize, out: &mut Vec<(usize, Message)>) {
        let Some(n) = self.neighbors.get_mut(&from) else {
            return;
        };
        let now = !self.is_publisher
            && !self.bitfield.is_complete()
            && self.bitfield.interested_in(&n.bitfield);
        if now != n.we_interested {
            n.we_interested = now;
            out.push((
                from,
                if now {
                    Message::Interested
                } else {
                    Message::NotInterested
                },
            ));
        }
    }

    /// Account an inbound data frame against the download cap and piece
    /// remainder; completing a piece broadcasts `Have`, cancels rival
    /// requests, and may complete (and depart) the peer.
    fn receive_piece(
        &mut self,
        from: usize,
        piece: u32,
        bytes: f64,
        tick: u64,
        out: &mut Vec<(usize, Message)>,
    ) {
        let p = piece as usize;
        if self.is_publisher || p >= self.params.num_pieces || self.bitfield.has(p) {
            return;
        }
        let budget = (self.download_cap - self.received_this_tick).max(0.0);
        let room = self.params.piece_size - self.progress[p];
        let take = bytes.min(budget).min(room);
        if take <= 0.0 {
            return;
        }
        let probes = self.probes;
        let my_id = self.id;
        self.progress[p] += take;
        self.received_this_tick += take;
        self.bytes_received += take;
        if let Some(n) = self.neighbors.get_mut(&from) {
            n.recv_window += take;
            if let Some(pr) = probes {
                let c = *n
                    .obs_bytes_in
                    .get_or_insert_with(|| pr.bytes_in.with_name(&format!("{from}->{my_id}")));
                c.add(kb_to_bytes(take));
            }
            if let Some((rp, _)) = n.our_request {
                if rp == piece {
                    // Data is flowing: refresh the timeout stamp.
                    n.our_request = Some((rp, tick));
                }
            }
        }
        if self.progress[p] < self.params.piece_size - 1e-9 {
            return;
        }
        self.progress[p] = self.params.piece_size;
        self.bitfield.set(p);
        if let Some(pr) = probes {
            // Latency is attributable only when the final bytes came
            // from the neighbor we had the request open at.
            let latency = self
                .neighbors
                .get(&from)
                .filter(|n| n.our_request.is_some_and(|(rp, _)| rp == piece))
                .map(|n| tick.saturating_sub(n.requested_at));
            pr.pieces_completed.inc();
            if let Some(l) = latency {
                pr.req_latency.record(l);
            }
            XferEvent {
                run: pr.run,
                tick,
                local: my_id as u64,
                remote: from as u64,
                piece: p as u64,
                phase: XferPhase::Done,
                kb: Some(self.params.piece_size),
                latency_ticks: latency,
            }
            .emit();
        }
        let ids: Vec<usize> = self.neighbors.keys().copied().collect();
        for &id in &ids {
            let n = self.neighbors.get_mut(&id).unwrap();
            if let Some((rp, _)) = n.our_request {
                if rp == piece {
                    // Cancel everyone, the server of the final bytes
                    // included — otherwise it keeps streaming a piece we
                    // already hold until its next rechoke.
                    n.our_request = None;
                    if let Some(pr) = probes {
                        pr.req_cancelled.inc();
                        let mut rq = pr.req(tick, my_id, id, piece, ReqPhase::Cancel);
                        rq.reason = Some("done".into());
                        rq.emit();
                    }
                    out.push((id, Message::Cancel { piece }));
                }
            }
            out.push((id, Message::Have { piece }));
        }
        for &id in &ids {
            self.update_interest(id, out);
        }
        if self.bitfield.is_complete() {
            self.complete(tick, out);
        }
    }

    /// Completion in a linger-free swarm: tell the tracker, leave —
    /// and choke every neighbor on the way out. The parting `Choke` is
    /// the protocol-level connection close: it instantly clears any
    /// request a neighbor had pointed at us, so nobody waits out a
    /// request timeout on a peer that no longer exists.
    fn complete(&mut self, tick: u64, out: &mut Vec<(usize, Message)>) {
        self.completed = Some(tick + 1);
        let ids: Vec<usize> = self.neighbors.keys().copied().collect();
        for id in ids {
            if let Some(pr) = self.probes {
                pr.conn_closed.inc();
                let mut ev = pr.conn(tick, self.id, id, ConnPhase::Close);
                ev.dir = Some(Dir::Tx);
                ev.emit();
            }
            out.push((id, Message::Choke));
        }
        out.push((
            TRACKER,
            Message::Announce {
                peer: self.id as u64,
                left: 0.0,
                event: EVENT_COMPLETED,
            },
        ));
        out.push((
            TRACKER,
            Message::Announce {
                peer: self.id as u64,
                left: 0.0,
                event: EVENT_STOPPED,
            },
        ));
        self.departed = true;
        self.online = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn params(pieces: usize) -> PeerParams {
        PeerParams {
            num_pieces: pieces,
            piece_size: 100.0,
            unchoke_slots: 4,
            optimistic_slots: 1,
            rechoke_interval: 10,
            pex_interval: 0,
            max_neighbors: 40,
            run: 0,
        }
    }

    fn rng(id: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(id)
    }

    fn step1(
        core: &mut PeerCore,
        tick: u64,
        inbox: Vec<(usize, Message)>,
    ) -> Vec<(usize, Message)> {
        let mut out = Vec::new();
        core.step(tick, inbox, &mut out);
        out
    }

    #[test]
    fn leecher_activates_and_announces_on_arrival() {
        let mut c = PeerCore::leecher(2, 5, 50.0, 1000.0, params(4), rng(2));
        assert!(step1(&mut c, 4, vec![]).is_empty());
        assert!(!c.online);
        let out = step1(&mut c, 5, vec![]);
        assert!(c.online);
        assert!(matches!(
            out[0],
            (
                TRACKER,
                Message::Announce {
                    peer: 2,
                    event: EVENT_STARTED,
                    ..
                }
            )
        ));
    }

    #[test]
    fn handshake_builds_a_symmetric_neighborhood() {
        let mut a = PeerCore::leecher(2, 0, 50.0, 1000.0, params(4), rng(2));
        let mut b = PeerCore::leecher(3, 0, 50.0, 1000.0, params(4), rng(3));
        a.online = true;
        b.online = true;
        let mut out = Vec::new();
        // a learns of b (as if from the tracker) and connects.
        a.handle(
            TRACKER,
            &Message::AnnounceResponse { peers: vec![3] },
            0,
            &mut out,
        );
        assert_eq!(a.neighbor_count(), 1);
        // Deliver a's frames to b; b replies with its own handshake.
        let to_b: Vec<(usize, Message)> = out.drain(..).map(|(_, m)| (2, m)).collect();
        let mut reply = Vec::new();
        for (from, m) in to_b {
            b.handle(from, &m, 0, &mut reply);
        }
        assert_eq!(b.neighbor_count(), 1);
        assert!(reply
            .iter()
            .any(|(_, m)| matches!(m, Message::Handshake { peer: 3, .. })));
        assert!(reply.iter().any(|(_, m)| matches!(m, Message::Bitfield(_))));
    }

    #[test]
    fn interest_tracks_the_neighbor_bitfield() {
        let mut c = PeerCore::leecher(2, 0, 50.0, 1000.0, params(4), rng(2));
        c.online = true;
        let mut out = Vec::new();
        c.handle(3, &Message::Handshake { peer: 3, pieces: 4 }, 0, &mut out);
        out.clear();
        c.handle(3, &Message::Have { piece: 1 }, 0, &mut out);
        assert_eq!(out, vec![(3, Message::Interested)]);
        // Once we hold that piece ourselves, interest drops.
        c.bitfield.set(1);
        out.clear();
        c.handle(3, &Message::Bitfield(Bitfield::new(4)), 0, &mut out);
        // Empty bitfield: nothing to want.
        assert_eq!(out, vec![(3, Message::NotInterested)]);
    }

    #[test]
    fn download_cap_limits_intake_per_tick() {
        let mut c = PeerCore::leecher(2, 0, 50.0, 30.0, params(2), rng(2));
        c.online = true;
        let mut out = Vec::new();
        c.handle(3, &Message::Handshake { peer: 3, pieces: 2 }, 0, &mut out);
        c.handle(
            3,
            &Message::Piece {
                piece: 0,
                bytes: 100.0,
            },
            0,
            &mut out,
        );
        assert!((c.bytes_received - 30.0).abs() < 1e-12, "cap applies");
        // Next tick the budget resets.
        let _ = step1(
            &mut c,
            1,
            vec![(
                3,
                Message::Piece {
                    piece: 0,
                    bytes: 100.0,
                },
            )],
        );
        assert!((c.bytes_received - 60.0).abs() < 1e-12);
    }

    #[test]
    fn completing_the_last_piece_departs_and_notifies() {
        let mut c = PeerCore::leecher(2, 0, 50.0, 1000.0, params(1), rng(2));
        c.online = true;
        let mut out = Vec::new();
        c.handle(3, &Message::Handshake { peer: 3, pieces: 1 }, 0, &mut out);
        out.clear();
        c.handle(
            3,
            &Message::Piece {
                piece: 0,
                bytes: 100.0,
            },
            7,
            &mut out,
        );
        assert_eq!(
            c.completed,
            Some(8),
            "done_at = tick + 1, the sim's convention"
        );
        assert!(c.departed && !c.online);
        assert!(out.iter().any(|(to, m)| *to == TRACKER
            && matches!(
                m,
                Message::Announce {
                    event: EVENT_COMPLETED,
                    ..
                }
            )));
        assert!(out.iter().any(|(to, m)| *to == TRACKER
            && matches!(
                m,
                Message::Announce {
                    event: EVENT_STOPPED,
                    ..
                }
            )));
        assert!(out
            .iter()
            .any(|(to, m)| *to == 3 && matches!(m, Message::Have { piece: 0 })));
    }

    #[test]
    fn publisher_serves_but_never_requests() {
        let mut p = PeerCore::publisher(1, 200.0, params(2), rng(1));
        p.set_online(true);
        let mut inbox = Vec::new();
        let mut out = Vec::new();
        p.handle(2, &Message::Handshake { peer: 2, pieces: 2 }, 0, &mut out);
        p.handle(2, &Message::Interested, 0, &mut out);
        inbox.push((2usize, Message::Request { piece: 0 }));
        // tick 0 rechoke unchokes the single interested neighbor, then the
        // request is served with the full upload capacity.
        let out = step1(&mut p, 0, inbox);
        assert!(out
            .iter()
            .any(|(to, m)| *to == 2 && matches!(m, Message::Unchoke)));
        assert!(!out
            .iter()
            .any(|(_, m)| matches!(m, Message::Request { .. })));
        // Request arrives before the rechoke in the same tick, so service
        // starts this very tick.
        let served = out
            .iter()
            .any(|(to, m)| *to == 2 && matches!(m, Message::Piece { piece: 0, .. }));
        assert!(served);
    }

    #[test]
    fn stalled_requests_expire_and_are_cancelled() {
        let mut c = PeerCore::leecher(2, 0, 50.0, 1000.0, params(4), rng(2));
        c.online = true;
        let mut out = Vec::new();
        c.handle(3, &Message::Handshake { peer: 3, pieces: 4 }, 0, &mut out);
        c.handle(3, &Message::Bitfield(Bitfield::full(4)), 0, &mut out);
        c.handle(3, &Message::Unchoke, 0, &mut out);
        let out = step1(&mut c, 1, vec![]);
        let Some((_, Message::Request { piece })) = out
            .iter()
            .find(|(_, m)| matches!(m, Message::Request { .. }))
        else {
            panic!("expected a request");
        };
        let stalled_piece = *piece;
        // No data ever arrives; at +REQUEST_TIMEOUT the request expires
        // and the silent neighbor is snubbed — no immediate re-request
        // at a peer that looks dead.
        let out = step1(&mut c, 1 + REQUEST_TIMEOUT, vec![]);
        assert!(out.iter().any(|(to, m)| *to == 3
            && *m
                == Message::Cancel {
                    piece: stalled_piece
                }));
        assert!(!out
            .iter()
            .any(|(_, m)| matches!(m, Message::Request { .. })));
        // An Unchoke proves liveness and revives the neighbor as a
        // request target.
        let out = step1(&mut c, 2 + REQUEST_TIMEOUT, vec![(3, Message::Unchoke)]);
        assert!(out
            .iter()
            .any(|(_, m)| matches!(m, Message::Request { .. })));
    }
}
