//! Instrumentation must be a pure observer: turning telemetry on must
//! not consume a single RNG draw or reorder a single frame. This file
//! is its own test binary (one `#[test]`) because it toggles the global
//! `swarm_obs` enable flag, which must not race with other tests.

use swarm_bt::run as run_sim;
use swarm_net::scenarios;
use swarm_net::{run_live, HostMode};

#[test]
fn telemetry_probes_leave_the_protocol_untouched() {
    // Baseline: instrumentation off.
    swarm_obs::set_enabled(false);
    let mut baseline = Vec::new();
    for (name, cfg) in scenarios::all(42) {
        baseline.push((name, run_live(&cfg, HostMode::SingleThread)));
    }

    // Same scenarios with every probe live.
    swarm_obs::set_enabled(true);
    for (name, cfg) in scenarios::all(42) {
        let sim = run_sim(&cfg);
        let single = run_live(&cfg, HostMode::SingleThread);
        let threaded = run_live(&cfg, HostMode::ThreadPerPeer);
        let (_, off) = baseline.iter().find(|(n, _)| *n == name).unwrap();

        // Obs-on vs obs-off: identical deterministic outcome.
        assert_eq!(off.counters, single.counters, "{name}: counters drifted");
        assert_eq!(
            off.availability.to_bits(),
            single.availability.to_bits(),
            "{name}: availability"
        );
        assert_eq!(
            off.bytes_moved.to_bits(),
            single.bytes_moved.to_bits(),
            "{name}: bytes moved"
        );
        assert_eq!(off.completion_curve, single.completion_curve, "{name}");
        assert_eq!(off.messages, single.messages, "{name}: message counts");

        // Sim-vs-live exactness still holds with probes on.
        assert_eq!(sim.arrivals, single.arrivals, "{name}: arrivals");
        assert_eq!(sim.completions, single.completions, "{name}: completions");
        assert_eq!(
            sim.availability, single.availability,
            "{name}: availability"
        );
        assert_eq!(
            sim.publisher_intervals, single.publisher_intervals,
            "{name}"
        );

        // Host modes stay bit-identical with probes on.
        assert_eq!(single.counters, threaded.counters, "{name}: host modes");
        assert_eq!(
            single.bytes_moved.to_bits(),
            threaded.bytes_moved.to_bits(),
            "{name}: host-mode bytes"
        );
        assert_eq!(single.completion_curve, threaded.completion_curve, "{name}");
    }

    // The probes did fire: lifecycle events reached the sink.
    let events = swarm_obs::drain_all();
    assert!(
        events.iter().any(|e| e.kind == "net.conn"),
        "expected connection lifecycle events while enabled"
    );
    assert!(
        events.iter().any(|e| e.kind == "net.xfer"),
        "expected transfer lifecycle events while enabled"
    );
    swarm_obs::set_enabled(false);
}
