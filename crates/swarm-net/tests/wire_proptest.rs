//! Property tests for the wire codec: every message round-trips
//! bit-identically, and corrupted frames come back as typed errors —
//! never panics.

use proptest::prelude::*;
use swarm_bt::Bitfield;
use swarm_net::wire::{decode, encode, Message, WireError, MAX_FRAME};

/// Build one message from flat random draws: `tag` picks the variant,
/// the remaining fields parameterize it. Every payload-carrying field is
/// drawn from its full legitimate range (piece counts are bounded only
/// by what a sane torrent carries; the f64s are arbitrary finite reals,
/// checked bit-for-bit after the trip).
#[allow(clippy::too_many_arguments)]
fn build_message(
    tag: u8,
    peer: u64,
    piece: u32,
    volume: f64,
    event: u8,
    peers: Vec<u64>,
    bits: Vec<bool>,
    counts: (u32, u32),
) -> Message {
    match tag {
        0 => Message::Handshake {
            peer,
            pieces: piece,
        },
        1 => {
            let mut bf = Bitfield::new(bits.len());
            for (i, &b) in bits.iter().enumerate() {
                if b {
                    bf.set(i);
                }
            }
            Message::Bitfield(bf)
        }
        2 => Message::Have { piece },
        3 => Message::Interested,
        4 => Message::NotInterested,
        5 => Message::Choke,
        6 => Message::Unchoke,
        7 => Message::Request { piece },
        8 => Message::Piece {
            piece,
            bytes: volume,
        },
        9 => Message::Cancel { piece },
        10 => Message::Announce {
            peer,
            left: volume,
            event,
        },
        11 => Message::AnnounceResponse { peers },
        12 => Message::Scrape,
        13 => Message::ScrapeResponse {
            seeders: counts.0,
            leechers: counts.1,
        },
        14 => Message::PexRequest,
        _ => Message::PexPeers { peers },
    }
}

proptest! {
    #[test]
    fn every_message_round_trips_bit_identically(
        tag in 0u8..16,
        peer in 0u64..u64::MAX,
        piece in 0u32..1_000_000,
        volume in 0.0f64..1e12,
        event in 0u8..4,
        peers in prop::collection::vec(0u64..u64::MAX, 0..40),
        bits in prop::collection::vec(prop::bool::ANY, 0..200),
        counts in (0u32..10_000, 0u32..10_000),
    ) {
        let msg = build_message(tag, peer, piece, volume, event, peers, bits, counts);
        let frame = encode(&msg);
        let (back, consumed) = decode(&frame).expect("well-formed frame must decode");
        prop_assert_eq!(&back, &msg);
        prop_assert_eq!(consumed, frame.len());
        // A second encode of the decoded message is byte-identical: the
        // codec has one canonical form per message.
        prop_assert_eq!(encode(&back), frame);
    }

    #[test]
    fn truncation_never_panics_and_is_always_typed(
        tag in 0u8..16,
        peer in 0u64..u64::MAX,
        piece in 0u32..1_000_000,
        volume in 0.0f64..1e12,
        event in 0u8..4,
        peers in prop::collection::vec(0u64..u64::MAX, 0..40),
        bits in prop::collection::vec(prop::bool::ANY, 0..200),
        counts in (0u32..10_000, 0u32..10_000),
        cut_frac in 0.0f64..1.0,
    ) {
        let msg = build_message(tag, peer, piece, volume, event, peers, bits, counts);
        let frame = encode(&msg);
        let cut = ((frame.len() as f64) * cut_frac) as usize;
        // Any strict prefix must request more bytes, never misparse.
        prop_assert_eq!(
            decode(&frame[..cut.min(frame.len() - 1)]).unwrap_err(),
            WireError::Truncated
        );
    }
}

#[test]
fn random_byte_soup_never_panics() {
    // Deterministic fuzz-ish sweep: feed the decoder pseudo-random byte
    // soup of many lengths. Every outcome must be a clean Ok/Err.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for len in 0..256usize {
        let mut buf = vec![0u8; len];
        for b in buf.iter_mut() {
            *b = (next() & 0xFF) as u8;
        }
        let _ = decode(&buf); // must not panic
    }
    // And byte soup dressed with a plausible length prefix.
    for payload_len in 0..64usize {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(payload_len as u32).to_be_bytes());
        for _ in 0..payload_len {
            buf.push((next() & 0xFF) as u8);
        }
        let _ = decode(&buf);
    }
}

#[test]
fn oversized_prefix_is_rejected_for_any_tail() {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(MAX_FRAME as u32 + 7).to_be_bytes());
    buf.extend_from_slice(&[1, 2, 3]);
    assert!(matches!(
        decode(&buf).unwrap_err(),
        WireError::Oversized { .. }
    ));
}
