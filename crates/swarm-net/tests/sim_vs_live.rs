//! The tentpole guarantees, as tests:
//!
//! 1. **Sim-vs-live equivalence** — the canonical scripted scenarios
//!    produce *exactly equal* deterministic counters (ticks, arrivals,
//!    completions, availability transitions) and availability fractions
//!    in the `swarm-bt` simulator and the live networked engine.
//! 2. **Host-mode invariance** — the live engine's result is
//!    bit-identical whether endpoints run on one thread or on a thread
//!    per peer, and across repeated runs (thread scheduling is not an
//!    input).

use swarm_bt::run as run_sim;
use swarm_net::scenarios;
use swarm_net::{run_live, HostMode};

/// Availability transitions of a sim run, recovered from the scenario's
/// schedule-driven design: with every completion inside the first
/// publisher on-phase, availability equals the publisher square wave,
/// whose flip count is fully determined by the config. For always-on
/// scenarios that is 0; for the Periodic scenario it is one flip per
/// schedule edge inside the horizon.
fn scheduled_transitions(cfg: &swarm_bt::BtConfig) -> u64 {
    match cfg.publisher {
        swarm_bt::BtPublisher::AlwaysOn => 0,
        swarm_bt::BtPublisher::Periodic {
            on_ticks,
            off_ticks,
            ..
        } => {
            let period = on_ticks + off_ticks;
            let mut flips = 0;
            let mut last = true;
            for t in 0..cfg.horizon {
                let on = t % period < on_ticks;
                if on != last {
                    flips += 1;
                    last = on;
                }
            }
            flips
        }
        _ => unreachable!("scenarios use deterministic schedules"),
    }
}

#[test]
fn sim_and_live_agree_exactly_on_scenario_a() {
    let cfg = scenarios::scenario_a(42);
    let sim = run_sim(&cfg);
    let live = run_live(&cfg, HostMode::SingleThread);

    assert_eq!(
        live.ticks, cfg.horizon,
        "drain-free run is exactly the horizon"
    );
    assert_eq!(sim.arrivals, live.arrivals, "arrivals");
    assert_eq!(sim.arrivals, 8);
    assert_eq!(sim.completions, live.completions, "completions");
    assert_eq!(sim.completions, 8, "every scripted leecher completes");
    assert_eq!(sim.availability, live.availability, "availability fraction");
    assert_eq!(sim.availability, 1.0);
    assert_eq!(live.availability_transitions, scheduled_transitions(&cfg));
    assert_eq!(live.availability_transitions, 0);
    assert_eq!(sim.publisher_intervals, live.publisher_intervals);
    assert_eq!(sim.last_available_tick, live.last_available_tick);
}

#[test]
fn sim_and_live_agree_exactly_on_scenario_b() {
    let cfg = scenarios::scenario_b(7);
    let sim = run_sim(&cfg);
    let live = run_live(&cfg, HostMode::SingleThread);

    assert_eq!(live.ticks, cfg.horizon);
    assert_eq!(sim.arrivals, live.arrivals);
    assert_eq!(sim.arrivals, 10);
    assert_eq!(sim.completions, live.completions);
    assert_eq!(sim.completions, 10);
    assert_eq!(sim.availability, live.availability);
    assert!((sim.availability - 300.0 / 360.0).abs() < 1e-12);
    assert_eq!(live.availability_transitions, scheduled_transitions(&cfg));
    assert_eq!(
        live.availability_transitions, 2,
        "off at 150, back on at 210"
    );
    assert_eq!(sim.publisher_intervals, live.publisher_intervals);
    assert_eq!(sim.publisher_intervals, vec![(0, 150), (210, 360)]);
    assert_eq!(sim.last_available_tick, live.last_available_tick);
}

#[test]
fn completions_happen_inside_the_first_on_phase_in_both_engines() {
    // The construction that makes exact equivalence possible: every
    // completion lands before the first publisher departure, in both
    // engines, with margin.
    let cfg = scenarios::scenario_b(7);
    let sim = run_sim(&cfg);
    let live = run_live(&cfg, HostMode::SingleThread);
    let sim_last = sim.completion_curve.last().map(|&(t, _)| t).unwrap();
    let live_last = live.completion_curve.last().map(|&(t, _)| t).unwrap();
    assert!(sim_last < 150, "sim finished at {sim_last}");
    assert!(live_last < 150, "live finished at {live_last}");
}

#[test]
fn live_counters_snapshot_matches_result_fields() {
    let cfg = scenarios::scenario_a(42);
    let live = run_live(&cfg, HostMode::SingleThread);
    assert_eq!(live.counters["net.ticks"], live.ticks);
    assert_eq!(live.counters["net.arrivals"], live.arrivals);
    assert_eq!(live.counters["net.completions"], live.completions);
    assert_eq!(
        live.counters["net.availability.transitions"],
        live.availability_transitions
    );
    assert_eq!(
        live.counters["net.bytes_moved"],
        live.bytes_moved.round() as u64
    );
    assert!(
        live.bytes_moved >= 8.0 * 1_000.0,
        "each leecher pulled the content"
    );
}

#[test]
fn single_thread_and_thread_per_peer_are_bit_identical() {
    for (name, cfg) in scenarios::all(42) {
        let single = run_live(&cfg, HostMode::SingleThread);
        let threaded = run_live(&cfg, HostMode::ThreadPerPeer);
        assert_eq!(single.counters, threaded.counters, "{name}: counters");
        assert_eq!(
            single.availability.to_bits(),
            threaded.availability.to_bits(),
            "{name}: availability is bit-identical, not approximately equal"
        );
        assert_eq!(
            single.bytes_moved.to_bits(),
            threaded.bytes_moved.to_bits(),
            "{name}: byte totals are bit-identical"
        );
        assert_eq!(
            single.availability_flips, threaded.availability_flips,
            "{name}"
        );
        assert_eq!(single.completion_curve, threaded.completion_curve, "{name}");
        assert_eq!(single.messages, threaded.messages, "{name}: message counts");
    }
}

#[test]
fn threaded_runs_are_reproducible_across_repeats() {
    // Thread scheduling varies between repeats; results must not.
    let cfg = scenarios::scenario_b(7);
    let a = run_live(&cfg, HostMode::ThreadPerPeer);
    let b = run_live(&cfg, HostMode::ThreadPerPeer);
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.availability_flips, b.availability_flips);
    assert_eq!(a.bytes_moved.to_bits(), b.bytes_moved.to_bits());
    assert_eq!(a.messages, b.messages);
}
