//! The snub→rejoin episode, as told by the lifecycle telemetry.
//!
//! Drives a single leecher core through a request timeout and the
//! reviving `Unchoke`, then checks that the typed `net.conn` /
//! `net.req` events land in the sink in protocol order. Events are
//! scoped through [`swarm_obs::job_scope`] so concurrent tests in this
//! binary cannot contaminate each other's drains.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use swarm_bt::Bitfield;
use swarm_net::{Message, PeerCore, PeerParams, REQUEST_TIMEOUT};
use swarm_obs::{ConnEvent, ConnPhase, Dir, ReqEvent, ReqPhase};

fn params(pieces: usize) -> PeerParams {
    PeerParams {
        num_pieces: pieces,
        piece_size: 100.0,
        unchoke_slots: 4,
        optimistic_slots: 1,
        rechoke_interval: 10,
        pex_interval: 0,
        max_neighbors: 40,
        run: 0,
    }
}

fn step1(core: &mut PeerCore, tick: u64, inbox: Vec<(usize, Message)>) -> Vec<(usize, Message)> {
    let mut out = Vec::new();
    core.step(tick, inbox, &mut out);
    out
}

#[test]
fn snub_and_rejoin_emit_lifecycle_events_in_protocol_order() {
    swarm_obs::set_enabled(true);
    let job = "lifecycle-snub-rejoin";
    let events = {
        let _scope = swarm_obs::job_scope(job);
        let mut c = PeerCore::leecher(2, 0, 50.0, 1000.0, params(4), ChaCha8Rng::seed_from_u64(2));
        c.set_online(true);
        // Tick 1: the seed-like neighbor handshakes and unchokes us in
        // one inbox, so a request goes out the same tick. Then silence
        // until it expires, then an Unchoke revives the snubbed
        // neighbor.
        let out = step1(
            &mut c,
            1,
            vec![
                (3, Message::Handshake { peer: 3, pieces: 4 }),
                (3, Message::Bitfield(Bitfield::full(4))),
                (3, Message::Unchoke),
            ],
        );
        assert!(out
            .iter()
            .any(|(_, m)| matches!(m, Message::Request { .. })));
        step1(&mut c, 1 + REQUEST_TIMEOUT, vec![]);
        step1(&mut c, 2 + REQUEST_TIMEOUT, vec![(3, Message::Unchoke)]);
        swarm_obs::drain_job(job)
    };

    let conns: Vec<ConnEvent> = events.iter().filter_map(ConnEvent::from_event).collect();
    let reqs: Vec<ReqEvent> = events.iter().filter_map(ReqEvent::from_event).collect();

    // The request lifecycle: issue, timeout-cancel, re-issue on rejoin.
    let req_phases: Vec<(ReqPhase, Option<&str>)> = reqs
        .iter()
        .map(|r| (r.phase, r.reason.as_deref()))
        .collect();
    assert_eq!(
        req_phases,
        vec![
            (ReqPhase::Tx, None),
            (ReqPhase::Cancel, Some("timeout")),
            (ReqPhase::Tx, None),
        ],
        "request events: {reqs:?}"
    );

    // The connection lifecycle around the episode: the first Unchoke
    // arrives un-snubbed, the timeout snubs, the second Unchoke is
    // followed (in that order) by the rejoin.
    let phases: Vec<(ConnPhase, Option<Dir>)> = conns.iter().map(|c| (c.phase, c.dir)).collect();
    assert_eq!(
        phases,
        vec![
            (ConnPhase::Handshake, None),
            (ConnPhase::Unchoke, Some(Dir::Rx)),
            (ConnPhase::Snub, None),
            (ConnPhase::Unchoke, Some(Dir::Rx)),
            (ConnPhase::Rejoin, None),
        ],
        "conn events: {conns:?}"
    );

    // The snub names the abandoned piece, and its cancel matches.
    let snub = conns.iter().find(|c| c.phase == ConnPhase::Snub).unwrap();
    assert_eq!(snub.piece, Some(reqs[0].piece));
    assert_eq!(snub.local, 2);
    assert_eq!(snub.remote, 3);
}
