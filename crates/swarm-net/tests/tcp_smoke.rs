//! Real-socket smoke test: 2 seeds + 3 leechers on 127.0.0.1.
//!
//! `#[ignore]` by default — it opens real TCP sockets and runs on the
//! wall clock, so it belongs to its own CI job (`net-tcp-smoke`), not
//! the deterministic test sweep. Run with:
//!
//! ```sh
//! cargo test -p swarm-net --test tcp_smoke -- --ignored
//! ```
//!
//! The run executes with full telemetry and hands the drained events
//! to the `swarm-trace` net analyzer: the wire-level conservation
//! invariants must hold over real sockets too, and the TCP host's
//! periodic `net.health` snapshots must be present. The run also serves
//! a live `GET /metrics` exposition, polled here mid-run from another
//! thread the way `repro watch` would from another process.

use swarm_net::{http_get, run_tcp_smoke_with, TcpSmokeOpts};

#[test]
#[ignore = "real sockets + wall clock; run explicitly or via the net-tcp-smoke CI job"]
fn two_seeds_three_leechers_complete_over_loopback_tcp() {
    swarm_obs::set_enabled(true);
    let _ = swarm_obs::drain_all();
    let _ = swarm_obs::take_series("net.tcp");
    // Generous ring: lifecycle events from five peer threads must not
    // be evicted, or request-resolution tracking would see gaps.
    swarm_obs::set_ring_capacity(1 << 18);

    // Poll the live exposition endpoint from a side thread while the
    // swarm runs, exactly as `repro watch` would.
    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    let watcher = std::thread::spawn(move || {
        let addr = addr_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("metrics endpoint came up");
        let mut last = String::new();
        for _ in 0..50 {
            std::thread::sleep(std::time::Duration::from_millis(100));
            match http_get(addr, "/metrics") {
                Ok(body) => last = body,
                Err(_) => break, // run finished, endpoint gone
            }
        }
        last
    });

    // 8 pieces of 100 kB, 20 ms ticks, up to 500 ticks (~10 s budget).
    let opts = TcpSmokeOpts {
        metrics_port: Some(0),
        on_metrics_addr: Some(addr_tx),
        ..TcpSmokeOpts::default()
    };
    let report = run_tcp_smoke_with(2, 3, 8, 20, 500, &opts).expect("smoke swarm failed to run");
    let events = swarm_obs::drain_all();
    let ts = swarm_obs::take_series("net.tcp");
    swarm_obs::set_enabled(false);

    // The mid-run scrape saw parseable exposition text with live
    // window samples.
    let exposition = watcher.join().expect("watcher thread panicked");
    assert!(
        exposition.contains("swarm_ts_net_tcp_window_start"),
        "live scrape carried the windowed series:\n{exposition}"
    );
    assert!(exposition.contains("swarm_ts_net_tcp_peer_ticks"));
    assert!(report.metrics_addr.is_some(), "report records the endpoint");

    // The wall-tick series made it into the global registry: window
    // sums carry the whole swarm's completions.
    let ts = ts.expect("TCP host merged its recorder");
    let completions: u64 = ts
        .windows()
        .iter()
        .filter_map(|w| w.counters.get("completions"))
        .sum();
    assert_eq!(completions, 3, "one windowed completion per leecher");

    assert_eq!(
        report.completions, 3,
        "every leecher must finish; report: {report:?}"
    );
    // Leechers announce STOPPED when done, so the final census is the
    // two still-serving seeds and nobody else.
    assert_eq!(report.census, (2, 0), "tracker census: {report:?}");
    let slowest = report.slowest_completion_tick.expect("all completed");
    assert!(slowest <= 500, "completion within the tick budget");

    // Wire-level conservation invariants over real sockets.
    let runs = swarm_trace::collect_net_runs(&events);
    assert!(!runs.is_empty(), "lifecycle telemetry reached the sink");
    for trace in &runs {
        assert!(
            trace.violations.is_empty(),
            "run {}: {:#?}",
            trace.run,
            trace.violations
        );
    }
    let total: u64 = runs.iter().map(|t| t.completions()).sum();
    assert!(total >= 3 * 8, "one xfer.done per piece per leecher");
    assert!(
        runs.iter().any(|t| !t.health.is_empty()),
        "TCP host emitted periodic health snapshots"
    );
}
