//! Real-socket smoke test: 2 seeds + 3 leechers on 127.0.0.1.
//!
//! `#[ignore]` by default — it opens real TCP sockets and runs on the
//! wall clock, so it belongs to its own CI job (`net-tcp-smoke`), not
//! the deterministic test sweep. Run with:
//!
//! ```sh
//! cargo test -p swarm-net --test tcp_smoke -- --ignored
//! ```

use swarm_net::run_tcp_smoke;

#[test]
#[ignore = "real sockets + wall clock; run explicitly or via the net-tcp-smoke CI job"]
fn two_seeds_three_leechers_complete_over_loopback_tcp() {
    // 8 pieces of 100 kB, 20 ms ticks, up to 500 ticks (~10 s budget).
    let report = run_tcp_smoke(2, 3, 8, 20, 500).expect("smoke swarm failed to run");
    assert_eq!(
        report.completions, 3,
        "every leecher must finish; report: {report:?}"
    );
    // Leechers announce STOPPED when done, so the final census is the
    // two still-serving seeds and nobody else.
    assert_eq!(report.census, (2, 0), "tracker census: {report:?}");
    let slowest = report.slowest_completion_tick.expect("all completed");
    assert!(slowest <= 500, "completion within the tick budget");
}
