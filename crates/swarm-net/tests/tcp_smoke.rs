//! Real-socket smoke test: 2 seeds + 3 leechers on 127.0.0.1.
//!
//! `#[ignore]` by default — it opens real TCP sockets and runs on the
//! wall clock, so it belongs to its own CI job (`net-tcp-smoke`), not
//! the deterministic test sweep. Run with:
//!
//! ```sh
//! cargo test -p swarm-net --test tcp_smoke -- --ignored
//! ```
//!
//! The run executes with full telemetry and hands the drained events
//! to the `swarm-trace` net analyzer: the wire-level conservation
//! invariants must hold over real sockets too, and the TCP host's
//! periodic `net.health` snapshots must be present.

use swarm_net::{run_tcp_smoke_with, TcpSmokeOpts};

#[test]
#[ignore = "real sockets + wall clock; run explicitly or via the net-tcp-smoke CI job"]
fn two_seeds_three_leechers_complete_over_loopback_tcp() {
    swarm_obs::set_enabled(true);
    let _ = swarm_obs::drain_all();
    // Generous ring: lifecycle events from five peer threads must not
    // be evicted, or request-resolution tracking would see gaps.
    swarm_obs::set_ring_capacity(1 << 18);

    // 8 pieces of 100 kB, 20 ms ticks, up to 500 ticks (~10 s budget).
    let report = run_tcp_smoke_with(2, 3, 8, 20, 500, &TcpSmokeOpts::default())
        .expect("smoke swarm failed to run");
    let events = swarm_obs::drain_all();
    swarm_obs::set_enabled(false);

    assert_eq!(
        report.completions, 3,
        "every leecher must finish; report: {report:?}"
    );
    // Leechers announce STOPPED when done, so the final census is the
    // two still-serving seeds and nobody else.
    assert_eq!(report.census, (2, 0), "tracker census: {report:?}");
    let slowest = report.slowest_completion_tick.expect("all completed");
    assert!(slowest <= 500, "completion within the tick budget");

    // Wire-level conservation invariants over real sockets.
    let runs = swarm_trace::collect_net_runs(&events);
    assert!(!runs.is_empty(), "lifecycle telemetry reached the sink");
    for trace in &runs {
        assert!(
            trace.violations.is_empty(),
            "run {}: {:#?}",
            trace.run,
            trace.violations
        );
    }
    let total: u64 = runs.iter().map(|t| t.completions()).sum();
    assert!(total >= 3 * 8, "one xfer.done per piece per leecher");
    assert!(
        runs.iter().any(|t| !t.health.is_empty()),
        "TCP host emitted periodic health snapshots"
    );
}
