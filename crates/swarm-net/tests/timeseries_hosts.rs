//! Host-mode invariance of the `"net"` time series.
//!
//! The live engine's recorder runs on the coordinator side of the tick
//! barrier, observing counter deltas in endpoint-id order, so the
//! resulting windows must be bit-identical whether endpoints run on one
//! thread or on a thread per peer — the same guarantee the scalar
//! counters already carry, extended to the windowed series.
//!
//! Own test binary: it owns the process-global `swarm-obs` state
//! (enable switch + timeseries registry), which must not race with
//! other tests' runs.

use swarm_net::scenarios;
use swarm_net::{run_live, HostMode, NET_TS_WINDOW};

#[test]
fn timeseries_is_host_mode_invariant() {
    swarm_obs::set_enabled(true);
    for (name, cfg) in scenarios::all(42) {
        let _ = swarm_obs::take_series("net");
        let single = run_live(&cfg, HostMode::SingleThread);
        let threaded = run_live(&cfg, HostMode::ThreadPerPeer);
        assert!(
            !single.timeseries.is_empty(),
            "{name}: enabled run must carry windows"
        );
        assert_eq!(
            single.timeseries, threaded.timeseries,
            "{name}: timeseries diverged across host modes"
        );

        // Windows tile the run contiguously from tick 0 and their sums
        // reconcile exactly with the scalar counters.
        let mut next = 0;
        for w in &single.timeseries {
            assert_eq!(w.start, next, "{name}: windows must tile");
            assert!(w.len >= NET_TS_WINDOW, "{name}: window spans >= base width");
            next = w.start + w.len;
        }
        let sum = |key: &str| -> u64 {
            single
                .timeseries
                .iter()
                .filter_map(|w| w.counters.get(key))
                .sum()
        };
        assert_eq!(sum("ticks"), single.ticks, "{name}: ticks");
        assert_eq!(sum("arrivals"), single.arrivals, "{name}: arrivals");
        assert_eq!(
            sum("completions"),
            single.completions,
            "{name}: completions"
        );
        assert_eq!(
            sum("bytes_moved"),
            single.bytes_moved.round() as u64,
            "{name}: windowed byte deltas telescope to the total"
        );
    }
    let _ = swarm_obs::take_series("net");
    swarm_obs::set_enabled(false);
}
