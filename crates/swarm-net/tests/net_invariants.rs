//! The conservation invariants, end to end on the loopback engine.
//!
//! Runs scripted scenarios with full telemetry, hands the drained
//! events to the `swarm-trace` net analyzer, and requires a clean
//! report: every completion matched by a serve, every request
//! resolved, every traffic-carrying connection handshaken on both
//! sides. One `#[test]` — the global obs enable flag must not race
//! with a second test in this binary.

use swarm_net::{run_live, scenarios, HostMode};

#[test]
fn loopback_scenarios_satisfy_the_conservation_invariants() {
    swarm_obs::set_enabled(true);
    let _ = swarm_obs::drain_all();
    // Generous ring: a scripted swarm emits a few thousand lifecycle
    // events and truncation would break request-resolution tracking.
    swarm_obs::set_ring_capacity(1 << 18);

    let mut expected_runs = 0;
    for (name, cfg) in scenarios::all(42) {
        let live = run_live(&cfg, HostMode::SingleThread);
        assert!(live.completions > 0, "{name}: scripted leechers complete");
        expected_runs += 1;
    }

    let events = swarm_obs::drain_all();
    swarm_obs::set_enabled(false);
    let runs = swarm_trace::collect_net_runs(&events);
    assert!(
        runs.len() >= expected_runs,
        "one net trace per live run (got {} for {expected_runs})",
        runs.len()
    );
    for trace in &runs {
        assert!(
            trace.violations.is_empty(),
            "run {}: {:#?}",
            trace.run,
            trace.violations
        );
        assert!(
            trace.completions() > 0,
            "run {}: completions visible in the xfer telemetry",
            trace.run
        );
        assert!(
            !trace.latencies().is_empty(),
            "run {}: request->piece latencies attributed",
            trace.run
        );
        let lane = trace.swimlane();
        assert!(lane.contains("xfer.done"), "run {}: swimlane", trace.run);
        assert!(!trace.collapsed().is_empty());
    }
}
