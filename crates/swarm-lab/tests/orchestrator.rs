//! End-to-end orchestrator behaviour: cache keying and invalidation,
//! panic isolation, manifest round-trips and concurrency observability.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use swarm_lab::{
    run, CacheDisposition, CacheMode, JobOutput, JobSpec, JobStatus, Manifest, RunConfig,
};

fn temp_out(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swarm-lab-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn counting_job(id: &str, runs: &Arc<AtomicUsize>) -> JobSpec {
    let runs = Arc::clone(runs);
    let artifact = format!("{id}.txt");
    let body = format!("report for {id}");
    JobSpec::new(id, format!("counting job {id}"), {
        let artifact = artifact.clone();
        move || {
            runs.fetch_add(1, Ordering::SeqCst);
            JobOutput::text_only(body.clone()).with_artifact(artifact.clone(), body.clone())
        }
    })
    .artifacts(vec![artifact])
}

fn base_config(out_dir: PathBuf) -> RunConfig {
    RunConfig {
        workers: 2,
        thread_budget: 2,
        salt: "salt-a".to_string(),
        ..RunConfig::new(out_dir)
    }
}

#[test]
fn identical_rerun_hits_cache_and_skips_execution() {
    let out = temp_out("cache-hit");
    let runs = Arc::new(AtomicUsize::new(0));
    let cfg = base_config(out.clone());

    let first = run(&[counting_job("a", &runs)], &cfg).expect("first run");
    assert!(first.all_ok());
    assert_eq!(runs.load(Ordering::SeqCst), 1);
    assert_eq!(first.manifest.jobs[0].cache, CacheDisposition::Miss);

    // Same id, same quick flag, same salt: replayed, body never runs.
    std::fs::remove_file(out.join("a.txt")).expect("artifact existed");
    let second = run(&[counting_job("a", &runs)], &cfg).expect("second run");
    assert!(second.all_ok());
    assert_eq!(runs.load(Ordering::SeqCst), 1, "cache hit must not re-run");
    assert_eq!(second.manifest.jobs[0].cache, CacheDisposition::Hit);
    // Replay restores artifacts byte-identically.
    assert_eq!(
        std::fs::read_to_string(out.join("a.txt")).expect("artifact restored"),
        "report for a"
    );
    assert_eq!(
        first.manifest.jobs[0].artifacts, second.manifest.jobs[0].artifacts,
        "digests match across replay"
    );
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn salt_change_invalidates_quick_flag_too() {
    let out = temp_out("cache-salt");
    let runs = Arc::new(AtomicUsize::new(0));
    let cfg = base_config(out.clone());

    run(&[counting_job("a", &runs)], &cfg).expect("seed the cache");
    assert_eq!(runs.load(Ordering::SeqCst), 1);

    // New code-version salt: the entry no longer addresses this result.
    let salted = RunConfig {
        salt: "salt-b".to_string(),
        ..cfg.clone()
    };
    let r = run(&[counting_job("a", &runs)], &salted).expect("salted run");
    assert_eq!(runs.load(Ordering::SeqCst), 2, "salt change must miss");
    assert_eq!(r.manifest.jobs[0].cache, CacheDisposition::Miss);

    // Quick flag is part of the key as well.
    let quick = RunConfig { quick: true, ..cfg };
    run(&[counting_job("a", &runs)], &quick).expect("quick run");
    assert_eq!(runs.load(Ordering::SeqCst), 3, "quick flip must miss");
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn force_recomputes_and_no_cache_stores_nothing() {
    let out = temp_out("cache-modes");
    let runs = Arc::new(AtomicUsize::new(0));
    let cfg = base_config(out.clone());

    run(&[counting_job("a", &runs)], &cfg).expect("warm the cache");
    let forced = RunConfig {
        cache: CacheMode::Refresh,
        ..cfg.clone()
    };
    let r = run(&[counting_job("a", &runs)], &forced).expect("forced run");
    assert_eq!(runs.load(Ordering::SeqCst), 2, "--force bypasses lookup");
    assert_eq!(r.manifest.jobs[0].cache, CacheDisposition::Refresh);

    let off_out = temp_out("cache-off");
    let off = RunConfig {
        cache: CacheMode::Off,
        ..base_config(off_out.clone())
    };
    let r = run(&[counting_job("a", &runs)], &off).expect("uncached run");
    assert_eq!(r.manifest.jobs[0].cache, CacheDisposition::Off);
    assert!(
        !off_out.join(".cache").exists(),
        "--no-cache must not create cache entries"
    );
    let _ = std::fs::remove_dir_all(&out);
    let _ = std::fs::remove_dir_all(&off_out);
}

#[test]
fn panicking_job_is_isolated_and_reported() {
    let out = temp_out("isolation");
    let runs = Arc::new(AtomicUsize::new(0));
    let jobs = vec![
        counting_job("a", &runs),
        JobSpec::new("poison", "always panics", || {
            panic!("injected failure for isolation test")
        }),
        counting_job("b", &runs),
        counting_job("c", &runs),
    ];
    let cfg = RunConfig {
        cache: CacheMode::Off,
        ..base_config(out.clone())
    };
    let report = run(&jobs, &cfg).expect("run completes despite the panic");

    assert!(!report.all_ok());
    assert_eq!(runs.load(Ordering::SeqCst), 3, "all healthy jobs ran");
    let by_id = |id: &str| {
        report
            .manifest
            .jobs
            .iter()
            .find(|j| j.id == id)
            .unwrap_or_else(|| panic!("{id} in manifest"))
    };
    assert_eq!(by_id("poison").status, JobStatus::Failed);
    let msg = by_id("poison").error.as_deref().expect("panic captured");
    assert!(
        msg.contains("injected failure"),
        "panic message surfaced: {msg}"
    );
    for id in ["a", "b", "c"] {
        assert_eq!(by_id(id).status, JobStatus::Ok, "{id} unaffected");
        assert!(out.join(format!("{id}.txt")).exists());
    }
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn artifact_declaration_mismatch_fails_the_job() {
    let out = temp_out("declaration");
    let spec = JobSpec::new("liar", "declares one file, writes another", || {
        JobOutput::text_only("x").with_artifact("other.txt", "x")
    })
    .artifacts(vec!["liar.txt".to_string()]);
    let cfg = RunConfig {
        cache: CacheMode::Off,
        ..base_config(out.clone())
    };
    let report = run(&[spec], &cfg).expect("run");
    assert_eq!(report.manifest.jobs[0].status, JobStatus::Failed);
    let msg = report.manifest.jobs[0].error.as_deref().expect("error set");
    assert!(msg.contains("declaration mismatch"), "got: {msg}");
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn saved_manifest_round_trips_and_shows_overlap() {
    let out = temp_out("overlap");
    let sleepy = |id: &str| {
        let id = id.to_string();
        JobSpec::new(id.clone(), "sleeps", move || {
            std::thread::sleep(std::time::Duration::from_millis(150));
            JobOutput::text_only(format!("done {id}"))
        })
        .cost_hint(0.15)
    };
    let cfg = RunConfig {
        cache: CacheMode::Off,
        ..base_config(out.clone())
    };
    let report = run(&[sleepy("s1"), sleepy("s2")], &cfg).expect("run");

    let loaded = Manifest::load(&report.manifest_path).expect("manifest readable");
    assert_eq!(loaded, report.manifest, "disk round-trip is lossless");

    // Two workers, two sleeping jobs: their [start, end] intervals must
    // overlap — the manifest is the proof the run was concurrent.
    let a = &loaded.jobs[0];
    let b = &loaded.jobs[1];
    let overlap_start = a.started_ms.max(b.started_ms);
    let overlap_end = a.ended_ms.min(b.ended_ms);
    assert!(
        overlap_start < overlap_end,
        "jobs did not overlap: {a:?} vs {b:?}"
    );
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn longest_first_dispatch_starts_expensive_jobs_earlier() {
    let out = temp_out("lpt");
    // One worker: dispatch order is exactly cost order, observable via
    // started_ms. The cheap job is declared first but must start last.
    let timed = |id: &str, cost: f64| {
        let id_owned = id.to_string();
        JobSpec::new(id_owned.clone(), "timed", move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            JobOutput::text_only(format!("done {id_owned}"))
        })
        .cost_hint(cost)
    };
    let cfg = RunConfig {
        workers: 1,
        cache: CacheMode::Off,
        ..base_config(out.clone())
    };
    let report = run(&[timed("cheap", 0.1), timed("dear", 9.0)], &cfg).expect("run");
    let by_id = |id: &str| {
        report
            .manifest
            .jobs
            .iter()
            .find(|j| j.id == id)
            .expect("in manifest")
    };
    assert!(
        by_id("dear").started_ms <= by_id("cheap").started_ms,
        "longest-first ordering violated"
    );
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn artifact_write_failure_fails_the_job_not_the_run() {
    let out = temp_out("badwrite");
    // An artifact whose name traverses into a file-as-directory path
    // cannot be created; the job must fail, the sibling must succeed.
    std::fs::create_dir_all(&out).expect("out dir");
    std::fs::write(out.join("blocker"), b"a file, not a directory").expect("blocker");
    let bad = JobSpec::new("bad", "unwritable artifact", || {
        JobOutput::text_only("x").with_artifact("blocker/nested.txt", "x")
    });
    let runs = Arc::new(AtomicUsize::new(0));
    let cfg = RunConfig {
        cache: CacheMode::Off,
        ..base_config(out.clone())
    };
    let report = run(&[bad, counting_job("fine", &runs)], &cfg).expect("run");
    let by_id = |id: &str| {
        report
            .manifest
            .jobs
            .iter()
            .find(|j| j.id == id)
            .expect("in manifest")
    };
    assert_eq!(by_id("bad").status, JobStatus::Failed);
    assert!(by_id("bad")
        .error
        .as_deref()
        .expect("error recorded")
        .contains("artifact write failed"));
    assert_eq!(by_id("fine").status, JobStatus::Ok);
    assert!(!report.all_ok());
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn telemetry_run_writes_per_job_and_run_level_artifacts() {
    let out = temp_out("telemetry");
    let tdir = out.join("telemetry");
    let cfg = RunConfig {
        cache: CacheMode::Off,
        telemetry: Some(tdir.clone()),
        ..base_config(out.clone())
    };
    let runs = Arc::new(AtomicUsize::new(0));
    // Unique ids: other tests in this binary run concurrently and the
    // event ring is process-wide, so shared ids could cross-drain.
    let jobs = vec![counting_job("tele1", &runs), counting_job("tele2", &runs)];
    let report = run(&jobs, &cfg).expect("telemetry run");
    assert!(report.all_ok());

    for id in ["tele1", "tele2"] {
        let raw = std::fs::read_to_string(tdir.join(id).join("telemetry.jsonl"))
            .expect("per-job telemetry.jsonl");
        let events = swarm_obs::parse_jsonl(&raw).expect("jsonl parses");
        assert!(
            events.iter().any(|e| e.kind == "span"
                && e.fields
                    .iter()
                    .any(|(k, v)| k == "name" && v == &swarm_obs::val("lab.job"))),
            "{id} telemetry carries its lab.job span"
        );
        assert!(events.iter().all(|e| e.job.as_deref() == Some(id)));
        assert!(tdir.join(id).join("metrics.json").exists());
        let rec = report
            .manifest
            .jobs
            .iter()
            .find(|j| j.id == id)
            .expect("in manifest");
        assert_eq!(rec.metrics.telemetry_events, events.len() as u64);
        assert!(rec.metrics.telemetry_events >= 1);
        assert!(rec.metrics.budget_peak_leases >= 1);
    }

    assert!(tdir.join("telemetry.jsonl").exists());
    assert!(tdir.join("metrics.json").exists());
    let report_txt = std::fs::read_to_string(tdir.join("report.txt")).expect("report.txt");
    assert!(report_txt.contains("lab.job"), "report names the job span");
    assert_eq!(
        report.telemetry_report.as_deref(),
        Some(report_txt.as_str())
    );

    // The manifest on disk round-trips the new metrics fields.
    let loaded = Manifest::load(&report.manifest_path).expect("manifest readable");
    assert_eq!(loaded, report.manifest);

    // Telemetry files and the manifest carry the same run identity, so
    // offline analysis can pair them without mtimes.
    assert_eq!(report.manifest.run_id, swarm_obs::run_id());
    assert!(report.manifest.ts_unix_ms > 0);
    let raw = std::fs::read_to_string(tdir.join("telemetry.jsonl")).expect("run telemetry");
    let (header, _) = swarm_obs::parse_jsonl_with_header(&raw).expect("jsonl parses");
    let header = header.expect("run telemetry starts with a header line");
    assert_eq!(header.run_id, report.manifest.run_id);
    assert_eq!(header.ts_unix_ms, report.manifest.ts_unix_ms);
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn panicking_job_still_gets_its_telemetry_flushed() {
    let out = temp_out("panic-telemetry");
    let tdir = out.join("telemetry");
    let cfg = RunConfig {
        cache: CacheMode::Off,
        telemetry: Some(tdir.clone()),
        ..base_config(out.clone())
    };
    let doomed = JobSpec::new("doomed", "emits evidence, then dies", || {
        swarm_obs::emit("test.prepanic", &[("progress", swarm_obs::val(3u64))]);
        panic!("wrecked mid-flight")
    });
    let report = run(&[doomed], &cfg).expect("run survives the panic");
    assert!(!report.all_ok());

    // The dead job's event stream reached disk: header line, the
    // events it emitted before dying, and a job.failed marker with the
    // panic message.
    let raw = std::fs::read_to_string(tdir.join("doomed").join("telemetry.jsonl"))
        .expect("failed job still writes telemetry.jsonl");
    let (header, events) = swarm_obs::parse_jsonl_with_header(&raw).expect("jsonl parses");
    assert_eq!(header.expect("header line").run_id, report.manifest.run_id);
    assert!(
        events.iter().any(|e| e.kind == "test.prepanic"),
        "pre-panic events survive"
    );
    let failed = events
        .iter()
        .find(|e| e.kind == "job.failed")
        .expect("failure marker present");
    assert!(failed
        .fields
        .iter()
        .any(|(k, v)| k == "error" && v.as_str().unwrap_or("").contains("wrecked mid-flight")));
    assert!(events.iter().all(|e| e.job.as_deref() == Some("doomed")));
    let _ = std::fs::remove_dir_all(&out);
}
