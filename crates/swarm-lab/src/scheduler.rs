//! Longest-first scheduling over a thread-budgeted worker pool, with
//! per-job panic isolation.
//!
//! The pool runs up to `workers` jobs concurrently. Jobs are dispatched
//! in descending [`JobSpec::cost_hint`] order — the classic LPT
//! (longest-processing-time) heuristic, which keeps an expensive tail
//! job from being started last and stretching the makespan. Every
//! worker owns one compute thread funded from a shared
//! [`ThreadBudget`]; when a job's inner `swarm_stats::parallel`
//! replication asks for more threads, it leases them from the same
//! budget, so total compute threads never exceed the budget no matter
//! how many jobs run at once.
//!
//! Each job body runs under `catch_unwind`: a panic becomes a `Failed`
//! manifest entry with the panic message, and every other job still
//! runs to completion. Artifact-write failures are likewise per-job
//! failures, not run aborts.
//!
//! When [`RunConfig::telemetry`] names a directory the scheduler turns
//! `swarm_obs` recording on for the duration of the run: every job
//! executes inside a [`swarm_obs::job_scope`] and a `lab.job` span, its
//! structured events are drained to `<dir>/<id>/telemetry.jsonl` next
//! to a `metrics.json` summary, and the run finishes with a global
//! `telemetry.jsonl`, a registry-delta `metrics.json`, a rendered
//! `report.txt` and — when any engine recorded windowed series — a
//! `timeseries.jsonl` drained from the process-global series registry.
//! Progress output goes through the `swarm_obs` leveled
//! logger (so `SWARM_LOG=warn` silences it) and shares its console
//! lock, which keeps multi-line job text echoes from interleaving with
//! progress lines.

use crate::cache::{fingerprint64, CacheKey, ResultCache};
use crate::job::{JobOutput, JobSpec};
use crate::manifest::{
    ArtifactRecord, CacheDisposition, JobMetrics, JobRecord, JobStatus, Manifest,
};
use std::io;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::Instant;
use swarm_stats::parallel::{self, ThreadBudget};

/// How the result cache participates in a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Replay hits, compute and store misses (the default).
    #[default]
    Use,
    /// `--force`: recompute everything, storing fresh entries.
    Refresh,
    /// `--no-cache`: recompute everything, touching no entries.
    Off,
}

/// Orchestrator configuration for one run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Directory artifacts, the manifest and the cache live under.
    pub out_dir: PathBuf,
    /// Maximum number of jobs in flight at once.
    pub workers: usize,
    /// Global compute-thread budget shared by every job's inner
    /// parallelism (see [`ThreadBudget`]).
    pub thread_budget: usize,
    /// Quick (reduced-fidelity) mode — part of the cache key.
    pub quick: bool,
    /// Cache participation.
    pub cache: CacheMode,
    /// Code-version salt — part of the cache key (see
    /// [`crate::cache::code_salt`]).
    pub salt: String,
    /// Print live per-job progress lines to stderr.
    pub progress: bool,
    /// Print each job's rendered text to stdout as it completes.
    pub echo_text: bool,
    /// When set, enable `swarm_obs` recording for the run and write
    /// per-job and run-level telemetry under this directory.
    pub telemetry: Option<PathBuf>,
}

impl RunConfig {
    /// Defaults: as many workers as cores, a thread budget of all
    /// cores, cache on, salted by the running executable.
    pub fn new(out_dir: impl Into<PathBuf>) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        RunConfig {
            out_dir: out_dir.into(),
            workers: cores,
            thread_budget: cores,
            quick: false,
            cache: CacheMode::Use,
            salt: crate::cache::code_salt(),
            progress: false,
            echo_text: false,
            telemetry: None,
        }
    }
}

/// Outcome of one orchestrated run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The full per-job record, already saved to `manifest.json`.
    pub manifest: Manifest,
    /// Where the manifest was written.
    pub manifest_path: PathBuf,
    /// Directory telemetry was written under, when collected.
    pub telemetry_dir: Option<PathBuf>,
    /// Rendered end-of-run telemetry table, when collected.
    pub telemetry_report: Option<String>,
}

impl RunReport {
    /// True when every job succeeded (the CLI's exit-code criterion).
    pub fn all_ok(&self) -> bool {
        self.manifest.all_ok()
    }
}

// Panic messages are reported through the manifest; while at least one
// orchestrated run is active the default all-threads panic printer is
// silenced so a poisoned job cannot garble the progress output. The
// filtering hook is installed once and delegates to the previous hook
// whenever no run is active.
static QUIET_DEPTH: AtomicUsize = AtomicUsize::new(0);
static HOOK_ONCE: Once = Once::new();

struct QuietPanics;

impl QuietPanics {
    fn engage() -> Self {
        HOOK_ONCE.call_once(|| {
            let prev = panic::take_hook();
            panic::set_hook(Box::new(move |info| {
                if QUIET_DEPTH.load(Ordering::SeqCst) == 0 {
                    prev(info);
                }
            }));
        });
        QUIET_DEPTH.fetch_add(1, Ordering::SeqCst);
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        QUIET_DEPTH.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Run every job in `jobs` and write `manifest.json` under
/// `cfg.out_dir`. Always returns a report when the manifest could be
/// written — job failures are recorded in it, not bubbled up as errors.
pub fn run(jobs: &[JobSpec], cfg: &RunConfig) -> io::Result<RunReport> {
    let started = Instant::now();
    let _quiet = QuietPanics::engage();

    let prev_enabled = swarm_obs::enabled();
    if cfg.telemetry.is_some() {
        swarm_obs::set_enabled(true);
    }
    let metrics_base = swarm_obs::snapshot();
    let run_span = swarm_obs::span("lab.run");

    // Longest first (LPT); ties broken by id so the dispatch order is
    // deterministic.
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| {
        jobs[b]
            .cost_hint
            .partial_cmp(&jobs[a].cost_hint)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| jobs[a].id.cmp(&jobs[b].id))
    });

    let budget = Arc::new(ThreadBudget::new(cfg.thread_budget.max(1)));
    let workers = cfg.workers.clamp(1, budget.total()).min(jobs.len().max(1));
    // Each worker's own thread is funded from the budget up front, so
    // `workers + sum(inner leases)` can never exceed the budget.
    let own_permits: Vec<_> = (0..workers).map(|_| budget.try_lease(1)).collect();
    let prev_budget = parallel::set_global_budget(Some(Arc::clone(&budget)));

    let cache = ResultCache::new(cfg.out_dir.join(".cache"));
    let next = AtomicUsize::new(0);
    let finished = AtomicUsize::new(0);
    let busy_ns = AtomicU64::new(0);
    let records: Vec<Mutex<Option<JobRecord>>> =
        (0..jobs.len()).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for own in own_permits {
            let next = &next;
            let finished = &finished;
            let records = &records;
            let busy_ns = &busy_ns;
            let order = &order;
            let cache = &cache;
            scope.spawn(move || {
                let _own = own;
                loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= order.len() {
                        break;
                    }
                    if swarm_obs::enabled() {
                        let pending = order.len().saturating_sub(k + 1);
                        swarm_obs::gauge("lab.queue.depth").set(pending as i64);
                    }
                    let idx = order[k];
                    let spec = &jobs[idx];
                    if cfg.progress {
                        swarm_obs::log_info!(
                            "lab",
                            "start {} (est {:.1} s)",
                            spec.id,
                            spec.cost_hint
                        );
                    }
                    parallel::reset_lease_stats();
                    let job_t0 = Instant::now();
                    // The span must drop before the job scope so its
                    // closing event still carries the job tag, and both
                    // must drop before the drain below.
                    let (mut record, text) = {
                        let _job = swarm_obs::job_scope(&spec.id);
                        let _span = swarm_obs::span_labeled("lab.job", &spec.id);
                        run_one(spec, cfg, cache, started)
                    };
                    busy_ns.fetch_add(job_t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    let ls = parallel::lease_stats();
                    record.metrics = JobMetrics {
                        budget_peak_leases: 1 + ls.max_granted,
                        budget_wait_ms: ls.wait_ns as f64 / 1e6,
                        telemetry_events: 0,
                    };
                    if swarm_obs::enabled() {
                        match record.cache {
                            CacheDisposition::Hit => swarm_obs::counter("lab.cache.hit").inc(),
                            _ => swarm_obs::counter("lab.cache.miss").inc(),
                        }
                    }
                    if let Some(tdir) = cfg.telemetry.as_deref() {
                        let events = swarm_obs::drain_job(&spec.id);
                        record.metrics.telemetry_events = events.len() as u64;
                        if let Err(e) =
                            write_job_telemetry(tdir, &spec.id, &events, &record.metrics)
                        {
                            swarm_obs::log_warn!(
                                "lab",
                                "could not write telemetry for {}: {e}",
                                spec.id
                            );
                        }
                    }
                    let n_done = finished.fetch_add(1, Ordering::Relaxed) + 1;
                    if cfg.echo_text {
                        if let Some(text) = text {
                            // Hold the shared console lock so the
                            // multi-line block is not interleaved with
                            // progress lines from other workers.
                            let _io = swarm_obs::console();
                            println!("{text}");
                        }
                    }
                    if cfg.progress {
                        let cache_str = match record.cache {
                            CacheDisposition::Hit => "hit",
                            CacheDisposition::Miss => "miss",
                            CacheDisposition::Refresh => "refresh",
                            CacheDisposition::Off => "off",
                        };
                        match record.status {
                            JobStatus::Ok => swarm_obs::log_info!(
                                "lab",
                                "[{n_done:>3}/{:<3}] {:<20} ok      {:>7.2} s  cache={cache_str}",
                                order.len(),
                                record.id,
                                record.wall_s,
                            ),
                            JobStatus::Failed => swarm_obs::log_warn!(
                                "lab",
                                "[{n_done:>3}/{:<3}] {:<20} FAILED  {:>7.2} s  cache={cache_str}",
                                order.len(),
                                record.id,
                                record.wall_s,
                            ),
                        }
                    }
                    *records[idx].lock().expect("record slot") = Some(record);
                }
            });
        }
    });

    parallel::set_global_budget(prev_budget);
    drop(run_span);

    if swarm_obs::enabled() {
        let wall_ns = started.elapsed().as_nanos() as u64;
        let busy = busy_ns.load(Ordering::Relaxed);
        let capacity = wall_ns.saturating_mul(workers as u64);
        swarm_obs::counter("lab.workers.busy_ns").add(busy);
        swarm_obs::counter("lab.workers.idle_ns").add(capacity.saturating_sub(busy));
        swarm_obs::gauge("lab.budget.peak_leased").set_max(budget.peak_leased() as i64);
    }

    let manifest = Manifest {
        swarm_lab_version: env!("CARGO_PKG_VERSION").to_string(),
        run_id: swarm_obs::run_id().to_string(),
        ts_unix_ms: swarm_obs::start_unix_ms(),
        salt: cfg.salt.clone(),
        quick: cfg.quick,
        workers,
        thread_budget: budget.total(),
        wall_s: started.elapsed().as_secs_f64(),
        jobs: records
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("record slot")
                    .expect("every job produced a record")
            })
            .collect(),
    };
    let manifest_path = cfg.out_dir.join("manifest.json");
    let manifest_saved = manifest.save(&manifest_path);

    // Run telemetry is flushed even when the manifest save failed: the
    // event stream is the evidence needed to debug exactly that kind
    // of late-run failure, so it must never be lost to one.
    let mut telemetry_report = None;
    if let Some(tdir) = cfg.telemetry.as_deref() {
        let delta = swarm_obs::snapshot().delta_since(&metrics_base);
        let report = swarm_obs::render_report(&delta);
        if let Err(e) = write_run_telemetry(tdir, &delta, &report) {
            swarm_obs::log_warn!("lab", "could not write run telemetry: {e}");
        }
        telemetry_report = Some(report);
        swarm_obs::set_enabled(prev_enabled);
    }
    manifest_saved?;

    Ok(RunReport {
        manifest,
        manifest_path,
        telemetry_dir: cfg.telemetry.clone(),
        telemetry_report,
    })
}

/// Write one job's drained events and metrics summary under
/// `<dir>/<id>/`.
fn write_job_telemetry(
    dir: &Path,
    id: &str,
    events: &[swarm_obs::Event],
    metrics: &JobMetrics,
) -> io::Result<()> {
    let job_dir = dir.join(id);
    std::fs::create_dir_all(&job_dir)?;
    let mut jsonl = swarm_obs::header_line();
    jsonl.push_str(&swarm_obs::to_jsonl(events));
    std::fs::write(job_dir.join("telemetry.jsonl"), jsonl)?;
    let mut map = serde_json::Map::new();
    map.insert("id".to_string(), swarm_obs::val(id));
    map.insert(
        "metrics".to_string(),
        serde_json::to_value(metrics).map_err(io::Error::other)?,
    );
    let json =
        serde_json::to_string_pretty(&serde_json::Value::Object(map)).map_err(io::Error::other)?;
    std::fs::write(job_dir.join("metrics.json"), json)
}

/// Write the run-level residual event stream, metrics delta, rendered
/// report and (when any engine recorded one) the windowed time series
/// under `dir`.
fn write_run_telemetry(dir: &Path, delta: &swarm_obs::Snapshot, report: &str) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let events = swarm_obs::drain_all();
    let mut jsonl = swarm_obs::header_line();
    jsonl.push_str(&swarm_obs::to_jsonl(&events));
    std::fs::write(dir.join("telemetry.jsonl"), jsonl)?;
    let series = swarm_obs::drain_series();
    if !series.is_empty() {
        let mut ts = swarm_obs::header_line();
        ts.push_str(&swarm_obs::series_to_jsonl(&series));
        std::fs::write(dir.join("timeseries.jsonl"), ts)?;
    }
    let json = serde_json::to_string_pretty(delta).map_err(io::Error::other)?;
    std::fs::write(dir.join("metrics.json"), json)?;
    std::fs::write(dir.join("report.txt"), report)
}

/// Run (or replay) one job and build its manifest record. Never
/// panics: the job body is isolated with `catch_unwind` and I/O errors
/// become `Failed` records.
fn run_one(
    spec: &JobSpec,
    cfg: &RunConfig,
    cache: &ResultCache,
    run_started: Instant,
) -> (JobRecord, Option<String>) {
    let started_ms = run_started.elapsed().as_millis() as u64;
    let job_started = Instant::now();
    let key = CacheKey {
        id: &spec.id,
        quick: cfg.quick,
        salt: &cfg.salt,
    };

    let (outcome, disposition) = match cfg.cache {
        CacheMode::Use => match cache.load(&key) {
            Some(out) => (Ok(out), CacheDisposition::Hit),
            None => (execute_guarded(spec), CacheDisposition::Miss),
        },
        CacheMode::Refresh => (execute_guarded(spec), CacheDisposition::Refresh),
        CacheMode::Off => (execute_guarded(spec), CacheDisposition::Off),
    };

    let outcome = outcome.and_then(|out| check_declaration(spec, out));

    let (status, error, artifacts, text) = match outcome {
        Ok(out) => match write_artifacts(&cfg.out_dir, &out) {
            Ok(written) => {
                let computed_fresh = disposition != CacheDisposition::Hit;
                if computed_fresh && cfg.cache != CacheMode::Off {
                    if let Err(e) = cache.store(&key, &out) {
                        swarm_obs::log_warn!("lab", "could not cache {}: {e}", spec.id);
                    }
                }
                (JobStatus::Ok, None, written, Some(out.text))
            }
            Err(e) => (
                JobStatus::Failed,
                Some(format!("artifact write failed: {e}")),
                Vec::new(),
                None,
            ),
        },
        Err(msg) => (JobStatus::Failed, Some(msg), Vec::new(), None),
    };

    // A failed job leaves a marker in its own event stream: the job's
    // telemetry.jsonl then ends with the failure cause right after the
    // last pre-panic event, which is what post-mortems need. Emitted
    // inside the caller's job scope so the drain tags it correctly.
    if status == JobStatus::Failed {
        swarm_obs::emit(
            "job.failed",
            &[
                ("id", swarm_obs::val(&spec.id)),
                (
                    "error",
                    swarm_obs::val(error.as_deref().unwrap_or("unknown")),
                ),
            ],
        );
    }

    let record = JobRecord {
        id: spec.id.clone(),
        status,
        cache: disposition,
        started_ms,
        ended_ms: run_started.elapsed().as_millis() as u64,
        wall_s: job_started.elapsed().as_secs_f64(),
        threads_hint: spec.threads_hint,
        error,
        artifacts,
        metrics: JobMetrics::default(),
    };
    (record, text)
}

fn execute_guarded(spec: &JobSpec) -> Result<JobOutput, String> {
    panic::catch_unwind(AssertUnwindSafe(|| spec.execute())).map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            format!("panicked: {s}")
        } else if let Some(s) = payload.downcast_ref::<String>() {
            format!("panicked: {s}")
        } else {
            "panicked: (non-string payload)".to_string()
        }
    })
}

/// A job that declares artifacts must produce exactly those names —
/// catching drift between the registry and the experiment code.
fn check_declaration(spec: &JobSpec, out: JobOutput) -> Result<JobOutput, String> {
    if spec.artifacts.is_empty() {
        return Ok(out);
    }
    let mut declared: Vec<&str> = spec.artifacts.iter().map(String::as_str).collect();
    let mut produced: Vec<&str> = out.artifacts.iter().map(|a| a.name.as_str()).collect();
    declared.sort_unstable();
    produced.sort_unstable();
    if declared == produced {
        Ok(out)
    } else {
        Err(format!(
            "artifact declaration mismatch: declared {declared:?}, produced {produced:?}"
        ))
    }
}

fn write_artifacts(out_dir: &Path, out: &JobOutput) -> io::Result<Vec<ArtifactRecord>> {
    std::fs::create_dir_all(out_dir)?;
    let mut written = Vec::with_capacity(out.artifacts.len());
    for artifact in &out.artifacts {
        let path = out_dir.join(&artifact.name);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(&path, &artifact.contents)?;
        written.push(ArtifactRecord {
            path: artifact.name.clone(),
            bytes: artifact.contents.len() as u64,
            digest: format!("{:016x}", fingerprint64(artifact.contents.as_bytes())),
        });
    }
    Ok(written)
}
