//! Content-addressed result cache.
//!
//! A job's result is fully determined by (experiment id, quick flag,
//! code version): every experiment is seeded and deterministic, and the
//! thread count never changes results (`swarm_stats::parallel` is
//! index-ordered). So the cache key is the triple's fingerprint, with
//! the *code-version salt* standing in for "the code": by default the
//! fingerprint of the running executable itself ([`code_salt`]), which
//! changes on any rebuild that changes any code path. Cached entries are
//! the serialized [`JobOutput`] — replaying one rewrites the artifacts
//! byte-identically without running the experiment.
//!
//! Entries are written atomically (temp file + rename) so an interrupted
//! run never leaves a truncated entry, which is what makes interrupted
//! sweeps resumable: the next run replays every completed job from cache
//! and only recomputes the rest.

use crate::job::JobOutput;
use std::io;
use std::path::{Path, PathBuf};

/// 64-bit FNV-1a over 8-byte words — not the byte-at-a-time standard
/// FNV, just a fast, stable fingerprint for cache keys and artifact
/// digests (hashing a multi-megabyte executable must be cheap).
pub fn fingerprint64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        h ^= u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        // The remainder is at most 7 bytes, so slot 7 is free to carry
        // the tail length and disambiguate zero padding from real zeros.
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        tail[7] = rem.len() as u8;
        h ^= u64::from_le_bytes(tail);
        h = h.wrapping_mul(PRIME);
    }
    h ^ bytes.len() as u64
}

/// Code-version salt: the fingerprint of the running executable, so any
/// rebuild with different code invalidates the whole cache. Falls back
/// to the crate version when the executable cannot be read.
pub fn code_salt() -> String {
    std::env::current_exe()
        .ok()
        .and_then(|exe| std::fs::read(exe).ok())
        .map(|bytes| format!("{:016x}", fingerprint64(&bytes)))
        .unwrap_or_else(|| format!("pkg-{}", env!("CARGO_PKG_VERSION")))
}

/// The triple that determines a cached result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey<'a> {
    /// Experiment id.
    pub id: &'a str,
    /// Quick (reduced-fidelity) mode changes every result.
    pub quick: bool,
    /// Code-version salt (see [`code_salt`]).
    pub salt: &'a str,
}

impl CacheKey<'_> {
    /// Hex digest addressing this key's cache entry.
    pub fn digest(&self) -> String {
        let mut buf = Vec::with_capacity(self.id.len() + self.salt.len() + 4);
        buf.extend_from_slice(self.id.as_bytes());
        buf.push(0);
        buf.push(self.quick as u8);
        buf.push(0);
        buf.extend_from_slice(self.salt.as_bytes());
        format!("{:016x}", fingerprint64(&buf))
    }
}

/// On-disk store of [`JobOutput`]s under `<dir>/<id>-<digest>.json`.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ResultCache { dir: dir.into() }
    }

    /// The entry path for `key` (the id prefix keeps the directory
    /// human-navigable; the digest does the addressing).
    pub fn entry_path(&self, key: &CacheKey<'_>) -> PathBuf {
        self.dir.join(format!("{}-{}.json", key.id, key.digest()))
    }

    /// Load the cached output for `key`, if present and well-formed.
    pub fn load(&self, key: &CacheKey<'_>) -> Option<JobOutput> {
        let raw = std::fs::read_to_string(self.entry_path(key)).ok()?;
        serde_json::from_str(&raw).ok()
    }

    /// Store `output` under `key`, atomically.
    pub fn store(&self, key: &CacheKey<'_>, output: &JobOutput) -> io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let final_path = self.entry_path(key);
        let tmp_path = final_path.with_extension("json.tmp");
        let json = serde_json::to_string(output).map_err(io::Error::other)?;
        std::fs::write(&tmp_path, json)?;
        std::fs::rename(&tmp_path, &final_path)
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_distinguishes_lengths_and_content() {
        assert_ne!(fingerprint64(b"abc"), fingerprint64(b"abd"));
        assert_ne!(fingerprint64(b"abc\0"), fingerprint64(b"abc"));
        assert_ne!(fingerprint64(b""), fingerprint64(b"\0"));
        assert_eq!(fingerprint64(b"stable"), fingerprint64(b"stable"));
        // Word-aligned and unaligned inputs both hash deterministically.
        assert_eq!(fingerprint64(b"12345678"), fingerprint64(b"12345678"));
        assert_ne!(fingerprint64(b"12345678"), fingerprint64(b"123456789"));
    }

    #[test]
    fn key_digest_depends_on_every_component() {
        let base = CacheKey {
            id: "fig1",
            quick: true,
            salt: "s1",
        };
        let other_id = CacheKey {
            id: "fig2",
            ..base.clone()
        };
        let other_quick = CacheKey {
            quick: false,
            ..base.clone()
        };
        let other_salt = CacheKey {
            salt: "s2",
            ..base.clone()
        };
        assert_ne!(base.digest(), other_id.digest());
        assert_ne!(base.digest(), other_quick.digest());
        assert_ne!(base.digest(), other_salt.digest());
        assert_eq!(base.digest(), base.digest());
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = std::env::temp_dir().join("swarm-lab-cache-test");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::new(&dir);
        let key = CacheKey {
            id: "x",
            quick: false,
            salt: "v1",
        };
        assert!(cache.load(&key).is_none(), "cold cache misses");
        let out = JobOutput::text_only("body").with_artifact("x.txt", "body");
        cache.store(&key, &out).expect("store");
        assert_eq!(cache.load(&key), Some(out));
        // A different salt misses even with the entry on disk.
        let salted = CacheKey {
            salt: "v2",
            ..key.clone()
        };
        assert!(cache.load(&salted).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
