//! Run manifest: the machine-checkable record of one orchestrated run.
//!
//! `repro_out/manifest.json` captures, per job: status, cache
//! disposition, start/end offsets (milliseconds since the run started —
//! overlapping intervals are the observable proof that jobs ran
//! concurrently), wall time and artifact digests. CI fails a run on any
//! `Failed` entry and archives the manifest; interrupted runs are
//! diagnosed by comparing the manifest against the registry (jobs
//! missing from the manifest never ran and will be recomputed or
//! replayed from cache on the next invocation).

use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// Terminal state of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobStatus {
    /// Ran (or replayed from cache) and wrote all artifacts.
    Ok,
    /// Panicked, failed an artifact write, or broke its declaration.
    Failed,
}

/// How the result cache participated in one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheDisposition {
    /// Replayed from a cached result; the job body never ran.
    Hit,
    /// Looked up, absent; computed and stored.
    Miss,
    /// `--force`: computed and re-stored without looking up.
    Refresh,
    /// `--no-cache`: computed; nothing read or written.
    Off,
}

/// One artifact written into the output directory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArtifactRecord {
    /// Path relative to the output directory.
    pub path: String,
    /// Size in bytes.
    pub bytes: u64,
    /// Content fingerprint (hex, [`crate::cache::fingerprint64`]).
    pub digest: String,
}

/// Per-job telemetry summary recorded in the manifest: thread-budget
/// pressure attributed to the job's worker thread, and how many sink
/// events the job emitted (0 unless the run collected telemetry).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobMetrics {
    /// Peak concurrent threads the job held: its own worker thread plus
    /// the largest single extra-thread lease it obtained.
    pub budget_peak_leases: usize,
    /// Total milliseconds the job's lease calls spent waiting on the
    /// budget lock.
    pub budget_wait_ms: f64,
    /// Telemetry events drained into the job's `telemetry.jsonl`.
    pub telemetry_events: u64,
}

impl Default for JobMetrics {
    fn default() -> Self {
        JobMetrics {
            budget_peak_leases: 1,
            budget_wait_ms: 0.0,
            telemetry_events: 0,
        }
    }
}

/// Everything the orchestrator knows about one job after the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job id.
    pub id: String,
    /// Terminal state.
    pub status: JobStatus,
    /// Cache participation.
    pub cache: CacheDisposition,
    /// Start offset, milliseconds since the run began.
    pub started_ms: u64,
    /// End offset, milliseconds since the run began.
    pub ended_ms: u64,
    /// Wall seconds spent on this job.
    pub wall_s: f64,
    /// Inner-parallelism hint the job declared.
    pub threads_hint: usize,
    /// Panic message or I/O error for `Failed` entries.
    pub error: Option<String>,
    /// Artifacts written (empty for failed jobs).
    pub artifacts: Vec<ArtifactRecord>,
    /// Telemetry summary (budget pressure, event counts).
    pub metrics: JobMetrics,
}

/// The full record of one orchestrated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Orchestrator crate version that produced this manifest.
    pub swarm_lab_version: String,
    /// Process run id ([`swarm_obs::run_id`]) — matches the header of
    /// every telemetry file this run wrote, so offline analysis can
    /// correlate a manifest with its telemetry without mtimes. Empty
    /// in manifests predating the field.
    #[serde(default)]
    pub run_id: String,
    /// Wall-clock unix-epoch milliseconds at recorder start; 0 in
    /// manifests predating the field.
    #[serde(default)]
    pub ts_unix_ms: u64,
    /// Code-version salt the cache was keyed with.
    pub salt: String,
    /// Quick (reduced-fidelity) mode.
    pub quick: bool,
    /// Concurrent job workers the pool was sized to.
    pub workers: usize,
    /// Global compute-thread budget shared by all jobs.
    pub thread_budget: usize,
    /// Total run wall seconds.
    pub wall_s: f64,
    /// Per-job records, in registry order.
    pub jobs: Vec<JobRecord>,
}

impl Manifest {
    /// Records with `status == Failed`.
    pub fn failures(&self) -> impl Iterator<Item = &JobRecord> {
        self.jobs.iter().filter(|j| j.status == JobStatus::Failed)
    }

    /// True when every job completed successfully.
    pub fn all_ok(&self) -> bool {
        self.failures().next().is_none()
    }

    /// Records whose result was replayed from cache.
    pub fn cache_hits(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.cache == CacheDisposition::Hit)
            .count()
    }

    /// Serialize to pretty JSON and write atomically to `path`.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let json = serde_json::to_string_pretty(self).map_err(io::Error::other)?;
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, path)
    }

    /// Load and parse a manifest from `path`.
    pub fn load(path: &Path) -> io::Result<Self> {
        let raw = std::fs::read_to_string(path)?;
        serde_json::from_str(&raw).map_err(io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            swarm_lab_version: "0.1.0".to_string(),
            run_id: "deadbeefdeadbeef".to_string(),
            ts_unix_ms: 1_700_000_000_000,
            salt: "abc123".to_string(),
            quick: true,
            workers: 4,
            thread_budget: 8,
            wall_s: 1.25,
            jobs: vec![
                JobRecord {
                    id: "fig1".to_string(),
                    status: JobStatus::Ok,
                    cache: CacheDisposition::Miss,
                    started_ms: 0,
                    ended_ms: 900,
                    wall_s: 0.9,
                    threads_hint: 8,
                    error: None,
                    artifacts: vec![ArtifactRecord {
                        path: "fig1.txt".to_string(),
                        bytes: 42,
                        digest: "00ff".to_string(),
                    }],
                    metrics: JobMetrics {
                        budget_peak_leases: 4,
                        budget_wait_ms: 0.25,
                        telemetry_events: 17,
                    },
                },
                JobRecord {
                    id: "fig2".to_string(),
                    status: JobStatus::Failed,
                    cache: CacheDisposition::Off,
                    started_ms: 10,
                    ended_ms: 40,
                    wall_s: 0.03,
                    threads_hint: 1,
                    error: Some("panicked: boom".to_string()),
                    artifacts: vec![],
                    metrics: JobMetrics::default(),
                },
            ],
        }
    }

    #[test]
    fn accessors_reflect_contents() {
        let m = sample();
        assert!(!m.all_ok());
        assert_eq!(m.failures().count(), 1);
        assert_eq!(m.failures().next().unwrap().id, "fig2");
        assert_eq!(m.cache_hits(), 0);
    }

    #[test]
    fn manifests_predating_run_correlation_still_parse() {
        // Manifests written before run_id/ts_unix_ms existed must keep
        // loading (CI archives old ones); the fields default to empty.
        let mut v = serde_json::to_value(sample()).expect("to_value");
        match &mut v {
            serde_json::Value::Object(obj) => {
                obj.remove("run_id");
                obj.remove("ts_unix_ms");
            }
            other => panic!("expected object, got {other:?}"),
        }
        let raw = serde_json::to_string(&v).expect("to_string");
        let m: Manifest = serde_json::from_str(&raw).expect("parse without new fields");
        assert_eq!(m.run_id, "");
        assert_eq!(m.ts_unix_ms, 0);
    }

    #[test]
    fn manifest_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("swarm-lab-manifest-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("manifest.json");
        let m = sample();
        m.save(&path).expect("save");
        let back = Manifest::load(&path).expect("load");
        assert_eq!(back, m);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
