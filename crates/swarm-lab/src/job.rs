//! Typed job registry: what the orchestrator schedules.
//!
//! A [`JobSpec`] wraps one experiment behind a uniform interface — an id,
//! a human-readable title, a *cost hint* (expected wall seconds, used by
//! the longest-first scheduler), a *threads hint* (how much inner
//! parallelism the job would like, informing the worker-pool sizing) and
//! the list of artifact file names the job promises to produce. The work
//! itself is an opaque closure returning a [`JobOutput`]: rendered text
//! plus the artifact files as `(name, contents)` pairs. Keeping the
//! output self-contained (no side-effecting writes inside the job) is
//! what makes results cacheable and replayable: the orchestrator owns
//! every filesystem interaction.

use serde::{Deserialize, Serialize};

/// One schedulable unit of work.
pub struct JobSpec {
    /// Stable identifier (cache keys, manifest entries, CLI selection).
    pub id: String,
    /// Human-readable description of the artifact being regenerated.
    pub title: String,
    /// Expected wall-clock seconds (relative magnitude is what matters:
    /// the scheduler starts the most expensive jobs first so a long tail
    /// job never ends up alone at the end of the run).
    pub cost_hint: f64,
    /// Inner parallelism the job can exploit (via
    /// `swarm_stats::parallel::run_indexed`); informational.
    pub threads_hint: usize,
    /// File names (relative to the run's output directory) the job
    /// promises to produce. A mismatch with what it actually produces is
    /// reported as a job failure.
    pub artifacts: Vec<String>,
    run: Box<dyn Fn() -> JobOutput + Send + Sync>,
}

impl JobSpec {
    /// A job with defaults: cost 1 s, one thread, no declared artifacts.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        run: impl Fn() -> JobOutput + Send + Sync + 'static,
    ) -> Self {
        JobSpec {
            id: id.into(),
            title: title.into(),
            cost_hint: 1.0,
            threads_hint: 1,
            artifacts: Vec::new(),
            run: Box::new(run),
        }
    }

    /// Set the expected wall-clock cost in seconds.
    pub fn cost_hint(mut self, seconds: f64) -> Self {
        self.cost_hint = seconds;
        self
    }

    /// Set the desired inner parallelism.
    pub fn threads_hint(mut self, threads: usize) -> Self {
        self.threads_hint = threads.max(1);
        self
    }

    /// Declare the artifact file names this job produces.
    pub fn artifacts(mut self, names: impl IntoIterator<Item = String>) -> Self {
        self.artifacts = names.into_iter().collect();
        self
    }

    /// Execute the job body (panics propagate; the scheduler isolates
    /// them with `catch_unwind`).
    pub fn execute(&self) -> JobOutput {
        (self.run)()
    }
}

impl std::fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSpec")
            .field("id", &self.id)
            .field("title", &self.title)
            .field("cost_hint", &self.cost_hint)
            .field("threads_hint", &self.threads_hint)
            .field("artifacts", &self.artifacts)
            .finish_non_exhaustive()
    }
}

/// Everything a job produced, self-contained and serializable — this is
/// the unit the result cache stores and replays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOutput {
    /// Rendered human-readable report (tables, ASCII charts).
    pub text: String,
    /// Artifact files as `(name, contents)`, written by the orchestrator
    /// into the run's output directory.
    pub artifacts: Vec<Artifact>,
}

/// One output file of a job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Artifact {
    /// File name relative to the run's output directory.
    pub name: String,
    /// Full file contents (all repro artifacts are text: reports, JSON).
    pub contents: String,
}

impl JobOutput {
    /// Output with rendered text and no artifacts.
    pub fn text_only(text: impl Into<String>) -> Self {
        JobOutput {
            text: text.into(),
            artifacts: Vec::new(),
        }
    }

    /// Append an artifact file.
    pub fn with_artifact(mut self, name: impl Into<String>, contents: impl Into<String>) -> Self {
        self.artifacts.push(Artifact {
            name: name.into(),
            contents: contents.into(),
        });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let spec = JobSpec::new("j1", "a job", || JobOutput::text_only("hi"))
            .cost_hint(3.5)
            .threads_hint(0)
            .artifacts(vec!["j1.txt".to_string()]);
        assert_eq!(spec.id, "j1");
        assert_eq!(spec.cost_hint, 3.5);
        assert_eq!(spec.threads_hint, 1, "threads hint clamps to >= 1");
        assert_eq!(spec.artifacts, ["j1.txt"]);
        assert_eq!(spec.execute().text, "hi");
    }

    #[test]
    fn output_round_trips_through_json() {
        let out = JobOutput::text_only("report body")
            .with_artifact("a.txt", "report body")
            .with_artifact("a.json", "{\"k\":1}");
        let json = serde_json::to_string(&out).expect("serialize");
        let back: JobOutput = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, out);
    }
}
