//! Integration tests for the observability substrate: exact concurrent
//! counting, histogram merge/quantile properties, span nesting, and
//! JSONL round-trips through `serde_json`.
//!
//! The registry, sink and enable switch are process-wide and the test
//! harness runs tests on multiple threads, so every test uses its own
//! metric names / job labels, and tests that drain the sink or toggle
//! the switch serialize on a shared lock.

use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};
use swarm_obs::{metrics, sink, span};

/// Tests that toggle `set_enabled` or drain non-job events share this
/// lock; `enabled` is restored on drop even if the test panics.
fn obs_guard() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

struct Enabled {
    _guard: MutexGuard<'static, ()>,
}

impl Enabled {
    fn new() -> Self {
        let guard = obs_guard();
        swarm_obs::set_enabled(true);
        Enabled { _guard: guard }
    }
}

impl Drop for Enabled {
    fn drop(&mut self) {
        swarm_obs::set_enabled(false);
    }
}

#[test]
fn concurrent_counter_increments_sum_exactly() {
    let _on = Enabled::new();
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 20_000;
    let c = metrics::counter("test.concurrent.sum");
    let before = c.get();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(c.get() - before, THREADS as u64 * PER_THREAD);
}

#[test]
fn disabled_probes_record_nothing() {
    let _guard = obs_guard();
    swarm_obs::set_enabled(false);
    let c = metrics::counter("test.disabled.counter");
    let h = metrics::histogram("test.disabled.hist");
    let g = metrics::gauge("test.disabled.gauge");
    c.add(7);
    h.record(9);
    g.set(3);
    sink::emit("test.disabled", &[]);
    assert_eq!(c.get(), 0);
    assert!(h.snapshot().is_empty());
    assert_eq!(g.get(), 0);
    // A span created while disabled is inert: id 0, no histogram entry.
    let sp = span::span("test_disabled_span");
    assert_eq!(sp.id(), 0);
    drop(sp);
    assert!(metrics::histogram("span.test_disabled_span")
        .snapshot()
        .is_empty());
}

#[test]
fn gauge_set_max_is_a_high_water_mark() {
    let _on = Enabled::new();
    let g = metrics::gauge("test.gauge.peak");
    g.set(5);
    g.set_max(3);
    assert_eq!(g.get(), 5);
    g.set_max(11);
    assert_eq!(g.get(), 11);
}

#[test]
fn span_nesting_produces_well_formed_parent_child_records() {
    let _on = Enabled::new();
    let _job = span::job_scope("span-nest-test");
    {
        let outer = span::span("nest_outer");
        assert_eq!(outer.parent(), 0);
        {
            let inner = span::span("nest_inner");
            assert_eq!(inner.parent(), outer.id());
            let innermost = span::span("nest_innermost");
            assert_eq!(innermost.parent(), inner.id());
        }
        // Sibling after the nested pair closed: parent is `outer` again.
        let sibling = span::span("nest_sibling");
        assert_eq!(sibling.parent(), outer.id());
    }
    let events = sink::drain_job("span-nest-test");
    let spans: Vec<_> = events.iter().filter(|e| e.kind == "span").collect();
    assert_eq!(spans.len(), 4, "four spans closed: {events:?}");
    let field = |e: &sink::Event, k: &str| {
        e.fields
            .iter()
            .find(|(n, _)| n == k)
            .map(|(_, v)| v.clone())
            .unwrap()
    };
    // Spans arrive in drop order: innermost, inner, sibling, outer.
    let names: Vec<String> = spans
        .iter()
        .map(|e| field(e, "name").as_str().unwrap().to_string())
        .collect();
    assert_eq!(
        names,
        ["nest_innermost", "nest_inner", "nest_sibling", "nest_outer"]
    );
    let id_of = |name: &str| {
        spans
            .iter()
            .find(|e| field(e, "name").as_str().unwrap() == name)
            .map(|e| field(e, "id").as_u64().unwrap())
            .unwrap()
    };
    let parent_of = |name: &str| {
        spans
            .iter()
            .find(|e| field(e, "name").as_str().unwrap() == name)
            .map(|e| field(e, "parent").as_u64().unwrap())
            .unwrap()
    };
    assert_eq!(parent_of("nest_outer"), 0);
    assert_eq!(parent_of("nest_inner"), id_of("nest_outer"));
    assert_eq!(parent_of("nest_innermost"), id_of("nest_inner"));
    assert_eq!(parent_of("nest_sibling"), id_of("nest_outer"));
    for name in ["nest_outer", "nest_inner", "nest_innermost"] {
        assert!(
            !metrics::histogram(&format!("span.{name}"))
                .snapshot()
                .is_empty(),
            "span.{name} histogram recorded"
        );
    }
}

#[test]
fn job_scope_nests_and_restores() {
    assert_eq!(span::current_job(), None);
    {
        let _a = span::job_scope("outer-job");
        assert_eq!(span::current_job().as_deref(), Some("outer-job"));
        {
            let _b = span::job_scope("inner-job");
            assert_eq!(span::current_job().as_deref(), Some("inner-job"));
        }
        assert_eq!(span::current_job().as_deref(), Some("outer-job"));
    }
    assert_eq!(span::current_job(), None);
}

#[test]
fn sink_round_trips_through_serde_json() {
    let _on = Enabled::new();
    let _job = span::job_scope("jsonl-roundtrip-test");
    sink::emit(
        "test.kinds",
        &[
            ("int", sink::val(42u64)),
            ("neg", sink::val(-7i64)),
            ("float", sink::val(1.5f64)),
            ("text", sink::val("hello \"quoted\" \\ world")),
            ("flag", sink::val(true)),
            ("list", sink::val(vec![1u64, 2, 3])),
        ],
    );
    sink::emit("test.empty", &[]);
    let events = sink::drain_job("jsonl-roundtrip-test");
    assert_eq!(events.len(), 2);
    let jsonl = sink::to_jsonl(&events);
    assert_eq!(jsonl.lines().count(), 2);
    let parsed = sink::parse_jsonl(&jsonl).expect("round-trip parses");
    let canonical: Vec<_> = events.iter().map(|e| e.sorted_fields()).collect();
    assert_eq!(parsed, canonical, "JSONL round-trip preserves events");
    assert_eq!(parsed[0].job.as_deref(), Some("jsonl-roundtrip-test"));
    assert_eq!(
        parsed[0]
            .fields
            .iter()
            .find(|(k, _)| k == "text")
            .and_then(|(_, v)| v.as_str().map(String::from)),
        Some("hello \"quoted\" \\ world".to_string())
    );
}

#[test]
fn ring_drops_oldest_and_counts_drops() {
    let _on = Enabled::new();
    // Shrink, fill past capacity, then restore the default capacity.
    sink::set_ring_capacity(8);
    let before_drops = sink::dropped_events();
    let _job = span::job_scope("ring-test");
    for i in 0..20u64 {
        sink::emit("test.ring", &[("i", sink::val(i))]);
    }
    let events = sink::drain_job("ring-test");
    sink::set_ring_capacity(65_536);
    assert!(events.len() <= 8, "ring bounded: {}", events.len());
    assert!(sink::dropped_events() > before_drops);
    // Survivors are the newest events, in order.
    let is: Vec<u64> = events
        .iter()
        .map(|e| e.fields[0].1.as_u64().unwrap())
        .collect();
    let expect: Vec<u64> = (20 - is.len() as u64..20).collect();
    assert_eq!(is, expect);
}

#[test]
fn snapshot_delta_subtracts_counters_and_histograms() {
    let _on = Enabled::new();
    let c = metrics::counter("test.delta.counter");
    let h = metrics::histogram("test.delta.hist");
    c.add(3);
    h.record(10);
    let base = metrics::snapshot();
    c.add(4);
    h.record(20);
    h.record(30);
    let now = metrics::snapshot();
    let delta = now.delta_since(&base);
    assert_eq!(delta.counter("test.delta.counter"), 4);
    let dh = &delta.histograms["test.delta.hist"];
    assert_eq!(dh.count, 2);
    assert_eq!(dh.sum, 50);
}

#[test]
fn snapshot_serializes_and_deserializes() {
    let _on = Enabled::new();
    metrics::counter("test.serde.counter").add(5);
    metrics::gauge("test.serde.gauge").set(-3);
    metrics::histogram("test.serde.hist").record(1000);
    let snap = metrics::snapshot();
    let json = serde_json::to_string_pretty(&snap).expect("serializes");
    let back: metrics::Snapshot = serde_json::from_str(&json).expect("parses");
    assert_eq!(back, snap);
}

proptest! {
    /// Merging two histograms is equivalent to recording the
    /// concatenated observations, and quantile bounds always contain
    /// the true nearest-rank quantile of the raw data.
    #[test]
    fn histogram_merge_and_quantile_agree_with_raw_data(
        xs in prop::collection::vec(0u64..1u64 << 40, 1..200),
        ys in prop::collection::vec(0u64..1u64 << 40, 0..200),
        q in 0.0f64..1.0f64,
    ) {
        let mut hx = metrics::HistogramSnapshot::new();
        for &v in &xs { hx.record(v); }
        let mut hy = metrics::HistogramSnapshot::new();
        for &v in &ys { hy.record(v); }
        let mut merged = hx.clone();
        merged.merge(&hy);

        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        let mut direct = metrics::HistogramSnapshot::new();
        for &v in &all { direct.record(v); }
        prop_assert_eq!(&merged, &direct);
        prop_assert_eq!(merged.count as usize, all.len());
        prop_assert_eq!(merged.sum, all.iter().sum::<u64>());

        // Nearest-rank quantile of the raw data lands inside the
        // reported bucket bounds.
        all.sort_unstable();
        let rank = (q * (all.len() - 1) as f64).round() as usize;
        let true_q = all[rank];
        let (lo, hi) = merged.quantile_bounds(q).unwrap();
        prop_assert!(lo <= true_q && true_q <= hi,
            "quantile {} of raw data {} outside bucket [{}, {}]", q, true_q, lo, hi);

        // The interpolated quantile refines the bucket: it stays inside
        // the same bounds the raw-bound estimator reported.
        let est = merged.quantile(q).unwrap();
        prop_assert!(lo <= est && est <= hi,
            "interpolated quantile {} outside its bucket [{}, {}]", est, lo, hi);
    }

    /// Per-shard batching round-trip: splitting a value stream across k
    /// shards, each recording into its own plain snapshot and merging
    /// into the registry at its barrier, leaves the registry histogram
    /// identical to a single-threaded run that recorded every value
    /// directly. This is the invariant the catalog runtime's shard
    /// flush relies on.
    #[test]
    fn sharded_snapshot_merges_equal_single_threaded_registry(
        xs in prop::collection::vec(0u64..1u64 << 40, 1..300),
        shards in 1usize..8,
    ) {
        // Enabled::new() takes obs_guard() itself — acquiring it here
        // too would self-deadlock on the non-reentrant mutex.
        let _on = Enabled::new();
        // Registry histograms are process-global: uniquify per case so
        // earlier proptest cases cannot leak observations into this one.
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let sharded = metrics::histogram(&format!("test.shardmerge.{case}.sharded"));
        let single = metrics::histogram(&format!("test.shardmerge.{case}.single"));

        // Shard i takes every shards-th value (any partition works —
        // the merge is order- and assignment-independent).
        for s in 0..shards {
            let mut local = metrics::HistogramSnapshot::new();
            for &v in xs.iter().skip(s).step_by(shards) {
                local.record(v);
            }
            sharded.merge_snapshot(&local);
        }
        for &v in &xs {
            single.record(v);
        }
        prop_assert_eq!(sharded.snapshot(), single.snapshot());

        // Merging an empty shard is a no-op.
        sharded.merge_snapshot(&metrics::HistogramSnapshot::new());
        prop_assert_eq!(sharded.snapshot(), single.snapshot());
    }

    /// Interpolated quantiles are monotone in `q` and exact at the
    /// extremes of a single-bucket histogram.
    #[test]
    fn interpolated_quantiles_are_monotone(
        xs in prop::collection::vec(0u64..1u64 << 30, 1..150),
    ) {
        let mut h = metrics::HistogramSnapshot::new();
        for &v in &xs { h.record(v); }
        let mut prev = 0u64;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let est = h.quantile(q).unwrap();
            prop_assert!(est >= prev, "quantile not monotone at q={}: {} < {}", q, est, prev);
            prev = est;
        }
    }
}

#[test]
fn interpolated_quantile_spreads_within_bucket() {
    // 100 observations uniform over [64, 127] all land in one bucket;
    // interpolation must place p10 well below p90 (the raw-bound
    // estimator returned 127 for every quantile).
    let mut h = metrics::HistogramSnapshot::new();
    for i in 0..100u64 {
        h.record(64 + (i * 64) / 100);
    }
    let (lo, hi) = h.quantile_bounds(0.5).unwrap();
    assert_eq!((lo, hi), (64, 127));
    let p10 = h.quantile(0.10).unwrap();
    let p50 = h.quantile(0.50).unwrap();
    let p90 = h.quantile(0.90).unwrap();
    assert!(p10 < p50 && p50 < p90, "p10={p10} p50={p50} p90={p90}");
    // Uniform data: the interpolated estimates track the true quantiles
    // to within a few units.
    assert!((p50 as i64 - 96).abs() <= 3, "p50={p50}");
    assert!((p90 as i64 - 121).abs() <= 3, "p90={p90}");
}

#[test]
fn header_line_round_trips_and_is_skipped_by_event_parsing() {
    let _on = Enabled::new();
    let _job = span::job_scope("header-roundtrip-test");
    sink::emit("test.header", &[("x", sink::val(1u64))]);
    let events = sink::drain_job("header-roundtrip-test");
    let mut file = sink::header_line();
    file.push_str(&sink::to_jsonl(&events));

    let (header, parsed) = sink::parse_jsonl_with_header(&file).expect("parses");
    let header = header.expect("header present");
    assert_eq!(header.run_id, sink::run_id());
    assert_eq!(header.ts_unix_ms, sink::start_unix_ms());
    assert_eq!(parsed.len(), 1);
    assert!(!header.run_id.is_empty());

    // Plain parse_jsonl tolerates the header too.
    let plain = sink::parse_jsonl(&file).expect("parses");
    assert_eq!(plain.len(), 1);
}
