//! Ring-overflow accounting under concurrent emitters.
//!
//! This lives in its own integration-test binary (one process, one
//! test) because it exercises the process-global flight recorder at its
//! real 65 536-event capacity: no other test's emissions may interleave
//! with the accounting. The invariant under test: however emissions
//! race, `total emitted = drained + still buffered + dropped`, exactly.

use std::collections::HashSet;
use swarm_obs::{sink, span};

const RING_CAP: usize = 65_536;
const THREADS: u64 = 8;
/// Each thread overshoots the whole ring on its own, so the ring wraps
/// many times while all emitters are still running.
const PER_THREAD: u64 = 3 * RING_CAP as u64 / 2;

#[test]
fn drop_counts_stay_exact_when_the_ring_wraps_concurrently() {
    swarm_obs::set_enabled(true);
    let base_dropped = sink::dropped_events();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                let _job = span::job_scope(format!("ring-writer-{t}"));
                for i in 0..PER_THREAD {
                    sink::emit("overflow.test", &[("t", sink::val(t)), ("i", sink::val(i))]);
                }
            });
        }
    });
    swarm_obs::set_enabled(false);

    let emitted = THREADS * PER_THREAD;
    let dropped = sink::dropped_events() - base_dropped;

    // Drain per job first (order must be preserved per emitter), then
    // sweep the rest: the two drain paths share the accounting.
    let mut survivors = 0u64;
    let mut seqs = HashSet::new();
    for t in 0..THREADS {
        let events = sink::drain_job(&format!("ring-writer-{t}"));
        // Per-emitter order survives the wrap: `i` strictly increases.
        let mut prev_i = None;
        for e in &events {
            let i = e
                .fields
                .iter()
                .find(|(k, _)| k == "i")
                .and_then(|(_, v)| v.as_u64())
                .expect("i field");
            if let Some(p) = prev_i {
                assert!(i > p, "writer {t}: event order broken ({i} after {p})");
            }
            prev_i = Some(i);
            assert!(seqs.insert(e.seq), "duplicate seq {}", e.seq);
        }
        survivors += events.len() as u64;
    }
    // Anything left (events from other kinds — none here) still counts.
    survivors += sink::drain_all()
        .iter()
        .filter(|e| e.kind == "overflow.test")
        .count() as u64;

    assert!(
        survivors <= RING_CAP as u64,
        "ring bounded: {survivors} > {RING_CAP}"
    );
    assert_eq!(
        survivors + dropped,
        emitted,
        "accounting must be exact: {survivors} drained + {dropped} dropped != {emitted} emitted"
    );
    // The ring wrapped: far more was dropped than retained.
    assert!(dropped >= emitted - RING_CAP as u64);
}
