//! Labelled-family guarantees: concurrent increments across interned
//! labels merge exactly, and label interning round-trips through both
//! the member-name format and the JSONL sink.

use proptest::prelude::*;
use swarm_obs::{
    counter_family, family_metric_name, label, split_family_metric, val, ConnEvent, ConnPhase, Dir,
};

#[test]
fn parallel_increments_across_interned_labels_merge_exactly() {
    swarm_obs::set_enabled(true);
    const THREADS: usize = 8;
    const LABELS: usize = 5;
    const REPS: u64 = 2_000;
    let fam = counter_family("test.labels.parallel");
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                // Each thread resolves its own handles — interning and
                // slot creation race on purpose.
                let fam = counter_family("test.labels.parallel");
                for i in 0..REPS {
                    let l = label(&format!("conn-{}", (t as u64 + i) % LABELS as u64));
                    fam.with(l).inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    let snap = swarm_obs::snapshot();
    let per_label = (THREADS as u64 * REPS) / LABELS as u64;
    for i in 0..LABELS {
        let name = family_metric_name("test.labels.parallel", &format!("conn-{i}"));
        assert_eq!(snap.counter(&name), per_label, "{name}");
    }
    assert_eq!(
        fam.with_name("conn-0") as *const _,
        counter_family("test.labels.parallel").with(label("conn-0")) as *const _,
        "same (family, label) resolves to the same member"
    );
}

#[test]
fn typed_lifecycle_events_round_trip_the_sink() {
    swarm_obs::set_enabled(true);
    let _scope = swarm_obs::job_scope("labels-lifecycle-rt");
    let ev = ConnEvent {
        run: 3,
        tick: 17,
        local: 2,
        remote: 5,
        phase: ConnPhase::Snub,
        dir: Some(Dir::Rx),
        piece: Some(9),
    };
    ev.emit();
    let drained = swarm_obs::drain_job("labels-lifecycle-rt");
    let jsonl = swarm_obs::to_jsonl(&drained);
    let parsed = swarm_obs::parse_jsonl(&jsonl).expect("jsonl parses");
    let back: Vec<ConnEvent> = parsed.iter().filter_map(ConnEvent::from_event).collect();
    assert_eq!(back, vec![ev]);
}

proptest! {
    /// Any printable-ASCII label (braces and arrows included) survives
    /// interning, member-name formatting, a trip through the JSONL
    /// sink, and re-interning — ending at the same `Label` id.
    #[test]
    fn label_interning_round_trips_through_the_jsonl_sink(
        bytes in prop::collection::vec(32u8..127, 0..16),
        seq in 0u64..u64::MAX,
    ) {
        swarm_obs::set_enabled(true);
        let text: String = bytes.iter().map(|&b| b as char).collect();
        let l = label(&text);
        prop_assert_eq!(l.as_str(), text.as_str());

        // Member-name format/parse round-trip.
        let member = family_metric_name("test.labels.rt", l.as_str());
        let (fam, lab) = split_family_metric(&member).expect("member shape");
        prop_assert_eq!(fam, "test.labels.rt");
        prop_assert_eq!(lab, text.as_str());

        // JSONL round-trip: the member name rides an event field.
        let job = format!("labels-rt-{seq}");
        {
            let _scope = swarm_obs::job_scope(job.clone());
            swarm_obs::emit("test.label", &[("metric", val(&member))]);
        }
        let drained = swarm_obs::drain_job(&job);
        let parsed = swarm_obs::parse_jsonl(&swarm_obs::to_jsonl(&drained))
            .expect("jsonl parses");
        let got = parsed
            .iter()
            .find(|e| e.kind == "test.label")
            .and_then(|e| e.fields.iter().find(|(k, _)| k == "metric").cloned())
            .and_then(|(_, v)| v.as_str().map(str::to_string))
            .expect("metric field survives");
        let (_, lab) = split_family_metric(&got).expect("member shape after sink");
        prop_assert_eq!(label(lab), l, "re-interning lands on the same id");
    }
}
