//! Process-wide metrics registry: atomic counters and gauges, lock-free
//! fixed-bucket histograms, and serializable snapshots.
//!
//! Handles are `&'static` — [`counter`]/[`gauge`]/[`histogram`] intern
//! the name once (a short registry-lock critical section) and hand back
//! a leaked reference, so hot paths can cache the handle and mutate it
//! with nothing but relaxed atomics. All mutating operations are gated
//! on [`crate::enabled`] internally; callers need no `cfg` of their own.
//!
//! # Naming scheme
//!
//! `<crate>.<subsystem>.<metric>`, e.g. `bt.pieces.covered`,
//! `stats.budget.lease_wait_ns`, `lab.cache.hit`. Span histograms are
//! registered by [`crate::span`] under `span.<name>`. Units go in the
//! name suffix (`_ns`, `_ms`, `_bytes`) — there is no unit metadata.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Monotonic `u64` counter.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    #[inline(always)]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline(always)]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins signed gauge (with a `set_max` high-water helper).
#[derive(Debug)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    #[inline(always)]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    #[inline(always)]
    pub fn add(&self, d: i64) {
        if crate::enabled() {
            self.value.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Raise the gauge to `v` if above the current value (high-water mark).
    #[inline(always)]
    pub fn set_max(&self, v: i64) {
        if crate::enabled() {
            self.value.fetch_max(v, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Bucket count: one zero bucket plus one per power of two of `u64`.
pub const HIST_BUCKETS: usize = 65;

/// Index of the bucket holding `v`: 0 for 0, else `ilog2(v) + 1`.
/// Bucket `i >= 1` spans `[2^(i-1), 2^i - 1]`.
#[inline(always)]
fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Lock-free histogram over power-of-two buckets. Coarse (one bucket
/// per binary order of magnitude) but allocation-free and mergeable;
/// quantiles come back as bucket bounds, which is plenty for latency
/// tails and distribution shape.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    #[inline(always)]
    pub fn record(&self, v: u64) {
        if crate::enabled() {
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a duration in nanoseconds.
    #[inline(always)]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Merge an externally accumulated [`HistogramSnapshot`] into this
    /// registry histogram in one pass.
    ///
    /// This is the flush half of per-shard metric batching: a shard
    /// worker records into its own plain `HistogramSnapshot` (no
    /// atomics, no registry contention) and merges the whole thing at
    /// its barrier. Observations land in exactly the buckets a direct
    /// [`Histogram::record`] of each value would have used, so a
    /// batched multi-shard run and a single-threaded run produce
    /// identical registry snapshots for deterministic value streams.
    pub fn merge_snapshot(&self, snap: &HistogramSnapshot) {
        if !crate::enabled() || snap.count == 0 {
            return;
        }
        assert_eq!(
            snap.buckets.len(),
            HIST_BUCKETS,
            "snapshot bucket layout mismatch"
        );
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        for (b, &v) in self.buckets.iter().zip(&snap.buckets) {
            if v > 0 {
                b.fetch_add(v, Ordering::Relaxed);
            }
        }
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Owned, serializable copy of a [`Histogram`]. Also usable as a plain
/// single-threaded histogram via [`HistogramSnapshot::record`] (tests,
/// offline merging).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::new()
    }
}

impl HistogramSnapshot {
    pub fn new() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: vec![0; HIST_BUCKETS],
        }
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Non-atomic record, for building histograms outside the registry.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.buckets[bucket_index(v)] += 1;
    }

    /// Inclusive value range of bucket `i`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < HIST_BUCKETS);
        if i == 0 {
            (0, 0)
        } else {
            let lo = 1u64 << (i - 1);
            let hi = if i == 64 { u64::MAX } else { (1u64 << i) - 1 };
            (lo, hi)
        }
    }

    /// Add `other`'s observations into `self`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(self.buckets.len(), other.buckets.len());
        self.count += other.count;
        self.sum += other.sum;
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Observations recorded since `base` (normally an earlier snapshot
    /// of the same histogram). Saturates per field when `base` carries
    /// counts this snapshot lacks — a merged or reset base must not
    /// underflow — and keeps `self`'s bucket layout even when `base`
    /// has fewer buckets (zip would silently truncate, breaking the
    /// `HIST_BUCKETS` invariant downstream `merge_snapshot` asserts).
    /// When saturation zeroes `count` but bucket mass survives, `count`
    /// is raised to the surviving mass so the two stay consistent.
    pub fn delta_since(&self, base: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, a)| a.saturating_sub(base.buckets.get(i).copied().unwrap_or(0)))
            .collect();
        let mass: u64 = buckets.iter().sum();
        HistogramSnapshot {
            count: self.count.saturating_sub(base.count).max(mass),
            sum: self.sum.saturating_sub(base.sum),
            buckets,
        }
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `(lo, hi)` bounds of the bucket holding the `q`-quantile
    /// observation (nearest-rank), or `None` when empty.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        self.quantile_bucket(q)
            .map(|(i, _, _)| Self::bucket_bounds(i))
    }

    /// Bucket index holding the `q`-quantile observation, with the
    /// nearest-rank position and the cumulative count *before* that
    /// bucket (the ingredients of within-bucket interpolation).
    fn quantile_bucket(&self, q: f64) -> Option<(usize, u64, u64)> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            if cum + b > rank {
                return Some((i, rank, cum));
            }
            cum += b;
        }
        // Unreachable when counts are consistent; be forgiving if a
        // racy snapshot undercounted buckets relative to `count`.
        Some((HIST_BUCKETS - 1, rank, cum))
    }

    /// The `q`-quantile, linearly interpolated within the matched
    /// power-of-two bucket (observations are assumed uniform across the
    /// bucket, the usual fixed-bucket estimator); `None` when empty.
    ///
    /// The estimate always lies inside [`Self::quantile_bounds`], so it
    /// refines — never contradicts — the raw bound the previous
    /// implementation returned.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let (i, rank, cum_before) = self.quantile_bucket(q)?;
        let (lo, hi) = Self::bucket_bounds(i);
        let in_bucket = self.buckets[i];
        if in_bucket == 0 || hi == lo {
            return Some(hi);
        }
        // Nearest-rank position within the bucket, placed at the
        // midpoint of its 1/in_bucket slice of the value range.
        let frac = (rank.saturating_sub(cum_before) as f64 + 0.5) / in_bucket as f64;
        let mut est = lo as f64 + frac * (hi - lo) as f64;
        if in_bucket == self.count {
            // Every observation sits in this one bucket, so the global
            // mean is an exact within-bucket statistic. Re-center the
            // uniform fan on it: the median lands on the true mean
            // instead of the bucket midpoint (exact when all values are
            // equal — the common case for latency counters that only
            // ever saw one value), while the tails keep their spread.
            est += self.mean() - (lo as f64 + hi as f64) / 2.0;
        }
        Some((est.round() as u64).clamp(lo, hi))
    }

    /// Upper bound of the highest non-empty bucket (coarse max).
    pub fn max_bound(&self) -> Option<u64> {
        self.buckets
            .iter()
            .rposition(|&b| b > 0)
            .map(|i| Self::bucket_bounds(i).1)
    }

    /// Lower bound of the lowest non-empty bucket (coarse min).
    pub fn min_bound(&self) -> Option<u64> {
        self.buckets
            .iter()
            .position(|&b| b > 0)
            .map(|i| Self::bucket_bounds(i).0)
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    gauges: Mutex<BTreeMap<String, &'static Gauge>>,
    histograms: Mutex<BTreeMap<String, &'static Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

fn intern<T>(map: &Mutex<BTreeMap<String, &'static T>>, name: &str, make: fn() -> T) -> &'static T {
    let mut map = map.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(v) = map.get(name) {
        return v;
    }
    let v: &'static T = Box::leak(Box::new(make()));
    map.insert(name.to_string(), v);
    v
}

/// The counter registered under `name` (created on first use). Cache
/// the handle outside hot loops — interning takes the registry lock.
pub fn counter(name: &str) -> &'static Counter {
    intern(&registry().counters, name, Counter::new)
}

/// The gauge registered under `name` (created on first use).
pub fn gauge(name: &str) -> &'static Gauge {
    intern(&registry().gauges, name, Gauge::new)
}

/// The histogram registered under `name` (created on first use).
pub fn histogram(name: &str) -> &'static Histogram {
    intern(&registry().histograms, name, Histogram::new)
}

/// Point-in-time copy of every registered metric.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Snapshot the whole registry (counters, gauges, histograms).
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let counters = {
        let map = reg.counters.lock().unwrap_or_else(|e| e.into_inner());
        map.iter().map(|(k, c)| (k.clone(), c.get())).collect()
    };
    let gauges = {
        let map = reg.gauges.lock().unwrap_or_else(|e| e.into_inner());
        map.iter().map(|(k, g)| (k.clone(), g.get())).collect()
    };
    let histograms = {
        let map = reg.histograms.lock().unwrap_or_else(|e| e.into_inner());
        map.iter().map(|(k, h)| (k.clone(), h.snapshot())).collect()
    };
    Snapshot {
        counters,
        gauges,
        histograms,
    }
}

impl Snapshot {
    /// Activity between `base` (earlier) and `self` (later): counters
    /// and histograms are subtracted; gauges keep their latest value.
    /// Metrics absent from `base` appear with their full value.
    pub fn delta_since(&self, base: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| {
                (
                    k.clone(),
                    v.saturating_sub(base.counters.get(k).copied().unwrap_or(0)),
                )
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let d = match base.histograms.get(k) {
                    Some(b) => h.delta_since(b),
                    None => h.clone(),
                };
                (k.clone(), d)
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Counter value by name, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 1..HIST_BUCKETS {
            let (lo, hi) = HistogramSnapshot::bucket_bounds(i);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
        }
    }

    #[test]
    fn delta_since_saturates_against_heavier_base() {
        // A merged/reset base can carry counts the newer snapshot
        // lacks; the delta must saturate per bucket, keep the full
        // bucket layout, and keep count consistent with bucket mass.
        let mut newer = HistogramSnapshot::new();
        newer.record(1);
        newer.record(1);
        newer.record(1000);
        let mut base = HistogramSnapshot::new();
        for _ in 0..5 {
            base.record(1);
        }
        let d = newer.delta_since(&base);
        assert_eq!(d.buckets.len(), HIST_BUCKETS);
        assert_eq!(d.buckets[bucket_index(1)], 0);
        assert_eq!(d.buckets[bucket_index(1000)], 1);
        // Raw count delta saturates to 0, but one observation survives
        // in the buckets; count reflects it.
        assert_eq!(d.count, 1);
        assert_eq!(d.sum, 1002 - 5);

        // A base with a truncated bucket vector must not shrink the
        // delta's layout (zip-truncation would break merge_snapshot).
        let short_base = HistogramSnapshot {
            count: 1,
            sum: 1,
            buckets: vec![0; 3],
        };
        let d = newer.delta_since(&short_base);
        assert_eq!(d.buckets.len(), HIST_BUCKETS);
        assert_eq!(d.buckets[bucket_index(1000)], 1);

        // The ordinary direction is unchanged.
        let d = newer.delta_since(&HistogramSnapshot::new());
        assert_eq!(d.count, 3);
        assert_eq!(d.sum, 1002);
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let mut h = HistogramSnapshot::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // p0 sits in the bucket of 1, p100 in the bucket of 100.
        let (lo, _) = h.quantile_bounds(0.0).unwrap();
        assert_eq!(lo, 1);
        let (lo, hi) = h.quantile_bounds(1.0).unwrap();
        assert!(lo <= 100 && 100 <= hi);
        assert_eq!(h.max_bound(), Some(127));
        assert_eq!(h.min_bound(), Some(1));
        assert!((h.mean() - 50.5).abs() < 1e-9);
        assert!(HistogramSnapshot::new().quantile(0.5).is_none());
    }

    #[test]
    fn single_bucket_median_recenters_on_the_mean() {
        // All observations equal: the fan is re-centered on the global
        // mean, so the median is exact instead of the bucket midpoint.
        let mut h = HistogramSnapshot::new();
        for _ in 0..5 {
            h.record(100);
        }
        assert_eq!(h.quantile(0.5), Some(100));
        let mut prev = 0;
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let est = h.quantile(q).unwrap();
            assert!((64..=127).contains(&est), "q={q} est={est} out of bucket");
            assert!(est >= prev, "quantiles must be monotone in q");
            prev = est;
        }
        // A lone observation is recovered exactly too.
        let mut h = HistogramSnapshot::new();
        h.record(100);
        assert_eq!(h.quantile(0.5), Some(100));
        // Spread within one bucket: estimates stay clamped to the
        // bucket's bounds, which min/max report directly.
        let mut h = HistogramSnapshot::new();
        h.record(70);
        h.record(120);
        assert_eq!(h.min_bound(), Some(64));
        assert_eq!(h.max_bound(), Some(127));
        let med = h.quantile(0.5).unwrap();
        assert!((64..=127).contains(&med));
    }
}
