//! Tick-windowed time series: how counters evolve *during* a run.
//!
//! The rest of `swarm-obs` answers "how much, total?" — snapshot deltas
//! at end of run. This module answers "when?": a [`Recorder`]
//! accumulates counter deltas into fixed-width windows keyed by
//! **virtual ticks** (simulation time, never the wall clock), so the
//! series lives in the same deterministic domain as the engines that
//! feed it. Two runs that perform the same simulated work produce
//! bit-identical windows no matter how the work was scheduled:
//!
//! * window contents are additive `u64` deltas, so per-shard recorders
//!   [`Recorder::merge`] into the same totals regardless of shard count
//!   or worker interleaving;
//! * the downsampling stride is a pure function of the highest tick
//!   observed (see below), never of arrival order;
//! * zero-valued counters are never stored, so a fast-forwarded window
//!   (all counters flat) serializes exactly like the dense window it
//!   elides.
//!
//! # Bounded memory: power-of-two downsampling
//!
//! A recorder holds at most `cap` windows. When the observed tick range
//! outgrows `cap` windows of the base width, the stride doubles:
//! adjacent window pairs merge (their counters add) and every window
//! now covers `window * stride` ticks. The stride for a given reach is
//! `required_stride(max_tick, window, cap)` — the smallest power of two
//! `s` with `max_tick / (window * s) < cap` — so any sequence of
//! observations ending at the same `max_tick` lands on the same stride
//! and the same slots. Long catalog horizons degrade gracefully into
//! coarser windows instead of unbounded memory.
//!
//! # Serialization
//!
//! [`series_to_jsonl`] renders named series as JSONL beside the event
//! sink's `telemetry.jsonl`: one `{"kind":"ts.series",...}` line per
//! series (window, stride, capacity) followed by its
//! `{"kind":"ts.window",...}` lines. [`parse_timeseries`] round-trips
//! the format (a leading sink [`crate::Header`] line is tolerated).
//!
//! # The process-wide series registry
//!
//! Producers that outlive a single struct (engine runs, shard flushes)
//! merge their recorders into a named process-global series via
//! [`merge_series`]; orchestrators collect everything at end of run
//! with [`drain_series`] (the `repro` CLI writes `timeseries.jsonl`
//! from it) or pull one series with [`take_series`]. Merging is
//! commutative and associative, so flush order cannot perturb the
//! result.

use serde::{Deserialize, Serialize};
use serde_json::{Map, Value};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Default bound on the number of in-memory windows per recorder.
pub const DEFAULT_CAPACITY: usize = 512;

/// One serialized window: counter deltas accumulated over
/// `[start, start + len)` virtual ticks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Window {
    /// First virtual tick the window covers.
    pub start: u64,
    /// Window width in virtual ticks (`window * stride` at render time).
    pub len: u64,
    /// Counter deltas over the window. Zero-valued counters are never
    /// stored, so an all-flat window has an empty map.
    pub counters: BTreeMap<String, u64>,
}

/// A bounded, tick-windowed accumulator of counter deltas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recorder {
    /// Base window width in virtual ticks.
    window: u64,
    /// Maximum number of windows held in memory.
    cap: usize,
    /// Current downsampling factor (power of two; 1 = no downsampling).
    stride: u64,
    /// Highest virtual tick observed so far.
    max_tick: u64,
    /// True once any tick has been observed (distinguishes an untouched
    /// recorder from one that observed only tick 0).
    touched: bool,
    /// Slot index (`tick / (window * stride)`) → counter deltas. Keys
    /// are `Cow` so the hot path (engines adding under literal counter
    /// names) never allocates; only parsed or merged-in names own their
    /// storage.
    slots: BTreeMap<u64, BTreeMap<Cow<'static, str>, u64>>,
}

/// The smallest power-of-two stride `s` with
/// `max_tick / (window * s) < cap` — a pure function of the reach, so
/// downsampling decisions cannot depend on observation order.
fn required_stride(max_tick: u64, window: u64, cap: usize) -> u64 {
    let base_slot = max_tick / window;
    let mut s = 1u64;
    while base_slot / s >= cap as u64 {
        s <<= 1;
    }
    s
}

impl Recorder {
    /// A recorder with `window`-tick windows and the default capacity.
    pub fn new(window: u64) -> Recorder {
        Recorder::with_capacity(window, DEFAULT_CAPACITY)
    }

    /// A recorder holding at most `cap` windows before downsampling.
    pub fn with_capacity(window: u64, cap: usize) -> Recorder {
        assert!(window > 0, "window width must be positive");
        assert!(cap >= 2, "capacity must allow at least two windows");
        Recorder {
            window,
            cap,
            stride: 1,
            max_tick: 0,
            touched: false,
            slots: BTreeMap::new(),
        }
    }

    /// Base window width in virtual ticks.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Current downsampling stride (each slot covers `window * stride`
    /// ticks).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Maximum number of windows held before the stride doubles.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// True when no tick has been observed yet.
    pub fn is_empty(&self) -> bool {
        !self.touched
    }

    fn slot_of(&self, tick: u64) -> u64 {
        tick / self.window / self.stride
    }

    /// Halve the slot resolution until the stride reaches `to`,
    /// merging adjacent windows additively.
    fn rescale_to(&mut self, to: u64) {
        debug_assert!(to.is_power_of_two() && to >= self.stride);
        if to == self.stride {
            return;
        }
        let factor = to / self.stride;
        let mut merged: BTreeMap<u64, BTreeMap<Cow<'static, str>, u64>> = BTreeMap::new();
        for (idx, counters) in std::mem::take(&mut self.slots) {
            let dst = merged.entry(idx / factor).or_default();
            for (name, v) in counters {
                *dst.entry(name).or_insert(0) += v;
            }
        }
        self.slots = merged;
        self.stride = to;
    }

    /// Note that virtual tick `tick` exists, growing the stride if the
    /// reach outgrew the capacity. Does not create a slot.
    pub fn observe(&mut self, tick: u64) {
        self.touched = true;
        if tick > self.max_tick {
            self.max_tick = tick;
            let need = required_stride(self.max_tick, self.window, self.cap);
            if need > self.stride {
                self.rescale_to(need);
            }
        }
    }

    /// Mark the window containing `tick` as materialized (an explicit
    /// flat record) without storing any counter.
    pub fn touch(&mut self, tick: u64) {
        self.observe(tick);
        let slot = self.slot_of(tick);
        self.slots.entry(slot).or_default();
    }

    /// Add `delta` to counter `name` in the window containing `tick`.
    /// The window is materialized even when `delta` is zero, but zero
    /// values are never stored — elided (fast-forwarded) and dense runs
    /// of the same schedule serialize identically. Passing a `&'static
    /// str` (the normal case) never allocates.
    pub fn add(&mut self, tick: u64, name: impl Into<Cow<'static, str>>, delta: u64) {
        self.observe(tick);
        let slot = self.slot_of(tick);
        let counters = self.slots.entry(slot).or_default();
        if delta != 0 {
            let name = name.into();
            match counters.get_mut(name.as_ref()) {
                Some(v) => *v += delta,
                None => {
                    counters.insert(name, delta);
                }
            }
        }
    }

    /// Add a whole window's counters in one call: one stride check and
    /// one slot walk for the batch instead of one per counter. This is
    /// the engines' boundary-flush fast path.
    pub fn add_batch(&mut self, tick: u64, entries: &[(&'static str, u64)]) {
        self.observe(tick);
        let slot = self.slot_of(tick);
        let counters = self.slots.entry(slot).or_default();
        for &(name, delta) in entries {
            if delta != 0 {
                match counters.get_mut(name) {
                    Some(v) => *v += delta,
                    None => {
                        counters.insert(Cow::Borrowed(name), delta);
                    }
                }
            }
        }
    }

    /// Add constant per-tick counter rates over the whole span
    /// `[from, to)` — `from` and `to` base-window-aligned — in one call:
    /// the span folds into each overlapped slot analytically
    /// (`rate × overlap`), one map walk per *slot* instead of one
    /// [`Recorder::add_batch`] per window. Reach advances to the span's
    /// last base-window start, exactly what the window-by-window replay
    /// this short-cuts would have observed, so the stride, slot layout
    /// and serialized bytes come out identical to the dense path.
    pub fn add_span(&mut self, from: u64, to: u64, entries: &[(&'static str, u64)]) {
        if to <= from {
            return;
        }
        debug_assert!(
            from.is_multiple_of(self.window) && to.is_multiple_of(self.window),
            "add_span bounds must be window-aligned"
        );
        self.observe(from);
        self.observe((to - 1) / self.window * self.window);
        let slot_span = self.window * self.stride;
        let mut t = from;
        while t < to {
            let slot = t / slot_span;
            let end = ((slot + 1) * slot_span).min(to);
            let span = end - t;
            let counters = self.slots.entry(slot).or_default();
            for &(name, rate) in entries {
                let delta = rate * span;
                if delta != 0 {
                    match counters.get_mut(name) {
                        Some(v) => *v += delta,
                        None => {
                            counters.insert(Cow::Borrowed(name), delta);
                        }
                    }
                }
            }
            t = end;
        }
    }

    /// Fold `other` into `self` additively. Both recorders must share
    /// the base window width and capacity; the result's stride is the
    /// larger of the two (grown further if the combined reach demands
    /// it), so merging is commutative and associative.
    pub fn merge(&mut self, other: &Recorder) {
        assert_eq!(self.window, other.window, "window width mismatch in merge");
        assert_eq!(self.cap, other.cap, "capacity mismatch in merge");
        if other.is_empty() {
            return;
        }
        self.observe(other.max_tick);
        if other.stride > self.stride {
            self.rescale_to(other.stride);
        }
        let factor = self.stride / other.stride;
        for (idx, counters) in &other.slots {
            let dst = self.slots.entry(idx / factor).or_default();
            for (name, v) in counters {
                *dst.entry(name.clone()).or_insert(0) += v;
            }
        }
    }

    /// The materialized windows, sorted by start tick.
    pub fn windows(&self) -> Vec<Window> {
        let span = self.window * self.stride;
        self.slots
            .iter()
            .map(|(idx, counters)| Window {
                start: idx * span,
                len: span,
                counters: counters
                    .iter()
                    .map(|(name, &v)| (name.clone().into_owned(), v))
                    .collect(),
            })
            .collect()
    }

    /// Rebuild a recorder from parsed windows (used by
    /// [`parse_timeseries`]). Windows must have the given stride's span.
    fn from_windows(window: u64, cap: usize, stride: u64, windows: &[Window]) -> Recorder {
        let mut rec = Recorder::with_capacity(window, cap);
        rec.stride = stride;
        let span = window * stride;
        for w in windows {
            rec.touched = true;
            rec.max_tick = rec.max_tick.max(w.start + w.len.saturating_sub(1));
            let slot = w.start / span;
            let counters = rec.slots.entry(slot).or_default();
            for (name, v) in &w.counters {
                if *v != 0 {
                    *counters.entry(Cow::Owned(name.clone())).or_insert(0) += v;
                }
            }
        }
        rec
    }
}

/// Render one series header line (no trailing newline):
/// `{"kind":"ts.series","series":...,"window":...,"stride":...,"cap":...}`.
fn series_header_line(name: &str, rec: &Recorder) -> String {
    let mut obj = Map::new();
    obj.insert("kind".to_string(), crate::val("ts.series"));
    obj.insert("series".to_string(), crate::val(name));
    obj.insert("window".to_string(), crate::val(rec.window()));
    obj.insert("stride".to_string(), crate::val(rec.stride()));
    obj.insert("cap".to_string(), crate::val(rec.capacity() as u64));
    serde_json::to_string(&Value::Object(obj)).expect("value serializes")
}

fn window_line(name: &str, w: &Window) -> String {
    let mut obj = Map::new();
    obj.insert("kind".to_string(), crate::val("ts.window"));
    obj.insert("series".to_string(), crate::val(name));
    obj.insert("start".to_string(), crate::val(w.start));
    obj.insert("len".to_string(), crate::val(w.len));
    obj.insert("counters".to_string(), crate::val(&w.counters));
    serde_json::to_string(&Value::Object(obj)).expect("value serializes")
}

/// Render named series as JSONL: each series' `ts.series` header line
/// followed by its `ts.window` lines, series sorted by name.
pub fn series_to_jsonl(series: &BTreeMap<String, Recorder>) -> String {
    let mut out = String::new();
    for (name, rec) in series {
        out.push_str(&series_header_line(name, rec));
        out.push('\n');
        for w in rec.windows() {
            out.push_str(&window_line(name, &w));
            out.push('\n');
        }
    }
    out
}

/// Parse what [`series_to_jsonl`] produced back into named recorders.
/// Blank lines and non-`ts.*` lines (e.g. a sink header) are skipped;
/// a `ts.window` line whose series has no `ts.series` header is an
/// error, as is a malformed JSON line.
pub fn parse_timeseries(s: &str) -> Result<BTreeMap<String, Recorder>, String> {
    struct Parsed {
        window: u64,
        cap: usize,
        stride: u64,
        windows: Vec<Window>,
    }
    let mut by_name: BTreeMap<String, Parsed> = BTreeMap::new();
    for (i, line) in s.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let obj = match v.as_object() {
            Some(obj) => obj,
            None => continue,
        };
        let kind = obj.get("kind").and_then(Value::as_str).unwrap_or("");
        let bad = |what: &str| format!("line {}: {what}", i + 1);
        match kind {
            "ts.series" => {
                let name = obj
                    .get("series")
                    .and_then(Value::as_str)
                    .ok_or_else(|| bad("ts.series without a series name"))?;
                let get = |key: &str| {
                    obj.get(key)
                        .and_then(Value::as_u64)
                        .ok_or_else(|| bad(&format!("ts.series missing `{key}`")))
                };
                by_name.insert(
                    name.to_string(),
                    Parsed {
                        window: get("window")?,
                        cap: get("cap")? as usize,
                        stride: get("stride")?,
                        windows: Vec::new(),
                    },
                );
            }
            "ts.window" => {
                let name = obj
                    .get("series")
                    .and_then(Value::as_str)
                    .ok_or_else(|| bad("ts.window without a series name"))?;
                let parsed = by_name
                    .get_mut(name)
                    .ok_or_else(|| bad("ts.window before its ts.series header"))?;
                let get = |key: &str| {
                    obj.get(key)
                        .and_then(Value::as_u64)
                        .ok_or_else(|| bad(&format!("ts.window missing `{key}`")))
                };
                let counters = obj
                    .get("counters")
                    .and_then(Value::as_object)
                    .ok_or_else(|| bad("ts.window missing `counters`"))?
                    .iter()
                    .map(|(k, v)| {
                        v.as_u64()
                            .map(|n| (k.clone(), n))
                            .ok_or_else(|| bad(&format!("non-integer counter `{k}`")))
                    })
                    .collect::<Result<BTreeMap<_, _>, _>>()?;
                parsed.windows.push(Window {
                    start: get("start")?,
                    len: get("len")?,
                    counters,
                });
            }
            _ => {}
        }
    }
    Ok(by_name
        .into_iter()
        .map(|(name, p)| {
            let rec = Recorder::from_windows(p.window, p.cap, p.stride, &p.windows);
            (name, rec)
        })
        .collect())
}

/// Process-wide named series, fed by engine/shard flushes.
static SERIES: Mutex<BTreeMap<String, Recorder>> = Mutex::new(BTreeMap::new());

fn registry() -> std::sync::MutexGuard<'static, BTreeMap<String, Recorder>> {
    SERIES.lock().unwrap_or_else(|e| e.into_inner())
}

/// Fold `rec` into the process-global series `name` (creating it on
/// first merge). Commutative, so concurrent producers cannot perturb
/// the drained result.
pub fn merge_series(name: &str, rec: &Recorder) {
    let mut reg = registry();
    match reg.get_mut(name) {
        Some(existing) => existing.merge(rec),
        None => {
            reg.insert(name.to_string(), rec.clone());
        }
    }
}

/// Like [`merge_series`], but takes the recorder by value: the first
/// producer of a name moves its slots into the registry instead of
/// cloning them. Engines that are done with their recorder use this on
/// their finish path.
pub fn merge_series_owned(name: &str, rec: Recorder) {
    let mut reg = registry();
    match reg.get_mut(name) {
        Some(existing) => existing.merge(&rec),
        None => {
            reg.insert(name.to_string(), rec);
        }
    }
}

/// Remove and return the global series `name`, if it exists.
pub fn take_series(name: &str) -> Option<Recorder> {
    registry().remove(name)
}

/// Remove and return every global series.
pub fn drain_series() -> BTreeMap<String, Recorder> {
    std::mem::take(&mut *registry())
}

/// A copy of every global series, leaving the registry untouched.
pub fn snapshot_series() -> BTreeMap<String, Recorder> {
    registry().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(w: &Window) -> Vec<(&str, u64)> {
        w.counters.iter().map(|(k, v)| (k.as_str(), *v)).collect()
    }

    #[test]
    fn windows_accumulate_by_tick() {
        let mut rec = Recorder::with_capacity(10, 8);
        rec.add(0, "a", 1);
        rec.add(9, "a", 2);
        rec.add(10, "a", 5);
        rec.add(25, "b", 7);
        let ws = rec.windows();
        assert_eq!(ws.len(), 3);
        assert_eq!((ws[0].start, ws[0].len), (0, 10));
        assert_eq!(counters(&ws[0]), vec![("a", 3)]);
        assert_eq!(counters(&ws[1]), vec![("a", 5)]);
        assert_eq!((ws[2].start, ws[2].len), (20, 10));
        assert_eq!(counters(&ws[2]), vec![("b", 7)]);
    }

    #[test]
    fn zero_deltas_materialize_flat_windows() {
        let mut rec = Recorder::with_capacity(10, 8);
        rec.add(5, "a", 0);
        rec.touch(15);
        let ws = rec.windows();
        assert_eq!(ws.len(), 2);
        assert!(ws.iter().all(|w| w.counters.is_empty()));
    }

    #[test]
    fn downsampling_is_reach_determined() {
        // cap 4 × window 10 → stride doubles at tick 40, again at 80.
        let mut fwd = Recorder::with_capacity(10, 4);
        for t in 0..100 {
            fwd.add(t, "n", 1);
        }
        // Same ticks, different observation order (max first).
        let mut rev = Recorder::with_capacity(10, 4);
        for t in (0..100).rev() {
            rev.add(t, "n", 1);
        }
        assert_eq!(fwd.stride(), rev.stride());
        assert_eq!(fwd.windows(), rev.windows());
        assert_eq!(fwd.stride(), required_stride(99, 10, 4));
        let total: u64 = fwd.windows().iter().map(|w| w.counters["n"]).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn merge_is_commutative_across_strides() {
        // One recorder deep enough to downsample, one shallow.
        let mut deep = Recorder::with_capacity(10, 4);
        for t in 0..100 {
            deep.add(t, "n", 1);
        }
        let mut shallow = Recorder::with_capacity(10, 4);
        shallow.add(3, "n", 10);
        shallow.add(17, "m", 2);

        let mut ab = deep.clone();
        ab.merge(&shallow);
        let mut ba = shallow.clone();
        ba.merge(&deep);
        assert_eq!(ab.windows(), ba.windows());
        assert_eq!(ab.stride(), ba.stride());

        // Split-vs-whole: summing two halves equals one pass.
        let mut whole = Recorder::with_capacity(10, 4);
        let mut lo = Recorder::with_capacity(10, 4);
        let mut hi = Recorder::with_capacity(10, 4);
        for t in 0..100 {
            whole.add(t, "n", 1);
            if t < 50 {
                lo.add(t, "n", 1);
            } else {
                hi.add(t, "n", 1);
            }
        }
        let mut merged = lo.clone();
        merged.merge(&hi);
        assert_eq!(merged.windows(), whole.windows());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut rec = Recorder::new(10);
        rec.add(5, "a", 1);
        let before = rec.windows();
        rec.merge(&Recorder::new(10));
        assert_eq!(rec.windows(), before);
        let mut empty = Recorder::new(10);
        empty.merge(&rec);
        assert_eq!(empty.windows(), before);
    }

    #[test]
    fn jsonl_round_trip() {
        let mut bt = Recorder::with_capacity(64, 16);
        bt.add(0, "ticks", 64);
        bt.add(64, "ticks", 64);
        bt.add(64, "arrivals", 3);
        bt.touch(128);
        let mut cat = Recorder::with_capacity(168, 8);
        for t in (0..168 * 20).step_by(24) {
            cat.add(t, "on_seconds", 3600);
        }
        let mut series = BTreeMap::new();
        series.insert("bt".to_string(), bt);
        series.insert("catalog".to_string(), cat);

        let jsonl = format!("{}{}", crate::header_line(), series_to_jsonl(&series));
        let parsed = parse_timeseries(&jsonl).expect("parses");
        assert_eq!(parsed.len(), 2);
        for (name, rec) in &series {
            let got = &parsed[name];
            assert_eq!(got.window(), rec.window());
            assert_eq!(got.stride(), rec.stride());
            assert_eq!(got.windows(), rec.windows());
        }
        // Re-rendering the parsed series is byte-identical.
        assert_eq!(series_to_jsonl(&parsed), series_to_jsonl(&series));
    }

    #[test]
    fn parse_rejects_orphan_window() {
        let line = r#"{"kind":"ts.window","series":"x","start":0,"len":8,"counters":{}}"#;
        assert!(parse_timeseries(line).is_err());
    }

    #[test]
    fn registry_merge_take_drain() {
        // A name no other test uses: the registry is process-global.
        let name = "test.registry.series";
        let mut a = Recorder::new(8);
        a.add(0, "n", 1);
        let mut b = Recorder::new(8);
        b.add(8, "n", 2);
        merge_series(name, &a);
        merge_series(name, &b);
        let got = take_series(name).expect("series present");
        let mut want = a.clone();
        want.merge(&b);
        assert_eq!(got.windows(), want.windows());
        assert!(take_series(name).is_none());
    }
}
