//! Structured-event sink: a per-process flight recorder.
//!
//! [`emit`] appends an [`Event`] to a bounded in-memory ring (default
//! 65 536 events; oldest dropped first, with a drop count). Events are
//! stamped with a sequence number, microseconds since the recorder
//! started, and the current job label from [`crate::span::job_scope`],
//! so an orchestrator can [`drain_job`] each job's events into its own
//! `telemetry.jsonl` and [`drain_all`] the rest at end of run.
//!
//! Serialization is JSONL — one `serde_json` object per line — and
//! round-trips through [`parse_jsonl`].
//!
//! Every process gets a [`run_id`] (stable for the process lifetime)
//! and a wall-clock anchor: [`header_line`] renders both as the
//! `{"kind":"header", ...}` first line of a telemetry file, so offline
//! analysis (`swarm-trace diff`) can correlate two runs without
//! relying on file mtimes. `ts_unix_ms + ts_us/1000` converts any
//! event's monotonic stamp back to wall-clock time.

use serde_json::{Map, Value};
use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// One structured event. `fields` preserves emission order in memory;
/// the JSON form nests them under `"fields"` (sorted by key — the
/// vendored `serde_json::Map` is a `BTreeMap`).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Sequence number over the whole process run (drops leave gaps in
    /// the ring but `seq` stays contiguous at emission).
    pub seq: u64,
    /// Microseconds since the recorder first started.
    pub ts_us: u64,
    /// Event kind, e.g. `"span"`, `"log"`, `"mc.progress"`.
    pub kind: String,
    /// Job label active on the emitting thread, if any.
    pub job: Option<String>,
    pub fields: Vec<(String, Value)>,
}

/// Serialize any `serde::Serialize` value into a JSON [`Value`] for an
/// event field. The vendored `to_value` cannot fail for these types.
pub fn val<T: serde::Serialize>(v: T) -> Value {
    serde_json::to_value(&v).expect("vendored to_value is infallible")
}

impl Event {
    pub fn to_value(&self) -> Value {
        let mut obj = Map::new();
        obj.insert("seq".to_string(), val(self.seq));
        obj.insert("ts_us".to_string(), val(self.ts_us));
        obj.insert("kind".to_string(), val(&self.kind));
        if let Some(job) = &self.job {
            obj.insert("job".to_string(), val(job));
        }
        let mut fields = Map::new();
        for (k, v) in &self.fields {
            fields.insert(k.clone(), v.clone());
        }
        obj.insert("fields".to_string(), Value::Object(fields));
        Value::Object(obj)
    }

    /// Parse back what [`Event::to_value`] produced. Field order comes
    /// back sorted by key.
    pub fn from_value(v: &Value) -> Option<Event> {
        let obj = v.as_object()?;
        Some(Event {
            seq: obj.get("seq")?.as_u64()?,
            ts_us: obj.get("ts_us")?.as_u64()?,
            kind: obj.get("kind")?.as_str()?.to_string(),
            job: match obj.get("job") {
                Some(j) => Some(j.as_str()?.to_string()),
                None => None,
            },
            fields: obj
                .get("fields")?
                .as_object()?
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        })
    }

    pub fn to_jsonl_line(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("value serializes")
    }

    /// A copy with `fields` sorted by key, the canonical order JSONL
    /// round-trips produce.
    pub fn sorted_fields(&self) -> Event {
        let mut e = self.clone();
        e.fields.sort_by(|a, b| a.0.cmp(&b.0));
        e
    }
}

/// Render events as JSONL (one JSON object per line, trailing newline).
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_jsonl_line());
        out.push('\n');
    }
    out
}

/// Parse JSONL produced by [`to_jsonl`]; blank lines and [`Header`]
/// lines are skipped.
pub fn parse_jsonl(s: &str) -> Result<Vec<Event>, String> {
    parse_jsonl_with_header(s).map(|(_, events)| events)
}

/// Parse a telemetry JSONL stream into its header (if any line carries
/// one; the first wins) and events.
pub fn parse_jsonl_with_header(s: &str) -> Result<(Option<Header>, Vec<Event>), String> {
    let mut header = None;
    let mut events = Vec::new();
    for (i, line) in s.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if let Some(h) = Header::from_value(&v) {
            header.get_or_insert(h);
            continue;
        }
        events.push(Event::from_value(&v).ok_or_else(|| format!("line {}: not an event", i + 1))?);
    }
    Ok((header, events))
}

struct Ring {
    buf: VecDeque<Event>,
    cap: usize,
    total: u64,
    dropped: u64,
}

struct Recorder {
    start: Instant,
    start_unix_ms: u64,
    run_id: String,
    ring: Mutex<Ring>,
}

fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(|| {
        let start_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        // FNV-1a over (pid, wall clock): unique enough to tell two runs
        // apart in a diff, cheap enough to need no external entropy.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in std::process::id()
            .to_le_bytes()
            .into_iter()
            .chain(start_unix_ms.to_le_bytes())
        {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        Recorder {
            start: Instant::now(),
            start_unix_ms,
            run_id: format!("{h:016x}"),
            ring: Mutex::new(Ring {
                buf: VecDeque::new(),
                cap: 65_536,
                total: 0,
                dropped: 0,
            }),
        }
    })
}

/// Process-unique run identifier (stable for the process lifetime).
/// Every telemetry file this process writes carries it in its header,
/// which is how `swarm-trace diff` matches up two runs.
pub fn run_id() -> &'static str {
    &recorder().run_id
}

/// Wall-clock unix-epoch milliseconds at recorder initialization — the
/// anchor that converts event `ts_us` offsets back to absolute time.
pub fn start_unix_ms() -> u64 {
    recorder().start_unix_ms
}

/// The metadata line heading each telemetry JSONL file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Process run id (see [`run_id`]).
    pub run_id: String,
    /// Wall-clock unix-epoch milliseconds at recorder start.
    pub ts_unix_ms: u64,
}

impl Header {
    /// Parse a `{"kind":"header",...}` JSON value; `None` when `v` is
    /// anything else.
    pub fn from_value(v: &Value) -> Option<Header> {
        let obj = v.as_object()?;
        if obj.get("kind")?.as_str()? != "header" {
            return None;
        }
        Some(Header {
            run_id: obj.get("run_id")?.as_str()?.to_string(),
            ts_unix_ms: obj.get("ts_unix_ms")?.as_u64()?,
        })
    }
}

/// Render this process's header as one JSONL line (with trailing
/// newline): `{"kind":"header","run_id":...,"ts_unix_ms":...}`.
/// Writers prepend it to every `telemetry.jsonl`.
pub fn header_line() -> String {
    let mut obj = Map::new();
    obj.insert("kind".to_string(), val("header"));
    obj.insert("run_id".to_string(), val(run_id()));
    obj.insert("ts_unix_ms".to_string(), val(start_unix_ms()));
    let mut line = serde_json::to_string(&Value::Object(obj)).expect("value serializes");
    line.push('\n');
    line
}

/// Append an event to the flight recorder (no-op unless
/// [`crate::enabled`]). `fields` are copied; keep them small.
pub fn emit(kind: &str, fields: &[(&str, Value)]) {
    if !crate::enabled() {
        return;
    }
    let rec = recorder();
    let ts_us = rec.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
    let job = crate::span::current_job();
    let mut ring = rec.ring.lock().unwrap_or_else(|e| e.into_inner());
    let seq = ring.total;
    ring.total += 1;
    if ring.buf.len() >= ring.cap {
        ring.buf.pop_front();
        ring.dropped += 1;
    }
    ring.buf.push_back(Event {
        seq,
        ts_us,
        kind: kind.to_string(),
        job,
        fields: fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    });
}

/// Resize the ring (oldest events beyond the new capacity are dropped).
pub fn set_ring_capacity(cap: usize) {
    let mut ring = recorder().ring.lock().unwrap_or_else(|e| e.into_inner());
    ring.cap = cap.max(1);
    while ring.buf.len() > ring.cap {
        ring.buf.pop_front();
        ring.dropped += 1;
    }
}

/// Events evicted from the ring since process start.
pub fn dropped_events() -> u64 {
    recorder()
        .ring
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .dropped
}

/// Remove and return the events tagged with job label `label`,
/// preserving emission order. Other events stay in the ring.
pub fn drain_job(label: &str) -> Vec<Event> {
    let mut ring = recorder().ring.lock().unwrap_or_else(|e| e.into_inner());
    let mut taken = Vec::new();
    let mut kept = VecDeque::with_capacity(ring.buf.len());
    for e in ring.buf.drain(..) {
        if e.job.as_deref() == Some(label) {
            taken.push(e);
        } else {
            kept.push_back(e);
        }
    }
    ring.buf = kept;
    taken
}

/// Remove and return every buffered event, preserving emission order.
pub fn drain_all() -> Vec<Event> {
    let mut ring = recorder().ring.lock().unwrap_or_else(|e| e.into_inner());
    ring.buf.drain(..).collect()
}
