//! End-of-run text rendering of a metrics [`Snapshot`] delta: top spans
//! by total wall time, counter deltas, gauge values and histogram
//! quantiles. The output is a human-oriented table; machine consumers
//! should read the JSON snapshot instead.

use crate::metrics::{HistogramSnapshot, Snapshot};
use std::fmt::Write as _;

/// Format a nanosecond quantity as a human duration.
pub fn fmt_duration_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn fmt_count(v: u64) -> String {
    if v >= 10_000_000 {
        format!("{:.1}M", v as f64 / 1e6)
    } else if v >= 10_000 {
        format!("{:.1}k", v as f64 / 1e3)
    } else {
        v.to_string()
    }
}

/// True when a histogram's observations are nanoseconds (span timings
/// and any metric named with a `_ns` suffix) and should render as
/// durations.
fn is_duration_hist(name: &str) -> bool {
    name.starts_with("span.") || name.ends_with("_ns")
}

/// Render the standard end-of-run telemetry table from a snapshot
/// delta (see [`Snapshot::delta_since`]). Sections with no data are
/// omitted; an entirely empty delta renders a single placeholder line.
pub fn render_report(delta: &Snapshot) -> String {
    let mut out = String::new();

    // --- Top spans by total wall time -------------------------------
    let mut spans: Vec<(&str, &HistogramSnapshot)> = delta
        .histograms
        .iter()
        .filter(|(k, h)| k.starts_with("span.") && !h.is_empty())
        .map(|(k, h)| (k.as_str(), h))
        .collect();
    spans.sort_by(|a, b| b.1.sum.cmp(&a.1.sum).then(a.0.cmp(b.0)));
    if !spans.is_empty() {
        out.push_str("top spans by total wall time\n");
        let _ = writeln!(
            out,
            "  {:<28} {:>8} {:>12} {:>12}",
            "span", "count", "total", "mean"
        );
        for (name, h) in spans.iter().take(12) {
            let _ = writeln!(
                out,
                "  {:<28} {:>8} {:>12} {:>12}",
                name.trim_start_matches("span."),
                fmt_count(h.count),
                fmt_duration_ns(h.sum),
                fmt_duration_ns(h.mean() as u64),
            );
        }
    }

    // --- Counter deltas --------------------------------------------
    let counters: Vec<(&str, u64)> = delta
        .counters
        .iter()
        .filter(|(_, &v)| v > 0)
        .map(|(k, &v)| (k.as_str(), v))
        .collect();
    if !counters.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str("counters\n");
        for (name, v) in &counters {
            let shown = if name.ends_with("_ns") {
                fmt_duration_ns(*v)
            } else {
                fmt_count(*v)
            };
            let _ = writeln!(out, "  {name:<36} {shown:>12}");
        }
    }

    // --- Gauges (latest values) ------------------------------------
    let gauges: Vec<(&str, i64)> = delta
        .gauges
        .iter()
        .filter(|(_, &v)| v != 0)
        .map(|(k, &v)| (k.as_str(), v))
        .collect();
    if !gauges.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str("gauges (latest)\n");
        for (name, v) in &gauges {
            let _ = writeln!(out, "  {name:<36} {v:>12}");
        }
    }

    // --- Histogram quantiles (non-span) ----------------------------
    let hists: Vec<(&str, &HistogramSnapshot)> = delta
        .histograms
        .iter()
        .filter(|(k, h)| !k.starts_with("span.") && !h.is_empty())
        .map(|(k, h)| (k.as_str(), h))
        .collect();
    if !hists.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str("histogram quantiles (within-bucket estimates; min/max are bucket bounds)\n");
        let _ = writeln!(
            out,
            "  {:<28} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "histogram", "count", "min", "p50", "p90", "p99", "p99.9", "max"
        );
        for (name, h) in &hists {
            let q = |p: f64| h.quantile(p).unwrap_or(0);
            let f = |v: u64| {
                if is_duration_hist(name) {
                    fmt_duration_ns(v)
                } else {
                    fmt_count(v)
                }
            };
            let _ = writeln!(
                out,
                "  {:<28} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                name,
                fmt_count(h.count),
                f(h.min_bound().unwrap_or(0)),
                f(q(0.50)),
                f(q(0.90)),
                f(q(0.99)),
                f(q(0.999)),
                f(h.max_bound().unwrap_or(0)),
            );
        }
    }

    if out.is_empty() {
        out.push_str("no telemetry recorded\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(fmt_duration_ns(512), "512 ns");
        assert_eq!(fmt_duration_ns(1_500), "1.50 µs");
        assert_eq!(fmt_duration_ns(2_500_000), "2.50 ms");
        assert_eq!(fmt_duration_ns(3_200_000_000), "3.20 s");
    }

    #[test]
    fn empty_delta_renders_placeholder() {
        let s = render_report(&Snapshot::default());
        assert!(s.contains("no telemetry recorded"));
    }
}
