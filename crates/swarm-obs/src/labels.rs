//! Labelled metric families over an interned-label registry.
//!
//! A *family* is a named group of metrics distinguished by one label:
//! `net.conn.bytes_in{2->5}` is the member of family
//! `net.conn.bytes_in` at label `2->5`. Per-connection and per-peer
//! metrics need one member per entity, and the hot path (a byte counter
//! bumped per wire frame) must not pay `format!` for the member name on
//! every observation. The split here:
//!
//! * [`label`] interns a label string once into a process-wide
//!   [`Label`] id (a `u32` index; the string is leaked, so
//!   [`Label::as_str`] is `&'static`).
//! * A family caches the `&'static` metric handle per label id in a
//!   slot vector. [`Family::with`] is an uncontended `RwLock` read plus
//!   an indexed load after the first call for a given label — the
//!   member name is formatted exactly once, at slot creation.
//!
//! Members are ordinary registry metrics named
//! `family{label}` (see [`family_metric_name`]), so they appear in
//! [`crate::snapshot`], reports and telemetry like any other metric,
//! and [`split_family_metric`] recovers `(family, label)` offline.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock, RwLock};

use crate::metrics::{Counter, Gauge, Histogram};

/// Interned label id. `Copy`, cheap to store per connection/peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(u32);

#[derive(Default)]
struct LabelTable {
    by_name: BTreeMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn table() -> &'static RwLock<LabelTable> {
    static TABLE: OnceLock<RwLock<LabelTable>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(LabelTable::default()))
}

/// Intern `name` into the process-wide label table (idempotent; the
/// same string always maps to the same [`Label`]).
pub fn label(name: &str) -> Label {
    {
        let t = table().read().unwrap_or_else(|e| e.into_inner());
        if let Some(&id) = t.by_name.get(name) {
            return Label(id);
        }
    }
    let mut t = table().write().unwrap_or_else(|e| e.into_inner());
    if let Some(&id) = t.by_name.get(name) {
        return Label(id);
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    let id = u32::try_from(t.names.len()).expect("label table overflow");
    t.names.push(leaked);
    t.by_name.insert(leaked, id);
    Label(id)
}

impl Label {
    /// The interned label string.
    pub fn as_str(self) -> &'static str {
        table().read().unwrap_or_else(|e| e.into_inner()).names[self.0 as usize]
    }
}

/// The registry name of family member `label`: `family{label}`.
pub fn family_metric_name(family: &str, label: &str) -> String {
    format!("{family}{{{label}}}")
}

/// Split a member name back into `(family, label)`; `None` when `name`
/// is not of the `family{label}` shape. Inverse of
/// [`family_metric_name`] for any family name free of `{`.
pub fn split_family_metric(name: &str) -> Option<(&str, &str)> {
    let open = name.find('{')?;
    let inner = name.strip_suffix('}')?;
    Some((&name[..open], &inner[open + 1..]))
}

/// A named family of metrics of one kind, keyed by [`Label`].
#[derive(Debug)]
pub struct Family<T: 'static> {
    name: &'static str,
    intern_metric: fn(&str) -> &'static T,
    slots: RwLock<Vec<Option<&'static T>>>,
}

/// Family of [`Counter`]s.
pub type CounterFamily = Family<Counter>;
/// Family of [`Gauge`]s.
pub type GaugeFamily = Family<Gauge>;
/// Family of [`Histogram`]s.
pub type HistogramFamily = Family<Histogram>;

impl<T> Family<T> {
    /// The family name (the part before `{label}`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The member at `l`, creating (and registering) it on first use.
    /// After the first call per label this is a read-lock and an
    /// indexed load — no allocation, no formatting.
    pub fn with(&self, l: Label) -> &'static T {
        let i = l.0 as usize;
        {
            let slots = self.slots.read().unwrap_or_else(|e| e.into_inner());
            if let Some(Some(m)) = slots.get(i) {
                return m;
            }
        }
        let metric = (self.intern_metric)(&family_metric_name(self.name, l.as_str()));
        let mut slots = self.slots.write().unwrap_or_else(|e| e.into_inner());
        if slots.len() <= i {
            slots.resize(i + 1, None);
        }
        // Idempotent under races: the registry interns by name, so two
        // threads resolving the same label get the same `&'static T`.
        slots[i] = Some(metric);
        metric
    }

    /// Convenience: intern `label_name` and resolve the member.
    pub fn with_name(&self, label_name: &str) -> &'static T {
        self.with(label(label_name))
    }
}

#[derive(Default)]
struct FamilyRegistry {
    counters: Mutex<BTreeMap<String, &'static CounterFamily>>,
    gauges: Mutex<BTreeMap<String, &'static GaugeFamily>>,
    histograms: Mutex<BTreeMap<String, &'static HistogramFamily>>,
}

fn family_registry() -> &'static FamilyRegistry {
    static REG: OnceLock<FamilyRegistry> = OnceLock::new();
    REG.get_or_init(FamilyRegistry::default)
}

fn intern_family<T>(
    map: &Mutex<BTreeMap<String, &'static Family<T>>>,
    name: &str,
    intern_metric: fn(&str) -> &'static T,
) -> &'static Family<T> {
    let mut map = map.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(f) = map.get(name) {
        return f;
    }
    let f: &'static Family<T> = Box::leak(Box::new(Family {
        name: Box::leak(name.to_string().into_boxed_str()),
        intern_metric,
        slots: RwLock::new(Vec::new()),
    }));
    map.insert(name.to_string(), f);
    f
}

/// The counter family registered under `name` (created on first use).
/// Cache the handle like a plain [`crate::counter`] handle.
pub fn counter_family(name: &str) -> &'static CounterFamily {
    intern_family(&family_registry().counters, name, crate::metrics::counter)
}

/// The gauge family registered under `name` (created on first use).
pub fn gauge_family(name: &str) -> &'static GaugeFamily {
    intern_family(&family_registry().gauges, name, crate::metrics::gauge)
}

/// The histogram family registered under `name` (created on first use).
pub fn histogram_family(name: &str) -> &'static HistogramFamily {
    intern_family(
        &family_registry().histograms,
        name,
        crate::metrics::histogram,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_intern_to_stable_ids() {
        let a = label("2->5");
        let b = label("2->5");
        let c = label("5->2");
        assert_eq!(a, b);
        assert!(a != c);
        assert_eq!(a.as_str(), "2->5");
        assert_eq!(c.as_str(), "5->2");
    }

    #[test]
    fn member_names_round_trip() {
        let name = family_metric_name("net.conn.bytes_in", "2->5");
        assert_eq!(name, "net.conn.bytes_in{2->5}");
        assert_eq!(
            split_family_metric(&name),
            Some(("net.conn.bytes_in", "2->5"))
        );
        assert_eq!(split_family_metric("net.ticks"), None);
        assert_eq!(split_family_metric("dangling{label"), None);
        // Labels containing `}` still split at the family boundary.
        assert_eq!(split_family_metric("f{a}b}"), Some(("f", "a}b")));
    }

    #[test]
    fn family_members_are_registry_metrics() {
        crate::set_enabled(true);
        let fam = counter_family("test.family.hits");
        fam.with_name("alpha").add(3);
        fam.with(label("beta")).inc();
        // Same label → same member.
        fam.with_name("alpha").inc();
        let snap = crate::snapshot();
        assert_eq!(snap.counter("test.family.hits{alpha}"), 4);
        assert_eq!(snap.counter("test.family.hits{beta}"), 1);
        crate::set_enabled(false);
    }
}
