//! RAII span timers with nesting, and the per-thread job label that
//! partitions sink events between jobs.
//!
//! [`span`] starts a timer and pushes the span onto a thread-local
//! stack; dropping the guard pops it, records the duration into the
//! `span.<name>` histogram (nanoseconds) and emits a `"span"` event
//! carrying `{name, id, parent, dur_us}` — `parent` is the id of the
//! enclosing span on the same thread (0 at top level), so a drained
//! event stream reconstructs the call tree.
//!
//! When recording is disabled the constructors return an inert guard:
//! no clock read, no allocation, no TLS write.

use crate::{metrics, sink};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static JOB: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Live span guard; records and emits on drop. Create with [`span`] or
/// [`span_labeled`].
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    label: Option<String>,
    id: u64,
    parent: u64,
    start: Option<Instant>,
}

/// Start a span named `name` (histogram key `span.<name>`).
pub fn span(name: &'static str) -> Span {
    span_inner(name, None)
}

/// Start a span with an instance label (e.g. the job or experiment id)
/// that is attached to the emitted `"span"` event.
pub fn span_labeled(name: &'static str, label: impl Into<String>) -> Span {
    span_inner(name, Some(label.into()))
}

fn span_inner(name: &'static str, label: Option<String>) -> Span {
    if !crate::enabled() {
        return Span {
            name,
            label: None,
            id: 0,
            parent: 0,
            start: None,
        };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied().unwrap_or(0);
        s.push(id);
        parent
    });
    Span {
        name,
        label,
        id,
        parent,
        start: Some(Instant::now()),
    }
}

impl Span {
    /// This span's id (0 when recording was disabled at creation).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Id of the enclosing span on this thread, 0 at top level.
    pub fn parent(&self) -> u64 {
        self.parent
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur = start.elapsed();
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            if s.last() == Some(&self.id) {
                s.pop();
            } else {
                // Out-of-order drop (spans moved across an early
                // return); remove ours wherever it is.
                s.retain(|&x| x != self.id);
            }
        });
        metrics::histogram(&format!("span.{}", self.name)).record_duration(dur);
        let mut fields = vec![
            ("name", sink::val(self.name)),
            ("id", sink::val(self.id)),
            ("parent", sink::val(self.parent)),
            ("dur_us", sink::val(dur.as_secs_f64() * 1e6)),
        ];
        if let Some(label) = &self.label {
            fields.push(("label", sink::val(label)));
        }
        sink::emit("span", &fields);
    }
}

/// Guard installing `label` as this thread's job label; restores the
/// previous label on drop. See [`job_scope`].
#[derive(Debug)]
pub struct JobScope {
    prev: Option<String>,
}

/// Tag everything emitted from this thread (until the guard drops) with
/// a job label, so an orchestrator can split the flight recorder per
/// job with [`crate::sink::drain_job`]. Nesting restores the outer
/// label. Works even while recording is disabled (the label is cheap
/// and orthogonal to the metrics switch).
pub fn job_scope(label: impl Into<String>) -> JobScope {
    let prev = JOB.with(|j| j.borrow_mut().replace(label.into()));
    JobScope { prev }
}

/// The job label installed on this thread, if any.
pub fn current_job() -> Option<String> {
    JOB.with(|j| j.borrow().clone())
}

impl Drop for JobScope {
    fn drop(&mut self) {
        JOB.with(|j| *j.borrow_mut() = self.prev.take());
    }
}
