//! Observability substrate for the swarmsys workspace.
//!
//! Hand-rolled (the build environment has no registry access, so this
//! follows the same zero-external-dependency discipline as
//! `swarm-stats`) and deliberately small:
//!
//! * [`metrics`] — a process-wide registry of atomic [`Counter`]s,
//!   [`Gauge`]s and lock-free power-of-two-bucket [`Histogram`]s, with
//!   serializable [`Snapshot`]s and snapshot deltas.
//! * [`labels`] — labelled metric families (`net.conn.bytes_in{2->5}`)
//!   over an interned-label registry, so per-entity metrics cost no
//!   string formatting on the hot path.
//! * [`lifecycle`] — typed wire-lifecycle events ([`ConnEvent`],
//!   [`ReqEvent`], [`XferEvent`]): the shared emit/parse schema between
//!   `swarm-net`'s probes and `swarm-trace`'s net analyzer.
//! * [`span`] — RAII span timers with nesting (parent/child ids) that
//!   feed both a `span.<name>` histogram and the event sink.
//! * [`sink`] — a structured-event flight recorder: a bounded in-memory
//!   ring of events, drained per job label or whole-run, serialized as
//!   JSONL through `serde_json`.
//! * [`timeseries`] — tick-windowed [`Recorder`]s of counter deltas
//!   keyed by virtual time, with power-of-two downsampling and a
//!   process-wide named-series registry, serialized as
//!   `timeseries.jsonl` beside the event sink.
//! * [`report`] — end-of-run text rendering of a snapshot delta (top
//!   spans by wall time, counter deltas, histogram quantiles).
//! * leveled logging ([`log`] plus the `log_error!`/`log_warn!`/
//!   `log_info!`/`log_debug!` macros) and a process-wide [`console`]
//!   lock so multi-line reports never interleave across threads.
//!
//! # The enable switch
//!
//! All recording is gated on [`enabled`], a single relaxed atomic load.
//! It starts `false`: an uninstrumented process pays one predictable
//! branch per probe. Orchestrators turn recording on with
//! [`set_enabled`] (the `repro` CLI does this for `--telemetry`).
//! Compiling with the `obs-off` feature makes [`enabled`] a
//! `const false`, so the optimizer removes probe bodies entirely —
//! that is the compiled-out arm of the CI overhead guard.
//!
//! Logging is independent of the metrics switch: log macros always
//! work, filtered by [`log_level`] (initialized from `SWARM_LOG`, one
//! of `error|warn|info|debug`, default `info`).

pub mod labels;
pub mod lifecycle;
pub mod metrics;
pub mod report;
pub mod sink;
pub mod span;
pub mod timeseries;

pub use labels::{
    counter_family, family_metric_name, gauge_family, histogram_family, label, split_family_metric,
    CounterFamily, Family, GaugeFamily, HistogramFamily, Label,
};
pub use lifecycle::{
    ConnEvent, ConnPhase, Dir, ReqEvent, ReqPhase, XferEvent, XferPhase, CONN_KIND, REQ_KIND,
    XFER_KIND,
};
pub use metrics::{
    counter, gauge, histogram, snapshot, Counter, Gauge, Histogram, HistogramSnapshot, Snapshot,
};
pub use report::render_report;
pub use sink::{
    drain_all, drain_job, dropped_events, emit, header_line, parse_jsonl, parse_jsonl_with_header,
    run_id, set_ring_capacity, start_unix_ms, to_jsonl, val, Event, Header,
};
pub use span::{current_job, job_scope, span, span_labeled, JobScope, Span};
pub use timeseries::{
    drain_series, merge_series, merge_series_owned, parse_timeseries, series_to_jsonl,
    snapshot_series, take_series, Recorder, Window,
};

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is metric/span/event recording on? One relaxed load; `const false`
/// under the `obs-off` feature so probe bodies compile out.
#[inline(always)]
pub fn enabled() -> bool {
    #[cfg(feature = "obs-off")]
    {
        false
    }
    #[cfg(not(feature = "obs-off"))]
    {
        ENABLED.load(Ordering::Relaxed)
    }
}

/// Turn metric/span/event recording on or off process-wide. A no-op
/// (the switch is never read) when compiled with `obs-off`.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

static SERIES_ENABLED: AtomicBool = AtomicBool::new(true);

/// Is windowed time-series recording on? Subordinate to [`enabled`]:
/// engines consult [`series_active`], which requires both. Defaults to
/// `true` so turning telemetry on gets the series for free; the
/// overhead guard turns it off to measure the recorder's marginal
/// cost under otherwise-identical telemetry.
#[inline(always)]
pub fn series_enabled() -> bool {
    SERIES_ENABLED.load(Ordering::Relaxed)
}

/// Turn windowed time-series recording on or off process-wide
/// (independent of the master [`set_enabled`] switch).
pub fn set_series_enabled(on: bool) {
    SERIES_ENABLED.store(on, Ordering::Relaxed);
}

/// Should an engine allocate and feed a window [`Recorder`]? True when
/// both the master recording switch and the series switch are on;
/// `const false` under `obs-off` like every other probe gate.
#[inline(always)]
pub fn series_active() -> bool {
    enabled() && series_enabled()
}

/// Log severity, ordered: `Error < Warn < Info < Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" | "0" => Some(Level::Error),
            "warn" | "warning" | "1" => Some(Level::Warn),
            "info" | "2" => Some(Level::Info),
            "debug" | "trace" | "3" => Some(Level::Debug),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            _ => Level::Debug,
        }
    }
}

/// Sentinel: level not yet initialized from the environment.
const LEVEL_UNSET: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

/// The current log threshold. Lazily initialized from `SWARM_LOG`
/// (`error|warn|info|debug`); defaults to [`Level::Info`].
pub fn log_level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        LEVEL_UNSET => {
            let l = std::env::var("SWARM_LOG")
                .ok()
                .and_then(|s| Level::parse(&s))
                .unwrap_or(Level::Info);
            LEVEL.store(l as u8, Ordering::Relaxed);
            l
        }
        v => Level::from_u8(v),
    }
}

/// Override the log threshold (e.g. `--quiet` sets [`Level::Warn`]).
pub fn set_log_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

static CONSOLE: Mutex<()> = Mutex::new(());

/// The process-wide console lock. Hold the guard while printing a
/// multi-line block (summary tables, failure lists) so output from
/// worker threads cannot interleave with it. [`log`] takes this lock
/// itself — never call a log macro while holding the guard.
pub fn console() -> MutexGuard<'static, ()> {
    CONSOLE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Write one leveled log line (`[level] target: message`) to stderr
/// under the console lock, and — when recording is [`enabled`] — a
/// matching `"log"` event into the sink. Prefer the `log_*!` macros.
pub fn log(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    if level > log_level() {
        return;
    }
    let msg = args.to_string();
    {
        let _guard = console();
        eprintln!("[{:<5}] {target}: {msg}", level.as_str());
    }
    if enabled() {
        sink::emit(
            "log",
            &[
                ("level", val(level.as_str())),
                ("target", val(target)),
                ("msg", val(msg)),
            ],
        );
    }
}

/// `log_error!("target", "format {}", args)` — always-visible errors.
#[macro_export]
macro_rules! log_error {
    ($target:expr, $($arg:tt)*) => {
        $crate::log($crate::Level::Error, $target, format_args!($($arg)*))
    };
}

/// `log_warn!("target", "format {}", args)` — survives `--quiet`.
#[macro_export]
macro_rules! log_warn {
    ($target:expr, $($arg:tt)*) => {
        $crate::log($crate::Level::Warn, $target, format_args!($($arg)*))
    };
}

/// `log_info!("target", "format {}", args)` — default visibility.
#[macro_export]
macro_rules! log_info {
    ($target:expr, $($arg:tt)*) => {
        $crate::log($crate::Level::Info, $target, format_args!($($arg)*))
    };
}

/// `log_debug!("target", "format {}", args)` — `SWARM_LOG=debug` only.
#[macro_export]
macro_rules! log_debug {
    ($target:expr, $($arg:tt)*) => {
        $crate::log($crate::Level::Debug, $target, format_args!($($arg)*))
    };
}
