//! Typed wire-lifecycle events for the live swarm.
//!
//! The live engine's observability story needs *message-level* truth:
//! which connections opened, who choked whom when, which requests were
//! issued and how each one resolved, which pieces moved. These structs
//! are the shared schema for that truth — `swarm-net` emits them
//! through the JSONL sink, `swarm-trace`'s net analyzer parses them
//! back with [`ConnEvent::from_event`] & co. and reconstructs
//! per-connection timelines. Keeping both directions next to each other
//! in one module is what keeps emitter and analyzer from drifting.
//!
//! Three kinds cover the protocol surface:
//!
//! * [`CONN_KIND`] (`net.conn`) — connection lifecycle:
//!   open/handshake/refused/choke/unchoke/snub/rejoin/close.
//! * [`REQ_KIND`] (`net.req`) — request lifecycle: issue (`tx`),
//!   service arrival (`rx`), cancellation (with a reason: `timeout` or
//!   `done`), and `choked` (cleared by an inbound `Choke`).
//! * [`XFER_KIND`] (`net.xfer`) — data movement: first service of a
//!   request episode (`serve`) and piece completion (`done`, with kB
//!   and request→piece latency in ticks when attributable).
//!
//! All emission is gated on [`crate::enabled`] inside [`ConnEvent::emit`]
//! & co.; `local`/`remote` are endpoint ids, `tick` is virtual (or wall
//! ticks under the TCP host), `run` is the `net.run.start` ordinal.

use serde_json::Value;

use crate::sink::{emit, val, Event};

/// Event kind for connection lifecycle transitions.
pub const CONN_KIND: &str = "net.conn";
/// Event kind for request lifecycle transitions.
pub const REQ_KIND: &str = "net.req";
/// Event kind for data-transfer milestones.
pub const XFER_KIND: &str = "net.xfer";

fn field<'a>(e: &'a Event, name: &str) -> Option<&'a Value> {
    e.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn u64_field(e: &Event, name: &str) -> Option<u64> {
    field(e, name)?.as_u64()
}

fn str_field<'a>(e: &'a Event, name: &str) -> Option<&'a str> {
    field(e, name)?.as_str()
}

/// Direction of a lifecycle transition relative to the emitting
/// endpoint: did it send the frame or receive it?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    Tx,
    Rx,
}

impl Dir {
    pub fn as_str(self) -> &'static str {
        match self {
            Dir::Tx => "tx",
            Dir::Rx => "rx",
        }
    }

    pub fn parse(s: &str) -> Option<Dir> {
        match s {
            "tx" => Some(Dir::Tx),
            "rx" => Some(Dir::Rx),
            _ => None,
        }
    }
}

/// Connection lifecycle phases, in rough protocol order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ConnPhase {
    /// We initiated: inserted the neighbor and sent a handshake.
    Open,
    /// A valid handshake arrived (new inbound conn, or the reply leg of
    /// a conn we opened).
    Handshake,
    /// A handshake arrived but was rejected (table full or piece-count
    /// mismatch).
    Refused,
    Choke,
    Unchoke,
    /// Request timeout: the silent neighbor is treated as choking us.
    Snub,
    /// An `Unchoke` arrived while the neighbor was snubbed — it is
    /// alive after all and becomes a request target again.
    Rejoin,
    /// Protocol-level close (the parting `Choke` broadcast on
    /// completion).
    Close,
}

impl ConnPhase {
    pub fn as_str(self) -> &'static str {
        match self {
            ConnPhase::Open => "open",
            ConnPhase::Handshake => "handshake",
            ConnPhase::Refused => "refused",
            ConnPhase::Choke => "choke",
            ConnPhase::Unchoke => "unchoke",
            ConnPhase::Snub => "snub",
            ConnPhase::Rejoin => "rejoin",
            ConnPhase::Close => "close",
        }
    }

    pub fn parse(s: &str) -> Option<ConnPhase> {
        Some(match s {
            "open" => ConnPhase::Open,
            "handshake" => ConnPhase::Handshake,
            "refused" => ConnPhase::Refused,
            "choke" => ConnPhase::Choke,
            "unchoke" => ConnPhase::Unchoke,
            "snub" => ConnPhase::Snub,
            "rejoin" => ConnPhase::Rejoin,
            "close" => ConnPhase::Close,
            _ => return None,
        })
    }
}

/// One connection lifecycle transition, as seen by endpoint `local`
/// about its connection to `remote`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnEvent {
    pub run: u64,
    pub tick: u64,
    pub local: u64,
    pub remote: u64,
    pub phase: ConnPhase,
    /// Send or receive side, for phases that travel as frames
    /// (choke/unchoke/close); `None` for local-only transitions.
    pub dir: Option<Dir>,
    /// The piece involved, when one is (snub carries the abandoned
    /// request's piece).
    pub piece: Option<u64>,
}

impl ConnEvent {
    /// Emit into the JSONL sink (no-op unless [`crate::enabled`]).
    pub fn emit(&self) {
        if !crate::enabled() {
            return;
        }
        let mut fields = vec![
            ("run", val(self.run)),
            ("tick", val(self.tick)),
            ("local", val(self.local)),
            ("remote", val(self.remote)),
            ("phase", val(self.phase.as_str())),
        ];
        if let Some(d) = self.dir {
            fields.push(("dir", val(d.as_str())));
        }
        if let Some(p) = self.piece {
            fields.push(("piece", val(p)));
        }
        emit(CONN_KIND, &fields);
    }

    /// Parse back what [`ConnEvent::emit`] wrote; `None` for other
    /// kinds or malformed fields.
    pub fn from_event(e: &Event) -> Option<ConnEvent> {
        if e.kind != CONN_KIND {
            return None;
        }
        Some(ConnEvent {
            run: u64_field(e, "run")?,
            tick: u64_field(e, "tick")?,
            local: u64_field(e, "local")?,
            remote: u64_field(e, "remote")?,
            phase: ConnPhase::parse(str_field(e, "phase")?)?,
            dir: match str_field(e, "dir") {
                Some(s) => Some(Dir::parse(s)?),
                None => None,
            },
            piece: u64_field(e, "piece"),
        })
    }
}

/// Request lifecycle phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ReqPhase {
    /// Requester issued the request.
    Tx,
    /// Server accepted the request for service.
    Rx,
    /// Requester sent `Cancel` (see [`ReqEvent::reason`]).
    Cancel,
    /// Requester's outstanding request was cleared by an inbound
    /// `Choke`.
    Choked,
}

impl ReqPhase {
    pub fn as_str(self) -> &'static str {
        match self {
            ReqPhase::Tx => "tx",
            ReqPhase::Rx => "rx",
            ReqPhase::Cancel => "cancel",
            ReqPhase::Choked => "choked",
        }
    }

    pub fn parse(s: &str) -> Option<ReqPhase> {
        Some(match s {
            "tx" => ReqPhase::Tx,
            "rx" => ReqPhase::Rx,
            "cancel" => ReqPhase::Cancel,
            "choked" => ReqPhase::Choked,
            _ => return None,
        })
    }
}

/// One request lifecycle transition. `local` is the endpoint the event
/// happened at (the requester for tx/cancel/choked, the server for rx).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReqEvent {
    pub run: u64,
    pub tick: u64,
    pub local: u64,
    pub remote: u64,
    pub piece: u64,
    pub phase: ReqPhase,
    /// Why a `cancel` was sent: `"timeout"` (request expiry snub) or
    /// `"done"` (the piece completed, possibly via another neighbor).
    pub reason: Option<String>,
}

impl ReqEvent {
    /// Emit into the JSONL sink (no-op unless [`crate::enabled`]).
    pub fn emit(&self) {
        if !crate::enabled() {
            return;
        }
        let mut fields = vec![
            ("run", val(self.run)),
            ("tick", val(self.tick)),
            ("local", val(self.local)),
            ("remote", val(self.remote)),
            ("piece", val(self.piece)),
            ("phase", val(self.phase.as_str())),
        ];
        if let Some(r) = &self.reason {
            fields.push(("reason", val(r)));
        }
        emit(REQ_KIND, &fields);
    }

    /// Parse back what [`ReqEvent::emit`] wrote.
    pub fn from_event(e: &Event) -> Option<ReqEvent> {
        if e.kind != REQ_KIND {
            return None;
        }
        Some(ReqEvent {
            run: u64_field(e, "run")?,
            tick: u64_field(e, "tick")?,
            local: u64_field(e, "local")?,
            remote: u64_field(e, "remote")?,
            piece: u64_field(e, "piece")?,
            phase: ReqPhase::parse(str_field(e, "phase")?)?,
            reason: str_field(e, "reason").map(str::to_string),
        })
    }
}

/// Data-transfer milestones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum XferPhase {
    /// Server sent the first `Piece` frame of a request episode.
    Serve,
    /// Receiver completed the piece (`remote` is the neighbor that
    /// delivered the final bytes).
    Done,
}

impl XferPhase {
    pub fn as_str(self) -> &'static str {
        match self {
            XferPhase::Serve => "serve",
            XferPhase::Done => "done",
        }
    }

    pub fn parse(s: &str) -> Option<XferPhase> {
        match s {
            "serve" => Some(XferPhase::Serve),
            "done" => Some(XferPhase::Done),
            _ => None,
        }
    }
}

/// One data-transfer milestone on the `local`↔`remote` connection.
#[derive(Debug, Clone, PartialEq)]
pub struct XferEvent {
    pub run: u64,
    pub tick: u64,
    pub local: u64,
    pub remote: u64,
    pub piece: u64,
    pub phase: XferPhase,
    /// Piece size in kB (`done` only).
    pub kb: Option<f64>,
    /// Ticks from request issue to completion, when the completing
    /// neighbor held the matching request (`done` only).
    pub latency_ticks: Option<u64>,
}

impl XferEvent {
    /// Emit into the JSONL sink (no-op unless [`crate::enabled`]).
    pub fn emit(&self) {
        if !crate::enabled() {
            return;
        }
        let mut fields = vec![
            ("run", val(self.run)),
            ("tick", val(self.tick)),
            ("local", val(self.local)),
            ("remote", val(self.remote)),
            ("piece", val(self.piece)),
            ("phase", val(self.phase.as_str())),
        ];
        if let Some(kb) = self.kb {
            fields.push(("kb", val(kb)));
        }
        if let Some(l) = self.latency_ticks {
            fields.push(("latency_ticks", val(l)));
        }
        emit(XFER_KIND, &fields);
    }

    /// Parse back what [`XferEvent::emit`] wrote.
    pub fn from_event(e: &Event) -> Option<XferEvent> {
        if e.kind != XFER_KIND {
            return None;
        }
        Some(XferEvent {
            run: u64_field(e, "run")?,
            tick: u64_field(e, "tick")?,
            local: u64_field(e, "local")?,
            remote: u64_field(e, "remote")?,
            piece: u64_field(e, "piece")?,
            phase: XferPhase::parse(str_field(e, "phase")?)?,
            kb: field(e, "kb").and_then(Value::as_f64),
            latency_ticks: u64_field(e, "latency_ticks"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_round_trip_through_strings() {
        for p in [
            ConnPhase::Open,
            ConnPhase::Handshake,
            ConnPhase::Refused,
            ConnPhase::Choke,
            ConnPhase::Unchoke,
            ConnPhase::Snub,
            ConnPhase::Rejoin,
            ConnPhase::Close,
        ] {
            assert_eq!(ConnPhase::parse(p.as_str()), Some(p));
        }
        for p in [
            ReqPhase::Tx,
            ReqPhase::Rx,
            ReqPhase::Cancel,
            ReqPhase::Choked,
        ] {
            assert_eq!(ReqPhase::parse(p.as_str()), Some(p));
        }
        for p in [XferPhase::Serve, XferPhase::Done] {
            assert_eq!(XferPhase::parse(p.as_str()), Some(p));
        }
        assert!(ConnPhase::parse("nope").is_none());
    }
}
