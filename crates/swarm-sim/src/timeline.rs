//! Timeline capture for Figures 2 and 5.
//!
//! The paper illustrates swarm dynamics as rows of horizontal line
//! segments: thick for publishers, thin for actively downloading peers,
//! dotted for peers stuck waiting. The engine records these transitions
//! when `record_timeline` is set; rendering goes through
//! [`swarm_stats::ascii::timeline`].

use serde::{Deserialize, Serialize};
use swarm_stats::ascii::{Segment, SegmentKind};

/// The state an entity occupies over an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EntityState {
    /// Publisher online.
    Publishing,
    /// Peer actively downloading (or lingering as a seed).
    Active,
    /// Peer waiting for content to become available.
    Waiting,
}

/// One recorded interval of one entity's life.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Entity identifier (unique per run; peers and publishers share the
    /// id space).
    pub entity: u64,
    /// Interval start.
    pub start: f64,
    /// Interval end.
    pub end: f64,
    /// State held over the interval.
    pub state: EntityState,
}

/// Collected timeline of a run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Timeline {
    intervals: Vec<Interval>,
}

impl Timeline {
    /// Empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one interval. Zero-length intervals are dropped.
    pub fn push(&mut self, entity: u64, start: f64, end: f64, state: EntityState) {
        debug_assert!(
            end >= start,
            "interval must not be reversed: {start}..{end}"
        );
        if end > start {
            self.intervals.push(Interval {
                entity,
                start,
                end,
                state,
            });
        }
    }

    /// All recorded intervals.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Group intervals into per-entity rows ordered by first appearance,
    /// converted to ASCII-renderer segments.
    pub fn rows(&self) -> Vec<(String, Vec<Segment>)> {
        let mut order: Vec<u64> = Vec::new();
        for iv in &self.intervals {
            if !order.contains(&iv.entity) {
                order.push(iv.entity);
            }
        }
        order
            .into_iter()
            .map(|e| {
                let segs: Vec<Segment> = self
                    .intervals
                    .iter()
                    .filter(|iv| iv.entity == e)
                    .map(|iv| Segment {
                        start: iv.start,
                        end: iv.end,
                        kind: match iv.state {
                            EntityState::Publishing => SegmentKind::Publisher,
                            EntityState::Active => SegmentKind::Peer,
                            EntityState::Waiting => SegmentKind::Waiting,
                        },
                    })
                    .collect();
                let label = if segs.iter().any(|s| s.kind == SegmentKind::Publisher) {
                    format!("pub#{e}")
                } else {
                    format!("peer#{e}")
                };
                (label, segs)
            })
            .collect()
    }

    /// Number of distinct entities recorded.
    pub fn entity_count(&self) -> usize {
        let mut ids: Vec<u64> = self.intervals.iter().map(|iv| iv.entity).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_group() {
        let mut t = Timeline::new();
        t.push(1, 0.0, 5.0, EntityState::Publishing);
        t.push(2, 1.0, 3.0, EntityState::Active);
        t.push(2, 3.0, 4.0, EntityState::Waiting);
        let rows = t.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "pub#1");
        assert_eq!(rows[1].0, "peer#2");
        assert_eq!(rows[1].1.len(), 2);
        assert_eq!(t.entity_count(), 2);
    }

    #[test]
    fn zero_length_intervals_dropped() {
        let mut t = Timeline::new();
        t.push(1, 2.0, 2.0, EntityState::Active);
        assert!(t.intervals().is_empty());
    }

    #[test]
    fn rows_preserve_first_appearance_order() {
        let mut t = Timeline::new();
        t.push(5, 0.0, 1.0, EntityState::Active);
        t.push(3, 0.5, 1.5, EntityState::Active);
        t.push(5, 2.0, 3.0, EntityState::Active);
        let rows = t.rows();
        assert_eq!(rows[0].0, "peer#5");
        assert_eq!(rows[0].1.len(), 2);
        assert_eq!(rows[1].0, "peer#3");
    }
}
