//! Replicated experiments with parallel execution.
//!
//! The paper's experiments report means over 10 runs; the reproduction
//! harness typically wants many more. Replications are embarrassingly
//! parallel: each gets a derived seed and runs on a worker from the
//! shared index-ordered pool in [`swarm_stats::parallel`].

use crate::config::SimConfig;
use crate::engine::run;
use crate::metrics::SimResult;
use swarm_stats::ci::{mean_ci, ConfidenceInterval};
use swarm_stats::Summary;

/// Aggregate of `n` independent replications of one configuration.
#[derive(Debug, Clone)]
pub struct Replicated {
    /// Pooled result (samples concatenated, availability averaged).
    pub pooled: SimResult,
    /// Per-replication mean download times (for run-level CIs).
    pub per_run_means: Vec<f64>,
    /// Number of replications executed.
    pub replications: usize,
}

impl Replicated {
    /// Confidence interval on the replication-level mean download time.
    pub fn download_time_ci(&self, level: f64) -> ConfidenceInterval {
        let finite: Vec<f64> = self
            .per_run_means
            .iter()
            .copied()
            .filter(|m| m.is_finite())
            .collect();
        mean_ci(&Summary::from_slice(&finite), level)
    }
}

/// Run `n` replications of `config`, varying only the seed
/// (`seed + replica index`), on up to `threads` worker threads.
pub fn replicate(config: &SimConfig, n: usize, threads: usize) -> Replicated {
    assert!(n >= 1, "need at least one replication");
    assert!(threads >= 1, "need at least one thread");
    config.validate();

    let results: Vec<SimResult> = swarm_stats::parallel::run_indexed(n, threads, |i| {
        run(&SimConfig {
            seed: config.seed.wrapping_add(i as u64),
            ..*config
        })
    });

    let per_run_means: Vec<f64> = results.iter().map(|r| r.mean_download_time()).collect();
    let mut iter = results.into_iter();
    let mut pooled = iter.next().expect("n >= 1");
    for (i, r) in iter.enumerate() {
        pooled.absorb(&r, (i + 1) as u64);
    }
    Replicated {
        pooled,
        per_run_means,
        replications: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Patience, PublisherProcess, ServiceModel};

    fn cfg() -> SimConfig {
        SimConfig {
            lambda: 1.0 / 60.0,
            service: ServiceModel::Exponential { mean: 80.0 },
            publisher: PublisherProcess::Poisson {
                rate: 1.0 / 900.0,
                residence: 300.0,
            },
            patience: Patience::Patient,
            linger_mean: None,
            coverage_threshold: 0,
            horizon: 50_000.0,
            warmup: 1_000.0,
            seed: 7,
            record_timeline: false,
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let serial = replicate(&cfg(), 4, 1);
        let parallel = replicate(&cfg(), 4, 4);
        assert_eq!(serial.pooled.arrivals, parallel.pooled.arrivals);
        assert_eq!(serial.pooled.completions, parallel.pooled.completions);
        // Replication order is fixed by seed, so pooled samples match
        // exactly (order within pooling is by replica index in both).
        assert_eq!(serial.per_run_means, parallel.per_run_means);
    }

    #[test]
    fn replication_count_respected() {
        let r = replicate(&cfg(), 3, 2);
        assert_eq!(r.replications, 3);
        assert_eq!(r.per_run_means.len(), 3);
    }

    #[test]
    fn ci_is_positive_and_contains_grand_mean() {
        let rep = replicate(&cfg(), 8, 4);
        let ci = rep.download_time_ci(0.95);
        assert!(ci.half_width > 0.0);
        assert_eq!(ci.n, 8);
        let grand = rep.per_run_means.iter().sum::<f64>() / rep.per_run_means.len() as f64;
        assert!(ci.contains(grand));
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn rejects_zero_replications() {
        replicate(&cfg(), 0, 1);
    }
}
