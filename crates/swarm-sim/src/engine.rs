//! The discrete-event engine.
//!
//! Entities are peers and publishers; content availability is a *latch*:
//! it turns on when a publisher arrives and turns off when no publisher is
//! online and the number of online content holders (downloading peers plus
//! lingering seeds) drops to the coverage threshold `m` — exactly the
//! busy/idle structure of Figure 2.
//!
//! Two service models are supported (see [`crate::config::ServiceModel`]):
//! exponential per-peer service that ticks only while content is available
//! (the analytic model's M/G/∞ customers), and a capacity-shared fluid
//! mode where progress is work-conserving and persists across idle gaps.
//!
//! Modeling notes, following the paper:
//!
//! * patient peers arriving idle wait and begin service when a publisher
//!   returns (§3.3.2); impatient peers leave immediately (§3.3.1);
//! * with `m > 0`, peers caught mid-download when the busy period ends
//!   wait (patient) or leave unserved (impatient, counted as blocked);
//! * lingering seeds count as content holders and, in fluid mode,
//!   contribute upload capacity (§3.3.4).

use crate::config::{Patience, PublisherProcess, ServiceModel, SimConfig};
use crate::metrics::SimResult;
use crate::timeline::{EntityState, Timeline};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use swarm_stats::UptimeFraction;

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    PeerArrival,
    PublisherArrival,
    PublisherDeparture { publisher: usize },
    PublisherToggle,
    Completion { peer: usize, epoch: u64 },
    LingerEnd { peer: usize },
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by (time, seq) via Reverse at the call sites; seq breaks
        // ties deterministically.
        self.time
            .partial_cmp(&other.time)
            .expect("finite event times")
            .then(self.seq.cmp(&other.seq))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PeerState {
    Waiting,
    Downloading,
    Lingering,
    Gone,
}

#[derive(Debug, Clone, Copy)]
struct Peer {
    entity: u64,
    arrival: f64,
    state: PeerState,
    /// Remaining work (fluid mode only).
    remaining: f64,
    /// Invalidates stale Completion events (exponential mode).
    epoch: u64,
    /// Total time spent waiting so far.
    waited: f64,
    /// Time of the last state transition.
    state_since: f64,
    /// Whether this peer arrived at or after the warmup (metrics eligible).
    counted: bool,
}

struct Publisher {
    entity: u64,
    online: bool,
    online_since: f64,
}

/// Run one simulation to the horizon.
pub fn run(config: &SimConfig) -> SimResult {
    config.validate();
    Engine::new(config, None).run()
}

/// Run with peer arrivals replayed from an explicit (ascending) time list
/// instead of the Poisson process; used by [`crate::trace`].
pub(crate) fn run_with_arrivals(config: &SimConfig, arrivals: Option<&[f64]>) -> SimResult {
    config.validate();
    Engine::new(config, arrivals).run()
}

/// Cached `swarm-obs` handles, resolved once at engine construction iff
/// recording is enabled; the event loop then pays one `Option` check per
/// probe site. Probes never touch the RNG or the event heap, so results
/// are identical with recording on or off.
struct SimProbes {
    events: &'static swarm_obs::Counter,
    arrivals: &'static swarm_obs::Counter,
    completions: &'static swarm_obs::Counter,
    avail_transitions: &'static swarm_obs::Counter,
    busy_ms: &'static swarm_obs::Histogram,
}

impl SimProbes {
    fn get() -> Option<SimProbes> {
        if !swarm_obs::enabled() {
            return None;
        }
        Some(SimProbes {
            events: swarm_obs::counter("sim.events"),
            arrivals: swarm_obs::counter("sim.arrivals"),
            completions: swarm_obs::counter("sim.completions"),
            avail_transitions: swarm_obs::counter("sim.availability.transitions"),
            busy_ms: swarm_obs::histogram("sim.busy_period_ms"),
        })
    }
}

struct Engine<'c> {
    cfg: &'c SimConfig,
    /// Trace-driven arrivals: remaining times to replay (ascending). When
    /// `None`, arrivals are Poisson(λ).
    trace: Option<&'c [f64]>,
    trace_idx: usize,
    rng: ChaCha8Rng,
    now: f64,
    seq: u64,
    events: BinaryHeap<Reverse<Event>>,
    peers: Vec<Peer>,
    publishers: Vec<Publisher>,
    publishers_online: usize,
    available: bool,
    availability_started: f64,
    uptime: UptimeFraction,
    next_entity: u64,
    result: SimResult,
    completions_total: u64,
    /// UntilFirstCompletion mode: publisher already left for good.
    publisher_retired: bool,
    timeline: Timeline,
    probes: Option<SimProbes>,
}

impl<'c> Engine<'c> {
    fn new(cfg: &'c SimConfig, trace: Option<&'c [f64]>) -> Self {
        let mut e = Engine {
            cfg,
            trace,
            trace_idx: 0,
            rng: ChaCha8Rng::seed_from_u64(cfg.seed),
            now: 0.0,
            seq: 0,
            events: BinaryHeap::new(),
            peers: Vec::new(),
            publishers: Vec::new(),
            publishers_online: 0,
            available: false,
            availability_started: 0.0,
            uptime: UptimeFraction::new(cfg.warmup, false),
            next_entity: 0,
            result: SimResult::default(),
            completions_total: 0,
            publisher_retired: false,
            timeline: Timeline::new(),
            probes: SimProbes::get(),
        };
        // Prime arrivals and the publisher process.
        e.schedule_next_arrival();
        match cfg.publisher {
            PublisherProcess::Poisson { rate, .. } => {
                let t = e.exp(1.0 / rate);
                e.schedule(t, EventKind::PublisherArrival);
            }
            PublisherProcess::SingleOnOff {
                on_mean,
                off_mean,
                initially_on,
            } => {
                let entity = e.fresh_entity();
                e.publishers.push(Publisher {
                    entity,
                    online: initially_on,
                    online_since: 0.0,
                });
                if initially_on {
                    e.publishers_online = 1;
                    e.set_available(true);
                    let t = e.exp(on_mean);
                    e.schedule(t, EventKind::PublisherToggle);
                } else {
                    let t = e.exp(off_mean);
                    e.schedule(t, EventKind::PublisherToggle);
                }
            }
            PublisherProcess::UntilFirstCompletion => {
                let entity = e.fresh_entity();
                e.publishers.push(Publisher {
                    entity,
                    online: true,
                    online_since: 0.0,
                });
                e.publishers_online = 1;
                e.set_available(true);
            }
        }
        e
    }

    /// Schedule the next peer arrival: the next trace entry when running
    /// trace-driven, a fresh exponential gap otherwise.
    fn schedule_next_arrival(&mut self) {
        match self.trace {
            Some(times) => {
                if let Some(&t) = times.get(self.trace_idx) {
                    self.trace_idx += 1;
                    self.schedule(t, EventKind::PeerArrival);
                }
            }
            None => {
                let t = self.exp(1.0 / self.cfg.lambda);
                self.schedule(t, EventKind::PeerArrival);
            }
        }
    }

    fn exp(&mut self, mean: f64) -> f64 {
        self.now + -(1.0 - self.rng.gen::<f64>()).ln() * mean
    }

    fn fresh_entity(&mut self) -> u64 {
        self.next_entity += 1;
        self.next_entity
    }

    fn schedule(&mut self, time: f64, kind: EventKind) {
        self.seq += 1;
        self.events.push(Reverse(Event {
            time,
            seq: self.seq,
            kind,
        }));
    }

    /// Online content holders: downloading peers plus lingering seeds.
    fn holders(&self) -> usize {
        self.peers
            .iter()
            .filter(|p| matches!(p.state, PeerState::Downloading | PeerState::Lingering))
            .count()
    }

    fn downloading(&self) -> usize {
        self.peers
            .iter()
            .filter(|p| p.state == PeerState::Downloading)
            .count()
    }

    /// Pooled upload capacity in fluid mode.
    fn fluid_capacity(&self) -> f64 {
        let ServiceModel::Fluid {
            peer_upload,
            publisher_upload,
            ..
        } = self.cfg.service
        else {
            unreachable!("fluid_capacity called outside fluid mode")
        };
        self.publishers_online as f64 * publisher_upload + self.holders() as f64 * peer_upload
    }

    /// Per-leecher download rate in fluid mode; `None` when nothing can
    /// progress.
    fn fluid_rate(&self) -> Option<f64> {
        if !self.available {
            return None;
        }
        let n = self.downloading();
        if n == 0 {
            return None;
        }
        let ServiceModel::Fluid { download_cap, .. } = self.cfg.service else {
            unreachable!()
        };
        let rate = (self.fluid_capacity() / n as f64).min(download_cap);
        (rate > 0.0).then_some(rate)
    }

    fn set_available(&mut self, avail: bool) {
        if avail == self.available {
            return;
        }
        self.available = avail;
        if let Some(p) = &self.probes {
            p.avail_transitions.inc();
            if !avail {
                // Busy-period length in model milliseconds.
                let len_ms = (self.now - self.availability_started) * 1e3;
                p.busy_ms.record(len_ms.max(0.0) as u64);
            }
        }
        self.uptime
            .set(self.now.clamp(self.cfg.warmup, self.cfg.horizon), avail);
        if avail {
            self.availability_started = self.now;
            self.resume_waiting_peers();
        } else {
            if self.availability_started >= self.cfg.warmup {
                self.result
                    .busy_periods
                    .add(self.now - self.availability_started);
            }
            if self.cfg.record_timeline {
                self.result
                    .availability_intervals
                    .push((self.availability_started, self.now));
            }
            self.pause_downloading_peers();
        }
    }

    fn resume_waiting_peers(&mut self) {
        let now = self.now;
        for i in 0..self.peers.len() {
            if self.peers[i].state == PeerState::Waiting {
                self.peers[i].waited += now - self.peers[i].state_since;
                self.record_interval(i, EntityState::Waiting);
                self.peers[i].state = PeerState::Downloading;
                self.peers[i].state_since = now;
                self.start_service(i);
            }
        }
    }

    fn pause_downloading_peers(&mut self) {
        let now = self.now;
        for i in 0..self.peers.len() {
            if self.peers[i].state == PeerState::Downloading {
                self.record_interval(i, EntityState::Active);
                self.peers[i].epoch += 1; // invalidate pending completion
                match self.cfg.patience {
                    Patience::Patient => {
                        self.peers[i].state = PeerState::Waiting;
                        self.peers[i].state_since = now;
                    }
                    Patience::Impatient => {
                        self.peers[i].state = PeerState::Gone;
                        if self.peers[i].counted {
                            self.result.blocked += 1;
                        }
                    }
                }
            }
        }
    }

    fn record_interval(&mut self, peer_idx: usize, state: EntityState) {
        if self.cfg.record_timeline {
            let p = &self.peers[peer_idx];
            self.timeline.push(p.entity, p.state_since, self.now, state);
        }
    }

    /// Begin (or resume) service for a downloading peer.
    fn start_service(&mut self, peer_idx: usize) {
        match self.cfg.service {
            ServiceModel::Exponential { mean } => {
                let epoch = self.peers[peer_idx].epoch;
                let t = self.exp(mean);
                self.schedule(
                    t,
                    EventKind::Completion {
                        peer: peer_idx,
                        epoch,
                    },
                );
            }
            ServiceModel::Fluid { .. } => {
                // Progress is advanced lazily in the main loop.
            }
        }
    }

    fn complete_peer(&mut self, peer_idx: usize) {
        self.record_interval(peer_idx, EntityState::Active);
        let now = self.now;
        self.completions_total += 1;
        if let Some(p) = &self.probes {
            p.completions.inc();
        }
        self.result
            .completion_curve
            .push((now, self.completions_total));
        {
            let p = &mut self.peers[peer_idx];
            if p.counted {
                self.result.completions += 1;
                self.result.download_times.add(now - p.arrival);
                self.result.waiting_times.add(p.waited);
            }
        }
        // UntilFirstCompletion: the publisher leaves for good now.
        if matches!(self.cfg.publisher, PublisherProcess::UntilFirstCompletion)
            && !self.publisher_retired
        {
            self.publisher_retired = true;
            self.publishers_online = 0;
            if let Some(publisher) = self.publishers.first() {
                let (entity, since) = (publisher.entity, publisher.online_since);
                if self.cfg.record_timeline {
                    self.timeline
                        .push(entity, since, now, EntityState::Publishing);
                }
            }
            if let Some(p) = self.publishers.first_mut() {
                p.online = false;
            }
        }
        let p = &mut self.peers[peer_idx];
        match self.cfg.linger_mean {
            Some(mean) => {
                p.state = PeerState::Lingering;
                p.state_since = now;
                let t = self.exp(mean);
                self.schedule(t, EventKind::LingerEnd { peer: peer_idx });
            }
            None => {
                p.state = PeerState::Gone;
            }
        }
        self.check_availability_end();
    }

    fn check_availability_end(&mut self) {
        if self.available
            && self.publishers_online == 0
            && self.holders() <= self.cfg.coverage_threshold
        {
            self.set_available(false);
        }
    }

    /// Advance fluid-mode progress by `dt` at the current rate.
    fn advance_fluid(&mut self, dt: f64) {
        if dt <= 0.0 {
            return;
        }
        if let Some(rate) = self.fluid_rate() {
            for p in &mut self.peers {
                if p.state == PeerState::Downloading {
                    p.remaining -= rate * dt;
                }
            }
        }
    }

    /// In fluid mode, the absolute time of the earliest completion at
    /// current rates, if any.
    fn next_fluid_completion(&self) -> Option<(usize, f64)> {
        let rate = self.fluid_rate()?;
        self.peers
            .iter()
            .enumerate()
            .filter(|(_, p)| p.state == PeerState::Downloading)
            .map(|(i, p)| (i, self.now + (p.remaining / rate).max(0.0)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"))
    }

    fn run(mut self) -> SimResult {
        let _span = swarm_obs::span("sim.run");
        let horizon = self.cfg.horizon;
        loop {
            let next_event_time = self
                .events
                .peek()
                .map(|e| e.0.time)
                .unwrap_or(f64::INFINITY);

            // Fluid mode: a completion may precede the next discrete event.
            if matches!(self.cfg.service, ServiceModel::Fluid { .. }) {
                if let Some((peer, t)) = self.next_fluid_completion() {
                    if t <= next_event_time && t <= horizon {
                        let dt = t - self.now;
                        self.advance_fluid(dt);
                        self.now = t;
                        self.peers[peer].remaining = 0.0;
                        self.complete_peer(peer);
                        continue;
                    }
                }
            }

            if next_event_time > horizon {
                break;
            }
            let ev = self.events.pop().expect("peeked event exists").0;
            if matches!(self.cfg.service, ServiceModel::Fluid { .. }) {
                self.advance_fluid(ev.time - self.now);
            }
            self.now = ev.time;
            self.dispatch(ev.kind);
        }
        self.finalize()
    }

    fn dispatch(&mut self, kind: EventKind) {
        if let Some(p) = &self.probes {
            p.events.inc();
        }
        match kind {
            EventKind::PeerArrival => {
                self.schedule_next_arrival();
                self.peer_arrives();
            }
            EventKind::PublisherArrival => {
                let PublisherProcess::Poisson { rate, residence } = self.cfg.publisher else {
                    unreachable!("PublisherArrival only in Poisson mode")
                };
                let t = self.exp(1.0 / rate);
                self.schedule(t, EventKind::PublisherArrival);
                let entity = self.fresh_entity();
                self.publishers.push(Publisher {
                    entity,
                    online: true,
                    online_since: self.now,
                });
                self.publishers_online += 1;
                let idx = self.publishers.len() - 1;
                let t = self.exp(residence);
                self.schedule(t, EventKind::PublisherDeparture { publisher: idx });
                self.set_available(true);
            }
            EventKind::PublisherDeparture { publisher } => {
                let (entity, since) = {
                    let p = &mut self.publishers[publisher];
                    debug_assert!(p.online, "double departure");
                    p.online = false;
                    (p.entity, p.online_since)
                };
                if self.cfg.record_timeline {
                    self.timeline
                        .push(entity, since, self.now, EntityState::Publishing);
                }
                self.publishers_online -= 1;
                self.check_availability_end();
            }
            EventKind::PublisherToggle => {
                let PublisherProcess::SingleOnOff {
                    on_mean, off_mean, ..
                } = self.cfg.publisher
                else {
                    unreachable!("PublisherToggle only in SingleOnOff mode")
                };
                let was_online = self.publishers[0].online;
                if was_online {
                    let (entity, since) =
                        (self.publishers[0].entity, self.publishers[0].online_since);
                    if self.cfg.record_timeline {
                        self.timeline
                            .push(entity, since, self.now, EntityState::Publishing);
                    }
                    self.publishers[0].online = false;
                    self.publishers_online = 0;
                    let t = self.exp(off_mean);
                    self.schedule(t, EventKind::PublisherToggle);
                    self.check_availability_end();
                } else {
                    self.publishers[0].online = true;
                    self.publishers[0].online_since = self.now;
                    self.publishers_online = 1;
                    let t = self.exp(on_mean);
                    self.schedule(t, EventKind::PublisherToggle);
                    self.set_available(true);
                }
            }
            EventKind::Completion { peer, epoch } => {
                if self.peers[peer].state == PeerState::Downloading
                    && self.peers[peer].epoch == epoch
                {
                    self.complete_peer(peer);
                }
            }
            EventKind::LingerEnd { peer } => {
                if self.peers[peer].state == PeerState::Lingering {
                    self.record_interval(peer, EntityState::Active);
                    self.peers[peer].state = PeerState::Gone;
                    self.check_availability_end();
                }
            }
        }
    }

    fn peer_arrives(&mut self) {
        if let Some(p) = &self.probes {
            p.arrivals.inc();
        }
        let counted = self.now >= self.cfg.warmup;
        if counted {
            self.result.arrivals += 1;
        }
        let size = match self.cfg.service {
            ServiceModel::Fluid { size, .. } => size,
            ServiceModel::Exponential { .. } => 0.0,
        };
        let entity = self.fresh_entity();
        let peer = Peer {
            entity,
            arrival: self.now,
            state: PeerState::Downloading,
            remaining: size,
            epoch: 0,
            waited: 0.0,
            state_since: self.now,
            counted,
        };
        if self.available {
            self.peers.push(peer);
            let idx = self.peers.len() - 1;
            self.start_service(idx);
        } else {
            match self.cfg.patience {
                Patience::Impatient => {
                    if counted {
                        self.result.blocked += 1;
                    }
                    // Peer never enters the system.
                }
                Patience::Patient => {
                    let mut p = peer;
                    p.state = PeerState::Waiting;
                    self.peers.push(p);
                }
            }
        }
    }

    fn finalize(mut self) -> SimResult {
        let horizon = self.cfg.horizon;
        self.now = horizon;
        // Close open busy period for the availability fraction (but do not
        // record it as a completed busy-period sample).
        self.result.availability = self.uptime.fraction_until(horizon);
        if self.cfg.record_timeline {
            for i in 0..self.peers.len() {
                match self.peers[i].state {
                    PeerState::Downloading | PeerState::Lingering => {
                        self.record_interval(i, EntityState::Active)
                    }
                    PeerState::Waiting => self.record_interval(i, EntityState::Waiting),
                    PeerState::Gone => {}
                }
            }
            for p in &self.publishers {
                if p.online {
                    self.timeline
                        .push(p.entity, p.online_since, horizon, EntityState::Publishing);
                }
            }
        }
        self.result.in_flight_at_horizon = self
            .peers
            .iter()
            .filter(|p| p.state != PeerState::Gone)
            .count() as u64;
        if self.cfg.record_timeline && self.available {
            self.result
                .availability_intervals
                .push((self.availability_started, horizon));
        }
        self.result.timeline = self.timeline;
        self.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Patience, PublisherProcess, ServiceModel, SimConfig};

    fn base() -> SimConfig {
        SimConfig {
            lambda: 1.0 / 60.0,
            service: ServiceModel::Exponential { mean: 80.0 },
            publisher: PublisherProcess::Poisson {
                rate: 1.0 / 900.0,
                residence: 300.0,
            },
            patience: Patience::Patient,
            linger_mean: None,
            coverage_threshold: 0,
            horizon: 200_000.0,
            warmup: 2_000.0,
            seed: 42,
            record_timeline: false,
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(&base());
        let b = run(&base());
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.download_times.values(), b.download_times.values());
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(&base());
        let b = run(&SimConfig { seed: 43, ..base() });
        assert_ne!(a.download_times.values(), b.download_times.values());
    }

    #[test]
    fn arrival_count_tracks_lambda() {
        let r = run(&base());
        let expected = (200_000.0 - 2_000.0) / 60.0;
        let n = r.arrivals as f64;
        assert!(
            (n - expected).abs() < 5.0 * expected.sqrt(),
            "arrivals {n} vs expected {expected}"
        );
    }

    #[test]
    fn patient_peers_all_complete_eventually() {
        let r = run(&base());
        // Everyone who arrives either completes or is still in flight.
        assert!(r.blocked == 0);
        assert!(r.completions + r.in_flight_at_horizon >= r.arrivals);
    }

    #[test]
    fn impatient_peers_get_blocked_sometimes() {
        let cfg = SimConfig {
            patience: Patience::Impatient,
            ..base()
        };
        let r = run(&cfg);
        assert!(
            r.blocked > 0,
            "rare publisher must block some impatient peers"
        );
        assert!(r.blocked_fraction() > 0.0 && r.blocked_fraction() < 1.0);
    }

    #[test]
    fn availability_fraction_reasonable() {
        let r = run(&base());
        assert!(r.availability > 0.0 && r.availability < 1.0);
    }

    #[test]
    fn always_on_publisher_means_always_available() {
        let cfg = SimConfig {
            publisher: PublisherProcess::SingleOnOff {
                on_mean: 1e9,
                off_mean: 1.0,
                initially_on: true,
            },
            ..base()
        };
        let r = run(&cfg);
        assert!(r.availability > 0.999, "availability {}", r.availability);
        assert_eq!(r.blocked, 0);
        // Download times should be close to pure service (mean 80).
        assert!((r.mean_download_time() - 80.0).abs() < 8.0);
    }

    #[test]
    fn waiting_time_separates_from_service() {
        let r = run(&base());
        // Download = wait + service; means must satisfy the decomposition
        // within sampling noise.
        let t = r.download_times.mean();
        let w = r.waiting_times.mean();
        assert!(t > w, "download {t} must exceed waiting {w}");
        assert!((t - w - 80.0).abs() < 10.0, "service residual {}", t - w);
    }

    #[test]
    fn until_first_completion_publisher_leaves() {
        let cfg = SimConfig {
            lambda: 1.0 / 50.0,
            publisher: PublisherProcess::UntilFirstCompletion,
            horizon: 20_000.0,
            warmup: 0.0,
            ..base()
        };
        let r = run(&cfg);
        // The first completion retires the publisher; afterwards the swarm
        // (coverage threshold 0) dies with the last peer and no one else
        // is served once it is empty.
        assert!(r.completions >= 1);
        assert!(r.availability < 1.0);
    }

    #[test]
    fn fluid_mode_conserves_work() {
        let cfg = SimConfig {
            service: ServiceModel::Fluid {
                size: 4000.0,
                peer_upload: 50.0,
                publisher_upload: 100.0,
                download_cap: 1e9,
            },
            publisher: PublisherProcess::SingleOnOff {
                on_mean: 1e9,
                off_mean: 1.0,
                initially_on: true,
            },
            horizon: 100_000.0,
            warmup: 1_000.0,
            ..base()
        };
        let r = run(&cfg);
        assert!(r.completions > 0);
        // With an always-on 100 kB/s publisher and peers uploading 50 kB/s,
        // a lone peer downloads 4000 kB at >= 100 kB/s -> <= 40 s; crowds
        // only increase capacity. Mean download time must be bounded by
        // size/publisher_upload plus slack.
        assert!(
            r.mean_download_time() <= 80.0,
            "mean download {}",
            r.mean_download_time()
        );
    }

    #[test]
    fn fluid_download_cap_binds() {
        let capped = SimConfig {
            service: ServiceModel::Fluid {
                size: 4000.0,
                peer_upload: 50.0,
                publisher_upload: 100.0,
                download_cap: 20.0,
            },
            publisher: PublisherProcess::SingleOnOff {
                on_mean: 1e9,
                off_mean: 1.0,
                initially_on: true,
            },
            ..base()
        };
        let r = run(&capped);
        // 4000 kB at <= 20 kB/s: no download under 200 s.
        assert!(r.download_times.values().iter().all(|&t| t >= 200.0 - 1e-6));
    }

    #[test]
    fn lingering_peers_extend_availability() {
        let no_linger = SimConfig {
            publisher: PublisherProcess::Poisson {
                rate: 1.0 / 5000.0,
                residence: 200.0,
            },
            lambda: 1.0 / 30.0,
            ..base()
        };
        let linger = SimConfig {
            linger_mean: Some(600.0),
            ..no_linger
        };
        let a = run(&no_linger);
        let b = run(&linger);
        assert!(
            b.availability > a.availability,
            "lingering {} vs none {}",
            b.availability,
            a.availability
        );
    }

    #[test]
    fn coverage_threshold_shortens_busy_periods() {
        let m0 = SimConfig {
            lambda: 1.0 / 20.0,
            ..base()
        };
        let m3 = SimConfig {
            coverage_threshold: 3,
            ..m0
        };
        let a = run(&m0);
        let b = run(&m3);
        assert!(
            b.availability < a.availability,
            "threshold must reduce availability: m3 {} vs m0 {}",
            b.availability,
            a.availability
        );
    }

    #[test]
    fn timeline_recorded_when_requested() {
        let cfg = SimConfig {
            record_timeline: true,
            horizon: 20_000.0,
            warmup: 0.0,
            ..base()
        };
        let r = run(&cfg);
        assert!(r.timeline.entity_count() > 0);
        assert!(!r.timeline.rows().is_empty());
    }

    #[test]
    fn single_on_off_initially_off_starts_idle() {
        let cfg = SimConfig {
            publisher: PublisherProcess::SingleOnOff {
                on_mean: 300.0,
                off_mean: 900.0,
                initially_on: false,
            },
            ..base()
        };
        let r = run(&cfg);
        assert!(r.availability < 0.9);
        assert!(r.completions > 0);
    }
}
