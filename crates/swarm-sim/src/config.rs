//! Simulation configuration.

use serde::{Deserialize, Serialize};

/// How peer downloads progress during availability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServiceModel {
    /// Each peer's download takes an independent exponential time with the
    /// given mean (`s/μ`). This matches the analytic model exactly: peers
    /// are M/G/∞ customers whose service ticks only while content is
    /// available.
    Exponential {
        /// Mean download time `s/μ`.
        mean: f64,
    },
    /// Capacity-shared fluid: online peers (leechers and lingering seeds)
    /// contribute `peer_upload` each, an online publisher contributes
    /// `publisher_upload`, and the pooled capacity is split evenly among
    /// leechers (capped per leecher at `download_cap`).
    Fluid {
        /// Content size `s` (same units as rates per time).
        size: f64,
        /// Per-peer upload capacity.
        peer_upload: f64,
        /// Publisher upload capacity while online.
        publisher_upload: f64,
        /// Per-leecher download cap.
        download_cap: f64,
    },
}

/// The publisher-side process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PublisherProcess {
    /// Publishers arrive Poisson(`rate`) and each stays an exponential
    /// time with mean `residence`; several may overlap. This is the
    /// model's default (§3.3).
    Poisson {
        /// Publisher arrival rate `r`.
        rate: f64,
        /// Mean residence time `u`.
        residence: f64,
    },
    /// A single publisher alternating exponential on (mean `on_mean`) and
    /// off (mean `off_mean`) periods — the §4.3 experimental setup
    /// (on 300 s, off 900 s).
    SingleOnOff {
        /// Mean on-period (`u`).
        on_mean: f64,
        /// Mean off-period (`1/r`).
        off_mean: f64,
        /// Whether the publisher starts online at t = 0.
        initially_on: bool,
    },
    /// A publisher that stays exactly until the first peer completes a
    /// full download, then leaves forever — the §4.2 seedless-swarm
    /// experiment (Figure 4).
    UntilFirstCompletion,
}

/// What peers do when they arrive during an idle period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Patience {
    /// Leave immediately without being served (§3.3.1).
    Impatient,
    /// Wait for a publisher and then download (§3.3.2).
    Patient,
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Peer arrival rate λ.
    pub lambda: f64,
    /// Download progress model.
    pub service: ServiceModel,
    /// Publisher process.
    pub publisher: PublisherProcess,
    /// Idle-period peer behavior.
    pub patience: Patience,
    /// Mean altruistic lingering time after completion (`1/γ`), or `None`
    /// for selfish peers that leave immediately (§3.3.4).
    pub linger_mean: Option<f64>,
    /// Coverage threshold `m`: with no publisher online, content becomes
    /// unavailable when the number of online content-holders drops to `m`.
    pub coverage_threshold: usize,
    /// Simulated horizon (events past this time are not processed).
    pub horizon: f64,
    /// Metrics are only collected for peers arriving at or after this
    /// time (lets the swarm reach steady state first).
    pub warmup: f64,
    /// RNG seed; identical configs with identical seeds reproduce exactly.
    pub seed: u64,
    /// Whether to record timeline segments for figure rendering (adds
    /// memory proportional to the number of entities).
    pub record_timeline: bool,
}

impl SimConfig {
    /// Panic unless the configuration is self-consistent.
    pub fn validate(&self) {
        assert!(
            self.lambda > 0.0 && self.lambda.is_finite(),
            "lambda must be positive"
        );
        assert!(
            self.horizon > 0.0 && self.horizon.is_finite(),
            "horizon must be positive"
        );
        assert!(
            (0.0..self.horizon).contains(&self.warmup),
            "warmup must lie within [0, horizon)"
        );
        match self.service {
            ServiceModel::Exponential { mean } => {
                assert!(
                    mean > 0.0 && mean.is_finite(),
                    "service mean must be positive"
                );
            }
            ServiceModel::Fluid {
                size,
                peer_upload,
                publisher_upload,
                download_cap,
            } => {
                assert!(size > 0.0 && size.is_finite());
                assert!(peer_upload >= 0.0 && peer_upload.is_finite());
                assert!(publisher_upload >= 0.0 && publisher_upload.is_finite());
                assert!(download_cap > 0.0, "download cap must be positive");
                assert!(
                    peer_upload > 0.0 || publisher_upload > 0.0,
                    "someone must be able to upload"
                );
            }
        }
        match self.publisher {
            PublisherProcess::Poisson { rate, residence } => {
                assert!(
                    rate > 0.0 && rate.is_finite(),
                    "publisher rate must be positive"
                );
                assert!(
                    residence > 0.0 && residence.is_finite(),
                    "residence must be positive"
                );
            }
            PublisherProcess::SingleOnOff {
                on_mean, off_mean, ..
            } => {
                assert!(on_mean > 0.0 && on_mean.is_finite());
                assert!(off_mean > 0.0 && off_mean.is_finite());
            }
            PublisherProcess::UntilFirstCompletion => {}
        }
        if let Some(l) = self.linger_mean {
            assert!(l > 0.0 && l.is_finite(), "linger mean must be positive");
        }
    }

    /// Convenience: configuration mirroring the analytic model for a
    /// [`swarm_core::SwarmParams`], with exponential service and Poisson
    /// publishers.
    pub fn from_params(
        p: &swarm_core::SwarmParams,
        patience: Patience,
        coverage_threshold: usize,
        horizon: f64,
        seed: u64,
    ) -> SimConfig {
        p.validate();
        SimConfig {
            lambda: p.lambda,
            service: ServiceModel::Exponential {
                mean: p.service_time(),
            },
            publisher: PublisherProcess::Poisson {
                rate: p.r,
                residence: p.u,
            },
            patience,
            linger_mean: None,
            coverage_threshold,
            horizon,
            warmup: 0.0,
            seed,
            record_timeline: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SimConfig {
        SimConfig {
            lambda: 0.01,
            service: ServiceModel::Exponential { mean: 80.0 },
            publisher: PublisherProcess::Poisson {
                rate: 0.001,
                residence: 300.0,
            },
            patience: Patience::Patient,
            linger_mean: None,
            coverage_threshold: 0,
            horizon: 10_000.0,
            warmup: 0.0,
            seed: 1,
            record_timeline: false,
        }
    }

    #[test]
    fn valid_config_passes() {
        base().validate();
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn rejects_zero_lambda() {
        SimConfig {
            lambda: 0.0,
            ..base()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "warmup must lie")]
    fn rejects_warmup_beyond_horizon() {
        SimConfig {
            warmup: 20_000.0,
            ..base()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "someone must be able to upload")]
    fn rejects_fluid_with_no_capacity() {
        SimConfig {
            service: ServiceModel::Fluid {
                size: 100.0,
                peer_upload: 0.0,
                publisher_upload: 0.0,
                download_cap: 10.0,
            },
            ..base()
        }
        .validate();
    }

    #[test]
    fn from_params_mirrors_model() {
        let p = swarm_core::SwarmParams {
            lambda: 1.0 / 60.0,
            size: 4000.0,
            mu: 50.0,
            r: 1.0 / 900.0,
            u: 300.0,
        };
        let c = SimConfig::from_params(&p, Patience::Patient, 0, 1e5, 7);
        c.validate();
        match c.service {
            ServiceModel::Exponential { mean } => assert!((mean - 80.0).abs() < 1e-12),
            _ => panic!("expected exponential service"),
        }
        match c.publisher {
            PublisherProcess::Poisson { rate, residence } => {
                assert!((rate - p.r).abs() < 1e-15);
                assert!((residence - 300.0).abs() < 1e-12);
            }
            _ => panic!("expected poisson publishers"),
        }
    }
}
