//! Flow-level discrete-event simulator of swarming systems.
//!
//! This crate simulates the availability dynamics the paper models
//! analytically: peers arrive Poisson(λ) and download content of size `s`
//! at effective rate `μ`; publishers come and go; content is available
//! while a publisher is online or enough peers remain (the coverage
//! threshold `m`); patient peers wait out idle periods, impatient ones
//! leave; altruistic peers linger after completing (§3.3.4).
//!
//! It plays the role PlanetLab plays in the paper for the *model-level*
//! questions — validating eqs. (9)–(16) against an independent
//! implementation of the stochastic system — while the block-level
//! `swarm_bt` crate covers protocol-level effects (piece unavailability,
//! flash departures).
//!
//! * [`config`] — run configuration: service models (exponential or
//!   capacity-shared fluid), publisher processes (Poisson, single on/off,
//!   until-first-completion), patience, lingering, coverage threshold;
//! * [`engine`] — the event loop;
//! * [`metrics`] — per-run results: download/wait times, blocking,
//!   busy periods, availability fraction, completion curves;
//! * [`timeline`] — per-entity presence intervals (Figures 2 and 5);
//! * [`experiment`] — parallel replications with confidence intervals;
//! * [`validate`] — packaged model-vs-simulation comparisons.
//!
//! # Example
//!
//! ```
//! use swarm_sim::config::{Patience, PublisherProcess, ServiceModel, SimConfig};
//!
//! let cfg = SimConfig {
//!     lambda: 1.0 / 60.0,
//!     service: ServiceModel::Exponential { mean: 80.0 },
//!     publisher: PublisherProcess::SingleOnOff {
//!         on_mean: 300.0,
//!         off_mean: 900.0,
//!         initially_on: true,
//!     },
//!     patience: Patience::Patient,
//!     linger_mean: None,
//!     coverage_threshold: 0,
//!     horizon: 50_000.0,
//!     warmup: 1_000.0,
//!     seed: 42,
//!     record_timeline: false,
//! };
//! let result = swarm_sim::run(&cfg);
//! assert!(result.completions > 0);
//! assert!(result.availability > 0.0 && result.availability < 1.0);
//! ```

pub mod config;
pub mod engine;
pub mod experiment;
pub mod metrics;
pub mod timeline;
pub mod trace;
pub mod validate;

pub use config::{Patience, PublisherProcess, ServiceModel, SimConfig};
pub use engine::run;
pub use experiment::{replicate, Replicated};
pub use metrics::SimResult;
pub use timeline::{EntityState, Timeline};
pub use trace::run_trace;
