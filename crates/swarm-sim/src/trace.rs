//! Trace-driven arrivals (paper §4.3.4).
//!
//! The model assumes Poisson arrivals; the paper checks robustness by
//! repeating the experiments with "scaled versions of real arrival
//! patterns observed in our measurement traces" and finds the conclusions
//! unchanged. This module replays an explicit list of arrival times
//! through the simulator and provides the bootstrap utilities used to
//! generate replications from one trace.

use crate::config::SimConfig;
use crate::engine;
use crate::metrics::SimResult;
use rand::seq::SliceRandom;
use rand::Rng;

/// Run one simulation with peer arrivals taken from `times` (seconds,
/// ascending) instead of the configured Poisson process. Arrivals beyond
/// the horizon are ignored; everything else in `config` applies
/// unchanged (`config.lambda` is ignored).
///
/// # Panics
/// If `times` is unsorted or contains non-finite/negative entries.
pub fn run_trace(config: &SimConfig, times: &[f64]) -> SimResult {
    config.validate();
    validate_trace(times);
    engine::run_with_arrivals(config, Some(times))
}

/// Validate a trace: nonnegative, finite, ascending.
pub fn validate_trace(times: &[f64]) {
    let mut prev = 0.0;
    for &t in times {
        assert!(
            t.is_finite() && t >= 0.0,
            "arrival times must be finite and nonnegative, got {t}"
        );
        assert!(
            t >= prev,
            "arrival times must be ascending ({t} after {prev})"
        );
        prev = t;
    }
}

/// Bootstrap a new trace from an observed one by resampling its
/// inter-arrival times with replacement — preserves the inter-arrival
/// *distribution* (burstiness included) while producing an independent
/// replication, which is how the paper turns one measured pattern into
/// many experiment runs.
pub fn resample_interarrivals<R: Rng + ?Sized>(times: &[f64], rng: &mut R) -> Vec<f64> {
    validate_trace(times);
    if times.len() < 2 {
        return times.to_vec();
    }
    let gaps: Vec<f64> = std::iter::once(times[0])
        .chain(times.windows(2).map(|w| w[1] - w[0]))
        .collect();
    let mut t = 0.0;
    (0..times.len())
        .map(|_| {
            t += *gaps.choose(rng).expect("nonempty gaps");
            t
        })
        .collect()
}

/// Scale a trace's *rate* by `factor` (the paper's "scaled versions"):
/// arrival times are divided by `factor`, so `factor = 2` doubles the
/// arrival rate over the same pattern shape.
pub fn scale_rate(times: &[f64], factor: f64) -> Vec<f64> {
    assert!(
        factor > 0.0 && factor.is_finite(),
        "factor must be positive"
    );
    validate_trace(times);
    times.iter().map(|&t| t / factor).collect()
}

/// Empirical mean arrival rate of a trace over `[0, horizon]`.
pub fn mean_rate(times: &[f64], horizon: f64) -> f64 {
    assert!(horizon > 0.0);
    times.iter().filter(|&&t| t <= horizon).count() as f64 / horizon
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Patience, PublisherProcess, ServiceModel};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cfg(horizon: f64) -> SimConfig {
        SimConfig {
            lambda: 1.0 / 60.0, // ignored under trace-driven arrivals
            service: ServiceModel::Exponential { mean: 80.0 },
            publisher: PublisherProcess::SingleOnOff {
                on_mean: 300.0,
                off_mean: 900.0,
                initially_on: true,
            },
            patience: Patience::Patient,
            linger_mean: None,
            coverage_threshold: 0,
            horizon,
            warmup: 0.0,
            seed: 5,
            record_timeline: false,
        }
    }

    #[test]
    fn trace_arrivals_are_replayed_exactly() {
        let times = vec![10.0, 15.0, 100.0, 2_000.0, 9_000.0];
        let r = run_trace(&cfg(10_000.0), &times);
        assert_eq!(r.arrivals, 5);
    }

    #[test]
    fn arrivals_beyond_horizon_ignored() {
        let times = vec![10.0, 20.0, 30.0, 20_000.0];
        let r = run_trace(&cfg(10_000.0), &times);
        assert_eq!(r.arrivals, 3);
    }

    #[test]
    fn empty_trace_means_no_peers() {
        let r = run_trace(&cfg(5_000.0), &[]);
        assert_eq!(r.arrivals, 0);
        assert_eq!(r.completions, 0);
    }

    #[test]
    fn poisson_trace_reproduces_poisson_behavior() {
        // A trace generated from the Poisson process must give the same
        // statistics as the built-in Poisson arrivals. Single runs are
        // dominated by publisher on/off luck, so average several seeds.
        let horizon = 200_000.0;
        let reps = 6;
        let mut traced_sum = 0.0;
        let mut poisson_sum = 0.0;
        for seed in 0..reps {
            let mut rng = ChaCha8Rng::seed_from_u64(900 + seed);
            let times = swarm_queue::arrivals::poisson_process(1.0 / 60.0, horizon, &mut rng);
            let c = SimConfig {
                seed: 40 + seed,
                ..cfg(horizon)
            };
            traced_sum += run_trace(&c, &times).mean_download_time();
            poisson_sum += engine::run(&c).mean_download_time();
        }
        let (t1, t2) = (traced_sum / reps as f64, poisson_sum / reps as f64);
        assert!(
            (t1 - t2).abs() / t2 < 0.15,
            "trace-driven {t1} vs poisson {t2}"
        );
    }

    #[test]
    fn bursty_trace_changes_availability_but_not_conclusions() {
        // A decaying (new-swarm) pattern front-loads arrivals: early
        // availability is peer-rich, late availability publisher-bound.
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let horizon = 50_000.0;
        let bursty = swarm_queue::arrivals::nonhomogeneous_poisson(
            |t| 0.2 * (0.02 + 0.98 * (-t / 3_000.0).exp()),
            0.2,
            horizon,
            &mut rng,
        );
        let r = run_trace(&cfg(horizon), &bursty);
        assert!(r.arrivals > 100);
        assert!(r.completions > 0);
        assert!(r.availability > 0.0 && r.availability < 1.0);
    }

    #[test]
    fn resampled_trace_preserves_scale() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let times: Vec<f64> = (1..=500).map(|i| i as f64 * 7.0).collect();
        let resampled = resample_interarrivals(&times, &mut rng);
        assert_eq!(resampled.len(), times.len());
        validate_trace(&resampled);
        let r1 = mean_rate(&times, 3_500.0);
        let r2 = mean_rate(&resampled, 3_500.0);
        assert!((r1 - r2).abs() / r1 < 0.15, "{r1} vs {r2}");
    }

    #[test]
    fn scale_rate_doubles_arrivals() {
        let times = vec![100.0, 200.0, 300.0];
        let scaled = scale_rate(&times, 2.0);
        assert_eq!(scaled, vec![50.0, 100.0, 150.0]);
        assert!((mean_rate(&scaled, 150.0) - 2.0 * mean_rate(&times, 300.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn rejects_unsorted_trace() {
        run_trace(&cfg(1_000.0), &[5.0, 3.0]);
    }
}
