//! Metrics collected during a simulation run.

use crate::timeline::Timeline;
use serde::{Deserialize, Serialize};
use swarm_stats::Samples;

/// Everything a run reports. Peers arriving before the warmup are
/// excluded from per-peer metrics; time-fraction metrics cover the whole
/// horizon past warmup.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimResult {
    /// Download times (arrival → completion) of peers that completed.
    pub download_times: Samples,
    /// Waiting component of those download times (time spent while the
    /// content was unavailable before or during the peer's stay).
    pub waiting_times: Samples,
    /// Peers that arrived (post-warmup).
    pub arrivals: u64,
    /// Peers that completed their download (post-warmup arrivals only).
    pub completions: u64,
    /// Impatient peers that arrived during an idle period and left
    /// unserved (post-warmup).
    pub blocked: u64,
    /// Peers still in the system (downloading, waiting or lingering) at
    /// the horizon.
    pub in_flight_at_horizon: u64,
    /// Lengths of completed availability (busy) periods.
    pub busy_periods: Samples,
    /// Fraction of post-warmup time during which content was available.
    pub availability: f64,
    /// `(time, cumulative completions)` steps for Figure-4-style plots
    /// (includes every completion, pre- and post-warmup).
    pub completion_curve: Vec<(f64, u64)>,
    /// Optional per-entity timeline (Figures 2 and 5).
    pub timeline: Timeline,
    /// Closed availability intervals `(start, end)` over the whole run
    /// (recorded when `record_timeline` is set); the joint-availability
    /// analysis of mixed bundling reads these.
    pub availability_intervals: Vec<(f64, f64)>,
}

impl SimResult {
    /// Is content available at time `t` according to the recorded
    /// intervals? Requires `record_timeline`.
    pub fn available_at(&self, t: f64) -> bool {
        self.availability_intervals
            .iter()
            .any(|&(a, b)| a <= t && t < b)
    }

    /// Fraction of post-warmup arrivals that were blocked (impatient runs:
    /// the empirical unavailability probability `P` by PASTA).
    pub fn blocked_fraction(&self) -> f64 {
        if self.arrivals == 0 {
            f64::NAN
        } else {
            self.blocked as f64 / self.arrivals as f64
        }
    }

    /// Mean download time; `NaN` if no peer completed.
    pub fn mean_download_time(&self) -> f64 {
        self.download_times.mean()
    }

    /// Merge another replication's result into this one (per-peer samples
    /// concatenate; availability averages weighted equally — callers run
    /// identical-length replications).
    pub fn absorb(&mut self, other: &SimResult, replications_so_far: u64) {
        self.download_times.extend_from(&other.download_times);
        self.waiting_times.extend_from(&other.waiting_times);
        self.arrivals += other.arrivals;
        self.completions += other.completions;
        self.blocked += other.blocked;
        self.in_flight_at_horizon += other.in_flight_at_horizon;
        self.busy_periods.extend_from(&other.busy_periods);
        let n = replications_so_far as f64;
        self.availability = (self.availability * n + other.availability) / (n + 1.0);
        // Completion curves and timelines are per-run artifacts; keep the
        // first run's.
        if self.completion_curve.is_empty() {
            self.completion_curve = other.completion_curve.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocked_fraction_nan_when_no_arrivals() {
        let r = SimResult::default();
        assert!(r.blocked_fraction().is_nan());
    }

    #[test]
    fn blocked_fraction_ratio() {
        let r = SimResult {
            arrivals: 10,
            blocked: 3,
            ..Default::default()
        };
        assert!((r.blocked_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn absorb_accumulates_counts_and_averages_availability() {
        let mut a = SimResult {
            arrivals: 10,
            completions: 8,
            availability: 0.5,
            ..Default::default()
        };
        a.download_times.add(10.0);
        let mut b = SimResult {
            arrivals: 6,
            completions: 5,
            availability: 0.9,
            ..Default::default()
        };
        b.download_times.add(20.0);
        a.absorb(&b, 1);
        assert_eq!(a.arrivals, 16);
        assert_eq!(a.completions, 13);
        assert_eq!(a.download_times.len(), 2);
        assert!((a.availability - 0.7).abs() < 1e-12);
    }
}
