//! Model-vs-simulation validation helpers.
//!
//! The test suites and the reproduction harness repeatedly ask the same
//! question: does the analytic model of [`swarm_core`] predict what the
//! simulator measures? These helpers package the comparison.

use crate::config::{Patience, SimConfig};
use crate::experiment::{replicate, Replicated};
use serde::{Deserialize, Serialize};

/// A model-vs-simulation comparison for one metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Analytic prediction.
    pub model: f64,
    /// Simulated estimate.
    pub simulated: f64,
}

impl Comparison {
    /// Relative error `|sim − model| / model`.
    pub fn relative_error(&self) -> f64 {
        ((self.simulated - self.model) / self.model).abs()
    }
}

/// Compare the patient-peer model (eq. 11) against simulation: mean
/// download time.
pub fn patient_download_time(
    p: &swarm_core::SwarmParams,
    horizon: f64,
    reps: usize,
    seed: u64,
) -> (Comparison, Replicated) {
    let cfg = SimConfig {
        warmup: horizon * 0.05,
        ..SimConfig::from_params(p, Patience::Patient, 0, horizon, seed)
    };
    let rep = replicate(&cfg, reps, num_threads());
    let cmp = Comparison {
        model: swarm_core::patient::download_time(p),
        simulated: rep.pooled.mean_download_time(),
    };
    (cmp, rep)
}

/// Compare the impatient-peer model (eq. 10) against simulation: blocking
/// probability (empirical unavailability by PASTA).
pub fn impatient_unavailability(
    p: &swarm_core::SwarmParams,
    horizon: f64,
    reps: usize,
    seed: u64,
) -> (Comparison, Replicated) {
    let cfg = SimConfig {
        warmup: horizon * 0.05,
        ..SimConfig::from_params(p, Patience::Impatient, 0, horizon, seed)
    };
    let rep = replicate(&cfg, reps, num_threads());
    let cmp = Comparison {
        model: swarm_core::impatient::unavailability(p),
        simulated: rep.pooled.blocked_fraction(),
    };
    (cmp, rep)
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn swarm() -> swarm_core::SwarmParams {
        swarm_core::SwarmParams {
            lambda: 1.0 / 60.0,
            size: 4000.0,
            mu: 50.0,
            r: 1.0 / 900.0,
            u: 300.0,
        }
    }

    #[test]
    fn patient_model_predicts_simulation() {
        let (cmp, _) = patient_download_time(&swarm(), 400_000.0, 8, 11);
        assert!(
            cmp.relative_error() < 0.15,
            "model {} vs sim {} (rel {})",
            cmp.model,
            cmp.simulated,
            cmp.relative_error()
        );
    }

    #[test]
    fn impatient_model_predicts_blocking() {
        let (cmp, _) = impatient_unavailability(&swarm(), 400_000.0, 8, 13);
        assert!(
            cmp.relative_error() < 0.15,
            "model {} vs sim {} (rel {})",
            cmp.model,
            cmp.simulated,
            cmp.relative_error()
        );
    }

    #[test]
    fn bundling_gain_visible_in_simulation() {
        // The headline claim end-to-end: a K=4 bundle of this unpopular
        // file downloads faster than the file alone.
        let single = swarm_core::SwarmParams {
            r: 1.0 / 5000.0,
            ..swarm()
        };
        let bundle = single.bundle(4, swarm_core::PublisherScaling::Fixed);
        let (cs, _) = patient_download_time(&single, 300_000.0, 6, 17);
        let (cb, _) = patient_download_time(&bundle, 300_000.0, 6, 19);
        assert!(
            cb.simulated < cs.simulated,
            "bundle sim {} must beat single sim {}",
            cb.simulated,
            cs.simulated
        );
    }
}
