//! Property-based tests for the flow-level simulator: structural
//! invariants that must hold for any configuration in range.

use proptest::prelude::*;
use swarm_sim::{run, Patience, PublisherProcess, ServiceModel, SimConfig};

fn config_strategy() -> impl Strategy<Value = SimConfig> {
    (
        0.002..0.05f64,   // lambda
        20.0..300f64,     // service mean
        100.0..2_000f64,  // publisher residence
        500.0..20_000f64, // publisher inter-arrival
        0usize..6,        // coverage threshold
        prop::bool::ANY,  // patient?
        0u64..1_000,      // seed
    )
        .prop_map(|(lambda, mean, u, inv_r, m, patient, seed)| SimConfig {
            lambda,
            service: ServiceModel::Exponential { mean },
            publisher: PublisherProcess::Poisson {
                rate: 1.0 / inv_r,
                residence: u,
            },
            patience: if patient {
                Patience::Patient
            } else {
                Patience::Impatient
            },
            linger_mean: None,
            coverage_threshold: m,
            horizon: 30_000.0,
            warmup: 1_000.0,
            seed,
            record_timeline: true,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn accounting_conserves_peers(cfg in config_strategy()) {
        let r = run(&cfg);
        // Every counted arrival is blocked, completed, or still in flight
        // (in-flight includes pre-warmup peers, so use an inequality).
        prop_assert!(r.completions + r.blocked <= r.arrivals + r.in_flight_at_horizon);
        prop_assert!((0.0..=1.0).contains(&r.availability));
        if cfg.patience == Patience::Patient {
            prop_assert_eq!(r.blocked, 0);
        }
    }

    #[test]
    fn download_times_bounded_below_by_zero_and_decompose(cfg in config_strategy()) {
        let r = run(&cfg);
        for (&t, &w) in r.download_times.values().iter().zip(r.waiting_times.values()) {
            prop_assert!(t > 0.0);
            prop_assert!(w >= 0.0);
            prop_assert!(w <= t + 1e-9, "waiting {w} exceeds download {t}");
        }
    }

    #[test]
    fn availability_intervals_disjoint_and_ordered(cfg in config_strategy()) {
        let r = run(&cfg);
        for w in r.availability_intervals.windows(2) {
            prop_assert!(w[0].1 <= w[1].0 + 1e-9, "overlapping intervals");
        }
        for &(a, b) in &r.availability_intervals {
            prop_assert!(b >= a);
            prop_assert!(b <= cfg.horizon + 1e-9);
        }
        // Interval mass roughly matches the reported availability over
        // the post-warmup window (intervals cover the whole run, so only
        // a loose consistency check applies).
        let mass: f64 = r
            .availability_intervals
            .iter()
            .map(|&(a, b)| (b.min(cfg.horizon) - a.max(cfg.warmup)).max(0.0))
            .sum();
        let frac = mass / (cfg.horizon - cfg.warmup);
        prop_assert!((frac - r.availability).abs() < 0.02, "{frac} vs {}", r.availability);
    }

    #[test]
    fn same_seed_same_result(cfg in config_strategy()) {
        let a = run(&cfg);
        let b = run(&cfg);
        prop_assert_eq!(a.arrivals, b.arrivals);
        prop_assert_eq!(a.completions, b.completions);
        prop_assert_eq!(a.download_times.values(), b.download_times.values());
    }

    #[test]
    fn busy_periods_positive(cfg in config_strategy()) {
        let r = run(&cfg);
        for &b in r.busy_periods.values() {
            prop_assert!(b > 0.0);
        }
    }
}
