//! Batch samples, quantiles and box-plot summaries.

use crate::Summary;
use serde::{Deserialize, Serialize};

/// A batch of finite observations supporting exact quantiles.
///
/// Observations are kept unsorted until a quantile is requested; sorting is
/// memoized. This matches how the experiment harnesses use it: accumulate
/// download times during a run, then report quartiles at the end.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Samples {
    values: Vec<f64>,
    #[serde(skip)]
    sorted: bool,
}

impl Samples {
    /// An empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation. Non-finite values are rejected with a panic in
    /// debug builds and silently dropped in release builds (an experiment
    /// should never produce them; dropping beats poisoning every quantile).
    pub fn add(&mut self, x: f64) {
        debug_assert!(
            x.is_finite(),
            "Samples observations must be finite, got {x}"
        );
        if x.is_finite() {
            self.values.push(x);
            self.sorted = false;
        }
    }

    /// Absorb all observations from another sample set.
    pub fn extend_from(&mut self, other: &Samples) {
        self.values.extend_from_slice(&other.values);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no observations have been added.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw observations in insertion order (until a quantile call sorts them).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Arithmetic mean; `NaN` when empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            f64::NAN
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Summary statistics over the batch.
    pub fn summary(&self) -> Summary {
        Summary::from_slice(&self.values)
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
            self.sorted = true;
        }
    }

    /// Exact quantile with linear interpolation (type-7, the R/NumPy
    /// default). `q` is clamped to `[0, 1]`. `NaN` when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let n = self.values.len();
        if n == 1 {
            return self.values[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.values[lo] * (1.0 - frac) + self.values[hi] * frac
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// Five-number box plot extended with 5th/95th percentile whiskers, the
    /// exact presentation of Figure 6(c) in the paper.
    pub fn box_plot(&mut self) -> BoxPlot {
        BoxPlot {
            n: self.len(),
            mean: self.mean(),
            p05: self.quantile(0.05),
            q1: self.quantile(0.25),
            median: self.quantile(0.5),
            q3: self.quantile(0.75),
            p95: self.quantile(0.95),
            min: self.quantile(0.0),
            max: self.quantile(1.0),
        }
    }
}

impl FromIterator<f64> for Samples {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

/// Box-plot summary: quartiles plus 5th/95th percentile whiskers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxPlot {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// 5th percentile (lower whisker in Figure 6(c)).
    pub p05: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// 95th percentile (upper whisker in Figure 6(c)).
    pub p95: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl BoxPlot {
    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_sequence() {
        let mut s = Samples::from_iter((1..=9).map(|i| i as f64));
        assert_eq!(s.median(), 5.0);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 9.0);
        assert_eq!(s.quantile(0.25), 3.0);
        assert_eq!(s.quantile(0.75), 7.0);
    }

    #[test]
    fn interpolated_quantile() {
        let mut s = Samples::from_iter([1.0, 2.0, 3.0, 4.0]);
        // type-7: pos = 0.5 * 3 = 1.5 -> between 2 and 3
        assert!((s.median() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_is_nan() {
        let mut s = Samples::new();
        assert!(s.median().is_nan());
        assert!(s.mean().is_nan());
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn single_value() {
        let mut s = Samples::from_iter([42.0]);
        assert_eq!(s.quantile(0.3), 42.0);
        assert_eq!(s.median(), 42.0);
    }

    #[test]
    fn quantile_clamps_out_of_range() {
        let mut s = Samples::from_iter([1.0, 2.0, 3.0]);
        assert_eq!(s.quantile(-0.5), 1.0);
        assert_eq!(s.quantile(1.5), 3.0);
    }

    #[test]
    fn box_plot_is_monotone() {
        let mut s = Samples::from_iter((0..100).map(|i| ((i * 37) % 100) as f64));
        let b = s.box_plot();
        assert!(b.min <= b.p05);
        assert!(b.p05 <= b.q1);
        assert!(b.q1 <= b.median);
        assert!(b.median <= b.q3);
        assert!(b.q3 <= b.p95);
        assert!(b.p95 <= b.max);
        assert_eq!(b.n, 100);
        assert!(b.iqr() >= 0.0);
    }

    #[test]
    fn adding_after_quantile_resorts() {
        let mut s = Samples::from_iter([3.0, 1.0, 2.0]);
        assert_eq!(s.median(), 2.0);
        s.add(100.0);
        assert!((s.median() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn extend_from_combines() {
        let mut a = Samples::from_iter([1.0, 2.0]);
        let b = Samples::from_iter([3.0, 4.0]);
        a.extend_from(&b);
        assert_eq!(a.len(), 4);
        assert!((a.mean() - 2.5).abs() < 1e-12);
    }
}
