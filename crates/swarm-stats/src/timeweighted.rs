//! Time-weighted averages over piecewise-constant signals.
//!
//! Availability is a *time* fraction — "40% of the swarms have no publishers
//! available more than 50% of the time" — so the measurement and simulation
//! crates need averages weighted by how long a state was held, not by how
//! many samples were taken.

use serde::{Deserialize, Serialize};

/// Accumulator for the time-weighted average of a piecewise-constant signal.
///
/// Feed it `(time, new_value)` transitions in nondecreasing time order;
/// between transitions the signal holds its previous value.
///
/// ```
/// use swarm_stats::TimeWeighted;
/// let mut tw = TimeWeighted::new(0.0, 0.0); // starts at value 0 at t=0
/// tw.set(10.0, 1.0);                         // value becomes 1 at t=10
/// tw.set(30.0, 0.0);                         // value becomes 0 at t=30
/// assert!((tw.average_until(40.0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TimeWeighted {
    start: f64,
    last_t: f64,
    last_v: f64,
    integral: f64,
}

impl TimeWeighted {
    /// Start tracking at time `t0` with initial value `v0`.
    pub fn new(t0: f64, v0: f64) -> Self {
        TimeWeighted {
            start: t0,
            last_t: t0,
            last_v: v0,
            integral: 0.0,
        }
    }

    /// Record that the signal changes to `v` at time `t`.
    ///
    /// # Panics
    /// If `t` precedes the previous transition (signals move forward in
    /// time).
    pub fn set(&mut self, t: f64, v: f64) {
        assert!(
            t >= self.last_t,
            "transitions must be in nondecreasing time order: {t} < {}",
            self.last_t
        );
        self.integral += (t - self.last_t) * self.last_v;
        self.last_t = t;
        self.last_v = v;
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.last_v
    }

    /// Integral of the signal from the start time until `t >= last
    /// transition`.
    pub fn integral_until(&self, t: f64) -> f64 {
        assert!(t >= self.last_t, "cannot evaluate in the past");
        self.integral + (t - self.last_t) * self.last_v
    }

    /// Time-weighted average over `[t0, t]`. `NaN` if `t == t0`.
    pub fn average_until(&self, t: f64) -> f64 {
        let span = t - self.start;
        if span <= 0.0 {
            f64::NAN
        } else {
            self.integral_until(t) / span
        }
    }
}

/// Fraction of `[t0, t]` during which a boolean signal was true.
///
/// Thin wrapper over [`TimeWeighted`] with values 0/1; this is exactly the
/// "seed availability" metric of Figure 1.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct UptimeFraction {
    inner: TimeWeighted,
}

impl UptimeFraction {
    /// Start tracking at `t0`, initially `up`.
    pub fn new(t0: f64, up: bool) -> Self {
        UptimeFraction {
            inner: TimeWeighted::new(t0, if up { 1.0 } else { 0.0 }),
        }
    }

    /// Record that the signal becomes `up` at time `t`.
    pub fn set(&mut self, t: f64, up: bool) {
        self.inner.set(t, if up { 1.0 } else { 0.0 });
    }

    /// Is the signal currently up?
    pub fn is_up(&self) -> bool {
        self.inner.current() > 0.5
    }

    /// Fraction of time spent up over `[t0, t]`.
    pub fn fraction_until(&self, t: f64) -> f64 {
        self.inner.average_until(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_average() {
        let tw = TimeWeighted::new(0.0, 3.0);
        assert!((tw.average_until(10.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn square_wave() {
        let mut tw = TimeWeighted::new(0.0, 1.0);
        tw.set(1.0, 0.0);
        tw.set(2.0, 1.0);
        tw.set(3.0, 0.0);
        assert!((tw.average_until(4.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn average_at_start_is_nan() {
        let tw = TimeWeighted::new(5.0, 1.0);
        assert!(tw.average_until(5.0).is_nan());
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn rejects_time_travel() {
        let mut tw = TimeWeighted::new(0.0, 0.0);
        tw.set(10.0, 1.0);
        tw.set(5.0, 0.0);
    }

    #[test]
    fn repeated_transitions_at_same_instant() {
        let mut tw = TimeWeighted::new(0.0, 0.0);
        tw.set(1.0, 5.0);
        tw.set(1.0, 2.0); // instantaneous re-set contributes zero weight
        assert!((tw.average_until(2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uptime_fraction_tracks_boolean_signal() {
        let mut up = UptimeFraction::new(0.0, true);
        assert!(up.is_up());
        up.set(30.0, false);
        assert!(!up.is_up());
        up.set(90.0, true);
        // up for 30 + 10 of 100
        assert!((up.fraction_until(100.0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn nonzero_start_time() {
        let mut tw = TimeWeighted::new(100.0, 2.0);
        tw.set(110.0, 0.0);
        assert!((tw.average_until(120.0) - 1.0).abs() < 1e-12);
    }
}
