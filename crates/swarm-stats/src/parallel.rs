//! Deterministic index-ordered parallel map for replicated experiments,
//! plus the process-wide thread budget that keeps nested parallelism from
//! oversubscribing the machine.
//!
//! Both simulators replicate runs across worker threads; the worker pool
//! used to be duplicated (crossbeam-based) in each crate. This is the
//! shared implementation on `std::thread::scope`: a shared atomic counter
//! hands out indices, results come back over a channel tagged with their
//! index, and the output is assembled in index order — so the result is
//! identical to the serial `(0..n).map(job)` regardless of thread count
//! or scheduling.
//!
//! # Thread budget
//!
//! When several experiments run concurrently (the `swarm-lab`
//! orchestrator schedules whole experiments across a worker pool), each
//! one calling [`run_indexed`] with `available_parallelism()` threads
//! would oversubscribe the machine by a factor of the number of live
//! jobs. [`ThreadBudget`] is a process-wide allocator of core permits:
//! an orchestrator installs one with [`set_global_budget`], and every
//! `run_indexed` call then *leases* its extra worker threads from the
//! budget, degrading gracefully (down to an inline, single-threaded run)
//! when the budget is exhausted. Because `run_indexed` is deterministic
//! in its thread count, the clamping never changes results.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// Per-thread tally of [`ThreadBudget::try_lease`] activity since the
/// last [`reset_lease_stats`]. Orchestrators reset before a job and
/// read with [`lease_stats`] after it to attribute budget pressure to
/// the job that ran on this thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseStats {
    /// Number of `try_lease` calls.
    pub calls: u64,
    /// Total permits requested across calls.
    pub requested: u64,
    /// Total permits actually granted.
    pub granted: u64,
    /// Requested minus granted, summed (contention indicator).
    pub shortfall: u64,
    /// Largest single grant (peak extra threads a call obtained).
    pub max_granted: usize,
    /// Nanoseconds spent waiting on the budget lock.
    pub wait_ns: u64,
}

impl LeaseStats {
    const ZERO: LeaseStats = LeaseStats {
        calls: 0,
        requested: 0,
        granted: 0,
        shortfall: 0,
        max_granted: 0,
        wait_ns: 0,
    };
}

impl Default for LeaseStats {
    fn default() -> Self {
        LeaseStats::ZERO
    }
}

thread_local! {
    static LEASE_STATS: RefCell<LeaseStats> = const { RefCell::new(LeaseStats::ZERO) };
}

/// Zero this thread's [`LeaseStats`].
pub fn reset_lease_stats() {
    LEASE_STATS.with(|s| *s.borrow_mut() = LeaseStats::ZERO);
}

/// This thread's [`LeaseStats`] accumulated since the last reset.
pub fn lease_stats() -> LeaseStats {
    LEASE_STATS.with(|s| *s.borrow())
}

/// A process-wide budget of compute threads, shared by every
/// [`run_indexed`] call while installed via [`set_global_budget`].
///
/// Permits are handed out non-blockingly: a [`ThreadBudget::try_lease`]
/// grants *up to* the requested number of permits (possibly zero) and
/// the returned [`Lease`] gives them back on drop. The allocator never
/// grants more permits than remain, so the total number of outstanding
/// permits can never exceed the budget (proptest-checked in
/// `tests/proptests.rs`).
#[derive(Debug)]
pub struct ThreadBudget {
    total: usize,
    available: Mutex<usize>,
    peak_leased: AtomicUsize,
}

impl ThreadBudget {
    /// A budget of `total >= 1` compute threads.
    pub fn new(total: usize) -> Self {
        assert!(total >= 1, "budget needs at least one thread");
        ThreadBudget {
            total,
            available: Mutex::new(total),
            peak_leased: AtomicUsize::new(0),
        }
    }

    /// The budget this allocator was created with.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Permits not currently leased.
    pub fn available(&self) -> usize {
        *self.available.lock().expect("budget lock")
    }

    /// High-water mark of simultaneously leased permits over this
    /// budget's lifetime.
    pub fn peak_leased(&self) -> usize {
        self.peak_leased.load(Ordering::Relaxed)
    }

    /// Grant up to `want` permits without blocking. The grant may be
    /// smaller than `want` — including empty — when the budget is
    /// (nearly) exhausted; callers fall back to running on the thread
    /// they already own.
    pub fn try_lease(self: &Arc<Self>, want: usize) -> Lease {
        let t0 = Instant::now();
        let mut avail = self.available.lock().expect("budget lock");
        let wait = t0.elapsed();
        let granted = want.min(*avail);
        *avail -= granted;
        let in_use = self.total - *avail;
        drop(avail);
        self.peak_leased.fetch_max(in_use, Ordering::Relaxed);
        let wait_ns = wait.as_nanos().min(u64::MAX as u128) as u64;
        LEASE_STATS.with(|s| {
            let mut s = s.borrow_mut();
            s.calls += 1;
            s.requested += want as u64;
            s.granted += granted as u64;
            s.shortfall += (want - granted) as u64;
            s.max_granted = s.max_granted.max(granted);
            s.wait_ns += wait_ns;
        });
        if swarm_obs::enabled() {
            swarm_obs::counter("stats.budget.leases").inc();
            swarm_obs::counter("stats.budget.granted").add(granted as u64);
            swarm_obs::counter("stats.budget.shortfall").add((want - granted) as u64);
            swarm_obs::counter("stats.budget.lease_wait_ns").add(wait_ns);
            swarm_obs::gauge("stats.budget.in_use").set_max(in_use as i64);
        }
        Lease {
            budget: Arc::clone(self),
            granted,
        }
    }
}

/// Permits held from a [`ThreadBudget`]; returned to the budget on drop.
#[derive(Debug)]
pub struct Lease {
    budget: Arc<ThreadBudget>,
    granted: usize,
}

impl Lease {
    /// How many permits this lease actually holds (`<=` what was asked).
    pub fn granted(&self) -> usize {
        self.granted
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        let mut avail = self.budget.available.lock().expect("budget lock");
        *avail += self.granted;
    }
}

static GLOBAL_BUDGET: Mutex<Option<Arc<ThreadBudget>>> = Mutex::new(None);

/// Install (or, with `None`, remove) the process-wide budget consulted
/// by every [`run_indexed`] call. Returns the previously installed
/// budget so orchestrators can restore it when they finish.
pub fn set_global_budget(budget: Option<Arc<ThreadBudget>>) -> Option<Arc<ThreadBudget>> {
    std::mem::replace(
        &mut *GLOBAL_BUDGET.lock().expect("budget registry lock"),
        budget,
    )
}

/// The currently installed process-wide budget, if any.
pub fn global_budget() -> Option<Arc<ThreadBudget>> {
    GLOBAL_BUDGET.lock().expect("budget registry lock").clone()
}

/// Run `job(0..n)` on up to `threads` scoped worker threads and return
/// the results in index order. `threads == 1` (or `n <= 1`) runs inline
/// with no thread overhead; the output is the same either way.
///
/// While a global [`ThreadBudget`] is installed, the caller's own thread
/// is considered already funded and the `threads - 1` extra workers are
/// leased from the budget — so the call may run with fewer threads (down
/// to one, inline) than asked for. Results are identical regardless.
pub fn run_indexed<T, F>(n: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads >= 1, "need at least one thread");
    let extra_wanted = threads.saturating_sub(1).min(n.saturating_sub(1));
    let lease = match global_budget() {
        Some(budget) if extra_wanted > 0 => Some(budget.try_lease(extra_wanted)),
        _ => None,
    };
    let threads = lease.as_ref().map_or(threads, |l| 1 + l.granted());
    if threads == 1 || n <= 1 {
        return (0..n).map(job).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        for _ in 0..threads.min(n) {
            let tx = tx.clone();
            let next = &next;
            let job = &job;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                tx.send((i, job(i))).expect("collector alive");
            });
        }
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });
    drop(lease);
    slots
        .into_iter()
        .map(|s| s.expect("every index was dispatched exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        let serial = run_indexed(17, 1, |i| i * i);
        let parallel = run_indexed(17, 4, |i| i * i);
        assert_eq!(serial, parallel);
        assert_eq!(serial[4], 16);
    }

    #[test]
    fn more_threads_than_work() {
        assert_eq!(run_indexed(2, 8, |i| i), vec![0, 1]);
        assert_eq!(run_indexed(0, 3, |i| i), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn rejects_zero_threads() {
        run_indexed(1, 0, |i| i);
    }

    #[test]
    fn lease_grants_at_most_available_and_returns_on_drop() {
        let budget = Arc::new(ThreadBudget::new(4));
        let a = budget.try_lease(3);
        assert_eq!(a.granted(), 3);
        assert_eq!(budget.available(), 1);
        let b = budget.try_lease(3);
        assert_eq!(b.granted(), 1, "grant clamps to what remains");
        assert_eq!(budget.available(), 0);
        let c = budget.try_lease(5);
        assert_eq!(c.granted(), 0, "exhausted budget grants nothing");
        drop(a);
        assert_eq!(budget.available(), 3);
        drop(b);
        drop(c);
        assert_eq!(budget.available(), budget.total());
    }

    #[test]
    fn budgeted_run_is_identical_and_releases_permits() {
        // Results under a tight global budget match the unbudgeted run,
        // and every leased permit is returned afterwards.
        let unbudgeted = run_indexed(23, 8, |i| 3 * i + 1);
        let budget = Arc::new(ThreadBudget::new(2));
        let prev = set_global_budget(Some(Arc::clone(&budget)));
        let budgeted = run_indexed(23, 8, |i| 3 * i + 1);
        set_global_budget(prev);
        assert_eq!(unbudgeted, budgeted);
        assert_eq!(budget.available(), budget.total());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn rejects_zero_budget() {
        ThreadBudget::new(0);
    }

    #[test]
    fn lease_stats_track_grants_and_peak() {
        reset_lease_stats();
        let budget = Arc::new(ThreadBudget::new(4));
        let a = budget.try_lease(3);
        let b = budget.try_lease(3);
        assert_eq!(budget.peak_leased(), 4, "3 then 1 more leased");
        drop(a);
        drop(b);
        assert_eq!(budget.peak_leased(), 4, "peak survives returns");
        let s = lease_stats();
        assert_eq!(s.calls, 2);
        assert_eq!(s.requested, 6);
        assert_eq!(s.granted, 4);
        assert_eq!(s.shortfall, 2);
        assert_eq!(s.max_granted, 3);
        reset_lease_stats();
        assert_eq!(lease_stats(), LeaseStats::default());
    }
}
