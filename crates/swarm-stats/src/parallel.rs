//! Deterministic index-ordered parallel map for replicated experiments,
//! plus the process-wide thread budget that keeps nested parallelism from
//! oversubscribing the machine.
//!
//! Both simulators replicate runs across worker threads; the worker pool
//! used to be duplicated (crossbeam-based) in each crate. This is the
//! shared implementation on `std::thread::scope`: a shared atomic counter
//! hands out indices, results come back over a channel tagged with their
//! index, and the output is assembled in index order — so the result is
//! identical to the serial `(0..n).map(job)` regardless of thread count
//! or scheduling.
//!
//! # Thread budget
//!
//! When several experiments run concurrently (the `swarm-lab`
//! orchestrator schedules whole experiments across a worker pool), each
//! one calling [`run_indexed`] with `available_parallelism()` threads
//! would oversubscribe the machine by a factor of the number of live
//! jobs. [`ThreadBudget`] is a process-wide allocator of core permits:
//! an orchestrator installs one with [`set_global_budget`], and every
//! `run_indexed` call then *leases* its extra worker threads from the
//! budget, degrading gracefully (down to an inline, single-threaded run)
//! when the budget is exhausted. Because `run_indexed` is deterministic
//! in its thread count, the clamping never changes results.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// Per-thread tally of [`ThreadBudget::try_lease`] activity since the
/// last [`reset_lease_stats`]. Orchestrators reset before a job and
/// read with [`lease_stats`] after it to attribute budget pressure to
/// the job that ran on this thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseStats {
    /// Number of `try_lease` calls.
    pub calls: u64,
    /// Total permits requested across calls.
    pub requested: u64,
    /// Total permits actually granted.
    pub granted: u64,
    /// Requested minus granted, summed (contention indicator).
    pub shortfall: u64,
    /// Largest single grant (peak extra threads a call obtained).
    pub max_granted: usize,
    /// Nanoseconds spent waiting on the budget lock.
    pub wait_ns: u64,
}

impl LeaseStats {
    const ZERO: LeaseStats = LeaseStats {
        calls: 0,
        requested: 0,
        granted: 0,
        shortfall: 0,
        max_granted: 0,
        wait_ns: 0,
    };
}

impl Default for LeaseStats {
    fn default() -> Self {
        LeaseStats::ZERO
    }
}

thread_local! {
    static LEASE_STATS: RefCell<LeaseStats> = const { RefCell::new(LeaseStats::ZERO) };
}

/// Zero this thread's [`LeaseStats`].
pub fn reset_lease_stats() {
    LEASE_STATS.with(|s| *s.borrow_mut() = LeaseStats::ZERO);
}

/// This thread's [`LeaseStats`] accumulated since the last reset.
pub fn lease_stats() -> LeaseStats {
    LEASE_STATS.with(|s| *s.borrow())
}

/// A process-wide budget of compute threads, shared by every
/// [`run_indexed`] call while installed via [`set_global_budget`].
///
/// Permits are handed out non-blockingly: a [`ThreadBudget::try_lease`]
/// grants *up to* the requested number of permits (possibly zero) and
/// the returned [`Lease`] gives them back on drop. The allocator never
/// grants more permits than remain, so the total number of outstanding
/// permits can never exceed the budget (proptest-checked in
/// `tests/proptests.rs`).
#[derive(Debug)]
pub struct ThreadBudget {
    total: usize,
    available: Mutex<usize>,
    peak_leased: AtomicUsize,
}

impl ThreadBudget {
    /// A budget of `total` compute threads. A zero budget is legal and
    /// simply grants nothing: every [`run_indexed`]/[`run_stealing`]
    /// call degrades to an inline run on the caller's own thread.
    pub fn new(total: usize) -> Self {
        ThreadBudget {
            total,
            available: Mutex::new(total),
            peak_leased: AtomicUsize::new(0),
        }
    }

    /// The budget this allocator was created with.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Permits not currently leased.
    pub fn available(&self) -> usize {
        *self.available.lock().expect("budget lock")
    }

    /// High-water mark of simultaneously leased permits over this
    /// budget's lifetime.
    pub fn peak_leased(&self) -> usize {
        self.peak_leased.load(Ordering::Relaxed)
    }

    /// Grant up to `want` permits without blocking. The grant may be
    /// smaller than `want` — including empty — when the budget is
    /// (nearly) exhausted; callers fall back to running on the thread
    /// they already own.
    pub fn try_lease(self: &Arc<Self>, want: usize) -> Lease {
        let t0 = Instant::now();
        let mut avail = self.available.lock().expect("budget lock");
        let wait = t0.elapsed();
        let granted = want.min(*avail);
        *avail -= granted;
        let in_use = self.total - *avail;
        drop(avail);
        self.peak_leased.fetch_max(in_use, Ordering::Relaxed);
        let wait_ns = wait.as_nanos().min(u64::MAX as u128) as u64;
        LEASE_STATS.with(|s| {
            let mut s = s.borrow_mut();
            s.calls += 1;
            s.requested += want as u64;
            s.granted += granted as u64;
            s.shortfall += (want - granted) as u64;
            s.max_granted = s.max_granted.max(granted);
            s.wait_ns += wait_ns;
        });
        if swarm_obs::enabled() {
            swarm_obs::counter("stats.budget.leases").inc();
            swarm_obs::counter("stats.budget.granted").add(granted as u64);
            swarm_obs::counter("stats.budget.shortfall").add((want - granted) as u64);
            swarm_obs::counter("stats.budget.lease_wait_ns").add(wait_ns);
            swarm_obs::gauge("stats.budget.in_use").set_max(in_use as i64);
        }
        Lease {
            budget: Arc::clone(self),
            granted,
        }
    }
}

/// Permits held from a [`ThreadBudget`]; returned to the budget on drop.
#[derive(Debug)]
pub struct Lease {
    budget: Arc<ThreadBudget>,
    granted: usize,
}

impl Lease {
    /// How many permits this lease actually holds (`<=` what was asked).
    pub fn granted(&self) -> usize {
        self.granted
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        let mut avail = self.budget.available.lock().expect("budget lock");
        *avail += self.granted;
    }
}

static GLOBAL_BUDGET: Mutex<Option<Arc<ThreadBudget>>> = Mutex::new(None);

/// Install (or, with `None`, remove) the process-wide budget consulted
/// by every [`run_indexed`] call. Returns the previously installed
/// budget so orchestrators can restore it when they finish.
pub fn set_global_budget(budget: Option<Arc<ThreadBudget>>) -> Option<Arc<ThreadBudget>> {
    std::mem::replace(
        &mut *GLOBAL_BUDGET.lock().expect("budget registry lock"),
        budget,
    )
}

/// The currently installed process-wide budget, if any.
pub fn global_budget() -> Option<Arc<ThreadBudget>> {
    GLOBAL_BUDGET.lock().expect("budget registry lock").clone()
}

/// Run `job(0..n)` on up to `threads` scoped worker threads and return
/// the results in index order. `threads == 1` (or `n <= 1`) runs inline
/// with no thread overhead; the output is the same either way.
///
/// While a global [`ThreadBudget`] is installed, the caller's own thread
/// is considered already funded and the `threads - 1` extra workers are
/// leased from the budget — so the call may run with fewer threads (down
/// to one, inline) than asked for. Results are identical regardless.
pub fn run_indexed<T, F>(n: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads >= 1, "need at least one thread");
    let extra_wanted = threads.saturating_sub(1).min(n.saturating_sub(1));
    let lease = match global_budget() {
        Some(budget) if extra_wanted > 0 => Some(budget.try_lease(extra_wanted)),
        _ => None,
    };
    let threads = lease.as_ref().map_or(threads, |l| 1 + l.granted());
    if threads == 1 || n <= 1 {
        return (0..n).map(job).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        for _ in 0..threads.min(n) {
            let tx = tx.clone();
            let next = &next;
            let job = &job;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                tx.send((i, job(i))).expect("collector alive");
            });
        }
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });
    drop(lease);
    slots
        .into_iter()
        .map(|s| s.expect("every index was dispatched exactly once"))
        .collect()
}

/// Per-worker task deques for [`run_stealing`]: worker `w` owns deque
/// `w`, pops its own tasks from the front, and — when empty — steals
/// from the *back* of a victim's deque (the classic owner/thief split
/// that keeps contention off the hot end).
///
/// The deques are plain mutex-protected `VecDeque`s rather than a
/// lock-free Chase–Lev structure: tasks here are whole swarm or
/// replication simulations (microseconds to milliseconds each), so one
/// short uncontended lock per task is noise, and the mutex keeps the
/// invariant obvious — every index is executed exactly once.
struct StealQueues {
    queues: Vec<Mutex<VecDeque<usize>>>,
    steals: AtomicUsize,
}

impl StealQueues {
    /// Partition `0..n` into `workers` contiguous blocks, one deque per
    /// worker. Contiguity matters for cache locality of whatever the
    /// caller indexes by task id.
    fn partition(n: usize, workers: usize) -> StealQueues {
        let mut queues: Vec<Mutex<VecDeque<usize>>> = Vec::with_capacity(workers);
        let base = n / workers;
        let extra = n % workers;
        let mut next = 0usize;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            queues.push(Mutex::new((next..next + len).collect()));
            next += len;
        }
        debug_assert_eq!(next, n);
        StealQueues {
            queues,
            steals: AtomicUsize::new(0),
        }
    }

    /// Next task for worker `w`: its own front, else steal from the
    /// back of the first non-empty victim (scanning `w+1, w+2, ...`
    /// round-robin). `None` means every deque is empty — since tasks
    /// are never re-enqueued, the worker can exit.
    fn next_task(&self, w: usize) -> Option<usize> {
        if let Some(i) = self.queues[w].lock().expect("steal deque").pop_front() {
            return Some(i);
        }
        let k = self.queues.len();
        for off in 1..k {
            let victim = (w + off) % k;
            if let Some(i) = self.queues[victim].lock().expect("steal deque").pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(i);
            }
        }
        None
    }
}

/// Run `job` over tasks `0..n` on a work-stealing shard pool and return
/// the results in index order.
///
/// Each worker (shard) gets a contiguous block of tasks in its own
/// deque and steals from other shards when its block drains, so skewed
/// per-task costs (one huge swarm in an otherwise idle shard) cannot
/// serialize the run. Like [`run_indexed`], the extra `threads - 1`
/// workers are leased from the global [`ThreadBudget`] when one is
/// installed, and the output is identical to the serial
/// `(0..n).map(...)` regardless of thread count or steal order.
///
/// Sharded callers carry per-worker state: `init_shard(w)` builds it
/// when worker `w` starts, `job(&mut state, i)` may batch into it, and
/// `finish_shard(w, state)` runs when the worker's deque (and every
/// victim's) is empty — the shard barrier at which batched telemetry
/// is flushed to the process-wide registry. `finish_shard` is called
/// exactly once per started worker, inline workers included.
///
/// Total steals across the run are recorded on the
/// `stats.steal.count` counter (scheduler-dependent, excluded from
/// determinism gates).
pub fn run_stealing<T, S, IS, F, FS>(
    n: usize,
    threads: usize,
    init_shard: IS,
    job: F,
    finish_shard: FS,
) -> Vec<T>
where
    T: Send,
    S: Send,
    IS: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
    FS: Fn(usize, S) + Sync,
{
    assert!(threads >= 1, "need at least one thread");
    let extra_wanted = threads.saturating_sub(1).min(n.saturating_sub(1));
    let lease = match global_budget() {
        Some(budget) if extra_wanted > 0 => Some(budget.try_lease(extra_wanted)),
        _ => None,
    };
    let threads = lease.as_ref().map_or(threads, |l| 1 + l.granted());
    if threads == 1 || n <= 1 {
        let mut state = init_shard(0);
        let out = (0..n).map(|i| job(&mut state, i)).collect();
        finish_shard(0, state);
        return out;
    }

    let workers = threads.min(n);
    let queues = StealQueues::partition(n, workers);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        for w in 0..workers {
            let tx = tx.clone();
            let queues = &queues;
            let init_shard = &init_shard;
            let job = &job;
            let finish_shard = &finish_shard;
            scope.spawn(move || {
                let mut state = init_shard(w);
                while let Some(i) = queues.next_task(w) {
                    tx.send((i, job(&mut state, i))).expect("collector alive");
                }
                finish_shard(w, state);
            });
        }
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });
    drop(lease);
    let steals = queues.steals.load(Ordering::Relaxed);
    if steals > 0 && swarm_obs::enabled() {
        swarm_obs::counter("stats.steal.count").add(steals as u64);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index was dispatched exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        let serial = run_indexed(17, 1, |i| i * i);
        let parallel = run_indexed(17, 4, |i| i * i);
        assert_eq!(serial, parallel);
        assert_eq!(serial[4], 16);
    }

    #[test]
    fn more_threads_than_work() {
        assert_eq!(run_indexed(2, 8, |i| i), vec![0, 1]);
        assert_eq!(run_indexed(0, 3, |i| i), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn rejects_zero_threads() {
        run_indexed(1, 0, |i| i);
    }

    #[test]
    fn lease_grants_at_most_available_and_returns_on_drop() {
        let budget = Arc::new(ThreadBudget::new(4));
        let a = budget.try_lease(3);
        assert_eq!(a.granted(), 3);
        assert_eq!(budget.available(), 1);
        let b = budget.try_lease(3);
        assert_eq!(b.granted(), 1, "grant clamps to what remains");
        assert_eq!(budget.available(), 0);
        let c = budget.try_lease(5);
        assert_eq!(c.granted(), 0, "exhausted budget grants nothing");
        drop(a);
        assert_eq!(budget.available(), 3);
        drop(b);
        drop(c);
        assert_eq!(budget.available(), budget.total());
    }

    #[test]
    fn budgeted_run_is_identical_and_releases_permits() {
        // Results under a tight global budget match the unbudgeted run,
        // and every leased permit is returned afterwards.
        let unbudgeted = run_indexed(23, 8, |i| 3 * i + 1);
        let budget = Arc::new(ThreadBudget::new(2));
        let prev = set_global_budget(Some(Arc::clone(&budget)));
        let budgeted = run_indexed(23, 8, |i| 3 * i + 1);
        set_global_budget(prev);
        assert_eq!(unbudgeted, budgeted);
        assert_eq!(budget.available(), budget.total());
    }

    #[test]
    fn zero_total_budget_grants_nothing() {
        // A zero budget used to be rejected outright; it is now a legal
        // "no extra threads anywhere" configuration. Leasing from it —
        // including the degenerate want = 0 — must neither underflow
        // the availability counter nor spin.
        let budget = Arc::new(ThreadBudget::new(0));
        assert_eq!(budget.total(), 0);
        assert_eq!(budget.available(), 0);
        let a = budget.try_lease(0);
        assert_eq!(a.granted(), 0);
        let b = budget.try_lease(5);
        assert_eq!(b.granted(), 0);
        drop(a);
        drop(b);
        assert_eq!(
            budget.available(),
            0,
            "returns must not inflate a zero budget"
        );
        assert_eq!(budget.peak_leased(), 0);
    }

    #[test]
    fn zero_want_lease_is_a_noop() {
        reset_lease_stats();
        let budget = Arc::new(ThreadBudget::new(3));
        let l = budget.try_lease(0);
        assert_eq!(l.granted(), 0);
        assert_eq!(budget.available(), 3);
        drop(l);
        assert_eq!(budget.available(), 3);
        let s = lease_stats();
        assert_eq!((s.calls, s.requested, s.granted, s.shortfall), (1, 0, 0, 0));
    }

    #[test]
    fn zero_budget_degrades_runs_to_inline() {
        let budget = Arc::new(ThreadBudget::new(0));
        let prev = set_global_budget(Some(Arc::clone(&budget)));
        let indexed = run_indexed(13, 8, |i| i * 2);
        let stolen = run_stealing(13, 8, |_| (), |_, i| i * 2, |_, _| ());
        set_global_budget(prev);
        assert_eq!(indexed, (0..13).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(stolen, indexed);
        assert_eq!(budget.available(), 0);
    }

    #[test]
    fn stealing_matches_serial_in_index_order() {
        let serial = run_stealing(29, 1, |_| (), |_, i| i * 7 + 1, |_, _| ());
        let parallel = run_stealing(29, 6, |_| (), |_, i| i * 7 + 1, |_, _| ());
        assert_eq!(serial, parallel);
        assert_eq!(serial[3], 22);
        assert_eq!(
            run_stealing(0, 4, |_| (), |_, i| i, |_, _| ()),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn stealing_drains_a_skewed_partition() {
        // All the work lands in shard 0's block; with stealing the
        // other workers must still execute some of it, and every task
        // runs exactly once.
        use std::sync::atomic::AtomicU64;
        let executed = AtomicU64::new(0);
        let queues = StealQueues::partition(64, 4);
        // Empty every queue but 0 to force thieves onto shard 0.
        let hoard: Vec<usize> = (1..4)
            .flat_map(|w| {
                let mut q = queues.queues[w].lock().unwrap();
                std::mem::take(&mut *q).into_iter()
            })
            .collect();
        queues.queues[0].lock().unwrap().extend(hoard);
        std::thread::scope(|scope| {
            for w in 0..4 {
                let queues = &queues;
                let executed = &executed;
                scope.spawn(move || {
                    while let Some(_i) = queues.next_task(w) {
                        executed.fetch_add(1, Ordering::Relaxed);
                        std::thread::yield_now();
                    }
                });
            }
        });
        assert_eq!(executed.load(Ordering::Relaxed), 64);
        assert!(
            queues.steals.load(Ordering::Relaxed) > 0,
            "thieves must have stolen from the hoarding shard"
        );
    }

    #[test]
    fn shard_hooks_run_once_per_worker_and_see_all_tasks() {
        use std::sync::atomic::AtomicU64;
        let finished = AtomicU64::new(0);
        let task_total = AtomicU64::new(0);
        let out = run_stealing(
            40,
            4,
            |_w| 0u64,
            |acc, i| {
                *acc += i as u64;
                i
            },
            |_w, acc| {
                finished.fetch_add(1, Ordering::Relaxed);
                task_total.fetch_add(acc, Ordering::Relaxed);
            },
        );
        assert_eq!(out, (0..40).collect::<Vec<_>>());
        // Shard-batched state, flushed at the barrier, must cover every
        // task exactly once no matter who stole what.
        assert_eq!(task_total.load(Ordering::Relaxed), (0..40u64).sum::<u64>());
        let f = finished.load(Ordering::Relaxed);
        assert!((1..=4).contains(&f), "one finish per started worker: {f}");
    }

    #[test]
    fn stealing_partition_covers_all_indices() {
        for (n, workers) in [(1usize, 3usize), (7, 3), (8, 3), (64, 5)] {
            let q = StealQueues::partition(n, workers);
            let mut seen: Vec<usize> = q
                .queues
                .iter()
                .flat_map(|m| m.lock().unwrap().iter().copied().collect::<Vec<_>>())
                .collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn budgeted_stealing_is_identical_and_releases_permits() {
        let unbudgeted = run_stealing(23, 8, |_| (), |_, i| 3 * i + 1, |_, _| ());
        let budget = Arc::new(ThreadBudget::new(2));
        let prev = set_global_budget(Some(Arc::clone(&budget)));
        let budgeted = run_stealing(23, 8, |_| (), |_, i| 3 * i + 1, |_, _| ());
        set_global_budget(prev);
        assert_eq!(unbudgeted, budgeted);
        assert_eq!(budget.available(), budget.total());
    }

    #[test]
    fn lease_stats_track_grants_and_peak() {
        reset_lease_stats();
        let budget = Arc::new(ThreadBudget::new(4));
        let a = budget.try_lease(3);
        let b = budget.try_lease(3);
        assert_eq!(budget.peak_leased(), 4, "3 then 1 more leased");
        drop(a);
        drop(b);
        assert_eq!(budget.peak_leased(), 4, "peak survives returns");
        let s = lease_stats();
        assert_eq!(s.calls, 2);
        assert_eq!(s.requested, 6);
        assert_eq!(s.granted, 4);
        assert_eq!(s.shortfall, 2);
        assert_eq!(s.max_granted, 3);
        reset_lease_stats();
        assert_eq!(lease_stats(), LeaseStats::default());
    }
}
