//! Deterministic index-ordered parallel map for replicated experiments.
//!
//! Both simulators replicate runs across worker threads; the worker pool
//! used to be duplicated (crossbeam-based) in each crate. This is the
//! shared implementation on `std::thread::scope`: a shared atomic counter
//! hands out indices, results come back over a channel tagged with their
//! index, and the output is assembled in index order — so the result is
//! identical to the serial `(0..n).map(job)` regardless of thread count
//! or scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Run `job(0..n)` on up to `threads` scoped worker threads and return
/// the results in index order. `threads == 1` (or `n <= 1`) runs inline
/// with no thread overhead; the output is the same either way.
pub fn run_indexed<T, F>(n: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads >= 1, "need at least one thread");
    if threads == 1 || n <= 1 {
        return (0..n).map(job).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        for _ in 0..threads.min(n) {
            let tx = tx.clone();
            let next = &next;
            let job = &job;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                tx.send((i, job(i))).expect("collector alive");
            });
        }
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index was dispatched exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        let serial = run_indexed(17, 1, |i| i * i);
        let parallel = run_indexed(17, 4, |i| i * i);
        assert_eq!(serial, parallel);
        assert_eq!(serial[4], 16);
    }

    #[test]
    fn more_threads_than_work() {
        assert_eq!(run_indexed(2, 8, |i| i), vec![0, 1]);
        assert_eq!(run_indexed(0, 3, |i| i), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn rejects_zero_threads() {
        run_indexed(1, 0, |i| i);
    }
}
