//! Terminal rendering for the reproduction harness.
//!
//! The `repro` binary regenerates every figure of the paper; these helpers
//! draw them directly in the terminal (and the same strings are written to
//! the experiment output files), so no plotting stack is needed.

/// A named series of `(x, y)` points for [`line_chart`].
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points in ascending-x order (not enforced; rendering is pointwise).
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }
}

const GLYPHS: &[char] = &['*', '+', 'o', 'x', '#', '@', '%', '&', '$', '~'];

fn finite_bounds(values: impl Iterator<Item = f64>) -> Option<(f64, f64)> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in values.filter(|v| v.is_finite()) {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo.is_finite() && hi.is_finite() {
        if lo == hi {
            // widen degenerate range so a flat series still renders
            Some((lo - 0.5, hi + 0.5))
        } else {
            Some((lo, hi))
        }
    } else {
        None
    }
}

/// Render one or more series as a fixed-size ASCII scatter/line chart with
/// axis labels and a legend. Returns the multi-line string.
pub fn line_chart(title: &str, series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 4, "chart too small to be legible");
    let xs = series.iter().flat_map(|s| s.points.iter().map(|p| p.0));
    let ys = series.iter().flat_map(|s| s.points.iter().map(|p| p.1));
    let Some((x_lo, x_hi)) = finite_bounds(xs) else {
        return format!("{title}\n  (no finite data)\n");
    };
    let Some((y_lo, y_hi)) = finite_bounds(ys) else {
        return format!("{title}\n  (no finite data)\n");
    };

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            let cx = ((x - x_lo) / (x_hi - x_lo) * (width - 1) as f64).round() as usize;
            let cy = ((y - y_lo) / (y_hi - y_lo) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (i, row) in grid.iter().enumerate() {
        let y_val = y_hi - (y_hi - y_lo) * i as f64 / (height - 1) as f64;
        let line: String = row.iter().collect();
        out.push_str(&format!("{y_val:>12.4} |{line}\n"));
    }
    out.push_str(&format!("{:>12} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>12}  {:<width$}\n",
        "",
        format!("{x_lo:.4}{}{x_hi:.4}", " ".repeat(width.saturating_sub(24))),
        width = width
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("    {} {}\n", GLYPHS[si % GLYPHS.len()], s.label));
    }
    out
}

/// Render a horizontal box plot row scaled to `[lo, hi]`.
///
/// Shows `5%  [ Q1 | median | Q3 ]  95%` positions using `-[|]-` glyphs,
/// matching the presentation of Figure 6(c).
pub fn box_plot_row(label: &str, b: &crate::BoxPlot, lo: f64, hi: f64, width: usize) -> String {
    assert!(width >= 16, "box plot row too narrow");
    assert!(hi > lo, "hi must exceed lo");
    let pos = |v: f64| -> usize {
        (((v - lo) / (hi - lo)).clamp(0.0, 1.0) * (width - 1) as f64).round() as usize
    };
    let mut row = vec![' '; width];
    let (p5, q1, med, q3, p95) = (pos(b.p05), pos(b.q1), pos(b.median), pos(b.q3), pos(b.p95));
    for cell in row.iter_mut().take(q1).skip(p5) {
        *cell = '-';
    }
    for cell in row.iter_mut().take(p95 + 1).skip(q3) {
        *cell = '-';
    }
    for cell in row.iter_mut().take(q3 + 1).skip(q1) {
        *cell = '=';
    }
    row[p5] = '|';
    row[p95] = '|';
    row[q1] = '[';
    row[q3] = ']';
    row[med] = '#';
    let bar: String = row.into_iter().collect();
    format!("{label:>14} {bar} mean={:.1}\n", b.mean)
}

/// Render labelled horizontal bars scaled to the largest value.
pub fn bar_chart(title: &str, rows: &[(String, f64)], width: usize) -> String {
    assert!(width >= 8, "bar chart too narrow");
    let max = rows
        .iter()
        .map(|r| r.1)
        .fold(0.0_f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (label, v) in rows {
        let len = ((v / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{label:>20} |{} {v:.4}\n",
            "#".repeat(len.min(width))
        ));
    }
    out
}

/// One entity's presence interval for [`timeline`]: `(start, end, kind)`.
/// `kind` selects the glyph: publishers render thick (`=`), peers thin
/// (`-`), and waiting/blocked intervals dotted (`.`), following Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// A publisher/seed interval (thick line in the paper's figures).
    Publisher,
    /// An actively downloading peer (thin line).
    Peer,
    /// A peer waiting for content to become available (dotted line).
    Waiting,
}

/// An interval on a timeline row.
#[derive(Debug, Clone, Copy)]
pub struct Segment {
    /// Interval start time.
    pub start: f64,
    /// Interval end time (>= start).
    pub end: f64,
    /// Rendering style.
    pub kind: SegmentKind,
}

/// Render rows of presence intervals as an ASCII timeline (Figures 2 and 5).
/// Each row is one entity; time runs left to right across `[t_lo, t_hi]`.
pub fn timeline(
    title: &str,
    rows: &[(String, Vec<Segment>)],
    t_lo: f64,
    t_hi: f64,
    width: usize,
) -> String {
    assert!(width >= 16, "timeline too narrow");
    assert!(t_hi > t_lo, "t_hi must exceed t_lo");
    let pos = |t: f64| -> usize {
        (((t - t_lo) / (t_hi - t_lo)).clamp(0.0, 1.0) * (width - 1) as f64).round() as usize
    };
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (label, segs) in rows {
        let mut row = vec![' '; width];
        for seg in segs {
            let glyph = match seg.kind {
                SegmentKind::Publisher => '=',
                SegmentKind::Peer => '-',
                SegmentKind::Waiting => '.',
            };
            let (a, b) = (pos(seg.start), pos(seg.end));
            for cell in row.iter_mut().take(b + 1).skip(a) {
                *cell = glyph;
            }
        }
        let bar: String = row.into_iter().collect();
        out.push_str(&format!("{label:>12} {bar}\n"));
    }
    out.push_str(&format!(
        "{:>12} {}\n{:>12} t={t_lo:.0} .. t={t_hi:.0}\n",
        "",
        "-".repeat(width),
        ""
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Samples;

    #[test]
    fn line_chart_contains_points_and_legend() {
        let s = Series::new("demo", vec![(0.0, 0.0), (1.0, 1.0), (2.0, 4.0)]);
        let chart = line_chart("t", &[s], 40, 10);
        assert!(chart.contains('*'));
        assert!(chart.contains("demo"));
        assert!(chart.lines().count() > 10);
    }

    #[test]
    fn line_chart_empty_series() {
        let chart = line_chart("t", &[Series::new("e", vec![])], 40, 10);
        assert!(chart.contains("no finite data"));
    }

    #[test]
    fn line_chart_flat_series_renders() {
        let s = Series::new("flat", vec![(0.0, 1.0), (1.0, 1.0)]);
        let chart = line_chart("t", &[s], 40, 8);
        assert!(chart.contains('*'));
    }

    #[test]
    fn multiple_series_get_distinct_glyphs() {
        let a = Series::new("a", vec![(0.0, 0.0)]);
        let b = Series::new("b", vec![(1.0, 1.0)]);
        let chart = line_chart("t", &[a, b], 40, 8);
        assert!(chart.contains('*'));
        assert!(chart.contains('+'));
    }

    #[test]
    fn box_plot_row_renders_markers() {
        let mut s = Samples::from_iter((0..100).map(|i| i as f64));
        let b = s.box_plot();
        let row = box_plot_row("label", &b, 0.0, 100.0, 60);
        assert!(row.contains('['));
        assert!(row.contains(']'));
        assert!(row.contains('#'));
        assert!(row.contains("label"));
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let rows = vec![("a".to_string(), 1.0), ("b".to_string(), 2.0)];
        let chart = bar_chart("t", &rows, 10);
        // The larger bar should render exactly `width` hashes.
        let b_line = chart
            .lines()
            .find(|l| l.contains(" b ") || l.trim_start().starts_with('b'))
            .unwrap();
        assert_eq!(b_line.matches('#').count(), 10);
    }

    #[test]
    fn timeline_draws_segment_kinds() {
        let rows = vec![
            (
                "pub".to_string(),
                vec![Segment {
                    start: 0.0,
                    end: 5.0,
                    kind: SegmentKind::Publisher,
                }],
            ),
            (
                "peer".to_string(),
                vec![
                    Segment {
                        start: 2.0,
                        end: 6.0,
                        kind: SegmentKind::Peer,
                    },
                    Segment {
                        start: 6.0,
                        end: 9.0,
                        kind: SegmentKind::Waiting,
                    },
                ],
            ),
        ];
        let t = timeline("t", &rows, 0.0, 10.0, 40);
        assert!(t.contains('='));
        assert!(t.contains('-'));
        assert!(t.contains('.'));
    }
}
