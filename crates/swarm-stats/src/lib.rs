//! Statistics substrate for the swarmsys workspace.
//!
//! The measurement study (Section 2 of the paper), the simulators
//! (Sections 3–4) and the reproduction harness all need the same small set
//! of statistical primitives:
//!
//! * [`Summary`] — streaming mean / variance / extrema (Welford),
//! * [`Samples`] — a batch of observations with quantiles and
//!   [`BoxPlot`] five-number summaries (Figure 6(c) reports quartiles and
//!   5th/95th percentiles),
//! * [`Ecdf`] — empirical CDFs (Figure 1 is a CDF of seed availability),
//! * [`Histogram`] — fixed-width binning (Figures 4 and 7 bin events over
//!   time),
//! * [`ci`] — normal-approximation confidence intervals for replicated
//!   experiments,
//! * [`TimeWeighted`] — time-in-state averages for availability fractions,
//! * [`ascii`] — terminal rendering of lines, CDFs and boxplots so the
//!   `repro` binary can show every figure without a plotting stack,
//! * [`parallel`] — the deterministic index-ordered worker pool shared by
//!   both simulators' `replicate()` harnesses, plus the process-wide
//!   [`parallel::ThreadBudget`] that the `swarm-lab` orchestrator installs
//!   so concurrently scheduled experiments share one core budget.
//!
//! Everything here is deliberately dependency-free (only `serde` for
//! serializable results) and exact: no sketching, no approximation beyond
//! floating point.

pub mod ascii;
pub mod ci;
pub mod ecdf;
pub mod histogram;
pub mod parallel;
pub mod quantile;
pub mod summary;
pub mod timeweighted;

pub use ci::ConfidenceInterval;
pub use ecdf::Ecdf;
pub use histogram::Histogram;
pub use quantile::{BoxPlot, Samples};
pub use summary::Summary;
pub use timeweighted::{TimeWeighted, UptimeFraction};
