//! Streaming summary statistics (Welford's online algorithm).

use serde::{Deserialize, Serialize};

/// Streaming mean / variance / extrema accumulator.
///
/// Uses Welford's algorithm, which is numerically stable for long streams
/// of observations with large means (e.g. download times in seconds over
/// millions of simulated peers).
///
/// ```
/// use swarm_stats::Summary;
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.add(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    /// Sum of squared deviations from the running mean (Welford's M2).
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// An empty summary. `mean()` of an empty summary is `NaN`.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Build a summary from a slice in one pass.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.add(x);
        }
        s
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        debug_assert!(
            x.is_finite(),
            "Summary observations must be finite, got {x}"
        );
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another summary into this one (parallel reduction).
    ///
    /// Uses the Chan et al. parallel variance combination, so merging
    /// per-thread summaries is exact up to floating point.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `NaN` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance (divide by n); `NaN` when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divide by n-1); `NaN` when fewer than 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            f64::NAN
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        self.std_dev() / (self.count as f64).sqrt()
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_nan() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert!(s.mean().is_nan());
        assert!(s.population_variance().is_nan());
    }

    #[test]
    fn single_observation() {
        let mut s = Summary::new();
        s.add(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.population_variance(), 0.0);
        assert!(s.sample_variance().is_nan());
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn mean_and_variance_match_direct_computation() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let s = Summary::from_slice(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.population_variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 10.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 50.0 + 100.0).collect();
        let whole = Summary::from_slice(&xs);
        let mut a = Summary::from_slice(&xs[..37]);
        let b = Summary::from_slice(&xs[37..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let xs = [5.0, 6.0, 7.0];
        let mut a = Summary::from_slice(&xs);
        a.merge(&Summary::new());
        assert_eq!(a.count(), 3);
        assert!((a.mean() - 6.0).abs() < 1e-12);

        let mut e = Summary::new();
        e.merge(&Summary::from_slice(&xs));
        assert_eq!(e.count(), 3);
        assert!((e.mean() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn sum_is_mean_times_count() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0]);
        assert!((s.sum() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn numerically_stable_for_large_offsets() {
        // Classic catastrophic-cancellation test: tiny variance on a huge mean.
        let base = 1e9;
        let xs = [base + 1.0, base + 2.0, base + 3.0];
        let s = Summary::from_slice(&xs);
        assert!((s.sample_variance() - 1.0).abs() < 1e-6);
    }
}
