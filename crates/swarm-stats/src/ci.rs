//! Confidence intervals for replicated experiments.
//!
//! The experimental sections of the paper report means over 10+ runs; the
//! reproduction harness attaches normal-approximation confidence intervals
//! so shape comparisons ("who wins, by roughly what factor") are grounded.

use crate::Summary;
use serde::{Deserialize, Serialize};

/// Two-sided confidence interval around a sample mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate (the sample mean).
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
    /// Confidence level used, e.g. 0.95.
    pub level: f64,
    /// Number of observations behind the estimate.
    pub n: u64,
}

impl ConfidenceInterval {
    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Does this interval contain `x`?
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo() && x <= self.hi()
    }

    /// Do two intervals overlap? (A coarse "statistically indistinguishable"
    /// check used when comparing simulated and analytic curves.)
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.lo() <= other.hi() && other.lo() <= self.hi()
    }
}

/// Normal-approximation CI for the mean of the observations in `summary`.
///
/// Uses the z-quantile of the standard normal; for the small replica counts
/// (n >= 10) used in the experiments this is within a few percent of the
/// t-interval and avoids shipping a t-table. Returns a zero-width interval
/// when `n < 2`.
pub fn mean_ci(summary: &Summary, level: f64) -> ConfidenceInterval {
    assert!((0.0..1.0).contains(&level), "level must be in (0,1)");
    let n = summary.count();
    let half_width = if n < 2 {
        0.0
    } else {
        z_quantile(0.5 + level / 2.0) * summary.std_error()
    };
    ConfidenceInterval {
        mean: summary.mean(),
        half_width,
        level,
        n,
    }
}

/// Quantile function of the standard normal distribution.
///
/// Acklam's rational approximation; absolute error below 1.15e-9 over the
/// full open interval, far more precision than replicated-run CIs need.
pub fn z_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "z_quantile requires p in (0,1), got {p}"
    );

    // Coefficients for the central and tail rational approximations.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_quantile_known_values() {
        assert!(z_quantile(0.5).abs() < 1e-8);
        assert!((z_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((z_quantile(0.995) - 2.575829).abs() < 1e-4);
        assert!((z_quantile(0.025) + 1.959964).abs() < 1e-4);
        // deep tail
        assert!((z_quantile(1e-6) + 4.753424).abs() < 1e-3);
    }

    #[test]
    fn z_quantile_is_antisymmetric() {
        for &p in &[0.01, 0.1, 0.3, 0.45] {
            assert!((z_quantile(p) + z_quantile(1.0 - p)).abs() < 1e-8);
        }
    }

    #[test]
    #[should_panic(expected = "requires p in (0,1)")]
    fn z_quantile_rejects_zero() {
        z_quantile(0.0);
    }

    #[test]
    fn mean_ci_covers_mean() {
        let s = Summary::from_slice(&[9.0, 10.0, 11.0, 10.0, 10.0, 9.5, 10.5]);
        let ci = mean_ci(&s, 0.95);
        assert!(ci.contains(s.mean()));
        assert!(ci.half_width > 0.0);
        assert_eq!(ci.n, 7);
    }

    #[test]
    fn mean_ci_single_observation_is_point() {
        let s = Summary::from_slice(&[5.0]);
        let ci = mean_ci(&s, 0.95);
        assert_eq!(ci.half_width, 0.0);
        assert_eq!(ci.lo(), 5.0);
        assert_eq!(ci.hi(), 5.0);
    }

    #[test]
    fn wider_level_gives_wider_interval() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let narrow = mean_ci(&s, 0.90);
        let wide = mean_ci(&s, 0.99);
        assert!(wide.half_width > narrow.half_width);
    }

    #[test]
    fn overlap_detection() {
        let a = ConfidenceInterval {
            mean: 0.0,
            half_width: 1.0,
            level: 0.95,
            n: 10,
        };
        let b = ConfidenceInterval {
            mean: 1.5,
            half_width: 1.0,
            level: 0.95,
            n: 10,
        };
        let c = ConfidenceInterval {
            mean: 5.0,
            half_width: 1.0,
            level: 0.95,
            n: 10,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }
}
