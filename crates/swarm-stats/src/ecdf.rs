//! Empirical cumulative distribution functions.
//!
//! Figure 1 of the paper is a CDF of per-swarm seed availability over
//! ~45k swarms; the measurement crate reproduces it with [`Ecdf`].

use serde::{Deserialize, Serialize};

/// Empirical CDF over a finite sample.
///
/// `F(x)` is the fraction of observations `<= x` (right-continuous step
/// function, the standard ECDF definition).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build an ECDF from observations. Non-finite values are dropped.
    pub fn new(mut values: Vec<f64>) -> Self {
        values.retain(|x| x.is_finite());
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Ecdf { sorted: values }
    }

    /// Number of underlying observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when built from no observations.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)`: fraction of observations less than or equal to `x`.
    /// `NaN` when empty.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        // partition_point returns the count of elements <= x because the
        // predicate holds on the (sorted) prefix of such elements.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Generalized inverse `F^{-1}(p)`: the smallest observation `x` with
    /// `F(x) >= p`. `p` is clamped to `(0, 1]`. `NaN` when empty.
    pub fn inverse(&self, p: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let p = p.clamp(f64::MIN_POSITIVE, 1.0);
        let n = self.sorted.len();
        let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// Evaluate the ECDF at `points` evenly spaced grid positions across
    /// `[lo, hi]`, returning `(x, F(x))` pairs — the series a CDF figure
    /// plots.
    pub fn curve(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two grid points");
        assert!(hi >= lo, "hi must be >= lo");
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// Sorted underlying observations.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// Kolmogorov–Smirnov distance to another ECDF
    /// (sup over observed jump points of |F1 - F2|).
    ///
    /// Used by tests to compare simulated distributions against analytic
    /// ones and by the reproduction harness to quantify "shape" agreement.
    pub fn ks_distance(&self, other: &Ecdf) -> f64 {
        let mut d: f64 = 0.0;
        for &x in self.sorted.iter().chain(other.sorted.iter()) {
            d = d.max((self.eval(x) - other.eval(x)).abs());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_step_function() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn handles_duplicates() {
        let e = Ecdf::new(vec![1.0, 1.0, 1.0, 2.0]);
        assert_eq!(e.eval(1.0), 0.75);
        assert_eq!(e.eval(1.5), 0.75);
        assert_eq!(e.eval(2.0), 1.0);
    }

    #[test]
    fn inverse_round_trips() {
        let e = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(e.inverse(0.25), 10.0);
        assert_eq!(e.inverse(0.26), 20.0);
        assert_eq!(e.inverse(1.0), 40.0);
        // tiny p maps to the smallest observation
        assert_eq!(e.inverse(1e-12), 10.0);
    }

    #[test]
    fn empty_is_nan() {
        let e = Ecdf::new(vec![]);
        assert!(e.eval(1.0).is_nan());
        assert!(e.inverse(0.5).is_nan());
        assert!(e.is_empty());
    }

    #[test]
    fn drops_non_finite() {
        let e = Ecdf::new(vec![1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn curve_endpoints() {
        let e = Ecdf::new(vec![0.0, 0.5, 1.0]);
        let c = e.curve(0.0, 1.0, 3);
        assert_eq!(c.len(), 3);
        assert_eq!(c[0], (0.0, 1.0 / 3.0));
        assert_eq!(c[2], (1.0, 1.0));
    }

    #[test]
    fn ks_distance_identical_is_zero() {
        let a = Ecdf::new(vec![1.0, 2.0, 3.0]);
        let b = Ecdf::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(a.ks_distance(&b), 0.0);
    }

    #[test]
    fn ks_distance_disjoint_is_one() {
        let a = Ecdf::new(vec![1.0, 2.0]);
        let b = Ecdf::new(vec![10.0, 20.0]);
        assert_eq!(a.ks_distance(&b), 1.0);
    }
}
