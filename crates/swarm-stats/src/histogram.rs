//! Fixed-width histograms and time-binned counters.
//!
//! Figure 4 plots cumulative peers served over time and Figure 7 plots
//! arrivals per day; both reduce to binning event timestamps.

use serde::{Deserialize, Serialize};

/// Fixed-width histogram over `[lo, hi)` with values outside the range
/// accumulated into underflow/overflow counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    /// If `bins == 0` or `hi <= lo` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(hi > lo, "hi must exceed lo");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record one observation.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Counts per bin, in order.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }

    /// `(bin_center, count)` pairs, the series a rate-over-time figure plots.
    pub fn series(&self) -> Vec<(f64, u64)> {
        (0..self.bins.len())
            .map(|i| (self.bin_center(i), self.bins[i]))
            .collect()
    }

    /// Cumulative counts: entry `i` is the number of in-range observations
    /// in bins `0..=i` (Figure 4 plots cumulative completions over time).
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0;
        self.bins
            .iter()
            .map(|&c| {
                acc += c;
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_observations_correctly() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(0.0);
        h.add(0.99);
        h.add(5.5);
        h.add(9.999);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn underflow_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-0.1);
        h.add(1.0); // hi is exclusive
        h.add(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bin_center(0), 1.0);
        assert_eq!(h.bin_center(4), 9.0);
    }

    #[test]
    fn cumulative_sums() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        h.add(0.5);
        h.add(1.5);
        h.add(1.6);
        h.add(2.5);
        assert_eq!(h.cumulative(), vec![1, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "hi must exceed lo")]
    fn inverted_bounds_panic() {
        Histogram::new(1.0, 0.0, 4);
    }

    #[test]
    fn boundary_value_on_edge_goes_to_correct_bin() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(0.5);
        assert_eq!(h.counts(), &[0, 1]);
    }
}
