//! Property-based tests for the statistics substrate.

use proptest::prelude::*;
use std::sync::Arc;
use swarm_stats::parallel::ThreadBudget;
use swarm_stats::{Ecdf, Histogram, Samples, Summary};

fn finite_vec() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6..1e6f64, 1..200)
}

proptest! {
    #[test]
    fn summary_merge_equals_sequential(xs in finite_vec(), split in 0usize..200) {
        let split = split.min(xs.len());
        let whole = Summary::from_slice(&xs);
        let mut left = Summary::from_slice(&xs[..split]);
        let right = Summary::from_slice(&xs[split..]);
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() <= 1e-6 * whole.mean().abs().max(1.0));
        prop_assert_eq!(left.min(), whole.min());
        prop_assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn summary_mean_bounded_by_extrema(xs in finite_vec()) {
        let s = Summary::from_slice(&xs);
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.population_variance() >= -1e-9);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(xs in finite_vec(), qs in prop::collection::vec(0.0..1.0f64, 2..10)) {
        let mut samples = Samples::from_iter(xs.iter().copied());
        let mut sorted_qs = qs.clone();
        sorted_qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = f64::NEG_INFINITY;
        for q in sorted_qs {
            let v = samples.quantile(q);
            prop_assert!(v >= prev, "quantiles must be monotone");
            prop_assert!(v >= samples.quantile(0.0) - 1e-9);
            prop_assert!(v <= samples.quantile(1.0) + 1e-9);
            prev = v;
        }
    }

    #[test]
    fn box_plot_five_numbers_ordered(xs in finite_vec()) {
        let mut samples = Samples::from_iter(xs.iter().copied());
        let b = samples.box_plot();
        prop_assert!(b.min <= b.p05 && b.p05 <= b.q1 && b.q1 <= b.median);
        prop_assert!(b.median <= b.q3 && b.q3 <= b.p95 && b.p95 <= b.max);
        prop_assert_eq!(b.n, xs.len());
    }

    #[test]
    fn ecdf_is_a_cdf(xs in finite_vec(), probes in prop::collection::vec(-1e6..1e6f64, 1..20)) {
        let e = Ecdf::new(xs.clone());
        let mut sorted_probes = probes.clone();
        sorted_probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for x in sorted_probes {
            let v = e.eval(x);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v >= prev - 1e-12, "CDF must be nondecreasing");
            prev = v;
        }
        // Beyond the max everything is covered.
        prop_assert_eq!(e.eval(1e7), 1.0);
        prop_assert_eq!(e.eval(-1e7), 0.0);
    }

    #[test]
    fn ecdf_inverse_is_pseudo_inverse(xs in finite_vec(), p in 0.01..1.0f64) {
        let e = Ecdf::new(xs);
        let x = e.inverse(p);
        // F(F^{-1}(p)) >= p and F^{-1} value is an observed sample.
        prop_assert!(e.eval(x) >= p - 1e-12);
        prop_assert!(e.sorted_values().contains(&x));
    }

    #[test]
    fn histogram_conserves_observations(xs in finite_vec(), bins in 1usize..64) {
        let mut h = Histogram::new(-1e6, 1e6, bins);
        for &x in &xs {
            h.add(x);
        }
        prop_assert_eq!(h.total() as usize, xs.len());
        let binned: u64 = h.counts().iter().sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), h.total());
        // Cumulative is nondecreasing and ends at the in-range count.
        let cum = h.cumulative();
        prop_assert!(cum.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*cum.last().unwrap(), binned);
    }

    #[test]
    fn stealing_equals_serial_under_any_shape(
        n in 0usize..80,
        threads in 1usize..9,
        salt in 0u64..1_000,
    ) {
        // Work-stealing must be invisible in the results: any task
        // count and thread count yields the serial map in index order,
        // and shard-batched accumulators cover every task exactly once.
        let expected: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(salt) ^ i).collect();
        let sum = std::sync::atomic::AtomicU64::new(0);
        let got = swarm_stats::parallel::run_stealing(
            n,
            threads,
            |_w| 0u64,
            |acc, i| {
                let v = (i as u64).wrapping_mul(salt) ^ i as u64;
                *acc = acc.wrapping_add(v);
                v
            },
            |_w, acc| {
                sum.fetch_add(acc, std::sync::atomic::Ordering::Relaxed);
            },
        );
        prop_assert_eq!(&got, &expected);
        let mut want = 0u64;
        for v in &expected {
            want = want.wrapping_add(*v);
        }
        prop_assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), want);
    }

    #[test]
    fn thread_budget_never_exceeds_total(
        total in 0usize..32,
        ops in prop::collection::vec((0usize..16, 0usize..8), 1..100),
    ) {
        // Random interleaving of lease requests and releases: the sum of
        // outstanding grants never exceeds the budget, every grant is at
        // most what was asked, and releases restore availability exactly.
        let budget = Arc::new(ThreadBudget::new(total));
        let mut held = Vec::new();
        for (want, drop_at) in ops {
            let lease = budget.try_lease(want);
            prop_assert!(lease.granted() <= want);
            held.push(lease);
            let outstanding: usize = held.iter().map(|l| l.granted()).sum();
            prop_assert!(outstanding <= total, "budget exceeded: {outstanding} > {total}");
            prop_assert_eq!(budget.available() + outstanding, total);
            if drop_at < held.len() {
                held.swap_remove(drop_at);
                let outstanding: usize = held.iter().map(|l| l.granted()).sum();
                prop_assert_eq!(budget.available() + outstanding, total);
            }
        }
        drop(held);
        prop_assert_eq!(budget.available(), total);
    }
}
