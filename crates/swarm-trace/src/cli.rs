//! The `repro trace` / `repro diff` / `repro net-report` entry points.
//!
//! Kept in the library (not the `repro` binary) so the argument
//! parsing and rendering are testable without spawning a process.
//! All return a process exit code: 0 success, 1 regression or
//! invariant violation found (`diff` / `net-report`), 2 usage or I/O
//! error.

use crate::diff::{self, Baseline, Thresholds};
use crate::flame;
use crate::net;
use crate::timeline;
use crate::timeseries;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

const TRACE_USAGE: &str = "\
usage: repro trace <TELEMETRY_DIR> [--flame PATH] [--width N] [--timeseries]

Analyze the telemetry tree a `repro ... --telemetry` run wrote:
availability timeline and busy-period table per engine run (with the
closed-form model prediction alongside), plus a collapsed-stack
profile folded from every span event.

  --flame PATH   where to write the collapsed stacks
                 (default <TELEMETRY_DIR>/flame.folded)
  --width N      timeline strip width in characters (default 72)
  --timeseries   also analyze <TELEMETRY_DIR>/timeseries.jsonl:
                 per-window rates, dip/stall episodes, and the
                 windowed-availability cross-check against the
                 event timeline
";

const DIFF_USAGE: &str = "\
usage: repro diff <A> <B> [--max-rel R] [--metric NAME=R]
       repro diff --baseline FILE <RUN> [--write-baseline [--description S]]
       repro diff --sim-vs-live <RUN>
       repro diff --timeseries <A> <B>
       repro diff --timeseries --baseline FILE <RUN> [--write-baseline]

Compare the deterministic counters of two runs' metrics.json (A, B and
RUN may be the file itself or a directory containing it). Exits 1 when
any relative delta exceeds its threshold, 2 on usage or I/O errors.

  --max-rel R        default |relative delta| bound (default 0 = exact)
  --metric NAME=R    per-metric override, repeatable
  --baseline FILE    compare RUN against a committed baseline instead
  --write-baseline   (re)write FILE from RUN's metrics and exit
  --description S    description stored with --write-baseline
  --sim-vs-live      within ONE run, require bt.<stem> == net.<stem>
                     exactly for the comparable counter stems (the
                     sim-vs-live equivalence gate)
  --timeseries       compare timeseries.jsonl windows instead of
                     metrics.json counters: exact window identity for
                     two runs, or geometry/totals/digest against a
                     committed trend baseline. Wall-clock series
                     (net.tcp) are excluded from the gate.
";

const NET_REPORT_USAGE: &str = "\
usage: repro net-report <TELEMETRY_DIR> [--swimlane PATH] [--folded PATH]

Reconstruct per-connection message timelines from the live engine's
lifecycle telemetry (`net.conn`/`net.req`/`net.xfer`, both endpoints
merged), check the wire-level conservation invariants, and print a
swarm health report: per-connection traffic and request->piece latency
quantiles, TCP health snapshots and stall-watchdog firings.

Exits 0 when every invariant holds, 1 on any violation, 2 on usage or
I/O errors or when the run carried no net telemetry at all.

  --swimlane PATH  where to write the per-connection swimlanes
                   (default <TELEMETRY_DIR>/net_swimlane.txt)
  --folded PATH    where to write collapsed message-count stacks
                   (default <TELEMETRY_DIR>/net_stacks.folded)
";

/// `repro trace` — see [`TRACE_USAGE`].
pub fn trace_main(args: &[String]) -> i32 {
    let mut dir: Option<PathBuf> = None;
    let mut flame_path: Option<PathBuf> = None;
    let mut width = 72usize;
    let mut with_timeseries = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--flame" => match it.next() {
                Some(p) => flame_path = Some(PathBuf::from(p)),
                None => return usage(TRACE_USAGE, "--flame needs a path"),
            },
            "--width" => match it.next().and_then(|v| v.parse().ok()) {
                Some(w) => width = w,
                None => return usage(TRACE_USAGE, "--width needs a number"),
            },
            "--timeseries" => with_timeseries = true,
            "--help" | "-h" => {
                println!("{TRACE_USAGE}");
                return 0;
            }
            _ if dir.is_none() && !arg.starts_with('-') => dir = Some(PathBuf::from(arg)),
            _ => return usage(TRACE_USAGE, &format!("unexpected argument {arg}")),
        }
    }
    let Some(dir) = dir else {
        return usage(TRACE_USAGE, "missing telemetry directory");
    };

    let files = telemetry_files(&dir);
    if files.is_empty() {
        eprintln!("error: no telemetry.jsonl under {}", dir.display());
        return 2;
    }

    let mut all_events = Vec::new();
    let mut checked = 0usize;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {}: {e}", file.display());
                return 2;
            }
        };
        let (header, events) = match swarm_obs::parse_jsonl_with_header(&text) {
            Ok(parsed) => parsed,
            Err(e) => {
                eprintln!("error: {}: {e}", file.display());
                return 2;
            }
        };
        let rel = file.strip_prefix(&dir).unwrap_or(file);
        match &header {
            Some(h) => println!(
                "== {} (run_id {}, started unix_ms {})",
                rel.display(),
                h.run_id,
                h.ts_unix_ms
            ),
            None => println!("== {} (no header)", rel.display()),
        }
        for trace in timeline::collect_runs(&events) {
            print_run(&trace, width);
            if trace.model_check().is_some() {
                checked += 1;
            }
        }
        all_events.extend(events);
    }

    let folded = flame::collapse_spans(&all_events);
    if !folded.is_empty() {
        let out = flame_path.unwrap_or_else(|| dir.join("flame.folded"));
        if let Err(e) = std::fs::write(&out, flame::to_folded(&folded)) {
            eprintln!("error: writing {}: {e}", out.display());
            return 2;
        }
        let mut top: Vec<_> = folded.iter().collect();
        top.sort_by_key(|line| std::cmp::Reverse(line.self_us));
        println!("\nhottest stacks (self time):");
        for line in top.iter().take(10) {
            println!("  {:>12} us  {}", line.self_us, line.stack);
        }
        println!(
            "collapsed-stack profile ({} stacks) -> {}",
            folded.len(),
            out.display()
        );
    }
    if all_events.iter().any(|e| e.kind.starts_with("net.")) {
        println!("\nnote: run `repro net-report` for the wire-level connection report");
    } else {
        println!("\nnote: no net telemetry in this run (live engine events absent)");
    }

    let mut crosscheck_failed = false;
    let ts_path = dir.join("timeseries.jsonl");
    if ts_path.is_file() {
        if with_timeseries {
            let series = match timeseries::load_timeseries(&dir) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            };
            println!("\ntime series ({}):", ts_path.display());
            let traces = timeline::collect_runs(&all_events);
            for (name, rec) in &series {
                let analysis = timeseries::SeriesAnalysis::from_recorder(name, rec);
                print!("{}", analysis.render());
                if name == "bt" {
                    if let Some(check) = timeseries::availability_crosscheck(&analysis, &traces) {
                        let ok = check.ok();
                        println!(
                            "  cross-check: windowed available_ticks {} vs engine {} \
                             over {} run(s) — {}",
                            check.windowed_available,
                            check.engine_available,
                            check.runs,
                            if ok { "ok" } else { "MISMATCH" }
                        );
                        crosscheck_failed |= !ok;
                    }
                }
            }
        } else {
            println!(
                "note: timeseries.jsonl present — run `repro trace --timeseries` \
                 for the trend report"
            );
        }
    } else if with_timeseries {
        eprintln!("error: no timeseries.jsonl under {}", dir.display());
        return 2;
    }

    println!(
        "{} telemetry file(s), {} run(s) model-checked",
        files.len(),
        checked
    );
    if crosscheck_failed {
        eprintln!("error: windowed availability diverged from the engine's own figure");
        return 1;
    }
    0
}

/// `repro net-report` — see [`NET_REPORT_USAGE`].
pub fn net_report_main(args: &[String]) -> i32 {
    let mut dir: Option<PathBuf> = None;
    let mut swimlane_path: Option<PathBuf> = None;
    let mut folded_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--swimlane" => match it.next() {
                Some(p) => swimlane_path = Some(PathBuf::from(p)),
                None => return usage(NET_REPORT_USAGE, "--swimlane needs a path"),
            },
            "--folded" => match it.next() {
                Some(p) => folded_path = Some(PathBuf::from(p)),
                None => return usage(NET_REPORT_USAGE, "--folded needs a path"),
            },
            "--help" | "-h" => {
                println!("{NET_REPORT_USAGE}");
                return 0;
            }
            _ if dir.is_none() && !arg.starts_with('-') => dir = Some(PathBuf::from(arg)),
            _ => return usage(NET_REPORT_USAGE, &format!("unexpected argument {arg}")),
        }
    }
    let Some(dir) = dir else {
        return usage(NET_REPORT_USAGE, "missing telemetry directory");
    };

    let files = telemetry_files(&dir);
    if files.is_empty() {
        eprintln!("error: no telemetry.jsonl under {}", dir.display());
        return 2;
    }
    let mut events = Vec::new();
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => return fail(&format!("{}: {e}", file.display())),
        };
        match swarm_obs::parse_jsonl_with_header(&text) {
            Ok((_, parsed)) => events.extend(parsed),
            Err(e) => return fail(&format!("{}: {e}", file.display())),
        }
    }

    let runs = net::collect_net_runs(&events);
    if runs.is_empty() {
        eprintln!(
            "error: no net telemetry in this run ({} file(s) held no \
             net.conn/net.req/net.xfer events)",
            files.len()
        );
        return 2;
    }

    let mut swimlanes = String::new();
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    let mut violations = 0usize;
    for trace in &runs {
        print_net_run(trace);
        violations += trace.violations.len();
        swimlanes.push_str(&trace.swimlane());
        for line in trace.collapsed() {
            *folded.entry(line.stack).or_insert(0) += line.self_us;
        }
    }

    let lane_out = swimlane_path.unwrap_or_else(|| dir.join("net_swimlane.txt"));
    if let Err(e) = std::fs::write(&lane_out, &swimlanes) {
        return fail(&format!("writing {}: {e}", lane_out.display()));
    }
    let folded_lines: Vec<flame::FlameLine> = folded
        .into_iter()
        .map(|(stack, n)| flame::FlameLine { stack, self_us: n })
        .collect();
    let folded_out = folded_path.unwrap_or_else(|| dir.join("net_stacks.folded"));
    if let Err(e) = std::fs::write(&folded_out, flame::to_folded(&folded_lines)) {
        return fail(&format!("writing {}: {e}", folded_out.display()));
    }
    println!(
        "\nswimlanes -> {}\nmessage stacks ({}) -> {}",
        lane_out.display(),
        folded_lines.len(),
        folded_out.display()
    );
    if violations > 0 {
        eprintln!("error: {violations} conservation-invariant violation(s)");
        return 1;
    }
    println!("all conservation invariants hold ({} run(s))", runs.len());
    0
}

fn print_net_run(trace: &net::NetRunTrace) {
    println!(
        "run {:>3}: {} connection(s), {} completion(s), {} stall(s), {} violation(s)",
        trace.run,
        trace.conns.len(),
        trace.completions(),
        trace.stalls.len(),
        trace.violations.len()
    );
    println!(
        "  {:<12} {:>6} {:>7} {:>6} {:>6} {:>6}  latency(ticks)",
        "conn", "reqs", "serves", "dones", "p50", "p90"
    );
    for ((a, b), conn) in &trace.conns {
        let q = |p: f64| {
            conn.latency_quantile(p)
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "  {:<12} {:>6} {:>7} {:>6} {:>6} {:>6}",
            format!("{a}<->{b}"),
            conn.requests,
            conn.serves,
            conn.dones,
            q(0.5),
            q(0.9)
        );
    }
    // Last health snapshot per peer — the swarm's closing state.
    let mut last: BTreeMap<u64, &net::HealthSample> = BTreeMap::new();
    for h in &trace.health {
        last.insert(h.peer, h);
    }
    for (peer, h) in last {
        println!(
            "  health peer {peer}: {} piece(s), {:.0} kB, {} neighbor(s), {}{}",
            h.pieces,
            h.bytes_kb,
            h.neighbors,
            if h.online { "online" } else { "offline" },
            if h.stalled { ", STALLED" } else { "" }
        );
    }
    for s in &trace.stalls {
        println!(
            "  stall: peer {} at tick {} ({} tick(s) without progress)",
            s.peer, s.tick, s.since
        );
    }
    for v in &trace.violations {
        println!("  INVARIANT VIOLATION: {v}");
    }
}

fn print_run(trace: &timeline::BtRunTrace, width: usize) {
    let job = trace.job.as_deref().unwrap_or("-");
    match &trace.info {
        Some(info) => println!(
            "run {:>3} [{job}] K={} lambda={:.4}/s publisher={} horizon={} seed={}",
            trace.run, info.k, info.arrival_rate, info.publisher, info.horizon, info.seed
        ),
        None => println!("run {:>3} [{job}] (run.start evicted from ring)", trace.run),
    }
    println!("  avail |{}|", trace.ascii_timeline(width));
    if let Some(frac) = trace.unavailable_fraction() {
        let busy = trace.busy_periods();
        let mean_busy = trace
            .mean_busy_period()
            .map(|b| format!("{b:.1}"))
            .unwrap_or_else(|| "n/a (none completed)".into());
        println!(
            "  unavailable fraction {frac:.4}; {} completed busy period(s), mean {} ticks",
            busy.len(),
            mean_busy
        );
    }
    if let Some(end) = &trace.end {
        println!(
            "  engine: availability {:.4}, {} completion(s), last available tick {}",
            end.availability, end.completions, end.last_available_tick
        );
    }
    if let Some(check) = trace.model_check() {
        println!(
            "  model-vs-trace: P_model={:.4} P_trace={:.4} |err|={:.4}  E[B]_model={} busy_trace={}",
            check.model_unavailability,
            check.trace_unavailability,
            check.abs_error(),
            seconds(check.model_busy_period),
            check
                .trace_mean_busy_period
                .map(seconds)
                .unwrap_or_else(|| "n/a".into()),
        );
    }
}

/// A duration in seconds, scientific above 10^6 — the model's busy
/// period grows exponentially in swarm size, and a 40-digit integer
/// tells the reader less than `1.2e38s`.
fn seconds(s: f64) -> String {
    if s.abs() >= 1e6 {
        format!("{s:.2e}s")
    } else {
        format!("{s:.0}s")
    }
}

/// `repro diff` — see [`DIFF_USAGE`].
pub fn diff_main(args: &[String]) -> i32 {
    let mut positional: Vec<PathBuf> = Vec::new();
    let mut thresholds = Thresholds::default();
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut sim_vs_live = false;
    let mut with_timeseries = false;
    let mut description = String::from("repro quick suite deterministic counters");
    let mut max_rel_set = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--timeseries" => with_timeseries = true,
            "--max-rel" => match it.next().and_then(|v| v.parse().ok()) {
                Some(r) => {
                    thresholds.default_max_rel = r;
                    max_rel_set = true;
                }
                None => return usage(DIFF_USAGE, "--max-rel needs a number"),
            },
            "--metric" => match it.next().and_then(|v| parse_metric_override(v)) {
                Some((name, r)) => {
                    thresholds.per_metric.insert(name, r);
                }
                None => return usage(DIFF_USAGE, "--metric needs NAME=R"),
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage(DIFF_USAGE, "--baseline needs a path"),
            },
            "--write-baseline" => write_baseline = true,
            "--sim-vs-live" => sim_vs_live = true,
            "--description" => match it.next() {
                Some(s) => description = s.clone(),
                None => return usage(DIFF_USAGE, "--description needs text"),
            },
            "--help" | "-h" => {
                println!("{DIFF_USAGE}");
                return 0;
            }
            _ if !arg.starts_with('-') => positional.push(PathBuf::from(arg)),
            _ => return usage(DIFF_USAGE, &format!("unexpected argument {arg}")),
        }
    }

    if with_timeseries {
        if sim_vs_live {
            return usage(DIFF_USAGE, "--timeseries and --sim-vs-live are exclusive");
        }
        return diff_timeseries(
            &positional,
            baseline_path.as_deref(),
            write_baseline,
            &description,
        );
    }

    if sim_vs_live {
        if baseline_path.is_some() {
            return usage(DIFF_USAGE, "--sim-vs-live and --baseline are exclusive");
        }
        let [run] = positional.as_slice() else {
            return usage(DIFF_USAGE, "--sim-vs-live mode takes exactly one RUN path");
        };
        let current = match load_run_metrics(run) {
            Ok(m) => m,
            Err(e) => return fail(&e),
        };
        let report = diff::sim_vs_live(&current);
        print!("{}", report.render(true));
        if !report.missing.is_empty() {
            eprintln!(
                "error: --sim-vs-live: missing metric(s): {} — one engine did not \
                 run, or its telemetry was not recorded",
                report.missing.join(", ")
            );
        }
        return i32::from(!report.ok());
    }

    match baseline_path {
        Some(bpath) => {
            let [run] = positional.as_slice() else {
                return usage(DIFF_USAGE, "--baseline mode takes exactly one RUN path");
            };
            let current = match load_run_metrics(run) {
                Ok(m) => m,
                Err(e) => return fail(&e),
            };
            if write_baseline {
                let max_rel = if max_rel_set {
                    thresholds.default_max_rel
                } else {
                    0.0
                };
                let baseline = Baseline::from_metrics(&current, description, true, max_rel);
                if let Err(e) = std::fs::write(&bpath, baseline.to_json() + "\n") {
                    return fail(&format!("writing {}: {e}", bpath.display()));
                }
                println!(
                    "wrote baseline {} ({} metrics, max_rel {max_rel})",
                    bpath.display(),
                    baseline.metrics.len()
                );
                return 0;
            }
            let text = match std::fs::read_to_string(&bpath) {
                Ok(t) => t,
                Err(e) => return fail(&format!("{}: {e}", bpath.display())),
            };
            let baseline = match Baseline::from_json(&text) {
                Ok(b) => b,
                Err(e) => return fail(&e),
            };
            let report = baseline.check(&current);
            print!("{}", report.render(true));
            i32::from(!report.ok())
        }
        None => {
            let [a, b] = positional.as_slice() else {
                return usage(DIFF_USAGE, "need exactly two run paths (or --baseline)");
            };
            let (ma, mb) = match (load_run_metrics(a), load_run_metrics(b)) {
                (Ok(ma), Ok(mb)) => (ma, mb),
                (Err(e), _) | (_, Err(e)) => return fail(&e),
            };
            let report = diff::diff(&ma, &mb, &thresholds);
            print!("{}", report.render(true));
            i32::from(!report.ok())
        }
    }
}

/// `repro diff --timeseries` — window identity between two runs, or
/// geometry/totals/digest against a committed trend baseline.
fn diff_timeseries(
    positional: &[PathBuf],
    baseline_path: Option<&Path>,
    write_baseline: bool,
    description: &str,
) -> i32 {
    match baseline_path {
        Some(bpath) => {
            let [run] = positional else {
                return usage(
                    DIFF_USAGE,
                    "--timeseries --baseline takes exactly one RUN path",
                );
            };
            let current = match timeseries::load_timeseries(run) {
                Ok(s) => s,
                Err(e) => return fail(&e),
            };
            if write_baseline {
                let baseline = timeseries::TsBaseline::from_series(&current, description);
                if let Err(e) = std::fs::write(bpath, baseline.to_json() + "\n") {
                    return fail(&format!("writing {}: {e}", bpath.display()));
                }
                println!(
                    "wrote timeseries baseline {} ({} series)",
                    bpath.display(),
                    baseline.series.len()
                );
                return 0;
            }
            let text = match std::fs::read_to_string(bpath) {
                Ok(t) => t,
                Err(e) => return fail(&format!("{}: {e}", bpath.display())),
            };
            let baseline = match timeseries::TsBaseline::from_json(&text) {
                Ok(b) => b,
                Err(e) => return fail(&e),
            };
            let problems = baseline.check(&current);
            for p in &problems {
                println!("TREND REGRESSION: {p}");
            }
            println!(
                "{} series checked against baseline, {} problem(s)",
                baseline.series.len(),
                problems.len()
            );
            i32::from(!problems.is_empty())
        }
        None => {
            let [a, b] = positional else {
                return usage(
                    DIFF_USAGE,
                    "--timeseries needs exactly two run paths (or --baseline)",
                );
            };
            let (sa, sb) = match (
                timeseries::load_timeseries(a),
                timeseries::load_timeseries(b),
            ) {
                (Ok(sa), Ok(sb)) => (sa, sb),
                (Err(e), _) | (_, Err(e)) => return fail(&e),
            };
            let problems = timeseries::diff_series(&sa, &sb);
            for p in &problems {
                println!("TREND DIVERGENCE: {p}");
            }
            let compared = sa
                .keys()
                .filter(|n| timeseries::is_deterministic_series(n))
                .count();
            println!(
                "{compared} series compared, {} divergence(s)",
                problems.len()
            );
            i32::from(!problems.is_empty())
        }
    }
}

fn parse_metric_override(s: &str) -> Option<(String, f64)> {
    let (name, r) = s.split_once('=')?;
    Some((name.to_string(), r.parse().ok()?))
}

fn usage(text: &str, problem: &str) -> i32 {
    eprintln!("error: {problem}\n{text}");
    2
}

fn fail(problem: &str) -> i32 {
    eprintln!("error: {problem}");
    2
}

/// Accept either a `metrics.json` file or a directory containing one.
fn load_run_metrics(path: &Path) -> Result<BTreeMap<String, f64>, String> {
    let file = if path.is_dir() {
        path.join("metrics.json")
    } else {
        path.to_path_buf()
    };
    let text = std::fs::read_to_string(&file).map_err(|e| format!("{}: {e}", file.display()))?;
    diff::load_metrics_json(&text).map_err(|e| format!("{}: {e}", file.display()))
}

/// `telemetry.jsonl` files under `dir`: the run-level one plus each
/// job subdirectory's, in sorted order.
fn telemetry_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let top = dir.join("telemetry.jsonl");
    if top.is_file() {
        out.push(top);
    }
    if let Ok(entries) = std::fs::read_dir(dir) {
        let mut subs: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        subs.sort();
        for sub in subs {
            let f = sub.join("telemetry.jsonl");
            if f.is_file() {
                out.push(f);
            }
        }
    }
    out
}
