//! Fold `"span"` events into collapsed-stack profiles.
//!
//! Every [`swarm_obs::span`] guard emits, at drop, a `"span"` event
//! carrying `{name, id, parent, dur_us}` (`parent` is the enclosing
//! span on the same thread, 0 at top level). Reconstructing the call
//! tree from those ids and charging each frame its *self* time (own
//! duration minus its children's) yields the collapsed-stack format
//! popularized by Brendan Gregg's `flamegraph.pl`:
//!
//! ```text
//! lab.run;lab.job[fig6a-k4];bt.run 152340
//! ```
//!
//! one line per distinct stack, semicolon-separated frames, self-time
//! in microseconds — directly consumable by inferno or speedscope.
//! Labeled spans render as `name[label]`, so per-job frames stay
//! distinguishable in the graph.

use std::collections::{BTreeMap, HashMap};
use swarm_obs::Event;

#[derive(Debug, Clone)]
struct SpanRec {
    name: String,
    parent: u64,
    dur_us: f64,
    child_us: f64,
}

/// One aggregated stack with its total self-time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlameLine {
    /// Semicolon-separated frames, root first.
    pub stack: String,
    /// Self-time in microseconds (whole µs; sub-µs spans keep at
    /// least their rounded share so they stay visible).
    pub self_us: u64,
}

/// Collapse every span event in `events` into aggregated stacks,
/// sorted by stack string. Spans whose parent event was evicted from
/// the ring are rooted at `(orphan)` rather than dropped — the profile
/// stays complete even when the flight recorder wrapped.
pub fn collapse_spans(events: &[Event]) -> Vec<FlameLine> {
    let mut spans: HashMap<u64, SpanRec> = HashMap::new();
    for e in events {
        if e.kind != "span" {
            continue;
        }
        let get = |key: &str| e.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let (Some(name), Some(id), Some(parent), Some(dur_us)) = (
            get("name").and_then(|v| v.as_str()),
            get("id").and_then(|v| v.as_u64()),
            get("parent").and_then(|v| v.as_u64()),
            get("dur_us").and_then(|v| v.as_f64()),
        ) else {
            continue;
        };
        let frame = match get("label").and_then(|v| v.as_str()) {
            Some(label) => format!("{name}[{label}]"),
            None => name.to_string(),
        };
        spans.insert(
            id,
            SpanRec {
                name: frame,
                parent,
                dur_us,
                child_us: 0.0,
            },
        );
    }

    // Charge each span's duration to its parent as child time.
    let child_sums: Vec<(u64, f64)> = spans
        .iter()
        .filter(|(_, s)| s.parent != 0)
        .map(|(_, s)| (s.parent, s.dur_us))
        .collect();
    for (parent, dur) in child_sums {
        if let Some(p) = spans.get_mut(&parent) {
            p.child_us += dur;
        }
    }

    let mut folded: BTreeMap<String, f64> = BTreeMap::new();
    for (id, span) in &spans {
        // Walk ancestors to build the stack, root first. A missing
        // ancestor (evicted from the ring) roots the walk at a
        // sentinel frame instead of losing the sample.
        let mut frames = vec![span.name.clone()];
        let mut cursor = span.parent;
        let mut hops = 0;
        while cursor != 0 {
            match spans.get(&cursor) {
                Some(p) => {
                    frames.push(p.name.clone());
                    cursor = p.parent;
                }
                None => {
                    frames.push("(orphan)".to_string());
                    break;
                }
            }
            hops += 1;
            if hops > 1024 {
                // A cycle can only come from a corrupt file; bail out
                // rather than spin.
                break;
            }
        }
        frames.reverse();
        let self_us = (span.dur_us - span.child_us).max(0.0);
        *folded.entry(frames.join(";")).or_insert(0.0) += self_us;
        let _ = id;
    }

    folded
        .into_iter()
        .map(|(stack, us)| FlameLine {
            stack,
            self_us: us.round() as u64,
        })
        .collect()
}

/// Render collapsed stacks in the `stack self-µs` one-per-line format.
pub fn to_folded(lines: &[FlameLine]) -> String {
    let mut out = String::new();
    for l in lines {
        out.push_str(&l.stack);
        out.push(' ');
        out.push_str(&l.self_us.to_string());
        out.push('\n');
    }
    out
}
