//! Trend analysis over a run's `timeseries.jsonl`.
//!
//! The recorder windows (see `swarm_obs::timeseries`) say *when* a
//! run's counters moved; this module turns that into answers and
//! gates:
//!
//! * [`SeriesAnalysis`] — per-window rates, the windowed availability
//!   curve, and episode detection: **dips** (windows whose availability
//!   fraction drops below a threshold) and **stalls** (windows where
//!   leechers were blocked but no bytes moved — the generalization of
//!   the TCP host's byte-progress watchdog to any windowed series).
//! * [`availability_crosscheck`] — the windowed availability curve must
//!   integrate to the engine's own end-of-run availability figure
//!   (from the event timeline), within one tick of rounding per run.
//! * [`TsBaseline`] — the committed trend baseline behind
//!   `repro diff --timeseries`: per-series window geometry, counter
//!   totals and an FNV-1a digest over the canonical serialization, so
//!   CI catches a *reshaped* curve even when the totals still match.
//!
//! Only deterministic series enter the diff gate; series recorded off
//! the wall clock (the TCP host's `net.tcp`) are analyzed and reported
//! but never compared.

use crate::timeline::BtRunTrace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;
use swarm_obs::{Recorder, Window};

/// Availability fraction below which a window counts as a dip.
pub const DIP_THRESHOLD: f64 = 0.5;

/// Is this series expected to be bit-identical across machines, shard
/// counts and host modes for a fixed seed? Virtual-tick series are;
/// anything recorded off the wall clock (the TCP smoke host's
/// `net.tcp`) is not and must stay out of the diff gate.
pub fn is_deterministic_series(name: &str) -> bool {
    name != "net.tcp"
}

/// A maximal run of consecutive windows satisfying an episode
/// predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct Episode {
    /// First tick of the first window in the run.
    pub start: u64,
    /// One past the last tick of the last window.
    pub end: u64,
    /// Number of windows in the run.
    pub windows: usize,
    /// Worst (lowest) availability fraction seen, for dips; 0 for
    /// stalls.
    pub severity: f64,
}

impl Episode {
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// One named series, loaded for analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesAnalysis {
    pub name: String,
    /// Base window width in virtual ticks.
    pub window: u64,
    /// Downsampling stride at render time.
    pub stride: u64,
    pub windows: Vec<Window>,
    /// Counter name → sum over every window.
    pub totals: BTreeMap<String, u64>,
}

impl SeriesAnalysis {
    pub fn from_recorder(name: &str, rec: &Recorder) -> SeriesAnalysis {
        let windows = rec.windows();
        let mut totals: BTreeMap<String, u64> = BTreeMap::new();
        for w in &windows {
            for (k, &v) in &w.counters {
                *totals.entry(k.clone()).or_insert(0) += v;
            }
        }
        SeriesAnalysis {
            name: name.to_string(),
            window: rec.window(),
            stride: rec.stride(),
            windows,
            totals,
        }
    }

    /// `counter / window length` — the per-virtual-tick rate inside one
    /// window. Ticks are seconds for the engine series and hours for
    /// the catalog series, so this is a rate in 1/s-of-sim-time
    /// respectively 1/h.
    pub fn rate(w: &Window, counter: &str) -> f64 {
        let v = w.counters.get(counter).copied().unwrap_or(0);
        v as f64 / w.len as f64
    }

    /// Availability fraction of one window
    /// (`available_ticks / ticks`), when the series carries both.
    pub fn availability(w: &Window) -> Option<f64> {
        let ticks = w.counters.get("ticks").copied()?;
        if ticks == 0 {
            return None;
        }
        let avail = w.counters.get("available_ticks").copied().unwrap_or(0);
        Some(avail as f64 / ticks as f64)
    }

    /// Maximal runs of consecutive windows whose availability fraction
    /// is below `threshold`. Windows without tick counts (catalog
    /// series, gaps) never extend an episode.
    pub fn dip_episodes(&self, threshold: f64) -> Vec<Episode> {
        self.episodes(|w| {
            Self::availability(w)
                .filter(|&f| f < threshold)
                .map(|f| f.min(1.0))
        })
    }

    /// Maximal runs of consecutive windows where leechers sat blocked
    /// (`blocked_ticks > 0`) while nothing was transferred
    /// (`bytes_moved == 0`) — the windowed generalization of the TCP
    /// host's stall watchdog.
    pub fn stall_episodes(&self) -> Vec<Episode> {
        self.episodes(|w| {
            let blocked = w.counters.get("blocked_ticks").copied().unwrap_or(0);
            let bytes = w.counters.get("bytes_moved").copied().unwrap_or(0);
            (blocked > 0 && bytes == 0).then_some(0.0)
        })
    }

    /// Generic episode scan: `hit` returns a severity when the window
    /// belongs to an episode. Consecutive means *adjacent in tick
    /// space* — a materialization gap breaks the run.
    fn episodes(&self, hit: impl Fn(&Window) -> Option<f64>) -> Vec<Episode> {
        let mut out: Vec<Episode> = Vec::new();
        let mut current: Option<Episode> = None;
        for w in &self.windows {
            match hit(w) {
                Some(severity) => {
                    let adjacent = current.as_ref().map(|e| e.end == w.start).unwrap_or(false);
                    if adjacent {
                        let e = current.as_mut().expect("adjacent implies current");
                        e.end = w.start + w.len;
                        e.windows += 1;
                        e.severity = e.severity.min(severity);
                    } else {
                        if let Some(e) = current.take() {
                            out.push(e);
                        }
                        current = Some(Episode {
                            start: w.start,
                            end: w.start + w.len,
                            windows: 1,
                            severity,
                        });
                    }
                }
                None => {
                    if let Some(e) = current.take() {
                        out.push(e);
                    }
                }
            }
        }
        out.extend(current);
        out
    }

    /// Human-readable report for `repro trace --timeseries`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "series {:<10} window {} x stride {} = {} tick(s)/window, {} window(s)\n",
            self.name,
            self.window,
            self.stride,
            self.window * self.stride,
            self.windows.len()
        ));
        let covered: u64 = self.windows.iter().map(|w| w.len).sum();
        for (name, total) in &self.totals {
            out.push_str(&format!(
                "  {name:<18} total {total:>12}  mean rate {:.6}/tick\n",
                *total as f64 / covered.max(1) as f64
            ));
        }
        let dips = self.dip_episodes(DIP_THRESHOLD);
        for e in &dips {
            out.push_str(&format!(
                "  dip: ticks [{}, {}) — {} window(s), worst availability {:.3}\n",
                e.start, e.end, e.windows, e.severity
            ));
        }
        let stalls = self.stall_episodes();
        for e in &stalls {
            out.push_str(&format!(
                "  stall: ticks [{}, {}) — {} window(s) blocked with no bytes moved\n",
                e.start, e.end, e.windows
            ));
        }
        if dips.is_empty() && stalls.is_empty() {
            out.push_str("  no dip or stall episodes\n");
        }
        out
    }
}

/// Outcome of checking the windowed availability curve against the
/// engines' own end-of-run figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossCheck {
    /// `sum(available_ticks)` over every window.
    pub windowed_available: u64,
    /// `sum(round(availability * horizon))` over the event timeline's
    /// runs — what the engines reported.
    pub engine_available: u64,
    /// Runs that contributed to `engine_available`.
    pub runs: usize,
}

impl CrossCheck {
    /// The engine figure is a rounded fraction, so allow one tick of
    /// rounding slack per contributing run.
    pub fn ok(&self) -> bool {
        self.windowed_available.abs_diff(self.engine_available) <= self.runs as u64
    }
}

/// Cross-check a `bt` series against the availability figures the
/// engine itself emitted on the event timeline. `None` when the series
/// has no availability counter or no run carried both a config and an
/// end summary (multiple runs merge additively on both sides, so the
/// sums stay comparable).
pub fn availability_crosscheck(
    analysis: &SeriesAnalysis,
    traces: &[BtRunTrace],
) -> Option<CrossCheck> {
    let windowed_available = *analysis.totals.get("available_ticks")?;
    let mut engine_available = 0u64;
    let mut runs = 0usize;
    for t in traces {
        let (Some(info), Some(end)) = (&t.info, &t.end) else {
            continue;
        };
        engine_available += (end.availability * info.horizon as f64).round() as u64;
        runs += 1;
    }
    if runs == 0 {
        return None;
    }
    Some(CrossCheck {
        windowed_available,
        engine_available,
        runs,
    })
}

/// 64-bit FNV-1a.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Canonical digest of one series: FNV-1a over its serialized JSONL
/// (header + windows), which pins geometry, order and every counter.
pub fn series_digest(name: &str, rec: &Recorder) -> String {
    let mut one = BTreeMap::new();
    one.insert(name.to_string(), rec.clone());
    format!(
        "{:016x}",
        fnv1a(swarm_obs::series_to_jsonl(&one).as_bytes())
    )
}

/// One baselined series: window geometry, counter totals and the
/// canonical digest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TsSeriesBaseline {
    pub window: u64,
    pub stride: u64,
    pub windows: u64,
    pub totals: BTreeMap<String, u64>,
    pub digest: String,
}

/// The committed trend baseline (`BENCH_timeseries_baseline.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TsBaseline {
    /// What produced it — documentation, not compared.
    pub description: String,
    pub series: BTreeMap<String, TsSeriesBaseline>,
}

impl TsBaseline {
    /// Build a baseline from a run's deterministic series.
    pub fn from_series(
        series: &BTreeMap<String, Recorder>,
        description: impl Into<String>,
    ) -> TsBaseline {
        TsBaseline {
            description: description.into(),
            series: series
                .iter()
                .filter(|(name, _)| is_deterministic_series(name))
                .map(|(name, rec)| {
                    let analysis = SeriesAnalysis::from_recorder(name, rec);
                    (
                        name.clone(),
                        TsSeriesBaseline {
                            window: rec.window(),
                            stride: rec.stride(),
                            windows: analysis.windows.len() as u64,
                            totals: analysis.totals,
                            digest: series_digest(name, rec),
                        },
                    )
                })
                .collect(),
        }
    }

    /// Compare a current run's series against this baseline. Every
    /// problem is one line; an empty list is a pass. New series not in
    /// the baseline are tolerated (new instrumentation must not break
    /// old baselines).
    pub fn check(&self, current: &BTreeMap<String, Recorder>) -> Vec<String> {
        let mut problems = Vec::new();
        for (name, base) in &self.series {
            let Some(rec) = current.get(name) else {
                problems.push(format!("series {name}: missing from current run"));
                continue;
            };
            let analysis = SeriesAnalysis::from_recorder(name, rec);
            if rec.window() != base.window || rec.stride() != base.stride {
                problems.push(format!(
                    "series {name}: geometry changed — window {} x stride {} vs baseline {} x {}",
                    rec.window(),
                    rec.stride(),
                    base.window,
                    base.stride
                ));
            }
            if analysis.windows.len() as u64 != base.windows {
                problems.push(format!(
                    "series {name}: {} window(s) vs baseline {}",
                    analysis.windows.len(),
                    base.windows
                ));
            }
            for (counter, &expect) in &base.totals {
                match analysis.totals.get(counter) {
                    Some(&got) if got == expect => {}
                    Some(&got) => problems.push(format!(
                        "series {name}: counter {counter} total {got} vs baseline {expect}"
                    )),
                    None => problems.push(format!(
                        "series {name}: counter {counter} missing (baseline {expect})"
                    )),
                }
            }
            let digest = series_digest(name, rec);
            if digest != base.digest {
                problems.push(format!(
                    "series {name}: window shape changed (digest {digest} vs baseline {})",
                    base.digest
                ));
            }
        }
        problems
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("baseline serializes")
    }

    pub fn from_json(s: &str) -> Result<TsBaseline, String> {
        serde_json::from_str(s).map_err(|e| format!("timeseries baseline parse error: {e}"))
    }
}

/// Exact two-run comparison of the deterministic series: bit-identical
/// serialization or a problem line per divergence. Series present on
/// only one side fail too.
pub fn diff_series(a: &BTreeMap<String, Recorder>, b: &BTreeMap<String, Recorder>) -> Vec<String> {
    let mut problems = Vec::new();
    let names: std::collections::BTreeSet<&String> = a
        .keys()
        .chain(b.keys())
        .filter(|n| is_deterministic_series(n))
        .collect();
    for name in names {
        match (a.get(name), b.get(name)) {
            (Some(ra), Some(rb)) => {
                if series_digest(name, ra) != series_digest(name, rb) {
                    problems.push(format!("series {name}: windows diverge between runs"));
                }
            }
            (Some(_), None) => problems.push(format!("series {name}: only in run A")),
            (None, Some(_)) => problems.push(format!("series {name}: only in run B")),
            (None, None) => unreachable!("name came from one of the maps"),
        }
    }
    problems
}

/// Load `timeseries.jsonl` from a run directory (or the file itself).
pub fn load_timeseries(path: &Path) -> Result<BTreeMap<String, Recorder>, String> {
    let file = if path.is_dir() {
        path.join("timeseries.jsonl")
    } else {
        path.to_path_buf()
    };
    let text = std::fs::read_to_string(&file).map_err(|e| format!("{}: {e}", file.display()))?;
    swarm_obs::parse_timeseries(&text).map_err(|e| format!("{}: {e}", file.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bt_like() -> Recorder {
        // 4 windows of 8 ticks: healthy, dip, stall, healthy.
        let mut rec = Recorder::with_capacity(8, 64);
        for (i, (avail, blocked, bytes)) in [(8, 0, 100), (2, 3, 50), (0, 8, 0), (8, 0, 80)]
            .iter()
            .enumerate()
        {
            let base = i as u64 * 8;
            rec.add(base, "ticks", 8);
            rec.add(base, "available_ticks", *avail);
            rec.add(base, "blocked_ticks", *blocked);
            rec.add(base, "bytes_moved", *bytes);
        }
        rec
    }

    #[test]
    fn totals_and_rates() {
        let rec = bt_like();
        let a = SeriesAnalysis::from_recorder("bt", &rec);
        assert_eq!(a.totals["ticks"], 32);
        assert_eq!(a.totals["bytes_moved"], 230);
        let w = &a.windows[0];
        assert_eq!(SeriesAnalysis::rate(w, "bytes_moved"), 100.0 / 8.0);
        assert_eq!(SeriesAnalysis::availability(w), Some(1.0));
    }

    #[test]
    fn dips_and_stalls_detected() {
        let a = SeriesAnalysis::from_recorder("bt", &bt_like());
        let dips = a.dip_episodes(DIP_THRESHOLD);
        // Windows 1 (2/8) and 2 (0/8) are adjacent → one episode.
        assert_eq!(dips.len(), 1);
        assert_eq!((dips[0].start, dips[0].end), (8, 24));
        assert_eq!(dips[0].windows, 2);
        assert_eq!(dips[0].severity, 0.0);

        let stalls = a.stall_episodes();
        assert_eq!(stalls.len(), 1);
        assert_eq!((stalls[0].start, stalls[0].end), (16, 24));
    }

    #[test]
    fn episode_breaks_at_gap() {
        let mut rec = Recorder::with_capacity(8, 64);
        // Two dip windows separated by an unmaterialized window.
        for base in [0u64, 16] {
            rec.add(base, "ticks", 8);
            rec.add(base, "available_ticks", 1);
        }
        let a = SeriesAnalysis::from_recorder("x", &rec);
        let dips = a.dip_episodes(DIP_THRESHOLD);
        assert_eq!(dips.len(), 2, "a gap must split the episode");
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let rec = bt_like();
        assert_eq!(series_digest("bt", &rec), series_digest("bt", &rec));
        let mut other = bt_like();
        other.add(0, "ticks", 1);
        assert_ne!(series_digest("bt", &rec), series_digest("bt", &other));
        // Same windows under a different name digest differently: the
        // name is part of the canonical serialization.
        assert_ne!(series_digest("bt", &rec), series_digest("net", &rec));
    }

    #[test]
    fn baseline_round_trip_and_injected_regression() {
        let mut series = BTreeMap::new();
        series.insert("bt".to_string(), bt_like());
        // Wall-clock series must not enter the baseline.
        series.insert("net.tcp".to_string(), bt_like());
        let baseline = TsBaseline::from_series(&series, "test");
        assert!(!baseline.series.contains_key("net.tcp"));
        let parsed = TsBaseline::from_json(&baseline.to_json()).expect("round trips");
        assert_eq!(parsed, baseline);
        assert!(baseline.check(&series).is_empty(), "self-check passes");

        // Injected regression: one counter in one window moves.
        let mut broken = series.clone();
        broken.get_mut("bt").unwrap().add(9, "arrivals", 1);
        let problems = baseline.check(&broken);
        assert!(!problems.is_empty(), "regression must be caught");
        assert!(problems.iter().any(|p| p.contains("digest")));

        // A missing series is a failure.
        let mut gone = series.clone();
        gone.remove("bt");
        assert!(gone.is_empty() || !gone.contains_key("bt"));
        assert!(baseline
            .check(&gone)
            .iter()
            .any(|p| p.contains("missing from current run")));
    }

    #[test]
    fn two_run_diff_exact() {
        let mut a = BTreeMap::new();
        a.insert("bt".to_string(), bt_like());
        let mut b = a.clone();
        assert!(diff_series(&a, &b).is_empty());
        b.get_mut("bt").unwrap().add(30, "ticks", 1);
        assert!(!diff_series(&a, &b).is_empty());
        // net.tcp differences are invisible to the gate.
        let mut c = a.clone();
        c.insert("net.tcp".to_string(), bt_like());
        assert!(diff_series(&a, &c).is_empty());
        // But a deterministic series on one side only is not.
        let mut d = a.clone();
        d.insert("catalog".to_string(), bt_like());
        assert_eq!(diff_series(&a, &d).len(), 1);
    }

    #[test]
    fn crosscheck_accepts_engine_figures() {
        use crate::timeline::collect_runs;
        let a = SeriesAnalysis::from_recorder("bt", &bt_like());
        // Build a fake timeline: one run, horizon 32, availability
        // 18/32 (the series' available_ticks total).
        let events = vec![
            swarm_obs::Event {
                seq: 0,
                ts_us: 0,
                kind: "bt.run.start".into(),
                job: None,
                fields: vec![
                    ("run".into(), swarm_obs::val(1u64)),
                    ("k".into(), swarm_obs::val(1u64)),
                    ("file_size".into(), swarm_obs::val(100.0)),
                    ("pieces".into(), swarm_obs::val(4u64)),
                    ("arrival_rate".into(), swarm_obs::val(0.1)),
                    ("horizon".into(), swarm_obs::val(32u64)),
                    ("seed".into(), swarm_obs::val(7u64)),
                    ("publisher".into(), swarm_obs::val("always_on")),
                    ("peer_upload_mean".into(), swarm_obs::val(32.0)),
                ],
            },
            swarm_obs::Event {
                seq: 1,
                ts_us: 0,
                kind: "bt.run.end".into(),
                job: None,
                fields: vec![
                    ("run".into(), swarm_obs::val(1u64)),
                    ("availability".into(), swarm_obs::val(18.0 / 32.0)),
                    ("completions".into(), swarm_obs::val(0u64)),
                    ("last_available_tick".into(), swarm_obs::val(31u64)),
                ],
            },
        ];
        let traces = collect_runs(&events);
        let check = availability_crosscheck(&a, &traces).expect("both sides present");
        assert_eq!(check.windowed_available, 18);
        assert_eq!(check.engine_available, 18);
        assert!(check.ok());
    }
}
